"""Figure 18: iso-area comparison with an RTX 4090-class GPU."""

from repro.eval import figure18_gpu_comparison, format_table


def test_fig18_gpu_comparison(benchmark):
    data = benchmark(figure18_gpu_comparison)
    print("\n" + format_table(data, title="Figure 18: DARTH-PUM / DigitalPUM vs GPU"))
    assert data["darth_pum_speedup"]["GeoMean"] > 1
    assert data["darth_pum_energy"]["GeoMean"] > 1

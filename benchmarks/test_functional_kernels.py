"""Micro-benchmarks of the functional simulator itself (not a paper figure).

These keep the cost of the functional building blocks visible: a hybrid MVM
on one tile, a digital-PUM word operation, and one AES round trip.
"""

import numpy as np
import pytest

from repro.core import HctConfig, HybridComputeTile
from repro.digital import BitPipeline
from repro.workloads.aes import DarthPumAes


@pytest.fixture(scope="module")
def tile():
    return HybridComputeTile(HctConfig.small())


def test_bench_hybrid_mvm(benchmark, tile):
    rng = np.random.default_rng(0)
    matrix = rng.integers(-8, 8, size=(16, 16))
    handle = tile.set_matrix(matrix, value_bits=4, bits_per_cell=2)
    vector = rng.integers(0, 15, size=16)
    result = benchmark(lambda: tile.execute_mvm(handle, vector, input_bits=4))
    assert np.array_equal(result.values, vector @ matrix)


def test_bench_digital_add(benchmark):
    pipeline = BitPipeline(depth=32, rows=64, cols=32)
    rng = np.random.default_rng(1)
    pipeline.write_vr(0, rng.integers(0, 2 ** 31, size=64))
    pipeline.write_vr(1, rng.integers(0, 2 ** 31, size=64))
    benchmark(lambda: pipeline.add(2, 0, 1))


def test_bench_aes_block_on_tile(benchmark):
    engine = DarthPumAes()
    plaintext = bytes(range(16))
    key = bytes(range(16, 32))
    ciphertext = benchmark.pedantic(
        lambda: engine.encrypt_bytes(plaintext, key), rounds=1, iterations=1
    )
    from repro.workloads.aes import encrypt_block

    assert ciphertext == bytes(encrypt_block(plaintext, key))

"""Degraded-mode recovery benchmark: serving through a device kill.

Drives the same open-loop request mix through two replicated (R=2) servers:
a fault-free control and a chaos run that kills one device mid-load and
heals it a few waves later.  The benchmark records what resilience costs
and how fast the pool returns to primary dispatch:

* **degraded overhead** -- p50 drain wall-clock of the chaos run over the
  control run.  Failover is an in-tick retry (no timeouts, no epochs), so
  the overhead is the cost of re-dispatching the dead device's shards on
  their replicas plus the health bookkeeping;
* **failover window** -- replica hits/retries and degraded batches
  accumulated between kill and heal;
* **recovery** -- after ``heal()`` the pool must dispatch primaries again
  immediately: zero replica hits accrue after the heal wave.

Responses must stay bit-identical to the control run and every future must
resolve as completed -- the same guarantee the tier-1 chaos gate pins in
ticks; this benchmark adds the wall-clock numbers.

PR 8 adds the integrity companion (``make integrity-bench``): the same
drain with ABFT verification on (``verify="full"``) versus off, gating the
checksum overhead at :data:`MAX_VERIFY_OVERHEAD` of the fault-free p50
drain, plus the wall-clock cost of a live shard rebuild after losing every
replica of a band.

Results go to ``benchmarks/artifacts/recovery.json`` (and
``integrity.json``) on every run; with ``REPRO_BENCH_RECORD=1`` (the CI
benchmarks job) the headline numbers are appended to the
``BENCH_recovery.json`` trajectory at the repo root.  The correctness
assertions are exact; the timing gates are bounds chosen so the benchmark
does not flake on a noisy runner.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from pathlib import Path

import numpy as np

from repro import PumServer
from repro.runtime import FaultInjector

NUM_DEVICES = 3
REPLICATION = 2
MATRIX_SHAPE = (16, 16)
INPUT_BITS = 4
ELEMENT_SIZE = 4
WAVES = 16
WAVE_SIZE = 16
KILL_WAVE = 5
HEAL_WAVE = 11
KILL_DEVICE = 0
MAX_BATCH = 8
REPEATS = 5
#: Generous sanity ceiling on the degraded-run overhead.  Failover re-runs
#: at most the dead device's share of each batch, so the true ratio sits
#: near 1; the gate only has to catch pathological regressions (e.g. an
#: accidental retry storm), not measure precisely on shared CI hardware.
MAX_DEGRADED_OVERHEAD = 25.0
#: The PR 8 acceptance bound: ABFT verification is an ``O(batch * (rows +
#: cols))`` reduction riding an ``O(batch * rows * cols)`` MVM, so
#: ``verify="full"`` must stay within 15% of the fault-free drain.
MAX_VERIFY_OVERHEAD = 1.15
#: The integrity benchmark drains a serving-sized band (one full default
#: tile) rather than the 16x16 recovery toy: the checksum's relative cost
#: is what the bound is about, and a toy matrix measures mostly fixed
#: per-call dispatch overhead instead.
INTEGRITY_MATRIX_SHAPE = (64, 64)

ARTIFACTS_DIR = Path(__file__).parent / "artifacts"
TRAJECTORY_PATH = Path(__file__).parent.parent / "BENCH_recovery.json"


def build_server(verify: str = "off", num_devices: int = NUM_DEVICES,
                 shape: tuple = MATRIX_SHAPE) -> PumServer:
    server = PumServer(
        num_devices=num_devices, replication=REPLICATION,
        max_batch=MAX_BATCH, max_wait_ticks=1,
        queue_capacity=WAVES * WAVE_SIZE, verify=verify,
    )
    rng = np.random.default_rng(37)
    server.register_matrix(
        "m", rng.integers(-7, 8, size=shape),
        element_size=ELEMENT_SIZE, input_bits=INPUT_BITS,
    )
    return server


def offered_load(shape: tuple = MATRIX_SHAPE) -> np.ndarray:
    rng = np.random.default_rng(38)
    return rng.integers(
        0, 1 << INPUT_BITS, size=(WAVES, WAVE_SIZE, shape[0])
    )


def drain(server, vectors, injector=None):
    """Run the full open-loop load; returns (seconds, results, heal_stats).

    ``heal_stats`` snapshots the degraded counters at the heal wave, so the
    caller can assert nothing degraded accrues *after* recovery.
    """
    futures = []
    heal_stats = None
    start = time.perf_counter()
    for wave in range(WAVES):
        if injector is not None and wave == KILL_WAVE:
            injector.kill(KILL_DEVICE)
        if injector is not None and wave == HEAL_WAVE:
            injector.heal(KILL_DEVICE)
            heal_stats = (
                server.stats.replica_hits, server.stats.replica_retries
            )
        futures.extend(
            server.submit_batch("m", vectors[wave], input_bits=INPUT_BITS)
        )
        server.tick()
    server.run_until_idle()
    elapsed = time.perf_counter() - start
    responses = [future.result(timeout=0) for future in futures]
    assert all(r.status == "completed" for r in responses)
    results = np.stack([r.result for r in responses])
    return elapsed, results, heal_stats


def measure(faulted: bool):
    vectors = offered_load()
    times, results, final_server, heal_stats = [], None, None, None
    for _ in range(1 + REPEATS):  # first run is warm-up
        server = build_server()
        injector = FaultInjector().attach(server.pool) if faulted else None
        elapsed, results, heal_stats = drain(server, vectors, injector)
        times.append(elapsed)
        final_server = server
    return statistics.median(times[1:]), results, final_server, heal_stats


def test_recovery_benchmark():
    clean_p50, clean_results, clean_server, _ = measure(faulted=False)
    chaos_p50, chaos_results, chaos_server, heal_stats = measure(faulted=True)
    overhead = chaos_p50 / max(clean_p50, 1e-12)
    stats = chaos_server.stats

    # Exact guarantees first: nothing lost, nothing different.
    assert np.array_equal(chaos_results, clean_results)
    assert stats.completed == WAVES * WAVE_SIZE
    assert stats.failed == 0

    # The kill really was exercised ...
    assert stats.device_failures >= 1
    assert stats.replica_retries >= 1
    assert stats.degraded_batches >= 1
    assert clean_server.stats.degraded_batches == 0

    # ... and healing really recovers: no replica traffic after the heal.
    hits_at_heal, retries_at_heal = heal_stats
    assert stats.replica_hits == hits_at_heal, (
        "replicas still serving primary traffic after heal()"
    )
    assert stats.replica_retries == retries_at_heal

    print(
        f"\nrecovery: drain p50 {clean_p50 * 1e3:.2f} ms fault-free -> "
        f"{chaos_p50 * 1e3:.2f} ms with a mid-load kill "
        f"({overhead:.2f}x); failover window: {stats.replica_hits} replica "
        f"hits, {stats.replica_retries} retries, "
        f"{stats.degraded_batches}/{stats.batches} degraded batches"
    )

    payload = {
        "benchmark": "recovery",
        "num_devices": NUM_DEVICES,
        "replication": REPLICATION,
        "waves": WAVES,
        "wave_size": WAVE_SIZE,
        "kill_wave": KILL_WAVE,
        "heal_wave": HEAL_WAVE,
        "fault_free_drain_p50_ms": clean_p50 * 1e3,
        "degraded_drain_p50_ms": chaos_p50 * 1e3,
        "degraded_overhead": overhead,
        "max_degraded_overhead": MAX_DEGRADED_OVERHEAD,
        "replica_hits": stats.replica_hits,
        "replica_retries": stats.replica_retries,
        "device_failures": stats.device_failures,
        "degraded_batches": stats.degraded_batches,
        "batches": stats.batches,
        "replica_hits_after_heal": stats.replica_hits - hits_at_heal,
        "bit_identical": True,
        "lost_requests": 0,
    }
    ARTIFACTS_DIR.mkdir(exist_ok=True)
    (ARTIFACTS_DIR / "recovery.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True)
    )

    if os.environ.get("REPRO_BENCH_RECORD") == "1":
        trajectory = []
        if TRAJECTORY_PATH.exists():
            trajectory = json.loads(TRAJECTORY_PATH.read_text())
        trajectory.append(
            {
                "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
                "fault_free_drain_p50_ms": round(clean_p50 * 1e3, 3),
                "degraded_drain_p50_ms": round(chaos_p50 * 1e3, 3),
                "degraded_overhead": round(overhead, 2),
                "degraded_batches": stats.degraded_batches,
                "replica_hits_after_heal": stats.replica_hits - hits_at_heal,
            }
        )
        TRAJECTORY_PATH.write_text(json.dumps(trajectory, indent=2) + "\n")

    assert overhead <= MAX_DEGRADED_OVERHEAD, (
        f"degraded drain is {overhead:.1f}x the fault-free drain "
        f"(sanity ceiling {MAX_DEGRADED_OVERHEAD}x suggests a retry storm)"
    )


def measure_verify():
    """Best-of-repeats fault-free drain time, verify off vs full.

    The two modes are measured *interleaved* (off, full, off, full, ...)
    so both see the same machine state, and the minimum of each isolates
    the intrinsic cost of the checksum work from scheduler jitter --
    which is what the 1.15x acceptance bound is about.  Returns
    ``{mode: (best_seconds, results, server)}``.
    """
    vectors = offered_load(INTEGRITY_MATRIX_SHAPE)
    modes = ("off", "full")
    times = {mode: [] for mode in modes}
    outcome = {}
    for mode in modes:  # warm-up, unmeasured
        drain(build_server(verify=mode, shape=INTEGRITY_MATRIX_SHAPE), vectors)
    for _ in range(2 * REPEATS):
        for mode in modes:
            server = build_server(verify=mode, shape=INTEGRITY_MATRIX_SHAPE)
            elapsed, results, _ = drain(server, vectors)
            times[mode].append(elapsed)
            outcome[mode] = (results, server)
    return {
        mode: (min(times[mode]),) + outcome[mode] for mode in modes
    }


def measure_rebuild():
    """Median wall-clock of rebuilding a band that lost every replica."""
    times, report = [], None
    for _ in range(1 + REPEATS):  # first run is warm-up
        server = build_server(num_devices=NUM_DEVICES + 1,
                              shape=INTEGRITY_MATRIX_SHAPE)
        allocation = server.allocation_for("m")
        for shard, _ in list(allocation.shards):
            server.pool.mark_device_failed(shard.device_index)
        start = time.perf_counter()
        report = server.pool.rebuild(allocation)
        times.append(time.perf_counter() - start)
        assert report.changed
        assert report.replication == REPLICATION
    return statistics.median(times[1:]), report


def test_integrity_benchmark():
    measured = measure_verify()
    off_p50, off_results, off_server = measured["off"]
    full_p50, full_results, full_server = measured["full"]
    verify_overhead = full_p50 / max(off_p50, 1e-12)
    rebuild_p50, report = measure_rebuild()

    # Verification is transparent on clean traffic: identical payloads,
    # checks actually ran, and nothing fired.
    assert np.array_equal(full_results, off_results)
    assert full_server.stats.integrity_checks >= 1
    assert full_server.stats.corruptions_detected == 0
    assert full_server.stats.reexecutions == 0
    assert full_server.stats.degraded_batches == 0
    assert off_server.stats.integrity_checks == 0

    print(
        f"\nintegrity: best drain {off_p50 * 1e3:.2f} ms verify=off -> "
        f"{full_p50 * 1e3:.2f} ms verify=full ({verify_overhead:.3f}x, "
        f"{full_server.stats.integrity_checks} checks); band rebuild "
        f"p50 {rebuild_p50 * 1e3:.2f} ms "
        f"({len(report.copies_programmed)} copies reprogrammed)"
    )

    payload = {
        "benchmark": "integrity",
        "num_devices": NUM_DEVICES,
        "replication": REPLICATION,
        "matrix_shape": list(INTEGRITY_MATRIX_SHAPE),
        "waves": WAVES,
        "wave_size": WAVE_SIZE,
        "verify_off_drain_ms": off_p50 * 1e3,
        "verify_full_drain_ms": full_p50 * 1e3,
        "verify_overhead": verify_overhead,
        "max_verify_overhead": MAX_VERIFY_OVERHEAD,
        "integrity_checks": full_server.stats.integrity_checks,
        "corruptions_detected": full_server.stats.corruptions_detected,
        "rebuild_p50_ms": rebuild_p50 * 1e3,
        "rebuild_copies_programmed": len(report.copies_programmed),
        "bit_identical": True,
    }
    ARTIFACTS_DIR.mkdir(exist_ok=True)
    (ARTIFACTS_DIR / "integrity.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True)
    )

    if os.environ.get("REPRO_BENCH_RECORD") == "1":
        trajectory = []
        if TRAJECTORY_PATH.exists():
            trajectory = json.loads(TRAJECTORY_PATH.read_text())
        trajectory.append(
            {
                "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
                "verify_overhead": round(verify_overhead, 3),
                "verify_full_drain_ms": round(full_p50 * 1e3, 3),
                "rebuild_ms": round(rebuild_p50 * 1e3, 3),
            }
        )
        TRAJECTORY_PATH.write_text(json.dumps(trajectory, indent=2) + "\n")

    assert verify_overhead <= MAX_VERIFY_OVERHEAD, (
        f"verify='full' drain is {verify_overhead:.2f}x the unverified "
        f"drain (acceptance bound {MAX_VERIFY_OVERHEAD}x)"
    )

"""Degraded-mode recovery benchmark: serving through a device kill.

Drives the same open-loop request mix through two replicated (R=2) servers:
a fault-free control and a chaos run that kills one device mid-load and
heals it a few waves later.  The benchmark records what resilience costs
and how fast the pool returns to primary dispatch:

* **degraded overhead** -- p50 drain wall-clock of the chaos run over the
  control run.  Failover is an in-tick retry (no timeouts, no epochs), so
  the overhead is the cost of re-dispatching the dead device's shards on
  their replicas plus the health bookkeeping;
* **failover window** -- replica hits/retries and degraded batches
  accumulated between kill and heal;
* **recovery** -- after ``heal()`` the pool must dispatch primaries again
  immediately: zero replica hits accrue after the heal wave.

Responses must stay bit-identical to the control run and every future must
resolve as completed -- the same guarantee the tier-1 chaos gate pins in
ticks; this benchmark adds the wall-clock numbers.

Results go to ``benchmarks/artifacts/recovery.json`` on every run; with
``REPRO_BENCH_RECORD=1`` (the CI benchmarks job) the headline numbers are
appended to the ``BENCH_recovery.json`` trajectory at the repo root.  The
correctness assertions are exact; the single timing gate is a generous
sanity bound so the benchmark never flakes on a noisy runner.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from pathlib import Path

import numpy as np

from repro import PumServer
from repro.runtime import FaultInjector

NUM_DEVICES = 3
REPLICATION = 2
MATRIX_SHAPE = (16, 16)
INPUT_BITS = 4
ELEMENT_SIZE = 4
WAVES = 16
WAVE_SIZE = 16
KILL_WAVE = 5
HEAL_WAVE = 11
KILL_DEVICE = 0
MAX_BATCH = 8
REPEATS = 5
#: Generous sanity ceiling on the degraded-run overhead.  Failover re-runs
#: at most the dead device's share of each batch, so the true ratio sits
#: near 1; the gate only has to catch pathological regressions (e.g. an
#: accidental retry storm), not measure precisely on shared CI hardware.
MAX_DEGRADED_OVERHEAD = 25.0

ARTIFACTS_DIR = Path(__file__).parent / "artifacts"
TRAJECTORY_PATH = Path(__file__).parent.parent / "BENCH_recovery.json"


def build_server() -> PumServer:
    server = PumServer(
        num_devices=NUM_DEVICES, replication=REPLICATION,
        max_batch=MAX_BATCH, max_wait_ticks=1,
        queue_capacity=WAVES * WAVE_SIZE,
    )
    rng = np.random.default_rng(37)
    server.register_matrix(
        "m", rng.integers(-7, 8, size=MATRIX_SHAPE),
        element_size=ELEMENT_SIZE, input_bits=INPUT_BITS,
    )
    return server


def offered_load() -> np.ndarray:
    rng = np.random.default_rng(38)
    return rng.integers(
        0, 1 << INPUT_BITS, size=(WAVES, WAVE_SIZE, MATRIX_SHAPE[0])
    )


def drain(server, vectors, injector=None):
    """Run the full open-loop load; returns (seconds, results, heal_stats).

    ``heal_stats`` snapshots the degraded counters at the heal wave, so the
    caller can assert nothing degraded accrues *after* recovery.
    """
    futures = []
    heal_stats = None
    start = time.perf_counter()
    for wave in range(WAVES):
        if injector is not None and wave == KILL_WAVE:
            injector.kill(KILL_DEVICE)
        if injector is not None and wave == HEAL_WAVE:
            injector.heal(KILL_DEVICE)
            heal_stats = (
                server.stats.replica_hits, server.stats.replica_retries
            )
        futures.extend(
            server.submit_batch("m", vectors[wave], input_bits=INPUT_BITS)
        )
        server.tick()
    server.run_until_idle()
    elapsed = time.perf_counter() - start
    responses = [future.result(timeout=0) for future in futures]
    assert all(r.status == "completed" for r in responses)
    results = np.stack([r.result for r in responses])
    return elapsed, results, heal_stats


def measure(faulted: bool):
    vectors = offered_load()
    times, results, final_server, heal_stats = [], None, None, None
    for _ in range(1 + REPEATS):  # first run is warm-up
        server = build_server()
        injector = FaultInjector().attach(server.pool) if faulted else None
        elapsed, results, heal_stats = drain(server, vectors, injector)
        times.append(elapsed)
        final_server = server
    return statistics.median(times[1:]), results, final_server, heal_stats


def test_recovery_benchmark():
    clean_p50, clean_results, clean_server, _ = measure(faulted=False)
    chaos_p50, chaos_results, chaos_server, heal_stats = measure(faulted=True)
    overhead = chaos_p50 / max(clean_p50, 1e-12)
    stats = chaos_server.stats

    # Exact guarantees first: nothing lost, nothing different.
    assert np.array_equal(chaos_results, clean_results)
    assert stats.completed == WAVES * WAVE_SIZE
    assert stats.failed == 0

    # The kill really was exercised ...
    assert stats.device_failures >= 1
    assert stats.replica_retries >= 1
    assert stats.degraded_batches >= 1
    assert clean_server.stats.degraded_batches == 0

    # ... and healing really recovers: no replica traffic after the heal.
    hits_at_heal, retries_at_heal = heal_stats
    assert stats.replica_hits == hits_at_heal, (
        "replicas still serving primary traffic after heal()"
    )
    assert stats.replica_retries == retries_at_heal

    print(
        f"\nrecovery: drain p50 {clean_p50 * 1e3:.2f} ms fault-free -> "
        f"{chaos_p50 * 1e3:.2f} ms with a mid-load kill "
        f"({overhead:.2f}x); failover window: {stats.replica_hits} replica "
        f"hits, {stats.replica_retries} retries, "
        f"{stats.degraded_batches}/{stats.batches} degraded batches"
    )

    payload = {
        "benchmark": "recovery",
        "num_devices": NUM_DEVICES,
        "replication": REPLICATION,
        "waves": WAVES,
        "wave_size": WAVE_SIZE,
        "kill_wave": KILL_WAVE,
        "heal_wave": HEAL_WAVE,
        "fault_free_drain_p50_ms": clean_p50 * 1e3,
        "degraded_drain_p50_ms": chaos_p50 * 1e3,
        "degraded_overhead": overhead,
        "max_degraded_overhead": MAX_DEGRADED_OVERHEAD,
        "replica_hits": stats.replica_hits,
        "replica_retries": stats.replica_retries,
        "device_failures": stats.device_failures,
        "degraded_batches": stats.degraded_batches,
        "batches": stats.batches,
        "replica_hits_after_heal": stats.replica_hits - hits_at_heal,
        "bit_identical": True,
        "lost_requests": 0,
    }
    ARTIFACTS_DIR.mkdir(exist_ok=True)
    (ARTIFACTS_DIR / "recovery.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True)
    )

    if os.environ.get("REPRO_BENCH_RECORD") == "1":
        trajectory = []
        if TRAJECTORY_PATH.exists():
            trajectory = json.loads(TRAJECTORY_PATH.read_text())
        trajectory.append(
            {
                "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
                "fault_free_drain_p50_ms": round(clean_p50 * 1e3, 3),
                "degraded_drain_p50_ms": round(chaos_p50 * 1e3, 3),
                "degraded_overhead": round(overhead, 2),
                "degraded_batches": stats.degraded_batches,
                "replica_hits_after_heal": stats.replica_hits - hits_at_heal,
            }
        )
        TRAJECTORY_PATH.write_text(json.dumps(trajectory, indent=2) + "\n")

    assert overhead <= MAX_DEGRADED_OVERHEAD, (
        f"degraded drain is {overhead:.1f}x the fault-free drain "
        f"(sanity ceiling {MAX_DEGRADED_OVERHEAD}x suggests a retry storm)"
    )

"""Tables 2 and 3: HCT configuration and area/power model."""

from repro.eval import table2_configuration, table3_area_power


def test_table2_configuration(benchmark):
    table = benchmark(table2_configuration)
    print("\nTable 2:", table)
    assert table["dce_num_pipelines"] == 64
    assert table["ace_num_arrays"] == 64


def test_table3_area_power(benchmark):
    table = benchmark(table3_area_power)
    print("\nTable 3:", table)
    assert table["iso_area_hcts"] == {"sar": 1860, "ramp": 1660}
    assert 3.0 < table["chip_capacity_gb"]["sar"] < 5.0

"""Cluster chaos gate: every failure mode at once, zero lost answers.

One open-loop Poisson run absorbs the full chaos menu simultaneously:

* a **seeded transport fault campaign** (drop / duplicate / delay /
  corrupt, from :class:`TransportFaultSchedule` keyed on
  ``REPRO_TEST_SEED``) on the request *and* reply ring of every worker;
* one **induced straggler** -- a worker that keeps heartbeating but
  sleeps through a batch, so only the batch timeout can catch it;
* one **SIGKILL** of a replica mid-load, healed by the supervisor
  (``auto_restart=True``).

The gate is absolute, not statistical: every admitted future resolves
exactly once and ``completed``, the answers are bit-identical to a
fault-free single-process :class:`PumServer` twin (the run is
noise-free, so divergence means the chaos layer corrupted data), the
straggler was hedged rather than declared dead, and the killed worker
came back inside its restart budget.  The p99 latency blip (post-fault
p99 over the fault-free run's p99) is recorded -- and loosely bounded --
as the price of recovery.

Results go to ``benchmarks/artifacts/cluster_chaos.json`` on every run;
with ``REPRO_BENCH_RECORD=1`` (the CI cluster-chaos job, which sweeps
seeds {12345, 1, 31337}) a headline row is appended to the
``BENCH_cluster.json`` trajectory at the repo root.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time
from pathlib import Path

import numpy as np

from repro.core.config import ChipConfig, HctConfig
from repro.errors import AdmissionError
from repro.metrics import percentile
from repro.runtime.cluster import ClusterGateway, TransportFaultSpec
from repro.runtime.pool import DevicePool
from repro.runtime.server import PumServer
from repro.testing import REPRO_TEST_SEED

CPUS = os.cpu_count() or 1

MATRIX_SHAPE = (24, 16)
INPUT_BITS = 4
WAVE_SIZE = 16
WAVES = 12
POISSON_RATE = 600.0  # offered load, requests/second
STRAGGLE_WAVE = 2
STRAGGLE_SECONDS = 0.8
KILL_WAVE = 6
BATCH_TIMEOUT = 0.35
#: Recovery-price ceiling, in absolute terms: the worst recovery chain
#: is deterministic -- a straggle of STRAGGLE_SECONDS, or a batch eating
#: consecutive timeouts with exponential backoff (0.35 + 0.7 + 1.4 s)
#: plus a supervised restart -- so post-fault p99 beyond ~4 s of that
#: envelope means hedging or the supervisor stopped working.  The blip
#: *ratio* against the fault-free twin is recorded but not gated: its
#: denominator is a millisecond-scale clean p99 that swings with host
#: load, which would make a ratio gate flaky.
P99_CEILING_MS = 8_000.0

ARTIFACTS_DIR = Path(__file__).parent / "artifacts"
TRAJECTORY_PATH = Path(__file__).parent.parent / "BENCH_cluster.json"

RNG = np.random.default_rng(41)
MATRIX = RNG.integers(-8, 8, size=MATRIX_SHAPE, dtype=np.int64)


def load():
    rng = np.random.default_rng(46)
    return rng.integers(
        0, 1 << INPUT_BITS,
        size=(WAVES, WAVE_SIZE, MATRIX_SHAPE[0]),
        dtype=np.int64,
    )


def gateway(**kwargs):
    return ClusterGateway(
        num_workers=2, chip="small", noise=None, replication=2,
        max_batch=8, max_wait_ticks=1, inflight_window=256,
        heartbeat_interval=0.02, stop_timeout=8.0, **kwargs
    )


async def submit_with_backpressure(gw, vectors):
    """Submit one wave, waiting out AdmissionError sheds (which includes
    CircuitOpenError -- an open breaker is backpressure, not data loss);
    returns (futures, sheds)."""
    sheds = 0
    while True:
        try:
            return await gw.submit_batch("m", vectors, INPUT_BITS), sheds
        except AdmissionError:
            sheds += 1
            await asyncio.sleep(2e-3)


async def poisson_run(chaos):
    """Open-loop Poisson drive; with ``chaos`` the full menu is applied.

    Returns (responses in submission order, per-wave latencies, sheds,
    stats, faults_injected).
    """
    rng = np.random.default_rng(47)
    waves = load()
    arrivals = np.cumsum(
        rng.exponential(WAVE_SIZE / POISSON_RATE, size=len(waves))
    )
    spec = TransportFaultSpec(
        seed=REPRO_TEST_SEED, num_events=3, horizon_frames=10,
    ) if chaos else None
    knobs = {
        "batch_timeout": BATCH_TIMEOUT,
        "transport_faults": spec,
        "auto_restart": True,
        "restart_budget": 3,
    } if chaos else {}
    async with gateway(**knobs) as gw:
        await gw.register_matrix("m", MATRIX, input_bits=INPUT_BITS)
        straggler = gw.placement_of("m")[0]
        victim = gw.placement_of("m")[1]
        loop = asyncio.get_running_loop()
        latencies = [[] for _ in waves]
        futures = []
        sheds = 0
        start = loop.time()
        for index, (at, wave) in enumerate(zip(arrivals, waves)):
            now = loop.time() - start
            if at > now:
                await asyncio.sleep(at - now)
            if chaos and index == STRAGGLE_WAVE:
                await gw.induce_straggler(
                    straggler, batches=1, seconds=STRAGGLE_SECONDS
                )
            if chaos and index == KILL_WAVE:
                os.kill(gw._workers[victim].process.pid, signal.SIGKILL)
            submitted = loop.time()

            def record(future, submitted=submitted, index=index):
                latencies[index].append(loop.time() - submitted)

            batch, wave_sheds = await submit_with_backpressure(gw, wave)
            sheds += wave_sheds
            for future in batch:
                future.add_done_callback(record)
            futures.extend(batch)
        responses = await asyncio.gather(*futures)
        if chaos:
            # The supervisor must heal the killed replica before we leave.
            deadline = loop.time() + 60
            while gw.stats.supervised_restarts < 1 \
                    or not gw.worker_status()[victim]["alive"]:
                assert loop.time() < deadline, "supervised restart never came"
                await asyncio.sleep(0.02)
        faults = sum(
            worker.requests.fault_injector.faults_injected
            for worker in gw._workers
            if worker.requests.fault_injector is not None
        )
        return responses, latencies, sheds, gw.stats.snapshot(), faults


def single_server_answers(trace):
    pool = DevicePool(
        num_devices=1, config=ChipConfig(hct=HctConfig.small(), num_hcts=3)
    )
    server = PumServer(pool=pool, queue_capacity=4096)
    server.register_matrix("m", MATRIX, input_bits=INPUT_BITS)
    futures = server.submit_batch("m", trace, INPUT_BITS)
    server.run_until_idle()
    return np.stack([f.result().result for f in futures])


# --------------------------------------------------------------------- #
# The gate                                                                #
# --------------------------------------------------------------------- #
def test_cluster_chaos_gate():
    clean_responses, clean_latencies, clean_sheds, clean_stats, _ = \
        asyncio.run(poisson_run(chaos=False))
    chaos_responses, chaos_latencies, chaos_sheds, chaos_stats, faults = \
        asyncio.run(poisson_run(chaos=True))

    # Zero lost futures, zero failures, nothing resolved twice: gather
    # returned exactly one terminal response per admitted request.
    total = WAVES * WAVE_SIZE
    assert len(chaos_responses) == total
    assert all(r.ok for r in chaos_responses), (
        f"{sum(not r.ok for r in chaos_responses)} of {total} requests "
        f"failed under chaos"
    )
    assert chaos_stats["failed"] == 0

    # Bit identity against the fault-free twin *and* the single-process
    # server: chaos may cost latency, never answers.
    order = np.argsort([r.request_id for r in chaos_responses])
    chaos_answers = np.stack([chaos_responses[i].result for i in order])
    clean_order = np.argsort([r.request_id for r in clean_responses])
    clean_answers = np.stack(
        [clean_responses[i].result for i in clean_order]
    )
    local = single_server_answers(load().reshape(total, MATRIX_SHAPE[0]))
    assert np.array_equal(chaos_answers, clean_answers)
    assert np.array_equal(chaos_answers, local)

    # Every chaos ingredient demonstrably happened and was absorbed.
    assert faults >= 1, "the seeded transport campaign never fired"
    assert chaos_stats["batch_timeouts"] >= 1
    assert chaos_stats["hedged_batches"] >= 1
    assert chaos_stats["worker_failures"] >= 1
    assert chaos_stats["supervised_restarts"] >= 1
    assert chaos_stats["retried_batches"] >= 1

    flat_clean = [l for wave in clean_latencies for l in wave]
    post_fault = [
        l for wave in chaos_latencies[STRAGGLE_WAVE:] for l in wave
    ]
    clean_p50 = percentile(flat_clean, 50) * 1e3
    clean_p99 = percentile(flat_clean, 99) * 1e3
    chaos_p99 = percentile(post_fault, 99) * 1e3
    blip = chaos_p99 / max(clean_p99, 1e-12)
    assert chaos_p99 <= P99_CEILING_MS, (
        f"post-fault p99 {chaos_p99:.1f} ms ({blip:.1f}x the clean p99 "
        f"{clean_p99:.1f} ms) exceeds the {P99_CEILING_MS:.0f} ms "
        f"recovery envelope"
    )

    print(
        f"\ncluster chaos (seed {REPRO_TEST_SEED}): {total} requests, "
        f"{faults} transport faults, 1 straggler, 1 SIGKILL -> 0 lost, "
        f"0 failed, bit-identical; clean p50 {clean_p50:.2f} ms / p99 "
        f"{clean_p99:.2f} ms, post-fault p99 {chaos_p99:.2f} ms "
        f"({blip:.2f}x blip); {chaos_stats['batch_timeouts']} timeouts, "
        f"{chaos_stats['hedged_batches']} hedges, "
        f"{chaos_stats['supervised_restarts']} supervised restart(s), "
        f"{chaos_sheds} sheds (clean {clean_sheds})"
    )

    payload = {
        "benchmark": "cluster_chaos",
        "cpus": CPUS,
        "seed": REPRO_TEST_SEED,
        "requests": total,
        "wave_size": WAVE_SIZE,
        "poisson_rate_rps": POISSON_RATE,
        "batch_timeout_s": BATCH_TIMEOUT,
        "straggle_seconds": STRAGGLE_SECONDS,
        "transport_faults_injected": faults,
        "batch_timeouts": chaos_stats["batch_timeouts"],
        "hedged_batches": chaos_stats["hedged_batches"],
        "retried_batches": chaos_stats["retried_batches"],
        "duplicate_replies": chaos_stats["duplicate_replies"],
        "circuit_opens": chaos_stats["circuit_opens"],
        "worker_failures": chaos_stats["worker_failures"],
        "supervised_restarts": chaos_stats["supervised_restarts"],
        "open_loop_sheds": chaos_sheds,
        "clean_p50_latency_ms": clean_p50,
        "clean_p99_latency_ms": clean_p99,
        "post_fault_p99_latency_ms": chaos_p99,
        "p99_blip": blip,
        "p99_ceiling_ms": P99_CEILING_MS,
        "bit_identical": True,
        "lost_requests": 0,
        "failed_requests": chaos_stats["failed"],
    }
    ARTIFACTS_DIR.mkdir(exist_ok=True)
    (ARTIFACTS_DIR / "cluster_chaos.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True)
    )

    if os.environ.get("REPRO_BENCH_RECORD") == "1":
        trajectory = []
        if TRAJECTORY_PATH.exists():
            trajectory = json.loads(TRAJECTORY_PATH.read_text())
        trajectory.append(
            {
                "benchmark": "cluster_chaos",
                "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
                "cpus": CPUS,
                "seed": REPRO_TEST_SEED,
                "transport_faults_injected": faults,
                "batch_timeouts": chaos_stats["batch_timeouts"],
                "hedged_batches": chaos_stats["hedged_batches"],
                "supervised_restarts": chaos_stats["supervised_restarts"],
                "p99_blip": round(blip, 2),
                "post_fault_p99_latency_ms": round(chaos_p99, 3),
            }
        )
        TRAJECTORY_PATH.write_text(json.dumps(trajectory, indent=2) + "\n")

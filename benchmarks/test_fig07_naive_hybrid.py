"""Figure 7: AES-128 throughput of digital, naive hybrid, and analog+CPU PUM."""

from repro.eval import figure07_naive_hybrid


def test_fig07_naive_hybrid(benchmark):
    data = benchmark(figure07_naive_hybrid)
    labels = data["labels"]
    print("\nFigure 7: AES-128 throughput normalised to D (OSCAR)")
    for index, label in enumerate(labels):
        print(f"  {label:<22} OSCAR {data['oscar'][index]:6.2f}   ideal {data['ideal'][index]:6.2f}")
    peak = max(data["oscar"][1:-1])
    assert peak > data["oscar"][0]          # hybrid beats pure digital
    assert peak > data["oscar"][-1]         # hybrid beats analog+CPU

"""Batched execution engine throughput: ``exec_mvm_batch`` vs looped ``exec_mvm``.

The acceptance gate for the batched execution engine: at batch 32 the
batched path must be at least 5x faster in host wall-clock time than 32
sequential single-vector calls, while remaining bit-identical in the
noise-free configuration.  (In practice the vectorised crossbar and
reduction paths land two orders of magnitude above the gate.)
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import DarthPumDevice

BATCH = 32
INPUT_BITS = 8


@pytest.fixture(scope="module")
def served_matrix():
    """A device with one stored 64x64 matrix and a fixed request batch."""
    rng = np.random.default_rng(7)
    device = DarthPumDevice()
    matrix = rng.integers(-100, 100, size=(64, 64))
    allocation = device.set_matrix(matrix, element_size=8, precision=0)
    vectors = rng.integers(0, 256, size=(BATCH, 64))
    return device, allocation, matrix, vectors


def test_batch_is_bit_identical_to_loop(served_matrix):
    device, allocation, matrix, vectors = served_matrix
    looped = np.stack(
        [device.exec_mvm(allocation, v, input_bits=INPUT_BITS) for v in vectors]
    )
    batched = device.exec_mvm_batch(allocation, vectors, input_bits=INPUT_BITS)
    assert np.array_equal(batched, looped)
    assert np.array_equal(batched, vectors @ matrix)


def test_batch_speedup_at_least_5x(served_matrix):
    device, allocation, _, vectors = served_matrix
    # Warm both paths once (lazy pipeline materialisation, numpy caches).
    device.exec_mvm(allocation, vectors[0], input_bits=INPUT_BITS)
    device.exec_mvm_batch(allocation, vectors[:2], input_bits=INPUT_BITS)

    start = time.perf_counter()
    for vector in vectors:
        device.exec_mvm(allocation, vector, input_bits=INPUT_BITS)
    loop_seconds = time.perf_counter() - start

    start = time.perf_counter()
    device.exec_mvm_batch(allocation, vectors, input_bits=INPUT_BITS)
    batch_seconds = time.perf_counter() - start

    speedup = loop_seconds / max(batch_seconds, 1e-12)
    print(f"\nbatch {BATCH}: looped {loop_seconds * 1e3:.1f} ms, "
          f"batched {batch_seconds * 1e3:.1f} ms, speedup {speedup:.0f}x")
    assert speedup >= 5.0


def test_batch_throughput_benchmark(served_matrix, benchmark):
    """Report batched requests/second for the throughput dashboards."""
    device, allocation, _, vectors = served_matrix
    result = benchmark(
        lambda: device.exec_mvm_batch(allocation, vectors, input_bits=INPUT_BITS)
    )
    assert result.shape == (BATCH, 64)

"""Section 7.5: ResNet-20 accuracy under analog non-idealities."""

from repro.eval import section75_accuracy


def test_sec75_accuracy(benchmark):
    result = benchmark.pedantic(section75_accuracy, kwargs={"samples": 16}, rounds=1, iterations=1)
    print("\nSection 7.5 accuracy-under-noise:", result)
    assert result["prediction_agreement"] >= 0.75

"""Figure 13: iso-area throughput normalised to the analog+CPU Baseline."""

from repro.eval import figure13_throughput, format_table


def test_fig13_throughput(benchmark):
    data = benchmark(figure13_throughput)
    print("\n" + format_table(data, title="Figure 13: throughput vs Baseline"))
    assert data["darth_pum"]["AES"] > 25
    assert data["darth_pum"]["GeoMean"] > data["digital_pum"]["GeoMean"]

"""Kernel speedup gate: the vectorized backend vs the step-faithful reference.

The acceptance gate for the vectorized plan interpreter: on the paper's
canonical hot kernel -- a 64x64 matrix MVM at batch 32, 8-bit inputs and
weights -- ``backend="vectorized"`` must be at least 10x faster than
``backend="reference"`` while remaining bit-identical (results and
cost-ledger totals).

The measured numbers are written to
``benchmarks/artifacts/kernel_speedup.json`` (the CI artifact).  When the
``REPRO_BENCH_RECORD=1`` environment variable is set (the CI benchmarks
job does), the headline numbers are also appended to the
``BENCH_kernels.json`` trajectory file at the repo root so they accumulate
across PRs; plain tier-1 runs leave the trajectory untouched.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro import DarthPumDevice

MATRIX_SHAPE = (64, 64)
BATCH = 32
INPUT_BITS = 8
ELEMENT_SIZE = 8
REQUIRED_SPEEDUP = 10.0

ARTIFACTS_DIR = Path(__file__).parent / "artifacts"
TRAJECTORY_PATH = Path(__file__).parent.parent / "BENCH_kernels.json"


def _bench(device, allocation, vectors, backend, repeats=7, loops=5):
    """Best-of-N wall-clock seconds for one batched MVM under ``backend``."""
    device.exec_mvm_batch(allocation, vectors, input_bits=INPUT_BITS, backend=backend)
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(loops):
            result = device.exec_mvm_batch(
                allocation, vectors, input_bits=INPUT_BITS, backend=backend
            )
        best = min(best, (time.perf_counter() - start) / loops)
    return best, result


def test_vectorized_kernel_speedup_gate():
    rng = np.random.default_rng(7)
    matrix = rng.integers(-100, 100, size=MATRIX_SHAPE)
    vectors = rng.integers(0, 2 ** INPUT_BITS, size=(BATCH, MATRIX_SHAPE[0]))

    reference_device = DarthPumDevice()
    reference_allocation = reference_device.set_matrix(
        matrix, element_size=ELEMENT_SIZE, precision=0
    )
    vectorized_device = DarthPumDevice()
    vectorized_allocation = vectorized_device.set_matrix(
        matrix, element_size=ELEMENT_SIZE, precision=0
    )

    reference_seconds, reference_result = _bench(
        reference_device, reference_allocation, vectors, "reference"
    )
    vectorized_seconds, vectorized_result = _bench(
        vectorized_device, vectorized_allocation, vectors, "vectorized"
    )
    speedup = reference_seconds / vectorized_seconds

    # Bit-identical: results and ledger totals.
    assert np.array_equal(vectorized_result, reference_result)
    assert np.array_equal(vectorized_result, vectors @ matrix)
    reference_ledger = reference_device.chip.total_ledger()
    vectorized_ledger = vectorized_device.chip.total_ledger()
    assert reference_ledger.cycles == vectorized_ledger.cycles
    assert reference_ledger.energy_pj == vectorized_ledger.energy_pj

    payload = {
        "benchmark": "kernel_speedup",
        "matrix_shape": list(MATRIX_SHAPE),
        "batch": BATCH,
        "input_bits": INPUT_BITS,
        "element_size": ELEMENT_SIZE,
        "reference_ms": reference_seconds * 1e3,
        "vectorized_ms": vectorized_seconds * 1e3,
        "speedup": speedup,
        "required_speedup": REQUIRED_SPEEDUP,
        "bit_identical": True,
    }
    ARTIFACTS_DIR.mkdir(exist_ok=True)
    (ARTIFACTS_DIR / "kernel_speedup.json").write_text(json.dumps(payload, indent=2))

    # Append the headline numbers to the repo-root trajectory file -- but
    # only when explicitly recording (CI's benchmarks job): otherwise every
    # plain tier-1 run would grow the file without bound.
    if os.environ.get("REPRO_BENCH_RECORD") == "1":
        trajectory = []
        if TRAJECTORY_PATH.exists():
            trajectory = json.loads(TRAJECTORY_PATH.read_text())
        trajectory.append(
            {
                "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
                "reference_ms": round(reference_seconds * 1e3, 3),
                "vectorized_ms": round(vectorized_seconds * 1e3, 3),
                "speedup": round(speedup, 1),
            }
        )
        TRAJECTORY_PATH.write_text(json.dumps(trajectory, indent=2) + "\n")

    assert speedup >= REQUIRED_SPEEDUP, (
        f"vectorized engine is only {speedup:.1f}x faster than the reference "
        f"engine (gate requires >= {REQUIRED_SPEEDUP}x): "
        f"reference {reference_seconds * 1e3:.2f} ms, "
        f"vectorized {vectorized_seconds * 1e3:.3f} ms"
    )

"""Figure 14: AES kernel latency breakdown normalised to Baseline."""

from repro.eval import figure14_aes_breakdown, format_table


def test_fig14_aes_breakdown(benchmark):
    data = benchmark(figure14_aes_breakdown)
    print("\n" + format_table(data, title="Figure 14: AES kernel latency (% of Baseline total)"))
    assert abs(sum(data["baseline"].values()) - 100.0) < 1.0
    assert data["darth_pum"]["MixColumns"] < data["digital_pum"]["MixColumns"]

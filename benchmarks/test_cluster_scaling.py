"""Cluster scaling benchmark: multi-process workers vs the GIL.

Drives an open-loop load generator (Poisson arrivals -- the arrival
process does not slow down when the server does, which is what exposes
queueing) through the cluster gateway and records:

* **throughput scaling** -- aggregate drain throughput of 1 worker vs
  :data:`SCALE_WORKERS` workers on the *noisy* chip preset.  Noise
  modelling is pure-Python per batch, so a single process serializes on
  the GIL no matter how many device threads the pool fans out to;
  worker processes are the only way that workload scales.  The >= 2x
  gate (:data:`SCALE_GATE`) applies on runners with at least
  :data:`SCALE_WORKERS` usable cores; on smaller machines (the 2x is
  physically impossible on one core) the gate degrades to a
  transport-overhead sanity floor -- the artifact always records the
  core count alongside the numbers so trajectories compare like with
  like.
* **latency under offered load** -- p50/p99 wall-clock request latency
  at a fixed Poisson rate, plus the shed count (open-loop backpressure
  reaching the caller).
* **chaos recovery** -- the same Poisson run with one of two replicated
  workers SIGKILLed mid-load: every future must resolve completed (the
  gateway retries stranded batches on the surviving replica), and the
  artifact records the recovery blip (post-kill p99 vs fault-free p99)
  and the retry counters.
* **bit identity** -- a noise-free trace answered by the gateway must
  equal the single-process :class:`PumServer` answer bit for bit.

Results go to ``benchmarks/artifacts/cluster.json`` on every run; with
``REPRO_BENCH_RECORD=1`` (the CI cluster job) the headline numbers are
appended to the ``BENCH_cluster.json`` trajectory at the repo root.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import statistics
import time
from pathlib import Path

import numpy as np

from repro.core.config import ChipConfig, HctConfig
from repro.errors import AdmissionError
from repro.metrics import percentile
from repro.runtime.cluster import ClusterGateway
from repro.runtime.pool import DevicePool
from repro.runtime.server import PumServer

CPUS = os.cpu_count() or 1
SCALE_WORKERS = 4
#: The acceptance gate: >= 2x aggregate throughput going 1 -> 4 workers
#: on the GIL-bound noisy workload -- but only where the hardware can
#: physically deliver it.  A 4-process cluster on a single core can at
#: best tie the single worker, so there the gate is a sanity floor
#: catching transport pathologies (a healthy shm transport costs far
#: less than 4x).
SCALE_GATE = 2.0 if CPUS >= SCALE_WORKERS else 0.25

MATRIX_SHAPE = (24, 16)
INPUT_BITS = 4
DRAIN_REQUESTS = 512
WAVE_SIZE = 16
REPEATS = 3
POISSON_REQUESTS = 256
POISSON_RATE = 1200.0  # offered load, requests/second
KILL_WAVE = 4

ARTIFACTS_DIR = Path(__file__).parent / "artifacts"
TRAJECTORY_PATH = Path(__file__).parent.parent / "BENCH_cluster.json"

RNG = np.random.default_rng(41)
MATRIX = RNG.integers(-8, 8, size=MATRIX_SHAPE, dtype=np.int64)


def gateway(num_workers, **kwargs):
    kwargs.setdefault("chip", "small")
    kwargs.setdefault("noise", "paper_default")
    kwargs.setdefault("max_batch", 8)
    kwargs.setdefault("max_wait_ticks", 1)
    kwargs.setdefault("inflight_window", 256)
    return ClusterGateway(num_workers=num_workers, **kwargs)


def load(requests, seed):
    rng = np.random.default_rng(seed)
    return rng.integers(
        0, 1 << INPUT_BITS,
        size=(requests // WAVE_SIZE, WAVE_SIZE, MATRIX_SHAPE[0]),
        dtype=np.int64,
    )


async def submit_with_backpressure(gw, name, vectors):
    """Submit one wave, waiting out AdmissionError sheds; returns
    (futures, sheds)."""
    sheds = 0
    while True:
        try:
            return await gw.submit_batch(name, vectors, INPUT_BITS), sheds
        except AdmissionError:
            sheds += 1
            await asyncio.sleep(2e-4)


# --------------------------------------------------------------------- #
# Throughput scaling                                                      #
# --------------------------------------------------------------------- #
async def drain_throughput(num_workers):
    """Best closed-loop drain throughput (requests/second) of a config."""
    vectors = load(DRAIN_REQUESTS, seed=42)
    async with gateway(num_workers, replication=1) as gw:
        await gw.register_matrix("m", MATRIX, input_bits=INPUT_BITS)
        rates = []
        for _ in range(1 + REPEATS):  # first drain is warm-up
            futures = []
            start = time.perf_counter()
            for wave in vectors:
                batch, _ = await submit_with_backpressure(gw, "m", wave)
                futures.extend(batch)
            responses = await asyncio.gather(*futures)
            elapsed = time.perf_counter() - start
            assert all(r.ok for r in responses)
            rates.append(DRAIN_REQUESTS / elapsed)
        return statistics.median(rates[1:])


# --------------------------------------------------------------------- #
# Open-loop Poisson load                                                  #
# --------------------------------------------------------------------- #
async def poisson_run(kill=False):
    """Open-loop Poisson drive; returns (latencies by wave, sheds, stats).

    Wave arrival times are drawn up front from an exponential
    inter-arrival distribution and never adjusted -- the generator keeps
    offering load even when the cluster falls behind, so the latency
    percentiles include queueing delay, not just service time.
    """
    rng = np.random.default_rng(43)
    waves = load(POISSON_REQUESTS, seed=44)
    arrivals = np.cumsum(
        rng.exponential(WAVE_SIZE / POISSON_RATE, size=len(waves))
    )
    async with gateway(
        2, replication=2, heartbeat_interval=0.02
    ) as gw:
        await gw.register_matrix("m", MATRIX, input_bits=INPUT_BITS)
        loop = asyncio.get_running_loop()
        latencies = [[] for _ in waves]
        futures = []
        sheds = 0
        start = loop.time()
        for index, (at, wave) in enumerate(zip(arrivals, waves)):
            now = loop.time() - start
            if at > now:
                await asyncio.sleep(at - now)
            submitted = loop.time()

            def record(future, submitted=submitted, index=index):
                latencies[index].append(loop.time() - submitted)

            batch, wave_sheds = await submit_with_backpressure(gw, "m", wave)
            sheds += wave_sheds
            for future in batch:
                future.add_done_callback(record)
            futures.extend(batch)
            if kill and index == KILL_WAVE:
                victim = gw.placement_of("m")[0]
                os.kill(gw._workers[victim].process.pid, signal.SIGKILL)
        responses = await asyncio.gather(*futures)
        assert len(responses) == POISSON_REQUESTS  # no future lost
        assert all(r.ok for r in responses), (
            f"{sum(not r.ok for r in responses)} requests did not complete"
        )
        return latencies, sheds, gw.stats.snapshot()


# --------------------------------------------------------------------- #
# Bit identity                                                            #
# --------------------------------------------------------------------- #
async def cluster_answers(trace):
    async with gateway(2, replication=2, noise=None) as gw:
        await gw.register_matrix("m", MATRIX, input_bits=INPUT_BITS)
        responses = await asyncio.gather(
            *await gw.submit_batch("m", trace, INPUT_BITS)
        )
        assert all(r.ok for r in responses)
        return np.stack([r.result for r in responses])


def single_server_answers(trace):
    pool = DevicePool(
        num_devices=1, config=ChipConfig(hct=HctConfig.small(), num_hcts=3)
    )
    server = PumServer(pool=pool, queue_capacity=4096)
    server.register_matrix("m", MATRIX, input_bits=INPUT_BITS)
    futures = server.submit_batch("m", trace, INPUT_BITS)
    server.run_until_idle()
    return np.stack([f.result().result for f in futures])


# --------------------------------------------------------------------- #
# The benchmark                                                           #
# --------------------------------------------------------------------- #
def test_cluster_scaling_benchmark():
    trace = load(WAVE_SIZE, seed=45)[0]
    identical = np.array_equal(
        asyncio.run(cluster_answers(trace)), single_server_answers(trace)
    )
    assert identical, "gateway answers diverged from the single server"

    single = asyncio.run(drain_throughput(1))
    scaled = asyncio.run(drain_throughput(SCALE_WORKERS))
    scaling = scaled / max(single, 1e-12)

    clean_latencies, clean_sheds, clean_stats = asyncio.run(
        poisson_run(kill=False)
    )
    chaos_latencies, chaos_sheds, chaos_stats = asyncio.run(
        poisson_run(kill=True)
    )

    flat_clean = [l for wave in clean_latencies for l in wave]
    post_kill = [
        l for wave in chaos_latencies[KILL_WAVE:] for l in wave
    ]
    clean_p50 = percentile(flat_clean, 50) * 1e3
    clean_p99 = percentile(flat_clean, 99) * 1e3
    chaos_p99 = percentile(post_kill, 99) * 1e3
    blip = chaos_p99 / max(clean_p99, 1e-12)

    assert chaos_stats["worker_failures"] == 1
    assert chaos_stats["retried_batches"] >= 1
    assert chaos_stats["failed"] == 0

    print(
        f"\ncluster: {single:.0f} req/s x1 worker -> {scaled:.0f} req/s "
        f"x{SCALE_WORKERS} workers ({scaling:.2f}x on {CPUS} cpus, gate "
        f">= {SCALE_GATE}x); open-loop p50 {clean_p50:.2f} ms / p99 "
        f"{clean_p99:.2f} ms at {POISSON_RATE:.0f} req/s "
        f"({clean_sheds} sheds); kill blip p99 {chaos_p99:.2f} ms "
        f"({blip:.2f}x), {chaos_stats['retried_batches']} batches retried"
    )

    payload = {
        "benchmark": "cluster_scaling",
        "cpus": CPUS,
        "scale_workers": SCALE_WORKERS,
        "requests": DRAIN_REQUESTS,
        "wave_size": WAVE_SIZE,
        "noise": "paper_default",
        "throughput_1_worker_rps": single,
        f"throughput_{SCALE_WORKERS}_workers_rps": scaled,
        "throughput_scaling": scaling,
        "scaling_gate": SCALE_GATE,
        "poisson_rate_rps": POISSON_RATE,
        "poisson_requests": POISSON_REQUESTS,
        "p50_latency_ms": clean_p50,
        "p99_latency_ms": clean_p99,
        "open_loop_sheds": clean_sheds,
        "chaos_post_kill_p99_ms": chaos_p99,
        "chaos_recovery_blip": blip,
        "chaos_sheds": chaos_sheds,
        "chaos_retried_batches": chaos_stats["retried_batches"],
        "chaos_worker_failures": chaos_stats["worker_failures"],
        "chaos_failed_requests": chaos_stats["failed"],
        "bit_identical": bool(identical),
        "lost_requests": 0,
    }
    ARTIFACTS_DIR.mkdir(exist_ok=True)
    (ARTIFACTS_DIR / "cluster.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True)
    )

    if os.environ.get("REPRO_BENCH_RECORD") == "1":
        trajectory = []
        if TRAJECTORY_PATH.exists():
            trajectory = json.loads(TRAJECTORY_PATH.read_text())
        trajectory.append(
            {
                "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
                "cpus": CPUS,
                "throughput_1_worker_rps": round(single, 1),
                f"throughput_{SCALE_WORKERS}_workers_rps": round(scaled, 1),
                "throughput_scaling": round(scaling, 3),
                "p50_latency_ms": round(clean_p50, 3),
                "p99_latency_ms": round(clean_p99, 3),
                "chaos_recovery_blip": round(blip, 2),
                "chaos_retried_batches": chaos_stats["retried_batches"],
            }
        )
        TRAJECTORY_PATH.write_text(json.dumps(trajectory, indent=2) + "\n")

    assert scaling >= SCALE_GATE, (
        f"1 -> {SCALE_WORKERS} workers scaled {scaling:.2f}x on {CPUS} "
        f"cpus (gate {SCALE_GATE}x)"
    )

"""Shared fixtures for the benchmark harness (one benchmark per table/figure)."""

from __future__ import annotations

import pytest


def pytest_collection_modifyitems(items):
    """Keep benchmarks in figure/table order for readable reports."""
    items.sort(key=lambda item: item.nodeid)


@pytest.fixture(scope="session")
def profiles():
    """Workload profiles shared by every figure benchmark."""
    from repro.eval import workload_profiles

    return workload_profiles()

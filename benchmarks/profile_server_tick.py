"""cProfile the PumServer tick loop at serving depth (``make profile-server``).

Drives the same multi-tenant mix as ``benchmarks/test_serving_latency.py``
-- waves of bulk-admitted requests over several registered matrices,
coalesced and drained by the deterministic tick loop -- under
:mod:`cProfile`, and prints the top-25 functions by cumulative time.  This
is the profile-guided loop behind the bulk-ingress fast path: whatever tops
this list is the next scheduler optimisation target.

Usage::

    make profile-server
    # or directly:
    PYTHONPATH=src python benchmarks/profile_server_tick.py [num_waves]
"""

from __future__ import annotations

import cProfile
import pstats
import sys

import numpy as np

from repro import PumServer

QUEUED = 256
NUM_MATRICES = 8
REQUESTS_PER_MATRIX = QUEUED // NUM_MATRICES
MATRIX_SHAPE = (16, 16)
INPUT_BITS = 4
ELEMENT_SIZE = 4
MAX_BATCH = 32


def run_tick_loop(num_waves: int = 20) -> None:
    """Serve ``num_waves`` full 256-request waves through the tick loop."""
    rng = np.random.default_rng(11)
    matrices = [
        rng.integers(-7, 8, size=MATRIX_SHAPE) for _ in range(NUM_MATRICES)
    ]
    vectors = rng.integers(
        0, 1 << INPUT_BITS,
        size=(NUM_MATRICES, REQUESTS_PER_MATRIX, MATRIX_SHAPE[0]),
    )
    server = PumServer(
        num_devices=2, max_batch=MAX_BATCH, max_wait_ticks=4,
        queue_capacity=QUEUED,
    )
    for index, matrix in enumerate(matrices):
        server.register_matrix(
            f"m{index}", matrix, element_size=ELEMENT_SIZE,
            input_bits=INPUT_BITS,
        )
    for _ in range(num_waves):
        futures = [
            server.submit_batch(f"m{i}", vectors[i], input_bits=INPUT_BITS)
            for i in range(NUM_MATRICES)
        ]
        server.run_until_idle()
        assert all(f.result().ok for group in futures for f in group)
    assert server.queue_scans() == 0  # the tick loop never scans the queue


def main() -> None:
    num_waves = int(sys.argv[1]) if len(sys.argv) > 1 else 20
    profiler = cProfile.Profile()
    profiler.enable()
    run_tick_loop(num_waves)
    profiler.disable()

    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    print(f"# top-25 cumulative hot spots ({num_waves} waves x {QUEUED} requests)")
    stats.print_stats(25)


if __name__ == "__main__":
    main()

"""Figure 17: SAR vs ramp ADC throughput and energy for DARTH-PUM."""

from repro.eval import figure17_adc_comparison, format_table


def test_fig17_adc_comparison(benchmark):
    data = benchmark(figure17_adc_comparison)
    print("\n" + format_table(data["throughput"], title="Figure 17a: throughput vs Baseline"))
    print("\n" + format_table(data["energy"], title="Figure 17b: energy savings vs Baseline"))
    sar = data["throughput"]["darth_pum_sar"]["GeoMean"]
    ramp = data["throughput"]["darth_pum_ramp"]["GeoMean"]
    assert sar > ramp                                       # SAR wins overall
    assert data["throughput"]["darth_pum_ramp"]["AES"] >= \
        0.99 * data["throughput"]["darth_pum_sar"]["AES"]   # except for AES

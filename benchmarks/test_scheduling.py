"""Cost-aware scheduling gate: predicted-finish-time dispatch vs static knobs.

The static knob pair (``max_batch`` / ``max_wait_ticks``) ages every group
out on the same clock regardless of what the requests cost or when they are
due: under an open-loop mix of tight-deadline (``slo="interactive"``) and
deadline-free (``slo="batch"``) traffic, a wait bound tuned for batch fill
sheds the interactive riders before their groups ever age out.  The
cost-aware policy reads the same queue but asks the cached
:class:`~repro.plan.ir.PlanCostModel` what the pending batch would cost and
dispatches the moment the tightest deadline's slack falls inside the
predicted batch latency (plus margin) -- so the *same knobs* serve the
tight riders in time and stop over-holding converged batches.

This gate drives one deterministic open-loop trace -- :data:`TICKS` ticks,
:data:`ARRIVALS_PER_TICK` requests per tick spread round-robin over
:data:`NUM_MATRICES` matrices, alternating interactive/batch SLO classes --
through three servers in lockstep (identical submission sequences, same
knobs):

* legacy construction: ``PumServer(max_batch=..., max_wait_ticks=...)``;
* ``scheduling=StaticBatchingPolicy(...)`` -- must be **bit-identical** to
  the legacy server (responses, sheds, ledgers, queue scans): the policy
  surface is a refactor of the knob pair, not a behaviour change;
* ``scheduling=CostAwarePolicy(...)`` with the *same* ``max_batch`` /
  ``max_wait_ticks`` -- must beat the static servers on **both** p99
  latency and deadline-shed count at the identical offered load.

The measured numbers are written to
``benchmarks/artifacts/scheduling.json``; when ``REPRO_BENCH_RECORD=1``
(the CI benchmarks job) the headline numbers are also appended to the
``BENCH_scheduling.json`` trajectory at the repo root.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro import CostAwarePolicy, PumServer, StaticBatchingPolicy

TICKS = 160
NUM_MATRICES = 4
ARRIVALS_PER_TICK = 8  # across all matrices, round-robin
MATRIX_SHAPE = (16, 16)
INPUT_BITS = 3
MAX_BATCH = 32
MAX_WAIT_TICKS = 6

ARTIFACTS_DIR = Path(__file__).parent / "artifacts"
TRAJECTORY_PATH = Path(__file__).parent.parent / "BENCH_scheduling.json"


def offered_load():
    """The fixed open-loop trace: ``trace[tick] = [(name, vector, slo)]``."""
    rng = np.random.default_rng(41)
    matrices = [
        rng.integers(-7, 8, size=MATRIX_SHAPE) for _ in range(NUM_MATRICES)
    ]
    trace = []
    request_index = 0
    for _ in range(TICKS):
        arrivals = []
        for _ in range(ARRIVALS_PER_TICK):
            name = f"m{request_index % NUM_MATRICES}"
            vector = rng.integers(0, 1 << INPUT_BITS, size=MATRIX_SHAPE[0])
            slo = "interactive" if request_index % 2 == 0 else "batch"
            arrivals.append((name, vector, slo))
            request_index += 1
        trace.append(arrivals)
    return matrices, trace


def build_server(matrices, **kwargs):
    server = PumServer(num_devices=2, queue_capacity=4096, **kwargs)
    for index, matrix in enumerate(matrices):
        server.register_matrix(f"m{index}", matrix, input_bits=INPUT_BITS)
    return server


def drive(server, trace):
    """Run the open-loop trace: submit each tick's arrivals, then tick.

    Returns ``(futures, seconds)``; the queue is fully drained before
    returning, so every future resolved to a completion or a shed.
    """
    futures = []
    start = time.perf_counter()
    for arrivals in trace:
        for name, vector, slo in arrivals:
            futures.append(
                server.submit(name, vector, input_bits=INPUT_BITS, slo=slo)
            )
        server.tick()
    server.run_until_idle()
    return futures, time.perf_counter() - start


def outcome(server, futures):
    """Per-server scorecard: p99 latency, sheds, and the response stream."""
    responses = [future.result() for future in futures]
    return {
        "p99_ticks": server.stats.latency_percentile(99),
        "p50_ticks": server.stats.latency_percentile(50),
        "sheds": server.stats.shed,
        "completed": server.stats.completed,
        "mean_batch_fill": server.stats.summary()["mean_batch_fill"],
        "responses": responses,
    }


def test_cost_aware_scheduling_gate():
    matrices, trace = offered_load()

    legacy = build_server(
        matrices, max_batch=MAX_BATCH, max_wait_ticks=MAX_WAIT_TICKS
    )
    static = build_server(
        matrices,
        scheduling=StaticBatchingPolicy(
            max_batch=MAX_BATCH, max_wait_ticks=MAX_WAIT_TICKS
        ),
    )
    cost = build_server(
        matrices,
        scheduling=CostAwarePolicy(
            max_batch=MAX_BATCH, max_wait_ticks=MAX_WAIT_TICKS
        ),
    )

    legacy_futures, legacy_seconds = drive(legacy, trace)
    static_futures, static_seconds = drive(static, trace)
    cost_futures, cost_seconds = drive(cost, trace)

    legacy_out = outcome(legacy, legacy_futures)
    static_out = outcome(static, static_futures)
    cost_out = outcome(cost, cost_futures)

    # --- satellite gate: static-via-policy is bit-identical to legacy --- #
    assert len(static_out["responses"]) == len(legacy_out["responses"])
    for ours, theirs in zip(static_out["responses"], legacy_out["responses"]):
        assert ours.status == theirs.status
        assert ours.completion_tick == theirs.completion_tick
        if ours.result is None:
            assert theirs.result is None
        else:
            assert np.array_equal(ours.result, theirs.result)
    static_ledger = static.pool.total_ledger()
    legacy_ledger = legacy.pool.total_ledger()
    assert static_ledger.cycles == legacy_ledger.cycles
    assert static_ledger.energy_pj == legacy_ledger.energy_pj
    assert static_ledger.cycle_breakdown == legacy_ledger.cycle_breakdown
    assert static.queue_scans() == legacy.queue_scans()

    # --- correctness: every completed response is the exact product --- #
    checked = 0
    for future, (name, vector, _) in zip(
        cost_futures, [a for arrivals in trace for a in arrivals]
    ):
        response = future.result()
        if response.ok:
            matrix = matrices[int(name[1:])]
            assert np.array_equal(response.result, vector @ matrix)
            checked += 1
    assert checked == cost_out["completed"]

    # --- the headline gate: same knobs, same load, better outcomes --- #
    print(
        f"\nopen-loop {TICKS} ticks x {ARRIVALS_PER_TICK}/tick over "
        f"{NUM_MATRICES} matrices: p99 {static_out['p99_ticks']:.1f} -> "
        f"{cost_out['p99_ticks']:.1f} ticks, sheds {static_out['sheds']} -> "
        f"{cost_out['sheds']}, mean fill {static_out['mean_batch_fill']:.1f} "
        f"-> {cost_out['mean_batch_fill']:.1f}"
    )

    payload = {
        "benchmark": "scheduling",
        "ticks": TICKS,
        "arrivals_per_tick": ARRIVALS_PER_TICK,
        "num_matrices": NUM_MATRICES,
        "max_batch": MAX_BATCH,
        "max_wait_ticks": MAX_WAIT_TICKS,
        "input_bits": INPUT_BITS,
        "static_p99_ticks": static_out["p99_ticks"],
        "cost_aware_p99_ticks": cost_out["p99_ticks"],
        "static_p50_ticks": static_out["p50_ticks"],
        "cost_aware_p50_ticks": cost_out["p50_ticks"],
        "static_sheds": static_out["sheds"],
        "cost_aware_sheds": cost_out["sheds"],
        "static_completed": static_out["completed"],
        "cost_aware_completed": cost_out["completed"],
        "static_mean_batch_fill": static_out["mean_batch_fill"],
        "cost_aware_mean_batch_fill": cost_out["mean_batch_fill"],
        "static_drain_seconds": static_seconds,
        "cost_aware_drain_seconds": cost_seconds,
        "legacy_drain_seconds": legacy_seconds,
        "bit_identical_static_vs_legacy": True,
    }
    ARTIFACTS_DIR.mkdir(exist_ok=True)
    (ARTIFACTS_DIR / "scheduling.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True)
    )

    if os.environ.get("REPRO_BENCH_RECORD") == "1":
        trajectory = []
        if TRAJECTORY_PATH.exists():
            trajectory = json.loads(TRAJECTORY_PATH.read_text())
        trajectory.append(
            {
                "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
                "static_p99_ticks": round(static_out["p99_ticks"], 2),
                "cost_aware_p99_ticks": round(cost_out["p99_ticks"], 2),
                "static_sheds": static_out["sheds"],
                "cost_aware_sheds": cost_out["sheds"],
            }
        )
        TRAJECTORY_PATH.write_text(json.dumps(trajectory, indent=2) + "\n")

    # The static wait bound really is mis-tuned for the interactive class
    # on this trace (the comparison is not vacuous)...
    assert static_out["sheds"] > 0
    # ...and the cost-aware policy, with the *same* knobs, beats it on both
    # axes at equal offered load.
    assert cost_out["p99_ticks"] < static_out["p99_ticks"], (
        f"cost-aware p99 {cost_out['p99_ticks']:.1f} is not below static "
        f"p99 {static_out['p99_ticks']:.1f}"
    )
    assert cost_out["sheds"] < static_out["sheds"], (
        f"cost-aware shed {cost_out['sheds']} requests, static shed "
        f"{static_out['sheds']}"
    )

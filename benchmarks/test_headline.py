"""Headline results: the abstract's speedups and energy savings vs Baseline."""

from repro.eval import headline_results


def test_headline(benchmark):
    results = benchmark(headline_results)
    print("\nHeadline speedups (paper: AES 59.4x, ResNet-20 14.8x, LLMEnc 40.8x):")
    print("  measured:", {k: round(v, 1) for k, v in results["speedup"].items()})
    print("Headline energy savings (paper: 39.6x, 51.2x, 110.7x):")
    print("  measured:", {k: round(v, 1) for k, v in results["energy_savings"].items()})
    for workload, paper_value in results["paper_speedup"].items():
        measured = results["speedup"][workload]
        assert paper_value / 2 < measured < paper_value * 2

"""Serving-latency gate: the bulk-ingress fast path vs the pre-rework path.

With the compute kernel ~30x faster than the reference walk and all planning
hoisted to registration time, end-to-end serving latency is dominated by
per-request Python overhead in the scheduler: O(queue) readiness scans,
one-request-at-a-time admission, and ``np.stack`` batch assembly.  This gate
pins the rework of that path.  It drives an identical multi-tenant workload
-- :data:`QUEUED` single-vector requests spread over :data:`NUM_MATRICES`
registered matrices -- through two servers:

* :class:`PrePrServer`, an executable record of the previous serving hot
  path: flat-list queue (full-queue scans per readiness check), one
  ``submit()`` per request, ``np.stack`` batch assembly, and per-batch
  energy deltas read through a full ledger merge including the chip slot
  scan;
* the stock :class:`~repro.runtime.server.PumServer`: bulk ``submit_batch``
  admission (one validation pass per wave), the indexed queue (O(ready
  work) ticks), zero-copy batch assembly, and breakdown-free energy totals.

Both servers dispatch byte-identical batches to the same backend, so the
kernel-execution time inside ``DevicePool.exec_mvm_batch`` is common-mode;
the gate therefore measures the **tick-loop (scheduler) time** -- drain
wall-clock minus the execution time recorded by an identical shim around
the pool call on both servers -- and requires the fast path's p50 at 256
queued requests to be at least :data:`REQUIRED_SPEEDUP` times better (the
end-to-end drain speedup is also recorded and sanity-gated).  Responses
and pool ledgers must be **bit-identical** between the two paths, and the
indexed queue's ``queue_scans()`` must stay flat (zero) on the tick loop
regardless of depth.

The measured numbers are written to
``benchmarks/artifacts/serving_latency.json``; when ``REPRO_BENCH_RECORD=1``
(the CI benchmarks job) the headline numbers are also appended to the
``BENCH_serving.json`` trajectory at the repo root, alongside the kernel
trajectory.
"""

from __future__ import annotations

import json
import os
import statistics
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro import PumServer
from repro.metrics import merge_ledgers
from repro.runtime.server import ServerFuture

QUEUED = 256
NUM_MATRICES = 8
REQUESTS_PER_MATRIX = QUEUED // NUM_MATRICES
MAX_BATCH = 32
MATRIX_SHAPE = (16, 16)
INPUT_BITS = 4
ELEMENT_SIZE = 4
REPEATS = 11
REQUIRED_SPEEDUP = 3.0
#: Sanity floor on the end-to-end drain speedup (the headline gate is on
#: the scheduler loop; end to end includes the shared kernel execution).
REQUIRED_END_TO_END = 1.5

ARTIFACTS_DIR = Path(__file__).parent / "artifacts"
TRAJECTORY_PATH = Path(__file__).parent.parent / "BENCH_serving.json"


class EagerFuture(ServerFuture):
    """The pre-rework future: a ``threading.Event`` allocated per request
    (and fired on every resolution) instead of the fast path's lazy event."""

    __slots__ = ()

    def __init__(self, request_id: int) -> None:
        super().__init__(request_id)
        self._event = threading.Event()


class PrePrServer(PumServer):
    """Executable record of the pre-rework serving hot path (the baseline).

    Scheduling semantics are identical -- same dispatch order, same
    responses, same ledger charges -- only the data structures differ, which
    is exactly what makes the measured speedup attributable to the fast
    path.
    """

    future_factory = EagerFuture

    def __init__(self, **kwargs) -> None:
        super().__init__(queue="flat", **kwargs)

    def _assemble_batch(self, allocation, input_bits, batch):
        # Pre-rework assembly: one fresh stacked copy per dispatched batch.
        return np.stack([request.vector for request in batch])

    def _energy_total(self) -> float:
        # Pre-rework accounting: a full ledger merge (breakdown dicts and
        # all), reached through the chip's ~1860-entry slot scan.
        total = 0.0
        for device in self.pool.devices:
            ledgers = [device.chip.ledger]
            ledgers.extend(
                slot.tile.ledger
                for slot in device.chip._slots.values()
                if slot.tile is not None
            )
            total += merge_ledgers(ledgers).energy_pj
        return total


@pytest.fixture(scope="module")
def offered_load():
    """A fixed multi-tenant request mix: 8 matrices x 32 requests each."""
    rng = np.random.default_rng(37)
    matrices = [
        rng.integers(-7, 8, size=MATRIX_SHAPE) for _ in range(NUM_MATRICES)
    ]
    vectors = rng.integers(
        0, 1 << INPUT_BITS,
        size=(NUM_MATRICES, REQUESTS_PER_MATRIX, MATRIX_SHAPE[0]),
    )
    return matrices, vectors


def build_server(cls, matrices):
    server = cls(
        num_devices=2, max_batch=MAX_BATCH, max_wait_ticks=4,
        queue_capacity=QUEUED,
    )
    for index, matrix in enumerate(matrices):
        server.register_matrix(
            f"m{index}", matrix, element_size=ELEMENT_SIZE,
            input_bits=INPUT_BITS,
        )
    return server


class ExecTimer:
    """Shim around ``pool.exec_mvm_batch`` accumulating pure execution time.

    Installed identically on both servers, so subtracting its reading from
    the drain wall-clock isolates the tick-loop (scheduler) time the gate
    is about -- the kernel work dispatched is byte-identical on both paths.
    """

    def __init__(self, pool) -> None:
        self.seconds = 0.0
        self._inner = pool.exec_mvm_batch
        pool.exec_mvm_batch = self._timed

    def _timed(self, *args, **kwargs):
        start = time.perf_counter()
        try:
            return self._inner(*args, **kwargs)
        finally:
            self.seconds += time.perf_counter() - start


def drain_once(server, timer, vectors, bulk):
    """Enqueue the full 256-request mix and run the tick loop until idle.

    Returns ``(total_seconds, scheduler_seconds, results)`` where the
    scheduler time is the drain minus the execution time seen by ``timer``.
    """
    exec_before = timer.seconds
    start = time.perf_counter()
    if bulk:
        futures = [
            server.submit_batch(f"m{i}", vectors[i], input_bits=INPUT_BITS)
            for i in range(NUM_MATRICES)
        ]
    else:
        futures = [
            [server.submit(f"m{i}", v, input_bits=INPUT_BITS) for v in vectors[i]]
            for i in range(NUM_MATRICES)
        ]
    server.run_until_idle()
    elapsed = time.perf_counter() - start
    results = [
        np.stack([future.result().result for future in group])
        for group in futures
    ]
    return elapsed, elapsed - (timer.seconds - exec_before), results


def measure(cls, matrices, vectors, bulk):
    """p50 total and scheduler-loop drain latency over REPEATS runs."""
    server = build_server(cls, matrices)
    timer = ExecTimer(server.pool)
    drain_once(server, timer, vectors, bulk)  # warm-up
    totals = []
    scheduler = []
    results = None
    for _ in range(REPEATS):
        elapsed, tick_loop, results = drain_once(server, timer, vectors, bulk)
        totals.append(elapsed)
        scheduler.append(tick_loop)
    return statistics.median(totals), statistics.median(scheduler), results, server


def test_serving_latency_gate(offered_load):
    matrices, vectors = offered_load
    legacy_total, legacy_p50, legacy_results, legacy_server = measure(
        PrePrServer, matrices, vectors, bulk=False
    )
    fast_total, fast_p50, fast_results, fast_server = measure(
        PumServer, matrices, vectors, bulk=True
    )
    speedup = legacy_p50 / max(fast_p50, 1e-12)
    end_to_end = legacy_total / max(fast_total, 1e-12)

    # Bit-identical responses: both paths dispatch the same batches in the
    # same order and the results match the exact integer product.
    for index in range(NUM_MATRICES):
        assert np.array_equal(fast_results[index], legacy_results[index])
        assert np.array_equal(
            fast_results[index], vectors[index] @ matrices[index]
        )

    # Bit-identical ledgers: same charges, same float accumulation order.
    legacy_ledger = legacy_server.pool.total_ledger()
    fast_ledger = fast_server.pool.total_ledger()
    assert fast_ledger.cycles == legacy_ledger.cycles
    assert fast_ledger.energy_pj == legacy_ledger.energy_pj
    assert fast_ledger.cycle_breakdown == legacy_ledger.cycle_breakdown

    # The fast path's tick loop performs zero full-queue scans, and every
    # dispatched batch was sliced zero-copy out of a submit_batch source.
    assert fast_server.queue_scans() == 0
    assert fast_server.stats.zero_copy_batches == fast_server.stats.batches
    assert legacy_server.queue_scans() > 0  # the baseline really does scan

    summary = fast_server.stats.summary()
    print(
        f"\nserving {QUEUED} queued requests over {NUM_MATRICES} matrices: "
        f"tick-loop p50 {legacy_p50 * 1e3:.2f} -> {fast_p50 * 1e3:.2f} ms "
        f"({speedup:.1f}x), end-to-end p50 {legacy_total * 1e3:.2f} -> "
        f"{fast_total * 1e3:.2f} ms ({end_to_end:.1f}x), "
        f"mean batch fill {summary['mean_batch_fill']:.1f}"
    )

    payload = {
        "benchmark": "serving_latency",
        "queued_requests": QUEUED,
        "num_matrices": NUM_MATRICES,
        "max_batch": MAX_BATCH,
        "matrix_shape": list(MATRIX_SHAPE),
        "input_bits": INPUT_BITS,
        "pre_rework_tick_loop_p50_ms": legacy_p50 * 1e3,
        "fast_path_tick_loop_p50_ms": fast_p50 * 1e3,
        "speedup": speedup,
        "required_speedup": REQUIRED_SPEEDUP,
        "pre_rework_end_to_end_p50_ms": legacy_total * 1e3,
        "fast_path_end_to_end_p50_ms": fast_total * 1e3,
        "end_to_end_speedup": end_to_end,
        "bit_identical": True,
        "fast_path_queue_scans": fast_server.queue_scans(),
        "pre_rework_queue_scans": legacy_server.queue_scans(),
        "telemetry": summary,
    }
    ARTIFACTS_DIR.mkdir(exist_ok=True)
    (ARTIFACTS_DIR / "serving_latency.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True)
    )

    # Append the headline numbers to the repo-root trajectory -- but only
    # when explicitly recording (CI's benchmarks job), so plain tier-1 runs
    # do not grow the file.
    if os.environ.get("REPRO_BENCH_RECORD") == "1":
        trajectory = []
        if TRAJECTORY_PATH.exists():
            trajectory = json.loads(TRAJECTORY_PATH.read_text())
        trajectory.append(
            {
                "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
                "queued_requests": QUEUED,
                "pre_rework_tick_loop_p50_ms": round(legacy_p50 * 1e3, 3),
                "fast_path_tick_loop_p50_ms": round(fast_p50 * 1e3, 3),
                "speedup": round(speedup, 1),
                "end_to_end_speedup": round(end_to_end, 1),
            }
        )
        TRAJECTORY_PATH.write_text(json.dumps(trajectory, indent=2) + "\n")

    assert speedup >= REQUIRED_SPEEDUP, (
        f"fast path's tick loop is only {speedup:.1f}x faster than the "
        f"pre-rework scheduler (gate requires >= {REQUIRED_SPEEDUP}x): "
        f"pre-rework {legacy_p50 * 1e3:.2f} ms, fast {fast_p50 * 1e3:.2f} ms"
    )
    assert end_to_end >= REQUIRED_END_TO_END, (
        f"end-to-end drain is only {end_to_end:.1f}x faster "
        f"(sanity floor {REQUIRED_END_TO_END}x)"
    )


def test_queue_scans_stay_flat_in_queue_depth(offered_load):
    """The indexed tick loop's full-queue scans do not grow with depth."""
    matrices, vectors = offered_load
    scans_by_depth = {}
    for depth_fraction in (4, 1):  # 64 and 256 queued requests
        server = build_server(PumServer, matrices)
        per_matrix = REQUESTS_PER_MATRIX // depth_fraction
        for index in range(NUM_MATRICES):
            server.submit_batch(
                f"m{index}", vectors[index][:per_matrix], input_bits=INPUT_BITS
            )
        server.run_until_idle()
        scans_by_depth[QUEUED // depth_fraction] = server.queue_scans()
    assert scans_by_depth[64] == scans_by_depth[256] == 0

"""Serving throughput: dynamic batching vs request-at-a-time execution.

The acceptance gate for the serving front-end: at an offered load of 16+
concurrent single-vector requests, the :class:`~repro.runtime.server.PumServer`
(which coalesces compatible requests into ``exec_mvm_batch`` calls) must
achieve at least 3x the throughput of serving the same requests one
``exec_mvm`` at a time, while remaining bit-identical in the noise-free
configuration.

The measured numbers are also written to
``benchmarks/artifacts/serving_throughput.json`` so CI can upload the perf
trajectory as a workflow artifact.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro import DevicePool, PumServer

CONCURRENT_REQUESTS = 32  # offered load; the gate requires >= 16
MATRIX_SHAPE = (64, 64)
INPUT_BITS = 8
MAX_BATCH = 16

ARTIFACTS_DIR = Path(__file__).parent / "artifacts"


@pytest.fixture(scope="module")
def offered_load():
    """A fixed request stream plus matching sequential and served pools."""
    rng = np.random.default_rng(41)
    matrix = rng.integers(-100, 100, size=MATRIX_SHAPE)
    vectors = rng.integers(0, 256, size=(CONCURRENT_REQUESTS, MATRIX_SHAPE[0]))
    return matrix, vectors


def run_sequential(matrix, vectors):
    """Request-at-a-time baseline: one ``exec_mvm`` per arriving request."""
    pool = DevicePool(num_devices=2)
    allocation = pool.set_matrix(matrix, element_size=8, precision=0)
    pool.exec_mvm(allocation, vectors[0], input_bits=INPUT_BITS)  # warm-up
    start = time.perf_counter()
    results = np.stack([
        pool.exec_mvm(allocation, vector, input_bits=INPUT_BITS)
        for vector in vectors
    ])
    return results, time.perf_counter() - start


def run_served(matrix, vectors):
    """The same offered load through the dynamic-batching server."""
    server = PumServer(num_devices=2, max_batch=MAX_BATCH, max_wait_ticks=2)
    server.register_matrix("m", matrix, element_size=8)
    warm = server.submit("m", vectors[0], input_bits=INPUT_BITS)
    server.run_until_idle()
    assert warm.result().ok
    start = time.perf_counter()
    futures = [
        server.submit("m", vector, input_bits=INPUT_BITS) for vector in vectors
    ]
    server.run_until_idle()
    results = np.stack([future.result().result for future in futures])
    return results, time.perf_counter() - start, server


def test_serving_beats_request_at_a_time_by_3x(offered_load):
    matrix, vectors = offered_load
    sequential, sequential_seconds = run_sequential(matrix, vectors)
    served, served_seconds, server = run_served(matrix, vectors)

    # Bit-identical in the noise-free configuration.
    assert np.array_equal(served, sequential)
    assert np.array_equal(served, vectors @ matrix)

    speedup = sequential_seconds / max(served_seconds, 1e-12)
    summary = server.stats.summary()
    print(
        f"\nserving {CONCURRENT_REQUESTS} concurrent requests: "
        f"sequential {sequential_seconds * 1e3:.1f} ms, "
        f"served {served_seconds * 1e3:.1f} ms, speedup {speedup:.1f}x, "
        f"mean batch fill {summary['mean_batch_fill']:.1f}"
    )

    ARTIFACTS_DIR.mkdir(exist_ok=True)
    payload = {
        "concurrent_requests": CONCURRENT_REQUESTS,
        "matrix_shape": list(MATRIX_SHAPE),
        "max_batch": MAX_BATCH,
        "sequential_seconds": sequential_seconds,
        "served_seconds": served_seconds,
        "speedup": speedup,
        "requests_per_second_sequential": CONCURRENT_REQUESTS / sequential_seconds,
        "requests_per_second_served": CONCURRENT_REQUESTS / served_seconds,
        "telemetry": summary,
    }
    path = ARTIFACTS_DIR / "serving_throughput.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))

    assert summary["mean_batch_fill"] > 1.0  # batching actually happened
    assert speedup >= 3.0


def test_serving_throughput_benchmark(offered_load, benchmark):
    """Report served requests/second for the throughput dashboards."""
    matrix, vectors = offered_load
    server = PumServer(num_devices=2, max_batch=MAX_BATCH, max_wait_ticks=2)
    server.register_matrix("m", matrix, element_size=8)

    def serve_wave():
        futures = [
            server.submit("m", vector, input_bits=INPUT_BITS) for vector in vectors
        ]
        server.run_until_idle()
        return [future.result() for future in futures]

    responses = benchmark(serve_wave)
    assert len(responses) == CONCURRENT_REQUESTS
    assert all(response.ok for response in responses)

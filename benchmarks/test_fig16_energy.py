"""Figure 16: energy savings over Baseline (log scale in the paper)."""

from repro.eval import figure16_energy, format_table


def test_fig16_energy(benchmark):
    data = benchmark(figure16_energy)
    print("\n" + format_table(data, title="Figure 16: energy savings vs Baseline"))
    assert data["darth_pum"]["GeoMean"] > 20
    assert data["darth_pum"]["GeoMean"] > data["digital_pum"]["GeoMean"]

"""Profile the serving hot path and print the top cumulative hot spots.

Runs a representative dynamic-batching serving workload -- one registered
64x64 matrix, waves of single-vector requests coalesced by the scheduler --
under :mod:`cProfile` and prints the top-20 functions by cumulative time.
This is the profile-guided loop behind the vectorized execution engine:
whatever tops this list is the next optimisation target.

Usage::

    make profile
    # or directly:
    PYTHONPATH=src python benchmarks/profile_serving.py [num_requests]
"""

from __future__ import annotations

import cProfile
import pstats
import sys

import numpy as np

from repro import PumServer

MATRIX_SHAPE = (64, 64)
INPUT_BITS = 8


def run_serving_workload(num_requests: int = 512) -> None:
    """Serve ``num_requests`` single-vector MVMs through the PumServer."""
    rng = np.random.default_rng(11)
    matrix = rng.integers(-100, 100, size=MATRIX_SHAPE)
    vectors = rng.integers(0, 2 ** INPUT_BITS, size=(num_requests, MATRIX_SHAPE[0]))

    server = PumServer(num_devices=2, max_batch=16, max_wait_ticks=2)
    server.register_matrix("proj", matrix, element_size=8)

    wave = server.batching.queue_capacity
    for start in range(0, num_requests, wave):
        futures = [
            server.submit("proj", vector, input_bits=INPUT_BITS)
            for vector in vectors[start: start + wave]
        ]
        server.run_until_idle()
        for future in futures:
            assert future.result().ok


def main() -> None:
    num_requests = int(sys.argv[1]) if len(sys.argv) > 1 else 512
    profiler = cProfile.Profile()
    profiler.enable()
    run_serving_workload(num_requests)
    profiler.disable()

    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    print(f"# top-20 cumulative hot spots ({num_requests} served requests)")
    stats.print_stats(20)


if __name__ == "__main__":
    main()

"""Figure 15: per-layer ResNet-20 speedup over Baseline."""

from repro.eval import figure15_resnet_layers, format_table


def test_fig15_resnet_layers(benchmark):
    data = benchmark(figure15_resnet_layers)
    print("\n" + format_table(
        {layer: {arch: data[arch][layer] for arch in data} for layer in data["darth_pum"]},
        title="Figure 15: per-layer speedup over Baseline",
    ))
    assert data["darth_pum"]["GeoMean"] > 1
    assert len(data["darth_pum"]) == 23

"""Setuptools configuration for the DARTH-PUM reproduction.

Metadata lives here (rather than in ``pyproject.toml``) so the package can
be installed editable (``pip install -e .``) in offline environments that
lack the ``wheel``/PEP 517 tooling.
"""

from setuptools import find_packages, setup

setup(
    name="darth-pum-repro",
    version="1.1.0",
    description=(
        "Simulation-based reproduction of DARTH-PUM, a hybrid analog-digital "
        "processing-using-memory architecture, with a batched multi-device "
        "serving engine"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
)

"""Quickstart: program a matrix into DARTH-PUM and run a hybrid MVM.

Demonstrates the application-agnostic library calls of Table 1
(``setMatrix`` / ``execMVM``) through :class:`repro.DarthPumDevice`, plus a
look under the hood at a single hybrid compute tile: the analog partial
products, the digital shift-and-add reduction, and the cycle/energy cost of
both the optimised and unoptimised schedules (Figure 10).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import DarthPumChip, DarthPumDevice, ChipConfig, HctConfig, HybridComputeTile


def main() -> None:
    rng = np.random.default_rng(0)

    # ------------------------------------------------------------------ #
    # 1. The programmer-facing runtime (Table 1 API).                     #
    # ------------------------------------------------------------------ #
    chip = DarthPumChip(ChipConfig(hct=HctConfig.small(), num_hcts=8))
    device = DarthPumDevice(chip=chip)

    matrix = rng.integers(-8, 8, size=(24, 16))
    vector = rng.integers(0, 15, size=24)
    allocation = device.set_matrix(matrix, element_size=4, precision=0)
    result = device.exec_mvm(allocation, vector, input_bits=4)

    print("setMatrix(): stored a", matrix.shape, "matrix on", allocation.hcts_used, "HCT(s)")
    print("execMVM() result matches numpy:", np.array_equal(result, vector @ matrix))

    # ------------------------------------------------------------------ #
    # 2. Under the hood: one hybrid compute tile.                         #
    # ------------------------------------------------------------------ #
    tile = HybridComputeTile(HctConfig.small())
    handle = tile.set_matrix(matrix[:16, :12], value_bits=4, bits_per_cell=2)
    mvm = tile.execute_mvm(handle, vector[:16], input_bits=4)

    print("\nOne hybrid MVM on a single tile:")
    print("  partial products produced by the ACE:", mvm.num_partial_products)
    print("  optimised schedule (shift-in-flight): ", round(mvm.optimized_cycles), "cycles")
    print("  naive schedule (Figure 10a):          ", round(mvm.unoptimized_cycles), "cycles")
    print("  speedup from the shift units + IIU:   ",
          round(mvm.speedup_from_optimization, 2), "x")
    print("  energy:", round(mvm.energy_pj, 1), "pJ")
    print("  front-end instruction slots saved by the IIU:", mvm.iiu_slots_saved)


if __name__ == "__main__":
    main()

"""Quickstart: program a matrix into DARTH-PUM and run a hybrid MVM.

Demonstrates the application-agnostic library calls of Table 1
(``setMatrix`` / ``execMVM`` / ``execMVMBatch``) through
:class:`repro.DarthPumDevice`, serving-style batched execution, sharding
across a multi-chip :class:`repro.DevicePool`, plus a look under the hood at
a single hybrid compute tile: the analog partial products, the digital
shift-and-add reduction, and the cycle/energy cost of both the optimised
and unoptimised schedules (Figure 10).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import (
    ChipConfig,
    DarthPumChip,
    DarthPumDevice,
    DevicePool,
    HctConfig,
    HybridComputeTile,
)


def main() -> None:
    rng = np.random.default_rng(0)

    # ------------------------------------------------------------------ #
    # 1. The programmer-facing runtime (Table 1 API).                     #
    # ------------------------------------------------------------------ #
    chip = DarthPumChip(ChipConfig(hct=HctConfig.small(), num_hcts=8))
    device = DarthPumDevice(chip=chip)

    matrix = rng.integers(-8, 8, size=(24, 16))
    vector = rng.integers(0, 15, size=24)
    allocation = device.set_matrix(matrix, element_size=4, precision=0)
    result = device.exec_mvm(allocation, vector, input_bits=4)

    print("setMatrix(): stored a", matrix.shape, "matrix on", allocation.hcts_used, "HCT(s)")
    print("execMVM() result matches numpy:", np.array_equal(result, vector @ matrix))

    # ------------------------------------------------------------------ #
    # 2. Batched execution: serve a whole batch in one arbiter pass.      #
    # ------------------------------------------------------------------ #
    vectors = rng.integers(0, 15, size=(32, 24))
    start = time.perf_counter()
    looped = np.stack([device.exec_mvm(allocation, v, input_bits=4) for v in vectors])
    loop_seconds = time.perf_counter() - start
    start = time.perf_counter()
    batched = device.exec_mvm_batch(allocation, vectors, input_bits=4)
    batch_seconds = time.perf_counter() - start

    print("\nexecMVMBatch() over a batch of", vectors.shape[0], "vectors:")
    print("  bit-identical to 32 sequential execMVM() calls:",
          np.array_equal(batched, looped))
    print(f"  host wall-clock: {loop_seconds * 1e3:.0f} ms looped vs "
          f"{batch_seconds * 1e3:.0f} ms batched "
          f"({loop_seconds / max(batch_seconds, 1e-9):.0f}x)")

    # ------------------------------------------------------------------ #
    # 3. A multi-chip pool: shard a matrix too large for one chip.        #
    # ------------------------------------------------------------------ #
    pool = DevicePool(num_devices=3,
                      config=ChipConfig(hct=HctConfig.small(), num_hcts=3))
    large = rng.integers(-8, 8, size=(100, 30))
    pooled = pool.set_matrix(large, element_size=4, precision=0)
    requests = rng.integers(0, 8, size=(8, 100))
    answers = pool.exec_mvm_batch(pooled, requests, input_bits=3)

    print("\nDevicePool: stored a", large.shape, "matrix as", pooled.num_shards,
          "row shards on devices", pooled.devices_used)
    print("  sharded batch matches numpy:", np.array_equal(answers, requests @ large))
    print("  per-device utilisation:", [round(u, 2) for u in pool.utilization()])

    # ------------------------------------------------------------------ #
    # 4. Under the hood: one hybrid compute tile.                         #
    # ------------------------------------------------------------------ #
    tile = HybridComputeTile(HctConfig.small())
    handle = tile.set_matrix(matrix[:16, :12], value_bits=4, bits_per_cell=2)
    mvm = tile.execute_mvm(handle, vector[:16], input_bits=4)

    print("\nOne hybrid MVM on a single tile:")
    print("  partial products produced by the ACE:", mvm.num_partial_products)
    print("  optimised schedule (shift-in-flight): ", round(mvm.optimized_cycles), "cycles")
    print("  naive schedule (Figure 10a):          ", round(mvm.unoptimized_cycles), "cycles")
    print("  speedup from the shift units + IIU:   ",
          round(mvm.speedup_from_optimization, 2), "x")
    print("  energy:", round(mvm.energy_pj, 1), "pJ")
    print("  front-end instruction slots saved by the IIU:", mvm.iiu_slots_saved)


if __name__ == "__main__":
    main()

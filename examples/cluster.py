"""Scale-out serving: worker processes + shared-memory rings + asyncio.

Demonstrates the cluster tier (:mod:`repro.runtime.cluster`): an asyncio
:class:`ClusterGateway` spawns device workers as separate OS processes
(each owning its own chips and ``PumServer`` shard), places matrices on
them by rendezvous-hashing the content digest, streams request vectors
through zero-copy shared-memory rings, and resolves one asyncio future
per request.  The walk-through covers replicated placement, a batch
submission, the per-worker telemetry, a graceful drain/restart, and a
deliberately unhealthy worker being survived via replica failover.

Run with:  python examples/cluster.py   (or: make cluster-demo)
"""

from __future__ import annotations

import asyncio
import os
import signal

import numpy as np

from repro.runtime.cluster import ClusterGateway


async def main() -> None:
    rng = np.random.default_rng(0)
    matrix = rng.integers(-8, 8, size=(24, 16), dtype=np.int64)

    async with ClusterGateway(
        num_workers=2,          # one process (and one GIL) per worker
        devices_per_worker=1,
        replication=2,          # every matrix lives on two workers
        chip="small",           # fast functional chip configuration
    ) as gateway:
        # ------------------------------------------------------------- #
        # 1. Placement: rendezvous-hashed on the matrix content digest.  #
        # ------------------------------------------------------------- #
        placement = await gateway.register_matrix("ranker", matrix,
                                                  input_bits=4)
        print(f"'ranker' placed on workers {placement} "
              f"(replication={gateway.replication})")
        handle = gateway.plan_handle("ranker")
        print(f"cost handle over the wire: {handle.predicted_cycles(1):.0f} "
              f"cycles/request, {handle.predicted_cycles(16):.0f} for a "
              f"16-batch")

        # ------------------------------------------------------------- #
        # 2. Submit a batch; each row resolves its own asyncio future.   #
        # ------------------------------------------------------------- #
        vectors = rng.integers(0, 16, size=(32, 24), dtype=np.int64)
        futures = await gateway.submit_batch("ranker", vectors, input_bits=4)
        responses = await asyncio.gather(*futures)
        print(f"completed {sum(r.ok for r in responses)}/{len(responses)} "
              f"requests; first row -> {responses[0].result[:4]}... "
              f"on worker {responses[0].worker_id}")

        # ------------------------------------------------------------- #
        # 3. Graceful drain + restart: no futures lost, matrices replayed.#
        # ------------------------------------------------------------- #
        await gateway.restart_worker(placement[0])
        responses = await asyncio.gather(
            *await gateway.submit_batch("ranker", vectors[:8], input_bits=4)
        )
        print(f"after restarting worker {placement[0]}: "
              f"{sum(r.ok for r in responses)}/8 completed "
              f"(restarts={gateway.stats.restarts})")

        # ------------------------------------------------------------- #
        # 4. Chaos: SIGKILL one replica holder mid-load and keep serving.#
        # ------------------------------------------------------------- #
        futures = await gateway.submit_batch("ranker", vectors, input_bits=4)
        victim = placement[0]
        os.kill(gateway._workers[victim].process.pid, signal.SIGKILL)
        responses = await asyncio.gather(*futures)
        print(f"killed worker {victim} under load: "
              f"{sum(r.ok for r in responses)}/{len(responses)} still "
              f"completed via the surviving replica "
              f"(retried_batches={gateway.stats.retried_batches})")

        for status in gateway.worker_status():
            print(f"  worker {status['worker']}: alive={status['alive']} "
                  f"quarantined={status['quarantined']} "
                  f"matrices={status['matrices']}")
        print(f"gateway stats: {gateway.stats.snapshot()}")


if __name__ == "__main__":
    asyncio.run(main())

"""ResNet-20 inference mapped onto DARTH-PUM (Section 5.1, Figure 15).

Runs a real (quantised) convolution through a hybrid compute tile, maps the
full ResNet-20 network onto HCTs, evaluates the accuracy-under-noise study
of Section 7.5 on the synthetic CIFAR-10-shaped dataset, and prints the
per-layer speedup model behind Figure 15.

Run with:  python examples/resnet_inference.py
"""

from __future__ import annotations

import numpy as np

from repro.core import HctConfig, HybridComputeTile
from repro.eval import figure15_resnet_layers
from repro.workloads.cnn import (
    CnnMapping,
    NoisyInferenceEngine,
    ResNet20,
    SyntheticCifar10,
    resnet20_profile,
    run_conv_on_tile,
)


def main() -> None:
    model = ResNet20()
    profile = resnet20_profile(model)
    mapping = CnnMapping(model)

    print("ResNet-20 parameters:", model.parameter_count())
    print("MACs per inference  :", f"{profile.total_macs / 1e6:.1f} M")
    print("HCTs needed to hold every layer:", mapping.total_hcts)

    # One real convolution through the hybrid MVM path: all output positions
    # stream through the tile as a single batched MVM (execMVMBatch).
    tile = HybridComputeTile(HctConfig.small())
    rng = np.random.default_rng(0)
    image = rng.normal(size=(1, 3, 8, 8))
    device, reference = run_conv_on_tile(tile, model.conv1, image, positions=4)
    error = np.abs(device - reference).max() / (np.abs(reference).max() + 1e-9)
    print(f"conv1 on a hybrid tile ({device.shape[0]} positions in one batch): "
          f"max relative error {error:.3f} (quantisation-bounded)")

    # Section 7.5: accuracy with and without analog noise.
    dataset = SyntheticCifar10()
    images, labels = dataset.sample(32)
    clean = np.argmax(NoisyInferenceEngine(model, noise_lsb=0.0).forward(images), axis=1)
    noisy = np.argmax(NoisyInferenceEngine(model, noise_lsb=0.5, seed=1).forward(images), axis=1)
    print("prediction agreement with analog noise injected:",
          f"{np.mean(clean == noisy) * 100:.1f}%")

    print("\nFigure 15 (model): per-layer speedup over Baseline")
    layers = figure15_resnet_layers(model)
    for label in list(layers["darth_pum"].keys()):
        print(f"  {label:<14} DigitalPUM {layers['digital_pum'][label]:7.2f}   "
              f"DARTH-PUM {layers['darth_pum'][label]:7.2f}   "
              f"AppAccel {layers['app_accel'][label]:7.2f}")


if __name__ == "__main__":
    main()

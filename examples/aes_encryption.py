"""AES-128 encryption on DARTH-PUM (Section 5.3, Figures 12 and 14).

Encrypts a FIPS-197 test vector on a hybrid compute tile: SubBytes uses the
element-wise load against an S-box pipeline, ShiftRows uses the DCE,
MixColumns runs as a binary MVM in the analog arrays (with the parasitic
compensation remapping), and AddRoundKey is a DCE XOR.  The result is
checked bit-exactly against the software reference, and the per-kernel cycle
breakdown is printed alongside the Figure 14 style model breakdown.

Run with:  python examples/aes_encryption.py
"""

from __future__ import annotations

from repro.eval import figure14_aes_breakdown, format_table
from repro.workloads.aes import DarthPumAes, encrypt_block


def main() -> None:
    plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")

    engine = DarthPumAes()
    ciphertext = engine.encrypt_bytes(plaintext, key)
    reference = bytes(encrypt_block(plaintext, key))

    print("plaintext :", plaintext.hex())
    print("key       :", key.hex())
    print("ciphertext:", ciphertext.hex())
    print("reference :", reference.hex())
    print("bit-exact match with the FIPS-197 reference:", ciphertext == reference)

    print("\nFunctional per-kernel cycles on the hybrid tile (one block):")
    for kernel, cycles in engine.kernel_cycles.as_dict().items():
        print(f"  {kernel:<14} {cycles:10.0f} cycles")

    print("\n" + format_table(
        figure14_aes_breakdown(),
        title="Figure 14 (model): kernel latency as % of the Baseline total",
    ))


if __name__ == "__main__":
    main()

"""Serving: dynamic batching of single-vector requests over a device pool.

Demonstrates the :class:`repro.PumServer` front-end: registering matrices,
submitting prioritised single-vector MVM requests with deadlines, driving
the deterministic scheduler clock (or a background thread), admission
control under overload, and the telemetry the scheduler emits (queue depth,
batch fill, latency percentiles in ticks, energy per request).  Finishes by
pushing all three paper workloads -- AES MixColumns, a CNN convolution, and
an LLM projection -- through the same server.

Run with:  python examples/serving.py
"""

from __future__ import annotations

import numpy as np

from repro import PumServer, ThreadedServerDriver
from repro.runtime import (
    serve_aes_mixcolumns,
    serve_cnn_conv,
    serve_llm_projection,
)
from repro.workloads.cnn.layers import Conv2d


def main() -> None:
    rng = np.random.default_rng(0)

    # ------------------------------------------------------------------ #
    # 1. Register matrices, submit requests, drive the simulated clock.   #
    # ------------------------------------------------------------------ #
    server = PumServer(num_devices=2, policy="cache_affinity",
                       max_batch=8, max_wait_ticks=3, queue_capacity=32)
    matrix = rng.integers(-50, 50, size=(32, 24))
    server.register_matrix("ranker", matrix, element_size=8)

    futures = [
        server.submit("ranker", rng.integers(0, 16, size=32),
                      input_bits=4, priority=i % 3)
        for i in range(20)
    ]
    responses = server.run_until_idle()
    print(f"served {len(responses)} requests in {server.now} ticks")
    first = futures[0].result()
    print(f"request 0: batch of {first.batch_size}, "
          f"latency {first.latency_ticks} ticks, "
          f"{first.energy_pj:.0f} pJ")

    # ------------------------------------------------------------------ #
    # 2. Deadlines and admission control under overload.                  #
    # ------------------------------------------------------------------ #
    tight = server.submit("ranker", rng.integers(0, 16, size=32),
                          input_bits=4, deadline=server.now + 1)
    server.tick()
    server.tick()
    print(f"tight-deadline request: {tight.result().status}")

    # ------------------------------------------------------------------ #
    # 3. Wall-clock serving with the threaded driver.                     #
    # ------------------------------------------------------------------ #
    with ThreadedServerDriver(server, tick_interval=1e-4):
        future = server.submit("ranker", rng.integers(0, 16, size=32),
                               input_bits=4)
        response = future.result(timeout=5.0)
    print(f"threaded response ok={response.ok} "
          f"(batch of {response.batch_size})")

    # ------------------------------------------------------------------ #
    # 4. All three paper workloads through the same server.               #
    # ------------------------------------------------------------------ #
    columns = rng.integers(0, 256, size=(8, 4))
    mixed = serve_aes_mixcolumns(server, columns)
    print(f"AES MixColumns served: {columns[0]} -> {mixed[0]}")

    conv = Conv2d(3, 4, kernel=3, rng=rng)
    image = rng.standard_normal((1, 3, 8, 8))
    device_out, reference = serve_cnn_conv(server, conv, image, positions=4)
    print("CNN conv served: max |device - reference| = "
          f"{np.abs(device_out - reference).max():.4f}")

    weight = rng.standard_normal((16, 8))
    tokens = rng.standard_normal((6, 16))
    device_out, reference = serve_llm_projection(server, weight, tokens)
    print("LLM projection served: max |device - reference| = "
          f"{np.abs(device_out - reference).max():.4f}")

    # ------------------------------------------------------------------ #
    # 5. Aggregate telemetry.                                             #
    # ------------------------------------------------------------------ #
    print("\ntelemetry:")
    for key, value in server.stats.summary().items():
        print(f"  {key:>28}: {value:.2f}")


if __name__ == "__main__":
    main()

"""LLM (transformer) encoder on DARTH-PUM (Section 5.2).

Runs a reduced transformer encoder functionally with I-BERT integer kernels,
pushes one projection matrix through a real hybrid compute tile, and prints
the BERT-base-scale mapping and the throughput/energy model results that
feed Figures 13 and 16.

Run with:  python examples/llm_encoder.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import model_for
from repro.core import HctConfig, HybridComputeTile
from repro.workloads.llm import (
    EncoderConfig,
    LlmMapping,
    TransformerEncoder,
    encoder_profile,
    run_projection_on_tile,
)


def main() -> None:
    # Functional encoder with integer (I-BERT) kernels.
    config = EncoderConfig.tiny()
    encoder = TransformerEncoder(config)
    rng = np.random.default_rng(0)
    tokens = rng.normal(size=(config.sequence_length, config.hidden_size))
    float_out = encoder.forward(tokens)
    integer_out = encoder.forward(tokens, integer_kernels=True)
    drift = np.abs(float_out - integer_out).mean() / np.abs(float_out).mean()
    print(f"tiny encoder: integer-kernel output drift {drift * 100:.2f}% vs float")

    # One Q-projection through a real hybrid compute tile; the whole token
    # batch goes through the ACE/DCE as a single batched MVM (execMVMBatch).
    tile = HybridComputeTile(HctConfig.small())
    weight = rng.normal(size=(24, 12))
    activations = rng.normal(size=(4, 24))
    device, reference = run_projection_on_tile(tile, weight, activations)
    error = np.abs(device - reference).max() / (np.abs(reference).max() + 1e-9)
    print(f"projection on a hybrid tile ({activations.shape[0]} tokens in one batch): "
          f"max relative error {error:.3f}")

    # BERT-base-scale mapping and the performance model.
    bert = EncoderConfig.bert_base()
    mapping = LlmMapping(bert)
    profile = encoder_profile(bert)
    print(f"\nBERT-base encoder: {mapping.weight_bytes / 1e6:.1f} MB of static weights, "
          f"{mapping.total_hcts} HCTs to keep them resident")
    print(f"MACs per sequence: {profile.total_macs / 1e9:.2f} G, "
          f"non-linear element ops: {profile.nonlinear_ops / 1e6:.1f} M")

    baseline = model_for("baseline", "llm_encoder").evaluate(profile)
    darth = model_for("darth_pum", "llm_encoder").evaluate(profile)
    print("\nmodelled speedup over the analog+CPU baseline: "
          f"{darth.speedup_over(baseline):.1f}x (paper: 40.8x)")
    print(f"modelled energy savings: {darth.energy_savings_over(baseline):.1f}x (paper: 110.7x)")


if __name__ == "__main__":
    main()

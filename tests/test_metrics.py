"""Tests for the cost-ledger accounting primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics import CostLedger, geometric_mean, merge_ledgers


class TestCostLedger:
    def test_charge_accumulates_cycles_and_energy(self):
        ledger = CostLedger()
        ledger.charge("a", cycles=10, energy_pj=5)
        ledger.charge("a", cycles=2, energy_pj=1)
        ledger.charge("b", cycles=3)
        assert ledger.cycles == 15
        assert ledger.energy_pj == 6
        assert ledger.cycle_breakdown == {"a": 12, "b": 3}

    def test_charge_power_converts_mw_to_pj_at_1ghz(self):
        ledger = CostLedger()
        ledger.charge_power("x", cycles=100, power_mw=2.0)
        assert ledger.energy_pj == pytest.approx(200.0)

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            CostLedger().charge("a", cycles=-1)

    def test_merge_combines_breakdowns(self):
        a, b = CostLedger(), CostLedger()
        a.charge("x", cycles=1, energy_pj=2)
        b.charge("x", cycles=3, energy_pj=4)
        b.charge("y", cycles=5)
        a.merge(b)
        assert a.cycles == 9
        assert a.cycle_breakdown == {"x": 4, "y": 5}

    def test_snapshot_is_immutable_copy(self):
        ledger = CostLedger()
        ledger.charge("x", cycles=1)
        snap = ledger.snapshot()
        ledger.charge("x", cycles=1)
        assert snap.cycles == 1
        assert ledger.cycles == 2

    def test_prefix_aggregation(self):
        ledger = CostLedger()
        ledger.charge("dce.add", cycles=5, energy_pj=1)
        ledger.charge("dce.xor", cycles=3, energy_pj=1)
        ledger.charge("ace.mvm", cycles=7, energy_pj=2)
        assert ledger.cycles_for("dce.") == 8
        assert ledger.energy_for("ace.") == 2

    def test_seconds_and_joules_properties(self):
        ledger = CostLedger()
        ledger.charge("x", cycles=1e9, energy_pj=1e12)
        assert ledger.seconds == pytest.approx(1.0)
        assert ledger.energy_joules == pytest.approx(1.0)

    def test_reset(self):
        ledger = CostLedger()
        ledger.charge("x", cycles=5, energy_pj=5)
        ledger.reset()
        assert ledger.cycles == 0 and ledger.energy_pj == 0 and not ledger.cycle_breakdown


class TestMergeAndGeomean:
    def test_merge_ledgers(self):
        ledgers = []
        for i in range(3):
            ledger = CostLedger()
            ledger.charge("x", cycles=i + 1)
            ledgers.append(ledger)
        assert merge_ledgers(ledgers).cycles == 6

    def test_geometric_mean_simple(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)

    def test_geometric_mean_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    @given(st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1, max_size=20))
    def test_geometric_mean_bounded_by_min_max(self, values):
        mean = geometric_mean(values)
        assert min(values) <= mean * (1 + 1e-9)
        assert mean <= max(values) * (1 + 1e-9)


@given(
    st.lists(
        st.tuples(st.floats(min_value=0, max_value=1e6), st.floats(min_value=0, max_value=1e6)),
        max_size=30,
    )
)
def test_ledger_totals_match_breakdown_sum(charges):
    """Property: total cycles/energy always equal the breakdown sums."""
    ledger = CostLedger()
    for index, (cycles, energy) in enumerate(charges):
        ledger.charge(f"cat{index % 3}", cycles=cycles, energy_pj=energy)
    assert ledger.cycles == pytest.approx(sum(ledger.cycle_breakdown.values()))
    assert ledger.energy_pj == pytest.approx(sum(ledger.energy_breakdown.values()))


class TestPercentileSorted:
    def test_matches_percentile_on_sorted_input(self):
        import random

        from repro.metrics import percentile, percentile_sorted

        rng = random.Random(7)
        values = [rng.uniform(-50, 50) for _ in range(257)]
        ordered = sorted(values)
        for q in (0, 12.5, 50, 95, 99, 100):
            assert percentile_sorted(ordered, q) == percentile(values, q)

    def test_validation_matches_percentile(self):
        import pytest

        from repro.metrics import percentile_sorted

        with pytest.raises(ValueError):
            percentile_sorted([], 50)
        with pytest.raises(ValueError):
            percentile_sorted([1.0], 101)

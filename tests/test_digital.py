"""Tests for the digital (Boolean) PUM substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.digital import (
    BitPipeline,
    DceConfig,
    DigitalArray,
    DigitalComputeElement,
    MicroOp,
    WordOpCost,
    WordOpKind,
    get_family,
    ideal_family,
    oscar_family,
    stream_cycles,
)
from repro.errors import CapacityError, ConfigurationError, ExecutionError


class TestLogicFamilies:
    def test_oscar_has_nor_but_not_xor(self):
        family = oscar_family()
        assert family.has("NOR") and family.has("OR")
        assert not family.has("XOR")

    def test_ideal_family_has_all_two_input_ops(self):
        family = ideal_family()
        for name in ("NOR", "OR", "AND", "NAND", "XOR", "XNOR"):
            assert family.has(name)

    def test_get_family_by_name_and_unknown(self):
        assert get_family("oscar").name == "oscar"
        assert get_family("IDEAL").name == "ideal"
        with pytest.raises(ConfigurationError):
            get_family("magic")

    def test_nor_primitive_truth_table(self):
        nor = oscar_family().primitive("NOR")
        a = np.array([False, False, True, True])
        b = np.array([False, True, False, True])
        assert np.array_equal(nor.evaluate(a, b), np.array([True, False, False, False]))


class TestDigitalArray:
    def test_execute_nor_on_columns(self):
        array = DigitalArray(4, 8, oscar_family())
        array.write_column(0, np.array([1, 1, 0, 0], dtype=bool))
        array.write_column(1, np.array([1, 0, 1, 0], dtype=bool))
        array.execute(MicroOp("NOR", 0, 1, 2))
        assert np.array_equal(array.read_column(2), np.array([0, 0, 0, 1], dtype=bool))

    def test_unsupported_primitive_rejected(self):
        array = DigitalArray(4, 8, oscar_family())
        with pytest.raises(ExecutionError):
            array.execute(MicroOp("XOR", 0, 1, 2))

    def test_out_of_range_column_rejected(self):
        array = DigitalArray(4, 8, oscar_family())
        with pytest.raises(ExecutionError):
            array.execute(MicroOp("NOR", 0, 9, 2))

    def test_energy_charged_per_uop(self):
        array = DigitalArray(4, 8, oscar_family())
        array.execute(MicroOp("NOR", 0, 1, 2))
        assert array.ledger.energy_pj > 0
        assert array.uop_count == 1


class TestPipelineArithmetic:
    def test_write_read_roundtrip(self, small_pipeline, rng):
        values = rng.integers(0, 2 ** 16, size=8)
        small_pipeline.write_vr(0, values)
        assert np.array_equal(small_pipeline.read_vr(0), values)

    def test_signed_read(self, small_pipeline):
        small_pipeline.write_vr(0, np.array([-5, 7, -1, 0, 3, -128, 127, 2]))
        got = small_pipeline.read_vr(0, signed=True)
        assert np.array_equal(got, np.array([-5, 7, -1, 0, 3, -128, 127, 2]))

    def test_add_sub_match_modular_arithmetic(self, small_pipeline, rng):
        a = rng.integers(0, 2 ** 16, size=8)
        b = rng.integers(0, 2 ** 16, size=8)
        small_pipeline.write_vr(0, a)
        small_pipeline.write_vr(1, b)
        small_pipeline.add(2, 0, 1)
        small_pipeline.sub(3, 0, 1)
        assert np.array_equal(small_pipeline.read_vr(2), (a + b) % 2 ** 16)
        assert np.array_equal(small_pipeline.read_vr(3), (a - b) % 2 ** 16)

    def test_bitwise_ops(self, small_pipeline, rng):
        a = rng.integers(0, 2 ** 16, size=8)
        b = rng.integers(0, 2 ** 16, size=8)
        small_pipeline.write_vr(0, a)
        small_pipeline.write_vr(1, b)
        small_pipeline.xor(2, 0, 1)
        small_pipeline.and_(3, 0, 1)
        small_pipeline.or_(4, 0, 1)
        small_pipeline.not_(5, 0)
        assert np.array_equal(small_pipeline.read_vr(2), a ^ b)
        assert np.array_equal(small_pipeline.read_vr(3), a & b)
        assert np.array_equal(small_pipeline.read_vr(4), a | b)
        assert np.array_equal(small_pipeline.read_vr(5), (~a) % 2 ** 16)

    def test_compare_and_mux(self, small_pipeline):
        a = np.array([1, 5, 10, 200, 0, 7, 7, 65535])
        b = np.array([2, 5, 3, 100, 1, 8, 6, 0])
        small_pipeline.write_vr(0, a)
        small_pipeline.write_vr(1, b)
        small_pipeline.compare_lt(2, 0, 1)
        assert np.array_equal(small_pipeline.read_vr(2), (a < b).astype(int))
        small_pipeline.mux(3, 2, 0, 1)
        assert np.array_equal(small_pipeline.read_vr(3), np.where(a < b, a, b))

    def test_multiply(self, small_pipeline, rng):
        a = rng.integers(0, 255, size=8)
        b = rng.integers(0, 255, size=8)
        small_pipeline.write_vr(0, a)
        small_pipeline.write_vr(1, b)
        small_pipeline.multiply(2, 0, 1, bits=8)
        assert np.array_equal(small_pipeline.read_vr(2), (a * b) % 2 ** 16)

    def test_relu_on_signed_values(self, small_pipeline):
        values = np.array([5, -3, 0, -100, 7, 2, -1, 8])
        small_pipeline.write_vr(0, values)
        small_pipeline.relu(1, 0)
        assert np.array_equal(small_pipeline.read_vr(1, signed=True), np.maximum(values, 0))

    def test_shift_and_rotate(self, small_pipeline):
        values = np.array([1, 2, 0x8001, 0xFFFF, 7, 0, 3, 0x1234])
        small_pipeline.write_vr(0, values)
        small_pipeline.shift_value_left(1, 0, 3)
        assert np.array_equal(small_pipeline.read_vr(1), (values << 3) % 2 ** 16)
        small_pipeline.shift_value_right(2, 0, 2)
        assert np.array_equal(small_pipeline.read_vr(2), values >> 2)
        small_pipeline.rotate_value_left(3, 0, 4)
        expected = ((values << 4) | (values >> 12)) % 2 ** 16
        assert np.array_equal(small_pipeline.read_vr(3), expected)

    def test_vr_bounds_checked(self, small_pipeline):
        with pytest.raises(CapacityError):
            small_pipeline.write_vr(small_pipeline.num_vrs, [1])

    def test_ideal_family_uses_fewer_uops_for_add(self):
        oscar = BitPipeline(depth=8, rows=4, cols=16, family=oscar_family())
        ideal = BitPipeline(depth=8, rows=4, cols=16, family=ideal_family())
        for pipeline in (oscar, ideal):
            pipeline.write_vr(0, [1, 2, 3, 4])
            pipeline.write_vr(1, [5, 6, 7, 8])
        cost_oscar = oscar.add(2, 0, 1)
        cost_ideal = ideal.add(2, 0, 1)
        assert np.array_equal(oscar.read_vr(2), ideal.read_vr(2))
        assert cost_ideal.uops_per_bit < cost_oscar.uops_per_bit


@settings(max_examples=30, deadline=None)
@given(
    a=st.lists(st.integers(min_value=0, max_value=255), min_size=4, max_size=4),
    b=st.lists(st.integers(min_value=0, max_value=255), min_size=4, max_size=4),
)
def test_property_add_xor_match_reference(a, b):
    """Property: NOR-synthesised add/xor match integer semantics for all inputs."""
    pipeline = BitPipeline(depth=10, rows=4, cols=16)
    a, b = np.array(a), np.array(b)
    pipeline.write_vr(0, a)
    pipeline.write_vr(1, b)
    pipeline.add(2, 0, 1)
    pipeline.xor(3, 0, 1)
    assert np.array_equal(pipeline.read_vr(2), (a + b) % 1024)
    assert np.array_equal(pipeline.read_vr(3), a ^ b)


class TestWordOpCosts:
    def test_bitwise_cost_is_uops_per_bit(self):
        cost = WordOpCost("xor", WordOpKind.BITWISE, 5, 16, 64)
        assert cost.unpipelined_cycles == 5
        assert cost.pipelined_cycles == 5

    def test_carry_cost_scales_with_bits_unpipelined_only(self):
        cost = WordOpCost("add", WordOpKind.CARRY, 12, 16, 64)
        assert cost.unpipelined_cycles == 12 * 16
        assert cost.pipelined_cycles == 12

    def test_stream_cycles_pipelined_vs_not(self):
        costs = [WordOpCost("add", WordOpKind.CARRY, 12, 16, 64)] * 4
        assert stream_cycles(costs, pipelined=True) == 12 * 16 + 3 * 12
        assert stream_cycles(costs, pipelined=False) == 4 * 12 * 16

    def test_stream_cycles_empty(self):
        assert stream_cycles([]) == 0.0


class TestDce:
    def test_element_load_gathers_by_address(self):
        dce = DigitalComputeElement(DceConfig(num_pipelines=4, pipeline_depth=8, rows=16, cols=16))
        table = np.arange(16)[::-1]
        dce.pipeline(1).write_vr(0, table)
        dce.pipeline(0).write_vr(0, np.array([3, 0, 15, 7]))
        dce.element_load(0, 1, 0, 0, 1, 0, num_elements=4)
        assert np.array_equal(dce.pipeline(0).read_vr(1)[:4], table[[3, 0, 15, 7]])

    def test_element_store_scatters_by_address(self):
        dce = DigitalComputeElement(DceConfig(num_pipelines=4, pipeline_depth=8, rows=16, cols=16))
        dce.pipeline(0).write_vr(0, np.array([9, 8, 7, 6]))          # values
        dce.pipeline(0).write_vr(1, np.array([1, 3, 5, 7]))          # addresses
        dce.element_store(0, 0, 0, 1, 2, 0, num_elements=4)
        table = dce.pipeline(2).read_vr(0)
        assert table[1] == 9 and table[3] == 8 and table[5] == 7 and table[7] == 6

    def test_element_load_address_out_of_range(self):
        dce = DigitalComputeElement(DceConfig(num_pipelines=2, pipeline_depth=8, rows=16, cols=16))
        dce.pipeline(0).write_vr(0, np.array([4000]))
        with pytest.raises(ExecutionError):
            dce.element_load(0, 1, 0, 0, 1, 0, num_elements=1)

    def test_copy_vr_between_pipelines(self):
        dce = DigitalComputeElement(DceConfig(num_pipelines=2, pipeline_depth=8, rows=8, cols=16))
        values = np.arange(8)
        dce.pipeline(0).write_vr(0, values)
        dce.copy_vr_between_pipelines(0, 0, 1, 3)
        assert np.array_equal(dce.pipeline(1).read_vr(3), values)

    def test_reserve_and_release_pipeline(self):
        dce = DigitalComputeElement(DceConfig(num_pipelines=2, pipeline_depth=8, rows=8, cols=16))
        dce.reserve_pipeline(1)
        assert dce.is_reserved(1)
        dce.release_pipeline(1)
        assert not dce.is_reserved(1)

    def test_pipeline_index_bounds(self):
        dce = DigitalComputeElement(DceConfig(num_pipelines=2, pipeline_depth=8, rows=8, cols=16))
        with pytest.raises(CapacityError):
            dce.pipeline(5)

    def test_capacity_accounting(self):
        config = DceConfig(num_pipelines=64, pipeline_depth=64, rows=64, cols=64)
        assert config.total_arrays == 4096
        assert config.capacity_bits == 4096 * 64 * 64

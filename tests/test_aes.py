"""Tests for the AES workload: reference implementation and DARTH-PUM mapping."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.aes import (
    DarthPumAes,
    SBOX,
    INV_SBOX,
    decrypt_block,
    encrypt_block,
    gf_mul,
    key_expansion,
    mix_columns,
    mixcolumns_bit_matrix,
    shift_rows,
    inv_mix_columns,
    inv_shift_rows,
    bytes_to_state,
    state_to_bytes,
    xtime,
)
from repro.workloads.aes.profile import aes_profile

# FIPS-197 test vectors.
FIPS_PLAINTEXT = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
FIPS_KEY128 = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
FIPS_CIPHERTEXT = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")

APPENDIX_C_PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")
APPENDIX_C_KEY192 = bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617")
APPENDIX_C_CIPHER192 = bytes.fromhex("dda97ca4864cdfe06eaf70a0ec0d7191")
APPENDIX_C_KEY256 = bytes.fromhex(
    "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
)
APPENDIX_C_CIPHER256 = bytes.fromhex("8ea2b7ca516745bfeafc49904b496089")


class TestGaloisField:
    def test_xtime_known_values(self):
        assert xtime(0x57) == 0xAE
        assert xtime(0xAE) == 0x47

    def test_gf_mul_known_value(self):
        assert gf_mul(0x57, 0x13) == 0xFE

    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
    def test_gf_mul_distributes_over_xor(self, a, b, c):
        assert gf_mul(a, b ^ c) == gf_mul(a, b) ^ gf_mul(a, c)

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_gf_mul_commutative(self, a, b):
        assert gf_mul(a, b) == gf_mul(b, a)


class TestReferenceAes:
    def test_sbox_known_entries(self):
        assert SBOX[0x00] == 0x63
        assert SBOX[0x53] == 0xED
        assert INV_SBOX[SBOX[0xAB]] == 0xAB

    def test_sbox_is_a_permutation(self):
        assert len(set(SBOX.tolist())) == 256

    def test_fips_128_vector(self):
        assert bytes(encrypt_block(FIPS_PLAINTEXT, FIPS_KEY128)) == FIPS_CIPHERTEXT

    def test_fips_192_and_256_vectors(self):
        assert bytes(encrypt_block(APPENDIX_C_PLAINTEXT, APPENDIX_C_KEY192)) == APPENDIX_C_CIPHER192
        assert bytes(encrypt_block(APPENDIX_C_PLAINTEXT, APPENDIX_C_KEY256)) == APPENDIX_C_CIPHER256

    def test_decrypt_inverts_encrypt_all_key_sizes(self):
        for key in (FIPS_KEY128, APPENDIX_C_KEY192, APPENDIX_C_KEY256):
            ct = encrypt_block(FIPS_PLAINTEXT, key)
            assert bytes(decrypt_block(ct, key)) == FIPS_PLAINTEXT

    def test_key_expansion_round_count(self):
        assert len(key_expansion(FIPS_KEY128)) == 11
        assert len(key_expansion(APPENDIX_C_KEY192)) == 13
        assert len(key_expansion(APPENDIX_C_KEY256)) == 15

    def test_shift_rows_and_inverse(self):
        state = bytes_to_state(np.arange(16))
        assert np.array_equal(inv_shift_rows(shift_rows(state)), state)

    def test_mix_columns_and_inverse(self):
        state = bytes_to_state(np.arange(16))
        assert np.array_equal(inv_mix_columns(mix_columns(state)), state)

    def test_state_byte_order_roundtrip(self):
        block = np.arange(16, dtype=np.uint8)
        assert np.array_equal(state_to_bytes(bytes_to_state(block)), block)

    @given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
    @settings(max_examples=20, deadline=None)
    def test_property_decrypt_inverts_encrypt(self, plaintext, key):
        ciphertext = encrypt_block(plaintext, key)
        assert bytes(decrypt_block(ciphertext, key)) == plaintext


class TestMixColumnsBitMatrix:
    @given(st.lists(st.integers(0, 255), min_size=4, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_parity_trick_matches_reference(self, column):
        bit_matrix = mixcolumns_bit_matrix()
        in_bits = np.array([(column[byte] >> bit) & 1 for byte in range(4) for bit in range(8)])
        out_bits = (bit_matrix @ in_bits) & 1
        got = np.array([sum(int(out_bits[8 * byte + bit]) << bit for bit in range(8))
                        for byte in range(4)])
        state = np.zeros((4, 4), dtype=np.uint8)
        state[:, 0] = column
        assert np.array_equal(got, mix_columns(state)[:, 0])

    def test_matrix_is_binary_32x32(self):
        matrix = mixcolumns_bit_matrix()
        assert matrix.shape == (32, 32)
        assert set(np.unique(matrix)) <= {0, 1}


class TestDarthPumAes:
    @pytest.fixture(scope="class")
    def engine(self):
        return DarthPumAes()

    def test_fips_vector_on_hybrid_tile(self, engine):
        assert engine.encrypt_bytes(FIPS_PLAINTEXT, FIPS_KEY128) == FIPS_CIPHERTEXT

    def test_matches_reference_for_random_blocks(self, engine, rng):
        key = bytes(rng.integers(0, 256, size=16, dtype=np.uint8).tolist())
        for _ in range(2):
            block = bytes(rng.integers(0, 256, size=16, dtype=np.uint8).tolist())
            assert engine.encrypt_bytes(block, key) == bytes(encrypt_block(block, key))

    def test_kernel_cycles_accumulate(self, engine):
        cycles = engine.kernel_cycles.as_dict()
        assert all(value > 0 for value in cycles.values())
        assert engine.kernel_cycles.total() == pytest.approx(sum(cycles.values()))

    def test_missing_key_rejected(self):
        fresh = DarthPumAes()
        with pytest.raises(Exception):
            fresh.encrypt(list(range(16)))


class TestAesProfile:
    def test_round_structure(self):
        profile = aes_profile(128)
        assert profile.lookup_ops == 160      # 16 bytes x 10 rounds
        assert profile.mvm_ops[0].count == 36  # 4 columns x 9 MixColumns rounds
        assert profile.total_macs == 36 * 32 * 32

    def test_more_rounds_for_larger_keys(self):
        assert aes_profile(256).lookup_ops > aes_profile(128).lookup_ops

"""Chaos suite: device failures under load must not lose or corrupt work.

The tier-1 resilience gate of ROADMAP item 5.  The headline scenario kills
1 of N devices mid-load on a replication-2 pool and asserts the three
degraded-mode guarantees end to end:

* **zero lost futures** -- every submitted request resolves exactly once;
* **bit-identical responses** -- results, statuses, and per-request tick
  latencies match a fault-free twin run bit for bit (failover is intra-call,
  so even the latency distribution is unchanged);
* **bounded p99 blip** -- asserted at its strongest: the degraded run's
  p99 latency in ticks *equals* the fault-free run's.

Alongside the gate: fault-injector unit semantics (kill / hang / corrupt /
heal, seeded schedules), replicated placement invariants, and retry
accounting down to the pool counters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.testing import derive_rng
from repro.core import ChipConfig, HctConfig
from repro.errors import (
    DeviceFailedError,
    IntegrityError,
    ReplicationError,
    SchedulerError,
)
from repro.runtime import DevicePool, FaultEvent, FaultInjector, FaultSchedule, PumServer


def tiny_pool(num_devices=3, num_hcts=3, replication=1, policy="least_loaded",
              verify="off"):
    config = ChipConfig(hct=HctConfig.small(), num_hcts=num_hcts)
    return DevicePool(
        num_devices=num_devices, config=config, policy=policy,
        replication=replication, verify=verify,
    )


def make_server(replication=2, num_devices=3, **kwargs):
    pool = tiny_pool(num_devices=num_devices, replication=replication)
    defaults = dict(max_batch=4, max_wait_ticks=2, queue_capacity=256)
    defaults.update(kwargs)
    return PumServer(pool=pool, **defaults)


class TestFaultInjector:
    def test_kill_blocks_until_heal(self):
        pool = tiny_pool(num_devices=2, replication=1)
        injector = FaultInjector().attach(pool)
        allocation = pool.set_matrix(np.eye(8, dtype=np.int64), element_size=4)
        victim = allocation.devices_used[0]
        injector.kill(victim)
        vectors = np.ones((2, 8), dtype=np.int64)
        with pytest.raises(DeviceFailedError) as excinfo:
            pool.exec_mvm_batch(allocation, vectors, input_bits=1)
        assert excinfo.value.kind == "exhausted"  # no replica to fail over to
        assert injector.calls_blocked >= 1
        injector.heal(victim)
        assert pool.failed_devices == []
        out = pool.exec_mvm_batch(allocation, vectors, input_bits=1)
        assert np.array_equal(out, vectors)

    def test_hang_clears_itself(self):
        pool = tiny_pool(num_devices=2, replication=2)
        injector = FaultInjector().attach(pool)
        allocation = pool.set_matrix(np.eye(8, dtype=np.int64), element_size=4)
        primary = allocation.shards[0][0].device_index
        injector.hang(primary, calls=1)
        vectors = np.ones((2, 8), dtype=np.int64)
        out = pool.exec_mvm_batch(allocation, vectors, input_bits=1)
        assert np.array_equal(out, vectors)  # served by the replica
        assert pool.replica_retries == 1
        assert injector.active_faults() == {}  # hang consumed its budget
        # The device stays health-marked until restored; traffic keeps
        # flowing on the replica (a hit, not a retry).
        out = pool.exec_mvm_batch(allocation, vectors, input_bits=1)
        assert np.array_equal(out, vectors)
        assert pool.replica_hits >= 1

    def test_corrupt_flips_bits_deterministically(self):
        results = []
        for _ in range(2):
            pool = tiny_pool(num_devices=1, replication=1)
            injector = FaultInjector(seed=7).attach(pool)
            allocation = pool.set_matrix(np.eye(8, dtype=np.int64),
                                         element_size=4)
            injector.corrupt(0, calls=1)
            vectors = np.ones((2, 8), dtype=np.int64)
            out = pool.exec_mvm_batch(allocation, vectors, input_bits=1)
            results.append(out)
            # Silent corruption: the call *succeeds* but the payload lies --
            # exactly what the chaos suite's bit-identity assertions exist
            # to catch.
            assert not np.array_equal(out, vectors)
            assert injector.results_corrupted == 1
            clean = pool.exec_mvm_batch(allocation, vectors, input_bits=1)
            assert np.array_equal(clean, vectors)
        assert np.array_equal(results[0], results[1])  # seed-deterministic

    def test_scheduled_events_fire_on_call_counts(self):
        pool = tiny_pool(num_devices=2, replication=2)
        schedule = FaultSchedule(
            events=(FaultEvent(device_index=0, mode="kill", after_call=1),),
        )
        injector = FaultInjector(schedule=schedule).attach(pool)
        allocation = pool.set_matrix(np.eye(8, dtype=np.int64), element_size=4)
        assert allocation.shards[0][0].device_index == 0
        vectors = np.ones((1, 8), dtype=np.int64)
        out = pool.exec_mvm_batch(allocation, vectors, input_bits=1)  # call 0
        assert np.array_equal(out, vectors)
        assert pool.replica_retries == 0
        out = pool.exec_mvm_batch(allocation, vectors, input_bits=1)  # call 1: kill
        assert np.array_equal(out, vectors)
        assert pool.replica_retries == 1
        assert injector.kills_triggered == 1

    def test_schedule_from_seed_is_reproducible(self):
        first = FaultSchedule.from_seed(42, num_devices=4)
        second = FaultSchedule.from_seed(42, num_devices=4)
        assert first == second
        different = FaultSchedule.from_seed(43, num_devices=4)
        assert first != different
        for event in first.events:
            assert 0 <= event.device_index < 4
            assert event.mode in ("kill", "hang", "corrupt")
            assert event.duration_calls >= 1

    def test_event_validation(self):
        with pytest.raises(SchedulerError):
            FaultEvent(device_index=0, mode="meltdown")
        with pytest.raises(SchedulerError):
            FaultEvent(device_index=0, mode="kill", after_call=-1)
        with pytest.raises(SchedulerError):
            FaultEvent(device_index=0, mode="hang", duration_calls=0)
        injector = FaultInjector()
        with pytest.raises(SchedulerError):
            injector.hang(0, calls=0)
        with pytest.raises(SchedulerError):
            injector.corrupt(0, calls=0)

    def test_detach_stops_faults(self):
        pool = tiny_pool(num_devices=1, replication=1)
        injector = FaultInjector().attach(pool)
        allocation = pool.set_matrix(np.eye(8, dtype=np.int64), element_size=4)
        injector.kill(0)
        injector.detach()
        assert pool.fault_injector is None
        out = pool.exec_mvm(allocation, np.ones(8, dtype=np.int64), input_bits=1)
        assert np.array_equal(out, np.ones(8, dtype=np.int64))

    def test_attach_same_pool_is_idempotent(self):
        pool = tiny_pool(num_devices=2)
        injector = FaultInjector()
        assert injector.attach(pool) is injector
        injector.kill(1)
        assert injector.attach(pool) is injector  # no-op, not a reset
        assert pool.fault_injector is injector
        assert injector.active_faults() == {1: "kill"}

    def test_attach_over_a_different_injector_raises(self):
        pool = tiny_pool(num_devices=2)
        first = FaultInjector().attach(pool)
        with pytest.raises(SchedulerError, match="already has a FaultInjector"):
            FaultInjector().attach(pool)
        assert pool.fault_injector is first  # conflict left the pool alone
        first.detach()
        second = FaultInjector().attach(pool)  # explicit detach unblocks
        assert pool.fault_injector is second

    def test_attach_to_a_new_pool_moves_the_injector(self):
        first = tiny_pool(num_devices=2)
        second = tiny_pool(num_devices=2)
        injector = FaultInjector().attach(first)
        injector.attach(second)
        assert first.fault_injector is None
        assert second.fault_injector is injector

    def test_detach_is_idempotent(self):
        pool = tiny_pool(num_devices=2)
        injector = FaultInjector().attach(pool)
        injector.detach()
        injector.detach()  # second detach: no-op, no error
        assert pool.fault_injector is None
        FaultInjector().detach()  # never attached: also a no-op


class TestReplicatedPlacement:
    def test_replicas_land_on_distinct_devices(self):
        for policy in ("round_robin", "least_loaded", "cache_affinity"):
            pool = tiny_pool(num_devices=3, replication=2, policy=policy)
            rng = derive_rng("placement", policy)
            matrix = rng.integers(-8, 8, size=(40, 12))
            allocation = pool.set_matrix(matrix, element_size=4, precision=0)
            assert allocation.replication == 2
            bands = {}
            for shard, _ in allocation.shards:
                bands.setdefault((shard.row_start, shard.row_end), []).append(
                    shard.device_index
                )
            for devices in bands.values():
                assert len(devices) == 2
                assert len(set(devices)) == 2, \
                    f"{policy} stacked replicas on one device"

    def test_replication_factor_validated(self):
        with pytest.raises(ReplicationError) as excinfo:
            tiny_pool(num_devices=2, replication=3)
        assert excinfo.value.replication == 3
        assert excinfo.value.num_devices == 2
        with pytest.raises(ReplicationError):
            tiny_pool(num_devices=2, replication=0)

    def test_replicated_results_bit_identical_to_unreplicated(self):
        rng = derive_rng("replicated-results")
        matrix = rng.integers(-8, 8, size=(40, 12))
        vectors = rng.integers(0, 8, size=(5, 40))
        plain = tiny_pool(num_devices=3, replication=1)
        replicated = tiny_pool(num_devices=3, replication=2)
        out_plain = plain.exec_mvm_batch(
            plain.set_matrix(matrix, element_size=4, precision=0), vectors,
            input_bits=3,
        )
        out_replicated = replicated.exec_mvm_batch(
            replicated.set_matrix(matrix, element_size=4, precision=0), vectors,
            input_bits=3,
        )
        assert np.array_equal(out_plain, out_replicated)
        assert np.array_equal(out_plain, vectors @ matrix)

    def test_expected_mvm_ignores_replicas(self):
        rng = derive_rng("expected-replicas")
        pool = tiny_pool(num_devices=3, replication=2)
        matrix = rng.integers(-8, 8, size=(40, 12))
        allocation = pool.set_matrix(matrix, element_size=4, precision=0)
        vectors = rng.integers(0, 8, size=(3, 40))
        assert np.array_equal(
            pool.expected_mvm(allocation, vectors), vectors @ matrix
        )

    def test_multi_band_failover_is_exact(self):
        """Sharded + replicated: kill one device, every band still exact."""
        rng = derive_rng("multi-band")
        # Twice the HCTs of the unreplicated sharding tests: every band is
        # stored twice.
        pool = tiny_pool(num_devices=3, num_hcts=6, replication=2)
        matrix = rng.integers(-8, 8, size=(100, 30))  # forces > 1 band
        allocation = pool.set_matrix(matrix, element_size=4, precision=0)
        assert allocation.num_shards > 1
        injector = FaultInjector().attach(pool)
        vectors = rng.integers(0, 8, size=(4, 100))
        injector.kill(allocation.shards[0][0].device_index)
        out = pool.exec_mvm_batch(allocation, vectors, input_bits=3)
        assert np.array_equal(out, vectors @ matrix)
        assert pool.replica_retries >= 1
        single = pool.exec_mvm(allocation, vectors[0], input_bits=3)
        assert np.array_equal(single, vectors[0] @ matrix)


class TestChaosGate:
    """The tier-1 acceptance scenario: kill 1 of 3 devices mid-load, R=2."""

    ROWS, COLS = 16, 8
    WAVES = 12
    WAVE_SIZE = 6

    def _run(self, kill_at_wave=None):
        """Drive open-loop load; optionally kill a device mid-run."""
        rng = derive_rng("chaos-gate")  # same traffic for both runs
        server = make_server(replication=2, num_devices=3)
        matrix = rng.integers(-8, 8, size=(self.ROWS, self.COLS))
        allocation = server.register_matrix(
            "model", matrix, element_size=4, input_bits=3
        )
        injector = FaultInjector().attach(server.pool)
        victim = allocation.shards[0][0].device_index
        futures = []
        for wave in range(self.WAVES):
            if wave == kill_at_wave:
                injector.kill(victim)
            vectors = rng.integers(0, 8, size=(self.WAVE_SIZE, self.ROWS))
            futures.extend(server.submit_batch("model", vectors, input_bits=3))
            server.tick()
        server.run_until_idle()
        return server, futures, matrix, victim

    def test_kill_mid_load_loses_nothing_and_stays_bit_identical(self):
        baseline, base_futures, matrix, _ = self._run(kill_at_wave=None)
        degraded, futures, _, victim = self._run(kill_at_wave=self.WAVES // 2)

        # Zero lost futures: every submitted request reached a terminal
        # state, and all of them completed (replication absorbed the kill).
        assert len(futures) == self.WAVES * self.WAVE_SIZE
        assert all(f.done() for f in futures)
        statuses = {f.result().status for f in futures}
        assert statuses == {"completed"}
        assert degraded.pending == 0
        stats = degraded.stats
        assert stats.submitted == stats.completed \
            + stats.rejected + stats.shed + stats.failed
        assert stats.failed == 0

        # Bit-identical responses vs the fault-free twin -- results *and*
        # tick latencies (failover happens inside the dispatch call, so the
        # tick-domain schedule cannot shift).
        for base_future, future in zip(base_futures, futures):
            base = base_future.result()
            response = future.result()
            assert response.request_id == base.request_id
            assert response.status == base.status
            assert np.array_equal(response.result, base.result)
            assert response.latency_ticks == base.latency_ticks

        # Bounded p99 blip, asserted at its strongest: equality in ticks.
        assert stats.latency_percentile(99) \
            == baseline.stats.latency_percentile(99)

        # The degradation was real and surfaced in the serving telemetry.
        assert stats.replica_retries >= 1
        assert stats.device_failures >= 1
        assert stats.degraded_batches >= 1
        assert degraded.device_health()[victim] is False
        assert baseline.stats.degraded_batches == 0
        assert baseline.stats.replica_retries == 0

    def test_heal_restores_primary_dispatch(self):
        rng = derive_rng("chaos-heal")
        server = make_server(replication=2, num_devices=3)
        matrix = rng.integers(-8, 8, size=(self.ROWS, self.COLS))
        allocation = server.register_matrix(
            "model", matrix, element_size=4, input_bits=3
        )
        injector = FaultInjector().attach(server.pool)
        victim = allocation.shards[0][0].device_index
        injector.kill(victim)
        server.submit_batch(
            "model", rng.integers(0, 8, size=(4, self.ROWS)), input_bits=3
        )
        server.run_until_idle()
        assert server.stats.replica_retries >= 1
        injector.heal(victim)
        assert server.device_health()[victim] is True
        hits_before = server.pool.replica_hits
        retries_before = server.pool.replica_retries
        futures = server.submit_batch(
            "model", rng.integers(0, 8, size=(4, self.ROWS)), input_bits=3
        )
        server.run_until_idle()
        assert all(f.result().status == "completed" for f in futures)
        # Back on the primary: no hits, no retries after recovery.
        assert server.pool.replica_hits == hits_before
        assert server.pool.replica_retries == retries_before

    def test_hang_under_load_self_clears_and_primaries_resume(self):
        """A transient hang mid-load: replicas absorb it, nothing is lost,
        and once the fault self-clears and the device is healed, dispatch
        returns to the primary (hits and retries stop growing)."""
        rng = derive_rng("chaos-hang")
        server = make_server(replication=2, num_devices=3)
        matrix = rng.integers(-8, 8, size=(self.ROWS, self.COLS))
        allocation = server.register_matrix(
            "model", matrix, element_size=4, input_bits=3
        )
        injector = FaultInjector().attach(server.pool)
        victim = allocation.shards[0][0].device_index
        futures = []
        for wave in range(self.WAVES):
            if wave == self.WAVES // 2:
                injector.hang(victim, calls=1)  # transient: self-clears
            vectors = rng.integers(0, 8, size=(self.WAVE_SIZE, self.ROWS))
            futures.extend(server.submit_batch("model", vectors, input_bits=3))
            server.tick()
        server.run_until_idle()

        # Zero lost futures; every rider completed on a replica.
        assert len(futures) == self.WAVES * self.WAVE_SIZE
        assert all(f.done() for f in futures)
        assert {f.result().status for f in futures} == {"completed"}
        assert server.pending == 0
        assert server.stats.replica_retries >= 1
        assert injector.active_faults() == {}  # the hang consumed its budget

        # Heal re-admits the primary: hits and retries go flat afterwards.
        injector.heal(victim)
        hits_before = server.pool.replica_hits
        retries_before = server.pool.replica_retries
        tail = server.submit_batch(
            "model", rng.integers(0, 8, size=(self.WAVE_SIZE, self.ROWS)),
            input_bits=3,
        )
        server.run_until_idle()
        assert all(f.result().status == "completed" for f in tail)
        assert server.pool.replica_hits == hits_before
        assert server.pool.replica_retries == retries_before

    def test_unreplicated_kill_fails_riders_without_wedging(self):
        """R=1 control: the kill is not absorbed, but nothing is lost either."""
        rng = derive_rng("chaos-r1")
        server = make_server(replication=1, num_devices=2)
        matrix = rng.integers(-8, 8, size=(self.ROWS, self.COLS))
        allocation = server.register_matrix(
            "model", matrix, element_size=4, input_bits=3
        )
        injector = FaultInjector().attach(server.pool)
        injector.kill(allocation.shards[0][0].device_index)
        futures = server.submit_batch(
            "model", rng.integers(0, 8, size=(5, self.ROWS)), input_bits=3
        )
        server.run_until_idle()
        assert all(f.done() for f in futures)
        responses = [f.result() for f in futures]
        assert {r.status for r in responses} == {"failed"}
        assert all("DeviceFailedError" in r.error for r in responses)
        assert server.stats.failed == 5
        assert server.pending == 0  # scheduler alive, queue drained


class TestQuarantine:
    """Corruption EWMA quarantine and its interplay with restore_device."""

    def _corrupting_pool(self):
        pool = tiny_pool(num_devices=2, replication=2, verify="full")
        injector = FaultInjector(seed=5).attach(pool)
        allocation = pool.set_matrix(np.eye(8, dtype=np.int64), element_size=4)
        victim = allocation.shards[0][0].device_index
        return pool, injector, allocation, victim

    def test_repeat_offender_is_quarantined(self):
        pool, injector, allocation, victim = self._corrupting_pool()
        injector.corrupt(victim, calls=3)
        vectors = np.ones((1, 8), dtype=np.int64)
        for _ in range(3):
            out = pool.exec_mvm_batch(allocation, vectors, input_bits=1)
            assert np.array_equal(out, vectors)  # replica re-execution wins
        # Three detections push the EWMA over the default 0.5 threshold.
        assert pool.corruptions_detected == 3
        assert pool.integrity_reexecutions == 3
        assert pool.quarantines == 1
        assert victim in pool.failed_devices
        detail = pool.device_health(detail=True)[victim]
        assert detail["quarantined"] is True
        assert detail["healthy"] is False
        assert detail["score"] > 0.5
        assert detail["corruptions"] == 3

    def test_quarantined_device_stays_out_until_restored(self):
        pool, injector, allocation, victim = self._corrupting_pool()
        injector.corrupt(victim, calls=3)
        vectors = np.ones((1, 8), dtype=np.int64)
        for _ in range(3):
            pool.exec_mvm_batch(allocation, vectors, input_bits=1)
        assert pool.quarantines == 1
        # Re-arm the corrupt fault: if the victim ever served a call, the
        # injector's corruption counter would move.  It must not -- a
        # quarantined device gets no traffic until explicitly restored.
        injector.corrupt(victim, calls=1)
        corrupted_before = injector.results_corrupted
        hits_before = pool.replica_hits
        for _ in range(4):
            out = pool.exec_mvm_batch(allocation, vectors, input_bits=1)
            assert np.array_equal(out, vectors)
        assert injector.results_corrupted == corrupted_before
        assert pool.replica_hits > hits_before
        assert pool.corruptions_detected == 3  # no new detections either

        # Explicit restore clears the health score and re-admits the device:
        # the still-armed fault now fires, proving the primary is back.
        pool.restore_device(victim)
        detail = pool.device_health(detail=True)[victim]
        assert detail["quarantined"] is False
        assert detail["healthy"] is True
        assert detail["score"] == 0.0
        out = pool.exec_mvm_batch(allocation, vectors, input_bits=1)
        assert np.array_equal(out, vectors)  # detected and re-executed again
        assert injector.results_corrupted == corrupted_before + 1
        assert pool.corruptions_detected == 4


class TestIntegrityGate:
    """The PR 8 acceptance scenario: seeded corruption mid-load at R=2.

    With ``verify="full"`` every corrupted fan-out result must be detected
    by the ABFT column-sum check and re-executed on a replica *within the
    same dispatch call*, so responses and tick latencies stay bit-identical
    to a fault-free twin.  With ``verify="off"`` the same schedule provably
    serves wrong answers -- the negative control that shows the checksum
    layer is load-bearing.
    """

    ROWS, COLS = 16, 8
    WAVES = 12
    WAVE_SIZE = 6
    CORRUPT_CALLS = 3

    def _run(self, verify, corrupt_at_wave=None):
        rng = derive_rng("integrity-gate")  # same traffic for every run
        server = make_server(replication=2, num_devices=3, verify=verify)
        matrix = rng.integers(-8, 8, size=(self.ROWS, self.COLS))
        allocation = server.register_matrix(
            "model", matrix, element_size=4, input_bits=3
        )
        injector = FaultInjector(seed=11).attach(server.pool)
        victim = allocation.shards[0][0].device_index
        futures = []
        for wave in range(self.WAVES):
            if wave == corrupt_at_wave:
                injector.corrupt(victim, calls=self.CORRUPT_CALLS)
            vectors = rng.integers(0, 8, size=(self.WAVE_SIZE, self.ROWS))
            futures.extend(server.submit_batch("model", vectors, input_bits=3))
            server.tick()
        server.run_until_idle()
        return server, futures, injector, victim

    def test_full_verification_masks_corruption_bit_identically(self):
        baseline, base_futures, _, _ = self._run("full")
        degraded, futures, injector, victim = self._run(
            "full", corrupt_at_wave=self.WAVES // 2
        )

        # Zero lost futures, everything completed.
        assert len(futures) == self.WAVES * self.WAVE_SIZE
        assert all(f.done() for f in futures)
        assert {f.result().status for f in futures} == {"completed"}
        assert degraded.pending == 0

        # Every injected corruption was detected and re-executed.
        stats = degraded.stats
        assert injector.results_corrupted == self.CORRUPT_CALLS
        assert stats.corruptions_detected == self.CORRUPT_CALLS
        assert stats.reexecutions == stats.corruptions_detected
        assert stats.integrity_checks > 0
        assert stats.degraded_batches >= 1

        # Bit-identical to the fault-free twin: results *and* latencies
        # (detection + re-execution happen inside the dispatch call).
        for base_future, future in zip(base_futures, futures):
            base = base_future.result()
            response = future.result()
            assert response.status == base.status
            assert np.array_equal(response.result, base.result)
            assert response.latency_ticks == base.latency_ticks

        # The repeat offender was quarantined and surfaced in health detail.
        assert degraded.device_health()[victim] is False
        assert degraded.device_health(detail=True)[victim]["quarantined"] is True

        # Fault-free full verification is clean: checks ran, nothing fired.
        assert baseline.stats.integrity_checks > 0
        assert baseline.stats.corruptions_detected == 0
        assert baseline.stats.reexecutions == 0
        assert baseline.stats.degraded_batches == 0

    def test_verify_off_negative_control_serves_wrong_answers(self):
        clean, clean_futures, _, _ = self._run("off")
        corrupted, futures, injector, _ = self._run(
            "off", corrupt_at_wave=self.WAVES // 2
        )
        # The exact failure mode the ABFT layer exists to stop: every
        # future "completes", yet payloads are silently wrong.
        assert {f.result().status for f in futures} == {"completed"}
        assert injector.results_corrupted == self.CORRUPT_CALLS
        assert corrupted.stats.integrity_checks == 0
        assert corrupted.stats.corruptions_detected == 0
        differing = sum(
            not np.array_equal(f.result().result, c.result().result)
            for f, c in zip(futures, clean_futures)
        )
        assert differing >= 1

    def test_audit_mode_counts_but_does_not_mask(self):
        clean, clean_futures, _, _ = self._run("off")
        audited, futures, injector, _ = self._run(
            "audit", corrupt_at_wave=self.WAVES // 2
        )
        stats = audited.stats
        assert {f.result().status for f in futures} == {"completed"}
        assert stats.corruptions_detected == injector.results_corrupted
        assert stats.reexecutions == 0  # audit observes, never re-executes
        differing = sum(
            not np.array_equal(f.result().result, c.result().result)
            for f, c in zip(futures, clean_futures)
        )
        assert differing >= 1  # corrupted payloads were served as-is

    def test_unreplicated_corruption_exhausts_into_integrity_error(self):
        pool = tiny_pool(num_devices=1, replication=1, verify="full")
        injector = FaultInjector(seed=9).attach(pool)
        allocation = pool.set_matrix(np.eye(8, dtype=np.int64), element_size=4)
        injector.corrupt(0, calls=4)
        with pytest.raises(IntegrityError) as excinfo:
            pool.exec_mvm_batch(
                allocation, np.ones((1, 8), dtype=np.int64), input_bits=1
            )
        assert excinfo.value.kind == "exhausted"


class TestRebuildGate:
    """Kill *all* replicas of a band under load; auto-rebuild restores R."""

    ROWS, COLS = 16, 8
    WAVES = 12
    WAVE_SIZE = 6

    def _run(self, auto_rebuild, num_devices=4):
        rng = derive_rng("rebuild-gate")
        server = make_server(
            replication=2, num_devices=num_devices, auto_rebuild=auto_rebuild
        )
        matrix = rng.integers(-8, 8, size=(self.ROWS, self.COLS))
        allocation = server.register_matrix(
            "model", matrix, element_size=4, input_bits=3
        )
        injector = FaultInjector().attach(server.pool)
        holders = sorted({s.device_index for s, _ in allocation.shards})
        futures = []
        for wave in range(self.WAVES):
            if wave == self.WAVES // 2:
                for device_index in holders:  # kill every replica at once
                    injector.kill(device_index)
            vectors = rng.integers(0, 8, size=(self.WAVE_SIZE, self.ROWS))
            futures.extend(server.submit_batch("model", vectors, input_bits=3))
            server.tick()
        server.run_until_idle()
        return server, futures, matrix, allocation, holders

    def test_auto_rebuild_restores_replication_with_zero_lost_futures(self):
        server, futures, matrix, allocation, holders = self._run(
            auto_rebuild=True
        )
        assert len(futures) == self.WAVES * self.WAVE_SIZE
        assert all(f.done() for f in futures)
        assert {f.result().status for f in futures} == {"completed"}
        assert server.pending == 0
        assert server.stats.rebuilds >= 1
        assert server.pool.bands_rebuilt >= 1

        # Replication factor is back to R=2 on devices disjoint from the
        # killed holders, and every band is sourced from the retained matrix.
        survivors = sorted({s.device_index for s, _ in allocation.shards})
        assert len(allocation.shards) == 2
        assert not set(survivors) & set(holders)
        assert set(server.pool.failed_devices) == set(holders)

        # Post-rebuild results stay exact (int fast path, no planning stall).
        rng = derive_rng("rebuild-gate-tail")
        vectors = rng.integers(0, 8, size=(4, self.ROWS))
        tail = server.submit_batch("model", vectors, input_bits=3)
        server.run_until_idle()
        for vector, future in zip(vectors, tail):
            assert np.array_equal(future.result().result, vector @ matrix)

    def test_without_auto_rebuild_riders_fail_but_nothing_wedges(self):
        server, futures, _, _, _ = self._run(auto_rebuild=False)
        assert all(f.done() for f in futures)
        statuses = {f.result().status for f in futures}
        assert statuses == {"completed", "failed"}
        failed = [f.result() for f in futures if f.result().status == "failed"]
        assert failed and all("every replica" in r.error for r in failed)
        assert server.pending == 0
        assert server.stats.rebuilds == 0

"""Chaos suite: device failures under load must not lose or corrupt work.

The tier-1 resilience gate of ROADMAP item 5.  The headline scenario kills
1 of N devices mid-load on a replication-2 pool and asserts the three
degraded-mode guarantees end to end:

* **zero lost futures** -- every submitted request resolves exactly once;
* **bit-identical responses** -- results, statuses, and per-request tick
  latencies match a fault-free twin run bit for bit (failover is intra-call,
  so even the latency distribution is unchanged);
* **bounded p99 blip** -- asserted at its strongest: the degraded run's
  p99 latency in ticks *equals* the fault-free run's.

Alongside the gate: fault-injector unit semantics (kill / hang / corrupt /
heal, seeded schedules), replicated placement invariants, and retry
accounting down to the pool counters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.testing import derive_rng
from repro.core import ChipConfig, HctConfig
from repro.errors import DeviceFailedError, ReplicationError, SchedulerError
from repro.runtime import DevicePool, FaultEvent, FaultInjector, FaultSchedule, PumServer


def tiny_pool(num_devices=3, num_hcts=3, replication=1, policy="least_loaded"):
    config = ChipConfig(hct=HctConfig.small(), num_hcts=num_hcts)
    return DevicePool(
        num_devices=num_devices, config=config, policy=policy,
        replication=replication,
    )


def make_server(replication=2, num_devices=3, **kwargs):
    pool = tiny_pool(num_devices=num_devices, replication=replication)
    defaults = dict(max_batch=4, max_wait_ticks=2, queue_capacity=256)
    defaults.update(kwargs)
    return PumServer(pool=pool, **defaults)


class TestFaultInjector:
    def test_kill_blocks_until_heal(self):
        pool = tiny_pool(num_devices=2, replication=1)
        injector = FaultInjector().attach(pool)
        allocation = pool.set_matrix(np.eye(8, dtype=np.int64), element_size=4)
        victim = allocation.devices_used[0]
        injector.kill(victim)
        vectors = np.ones((2, 8), dtype=np.int64)
        with pytest.raises(DeviceFailedError) as excinfo:
            pool.exec_mvm_batch(allocation, vectors, input_bits=1)
        assert excinfo.value.kind == "exhausted"  # no replica to fail over to
        assert injector.calls_blocked >= 1
        injector.heal(victim)
        assert pool.failed_devices == []
        out = pool.exec_mvm_batch(allocation, vectors, input_bits=1)
        assert np.array_equal(out, vectors)

    def test_hang_clears_itself(self):
        pool = tiny_pool(num_devices=2, replication=2)
        injector = FaultInjector().attach(pool)
        allocation = pool.set_matrix(np.eye(8, dtype=np.int64), element_size=4)
        primary = allocation.shards[0][0].device_index
        injector.hang(primary, calls=1)
        vectors = np.ones((2, 8), dtype=np.int64)
        out = pool.exec_mvm_batch(allocation, vectors, input_bits=1)
        assert np.array_equal(out, vectors)  # served by the replica
        assert pool.replica_retries == 1
        assert injector.active_faults() == {}  # hang consumed its budget
        # The device stays health-marked until restored; traffic keeps
        # flowing on the replica (a hit, not a retry).
        out = pool.exec_mvm_batch(allocation, vectors, input_bits=1)
        assert np.array_equal(out, vectors)
        assert pool.replica_hits >= 1

    def test_corrupt_flips_bits_deterministically(self):
        results = []
        for _ in range(2):
            pool = tiny_pool(num_devices=1, replication=1)
            injector = FaultInjector(seed=7).attach(pool)
            allocation = pool.set_matrix(np.eye(8, dtype=np.int64),
                                         element_size=4)
            injector.corrupt(0, calls=1)
            vectors = np.ones((2, 8), dtype=np.int64)
            out = pool.exec_mvm_batch(allocation, vectors, input_bits=1)
            results.append(out)
            # Silent corruption: the call *succeeds* but the payload lies --
            # exactly what the chaos suite's bit-identity assertions exist
            # to catch.
            assert not np.array_equal(out, vectors)
            assert injector.results_corrupted == 1
            clean = pool.exec_mvm_batch(allocation, vectors, input_bits=1)
            assert np.array_equal(clean, vectors)
        assert np.array_equal(results[0], results[1])  # seed-deterministic

    def test_scheduled_events_fire_on_call_counts(self):
        pool = tiny_pool(num_devices=2, replication=2)
        schedule = FaultSchedule(
            events=(FaultEvent(device_index=0, mode="kill", after_call=1),),
        )
        injector = FaultInjector(schedule=schedule).attach(pool)
        allocation = pool.set_matrix(np.eye(8, dtype=np.int64), element_size=4)
        assert allocation.shards[0][0].device_index == 0
        vectors = np.ones((1, 8), dtype=np.int64)
        out = pool.exec_mvm_batch(allocation, vectors, input_bits=1)  # call 0
        assert np.array_equal(out, vectors)
        assert pool.replica_retries == 0
        out = pool.exec_mvm_batch(allocation, vectors, input_bits=1)  # call 1: kill
        assert np.array_equal(out, vectors)
        assert pool.replica_retries == 1
        assert injector.kills_triggered == 1

    def test_schedule_from_seed_is_reproducible(self):
        first = FaultSchedule.from_seed(42, num_devices=4)
        second = FaultSchedule.from_seed(42, num_devices=4)
        assert first == second
        different = FaultSchedule.from_seed(43, num_devices=4)
        assert first != different
        for event in first.events:
            assert 0 <= event.device_index < 4
            assert event.mode in ("kill", "hang", "corrupt")
            assert event.duration_calls >= 1

    def test_event_validation(self):
        with pytest.raises(SchedulerError):
            FaultEvent(device_index=0, mode="meltdown")
        with pytest.raises(SchedulerError):
            FaultEvent(device_index=0, mode="kill", after_call=-1)
        with pytest.raises(SchedulerError):
            FaultEvent(device_index=0, mode="hang", duration_calls=0)
        injector = FaultInjector()
        with pytest.raises(SchedulerError):
            injector.hang(0, calls=0)
        with pytest.raises(SchedulerError):
            injector.corrupt(0, calls=0)

    def test_detach_stops_faults(self):
        pool = tiny_pool(num_devices=1, replication=1)
        injector = FaultInjector().attach(pool)
        allocation = pool.set_matrix(np.eye(8, dtype=np.int64), element_size=4)
        injector.kill(0)
        injector.detach()
        assert pool.fault_injector is None
        out = pool.exec_mvm(allocation, np.ones(8, dtype=np.int64), input_bits=1)
        assert np.array_equal(out, np.ones(8, dtype=np.int64))


class TestReplicatedPlacement:
    def test_replicas_land_on_distinct_devices(self):
        for policy in ("round_robin", "least_loaded", "cache_affinity"):
            pool = tiny_pool(num_devices=3, replication=2, policy=policy)
            rng = derive_rng("placement", policy)
            matrix = rng.integers(-8, 8, size=(40, 12))
            allocation = pool.set_matrix(matrix, element_size=4, precision=0)
            assert allocation.replication == 2
            bands = {}
            for shard, _ in allocation.shards:
                bands.setdefault((shard.row_start, shard.row_end), []).append(
                    shard.device_index
                )
            for devices in bands.values():
                assert len(devices) == 2
                assert len(set(devices)) == 2, \
                    f"{policy} stacked replicas on one device"

    def test_replication_factor_validated(self):
        with pytest.raises(ReplicationError) as excinfo:
            tiny_pool(num_devices=2, replication=3)
        assert excinfo.value.replication == 3
        assert excinfo.value.num_devices == 2
        with pytest.raises(ReplicationError):
            tiny_pool(num_devices=2, replication=0)

    def test_replicated_results_bit_identical_to_unreplicated(self):
        rng = derive_rng("replicated-results")
        matrix = rng.integers(-8, 8, size=(40, 12))
        vectors = rng.integers(0, 8, size=(5, 40))
        plain = tiny_pool(num_devices=3, replication=1)
        replicated = tiny_pool(num_devices=3, replication=2)
        out_plain = plain.exec_mvm_batch(
            plain.set_matrix(matrix, element_size=4, precision=0), vectors,
            input_bits=3,
        )
        out_replicated = replicated.exec_mvm_batch(
            replicated.set_matrix(matrix, element_size=4, precision=0), vectors,
            input_bits=3,
        )
        assert np.array_equal(out_plain, out_replicated)
        assert np.array_equal(out_plain, vectors @ matrix)

    def test_expected_mvm_ignores_replicas(self):
        rng = derive_rng("expected-replicas")
        pool = tiny_pool(num_devices=3, replication=2)
        matrix = rng.integers(-8, 8, size=(40, 12))
        allocation = pool.set_matrix(matrix, element_size=4, precision=0)
        vectors = rng.integers(0, 8, size=(3, 40))
        assert np.array_equal(
            pool.expected_mvm(allocation, vectors), vectors @ matrix
        )

    def test_multi_band_failover_is_exact(self):
        """Sharded + replicated: kill one device, every band still exact."""
        rng = derive_rng("multi-band")
        # Twice the HCTs of the unreplicated sharding tests: every band is
        # stored twice.
        pool = tiny_pool(num_devices=3, num_hcts=6, replication=2)
        matrix = rng.integers(-8, 8, size=(100, 30))  # forces > 1 band
        allocation = pool.set_matrix(matrix, element_size=4, precision=0)
        assert allocation.num_shards > 1
        injector = FaultInjector().attach(pool)
        vectors = rng.integers(0, 8, size=(4, 100))
        injector.kill(allocation.shards[0][0].device_index)
        out = pool.exec_mvm_batch(allocation, vectors, input_bits=3)
        assert np.array_equal(out, vectors @ matrix)
        assert pool.replica_retries >= 1
        single = pool.exec_mvm(allocation, vectors[0], input_bits=3)
        assert np.array_equal(single, vectors[0] @ matrix)


class TestChaosGate:
    """The tier-1 acceptance scenario: kill 1 of 3 devices mid-load, R=2."""

    ROWS, COLS = 16, 8
    WAVES = 12
    WAVE_SIZE = 6

    def _run(self, kill_at_wave=None):
        """Drive open-loop load; optionally kill a device mid-run."""
        rng = derive_rng("chaos-gate")  # same traffic for both runs
        server = make_server(replication=2, num_devices=3)
        matrix = rng.integers(-8, 8, size=(self.ROWS, self.COLS))
        allocation = server.register_matrix(
            "model", matrix, element_size=4, input_bits=3
        )
        injector = FaultInjector().attach(server.pool)
        victim = allocation.shards[0][0].device_index
        futures = []
        for wave in range(self.WAVES):
            if wave == kill_at_wave:
                injector.kill(victim)
            vectors = rng.integers(0, 8, size=(self.WAVE_SIZE, self.ROWS))
            futures.extend(server.submit_batch("model", vectors, input_bits=3))
            server.tick()
        server.run_until_idle()
        return server, futures, matrix, victim

    def test_kill_mid_load_loses_nothing_and_stays_bit_identical(self):
        baseline, base_futures, matrix, _ = self._run(kill_at_wave=None)
        degraded, futures, _, victim = self._run(kill_at_wave=self.WAVES // 2)

        # Zero lost futures: every submitted request reached a terminal
        # state, and all of them completed (replication absorbed the kill).
        assert len(futures) == self.WAVES * self.WAVE_SIZE
        assert all(f.done() for f in futures)
        statuses = {f.result().status for f in futures}
        assert statuses == {"completed"}
        assert degraded.pending == 0
        stats = degraded.stats
        assert stats.submitted == stats.completed \
            + stats.rejected + stats.shed + stats.failed
        assert stats.failed == 0

        # Bit-identical responses vs the fault-free twin -- results *and*
        # tick latencies (failover happens inside the dispatch call, so the
        # tick-domain schedule cannot shift).
        for base_future, future in zip(base_futures, futures):
            base = base_future.result()
            response = future.result()
            assert response.request_id == base.request_id
            assert response.status == base.status
            assert np.array_equal(response.result, base.result)
            assert response.latency_ticks == base.latency_ticks

        # Bounded p99 blip, asserted at its strongest: equality in ticks.
        assert stats.latency_percentile(99) \
            == baseline.stats.latency_percentile(99)

        # The degradation was real and surfaced in the serving telemetry.
        assert stats.replica_retries >= 1
        assert stats.device_failures >= 1
        assert stats.degraded_batches >= 1
        assert degraded.device_health()[victim] is False
        assert baseline.stats.degraded_batches == 0
        assert baseline.stats.replica_retries == 0

    def test_heal_restores_primary_dispatch(self):
        rng = derive_rng("chaos-heal")
        server = make_server(replication=2, num_devices=3)
        matrix = rng.integers(-8, 8, size=(self.ROWS, self.COLS))
        allocation = server.register_matrix(
            "model", matrix, element_size=4, input_bits=3
        )
        injector = FaultInjector().attach(server.pool)
        victim = allocation.shards[0][0].device_index
        injector.kill(victim)
        server.submit_batch(
            "model", rng.integers(0, 8, size=(4, self.ROWS)), input_bits=3
        )
        server.run_until_idle()
        assert server.stats.replica_retries >= 1
        injector.heal(victim)
        assert server.device_health()[victim] is True
        hits_before = server.pool.replica_hits
        retries_before = server.pool.replica_retries
        futures = server.submit_batch(
            "model", rng.integers(0, 8, size=(4, self.ROWS)), input_bits=3
        )
        server.run_until_idle()
        assert all(f.result().status == "completed" for f in futures)
        # Back on the primary: no hits, no retries after recovery.
        assert server.pool.replica_hits == hits_before
        assert server.pool.replica_retries == retries_before

    def test_unreplicated_kill_fails_riders_without_wedging(self):
        """R=1 control: the kill is not absorbed, but nothing is lost either."""
        rng = derive_rng("chaos-r1")
        server = make_server(replication=1, num_devices=2)
        matrix = rng.integers(-8, 8, size=(self.ROWS, self.COLS))
        allocation = server.register_matrix(
            "model", matrix, element_size=4, input_bits=3
        )
        injector = FaultInjector().attach(server.pool)
        injector.kill(allocation.shards[0][0].device_index)
        futures = server.submit_batch(
            "model", rng.integers(0, 8, size=(5, self.ROWS)), input_bits=3
        )
        server.run_until_idle()
        assert all(f.done() for f in futures)
        responses = [f.result() for f in futures]
        assert {r.status for r in responses} == {"failed"}
        assert all("DeviceFailedError" in r.error for r in responses)
        assert server.stats.failed == 5
        assert server.pending == 0  # scheduler alive, queue drained

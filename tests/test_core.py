"""Tests for the hybrid compute tile, chip, and auxiliary components."""

import numpy as np
import pytest

from repro.analog import ShiftAddPlan
from repro.core import (
    AnalogDigitalArbiter,
    AreaModel,
    ChipConfig,
    DarthPumChip,
    Domain,
    HctConfig,
    InstructionInjectionUnit,
    ShiftUnit,
    TransposeUnit,
    VACoreManager,
)
from repro.errors import AllocationError, ArbiterConflictError, CapacityError


class TestShiftUnit:
    def test_shift_applied_during_transfer(self):
        unit = ShiftUnit()
        out = unit.apply(np.array([1, 2, 3]), input_bit=2)
        assert np.array_equal(out.values, np.array([4, 8, 12]))
        assert out.shift == 2

    def test_weight_slice_extra_shift(self):
        unit = ShiftUnit()
        out = unit.apply(np.array([1]), input_bit=1, extra_shift=2)
        assert out.shift == 3

    def test_transfer_cycles_respect_bandwidth(self):
        unit = ShiftUnit(transfer_bytes_per_cycle=8, element_bytes=2)
        assert unit.transfer_cycles(64) == 16
        assert unit.rate_matched(adc_elements_per_cycle=2.0)


class TestTransposeUnit:
    def test_matrix_transpose(self):
        unit = TransposeUnit()
        matrix = np.arange(6).reshape(2, 3)
        result = unit.matrix_transpose(matrix)
        assert np.array_equal(result.values, matrix.T)
        assert result.cycles >= 1

    def test_vector_to_register_counts(self):
        unit = TransposeUnit(elements_per_cycle=8)
        result = unit.vector_to_register(np.arange(20))
        assert result.cycles == 3
        assert unit.vector_count == 1


class TestArbiter:
    def test_serialisation_delays_conflicting_work(self):
        arbiter = AnalogDigitalArbiter()
        start = arbiter.acquire("pipeline:0", Domain.ANALOG, now=0, duration=100)
        assert start == 0
        start = arbiter.acquire("pipeline:0", Domain.DIGITAL, now=10, duration=5)
        assert start == 100
        assert arbiter.stall_events == 1

    def test_try_acquire_raises_on_cross_domain_overlap(self):
        arbiter = AnalogDigitalArbiter()
        arbiter.acquire("pipeline:1", Domain.ANALOG, now=0, duration=50)
        with pytest.raises(ArbiterConflictError):
            arbiter.try_acquire("pipeline:1", Domain.DIGITAL, now=10, duration=5)

    def test_release_clears_ownership(self):
        arbiter = AnalogDigitalArbiter()
        arbiter.acquire("r", Domain.ANALOG, 0, 10)
        arbiter.release("r")
        assert arbiter.owner("r") is None
        assert arbiter.busy_until("r") == 0


class TestInjectionUnit:
    def test_table_configuration_and_counter(self):
        iiu = InstructionInjectionUnit()
        plan = ShiftAddPlan(input_bits=3, weight_slices=2, bits_per_cell=2)
        iiu.configure(plan, accumulator_vr=0, staging_vrs=[1, 2])
        assert len(iiu.table) == 6
        assert iiu.next_entry().shift == 0
        assert iiu.next_entry().shift == 2
        iiu.reset()
        assert iiu.counter == 0

    def test_injection_saves_front_end_slots(self, small_tile):
        # Injection targets must be reserved for analog output first --
        # set_matrix does this in real flows (see RegisterLiveError).
        small_tile.dce.reserve_pipeline(5)
        pipeline = small_tile.pipeline(5)
        iiu = InstructionInjectionUnit()
        costs, saved = iiu.inject_reduction(
            pipeline, [np.arange(4), np.arange(4) * 2], accumulator_vr=0,
            staging_vrs=[1, 2], shifts=[0, 1],
        )
        assert saved > 0
        assert np.array_equal(pipeline.read_vr(0)[:4], np.arange(4) * 3)


class TestVACores:
    def test_allocation_and_bit_width_constraint(self):
        manager = VACoreManager()
        core = manager.allocate(element_size=8, bits_per_cell=2)
        assert core.arrays_per_value == 4
        with pytest.raises(AllocationError):
            manager.allocate(element_size=16, bits_per_cell=2)

    def test_reconfigure_clears_previous_cores(self):
        manager = VACoreManager()
        manager.allocate(8, 2)
        manager.reconfigure(16, 4)
        assert manager.element_size == 16

    def test_shift_add_plan_follows_precision(self):
        manager = VACoreManager()
        core = manager.allocate(8, 2)
        plan = core.shift_add_plan()
        assert plan.weight_slices == 4
        assert plan.bits_per_cell == 2


class TestHybridComputeTile:
    def test_mvm_matches_reference(self, small_tile, rng):
        matrix = rng.integers(-8, 8, size=(20, 12))
        handle = small_tile.set_matrix(matrix, value_bits=4, bits_per_cell=2)
        x = rng.integers(0, 15, size=20)
        result = small_tile.execute_mvm(handle, x, input_bits=4)
        assert np.array_equal(result.values, x @ matrix)

    def test_optimized_schedule_faster_than_naive(self, small_tile, rng):
        matrix = rng.integers(-8, 8, size=(16, 8))
        handle = small_tile.set_matrix(matrix, value_bits=4, bits_per_cell=1)
        result = small_tile.execute_mvm(handle, rng.integers(0, 15, size=16), input_bits=4)
        assert result.optimized_cycles < result.unoptimized_cycles
        assert result.speedup_from_optimization > 1.0

    def test_mvm_energy_and_partials_tracked(self, small_tile, rng):
        matrix = rng.integers(0, 3, size=(16, 8))
        handle = small_tile.set_matrix(matrix, value_bits=2, bits_per_cell=1)
        result = small_tile.execute_mvm(handle, rng.integers(0, 3, size=16), input_bits=2)
        assert result.energy_pj > 0
        assert result.num_partial_products == 2 * 2  # input bits x slices(2)x... row tiles
        assert result.iiu_slots_saved > 0

    def test_disable_analog_mode_moves_matrix_to_dce(self, small_tile, rng):
        matrix = rng.integers(0, 3, size=(8, 6))
        handle = small_tile.set_matrix(matrix, value_bits=2, bits_per_cell=1)
        small_tile.disable_analog_mode(handle, target_pipeline=2)
        pipeline = small_tile.pipeline(2)
        stored = np.stack([pipeline.read_vr(col)[:8] for col in range(6)], axis=1)
        assert np.array_equal(stored, matrix)
        with pytest.raises(AllocationError):
            small_tile.execute_mvm(handle, np.zeros(8, dtype=np.int64))

    def test_disable_digital_mode_returns_raw_reduction(self, small_tile, rng):
        matrix = rng.integers(0, 3, size=(8, 6))
        handle = small_tile.set_matrix(matrix, value_bits=2, bits_per_cell=1)
        small_tile.disable_digital_mode()
        x = rng.integers(0, 3, size=8)
        result = small_tile.execute_mvm(handle, x, input_bits=2)
        assert np.array_equal(result.values, x @ matrix)

    def test_vacore_same_width_constraint_enforced(self, small_tile):
        small_tile.alloc_vacore(8, 2)
        with pytest.raises(AllocationError):
            small_tile.alloc_vacore(4, 1)


class TestAreaModel:
    def test_iso_area_counts_match_paper(self):
        assert AreaModel(HctConfig.paper_default("sar")).iso_area_hct_count() == 1860
        assert AreaModel(HctConfig.paper_default("ramp")).iso_area_hct_count() == 1660

    def test_ramp_hct_is_larger_than_sar(self):
        sar = AreaModel(HctConfig.paper_default("sar")).effective_hct_area_um2()
        ramp = AreaModel(HctConfig.paper_default("ramp")).effective_hct_area_um2()
        assert ramp > sar

    def test_breakdown_sums_to_raw_total(self):
        model = AreaModel(HctConfig.paper_default("sar"))
        breakdown = model.breakdown()
        parts = breakdown["dce"] + breakdown["ace"] + breakdown["hct_auxiliary"] \
            + breakdown["front_end_share"]
        assert parts == pytest.approx(breakdown["raw_total"])

    def test_chip_capacity_near_paper_value(self):
        model = AreaModel(HctConfig.paper_default("sar"))
        capacity = model.chip_memory_capacity_gb(1860)
        assert 3.5 < capacity < 4.5  # paper: 4.1 GB


class TestChip:
    def test_allocation_and_release(self):
        chip = DarthPumChip(ChipConfig(num_hcts=16))
        indices = chip.allocate_hcts(4, owner="test")
        assert chip.allocated_hcts == 4
        chip.release_hcts(indices)
        assert chip.allocated_hcts == 0

    def test_over_allocation_raises(self):
        chip = DarthPumChip(ChipConfig(num_hcts=2))
        with pytest.raises(AllocationError):
            chip.allocate_hcts(3)

    def test_lazy_materialisation(self):
        chip = DarthPumChip(ChipConfig(num_hcts=1860))
        assert chip.materialized_hcts == 0
        chip.hct(7)
        assert chip.materialized_hcts == 1
        with pytest.raises(CapacityError):
            chip.hct(5000)

    def test_front_end_sharing(self):
        chip = DarthPumChip(ChipConfig(num_hcts=16, hcts_per_front_end=8))
        assert chip.config.num_front_ends == 2
        assert chip.front_end_for(9).front_end_id == 1

    def test_capacity_matches_paper_order(self):
        chip = DarthPumChip(ChipConfig.iso_area_default("sar"))
        assert 3.5 < chip.memory_capacity_gb() < 4.5

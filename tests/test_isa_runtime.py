"""Tests for the hybrid ISA, assembler, executor, and runtime library."""

import numpy as np
import pytest

from repro.core import ChipConfig, DarthPumChip, HctConfig
from repro.errors import IsaError, QuantizationError
from repro.isa import Instruction, InstructionClass, Opcode, Program, ProgramExecutor, assemble, disassemble
from repro.runtime import DarthPumDevice, plan_matrix, precision_to_bits_per_cell


class TestInstructions:
    def test_missing_operand_rejected(self):
        with pytest.raises(IsaError):
            Instruction(Opcode.DADD, {"pipeline": 0, "dst": 1, "a": 2})

    def test_instruction_classes(self):
        assert Instruction(Opcode.MVM, {"handle": "m", "vector_vr": 0, "result_vr": 1,
                                        "input_bits": 8}).klass is InstructionClass.ANALOG
        assert Instruction(Opcode.DXOR, {"pipeline": 0, "dst": 1, "a": 2, "b": 3}).klass \
            is InstructionClass.DIGITAL
        assert Instruction(Opcode.FENCE, {}).klass is InstructionClass.COORDINATION

    def test_program_class_histogram(self):
        program = Program()
        program.append(Opcode.FENCE)
        program.append(Opcode.DXOR, pipeline=0, dst=1, a=2, b=3)
        assert program.count_by_class() == {"coordination": 1, "digital": 1}


class TestAssembler:
    def test_assemble_and_roundtrip(self):
        source = """
        # toy program
        dwrite pipeline=0 vr=0 data=a
        dadd   pipeline=0 dst=2 a=0 b=1
        dread  pipeline=0 vr=2
        """
        program = assemble(source)
        assert len(program) == 3
        assert assemble(disassemble(program)).instructions == program.instructions

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(IsaError):
            assemble("frobnicate x=1")

    def test_malformed_operand_rejected(self):
        with pytest.raises(IsaError):
            assemble("dread pipeline 0")


class TestExecutor:
    def test_digital_program_executes(self, small_tile):
        executor = ProgramExecutor(small_tile)
        executor.bind_data("a", np.array([1, 2, 3, 4]))
        executor.bind_data("b", np.array([10, 20, 30, 40]))
        program = assemble(
            """
            dwrite pipeline=4 vr=0 data=a
            dwrite pipeline=4 vr=1 data=b
            dadd   pipeline=4 dst=2 a=0 b=1
            dxor   pipeline=4 dst=3 a=0 b=1
            dread  pipeline=4 vr=2
            dread  pipeline=4 vr=3
            """
        )
        trace = executor.run(program)
        assert np.array_equal(trace.reads[2][:4], [11, 22, 33, 44])
        assert np.array_equal(trace.reads[3][:4], np.array([1, 2, 3, 4]) ^ np.array([10, 20, 30, 40]))

    def test_mvm_instruction_through_executor(self, small_tile, rng):
        executor = ProgramExecutor(small_tile)
        matrix = rng.integers(0, 3, size=(8, 6))
        vector = rng.integers(0, 3, size=8)
        executor.bind_matrix("m", matrix)
        executor.host_data["m"] = matrix
        executor.bind_data("v", vector)
        program = Program()
        program.append(Opcode.DWRITE, pipeline=4, vr=0, data="v")
        program.append(Opcode.SET_MATRIX, handle="m", shape=(8, 6), value_bits=2, bits_per_cell=1)
        program.append(Opcode.MVM, handle="m", vector_vr=0, result_vr=1, input_bits=2,
                       vector_pipeline=4, result_pipeline=4)
        program.append(Opcode.DREAD, pipeline=4, vr=1)
        trace = executor.run(program)
        assert np.array_equal(trace.mvm_results[0], vector @ matrix)
        assert np.array_equal(trace.reads[1][:6], vector @ matrix)


class TestAllocator:
    def test_precision_scale_mapping(self):
        assert precision_to_bits_per_cell(0, 8) == 1
        assert precision_to_bits_per_cell(1, 8) == 4
        assert precision_to_bits_per_cell(2, 8) == 8
        assert precision_to_bits_per_cell(2, 4) == 4

    def test_plan_matrix_covers_whole_matrix(self):
        placement = plan_matrix((200, 90), element_size=8, precision=0, hct_config=HctConfig.paper_default())
        covered = np.zeros((200, 90), dtype=bool)
        for tile in placement.tiles:
            covered[tile.row_start:tile.row_end, tile.col_start:tile.col_end] = True
        assert covered.all()

    def test_small_matrix_fits_one_hct(self):
        placement = plan_matrix((64, 64), element_size=8, precision=0, hct_config=HctConfig.paper_default())
        assert placement.hcts_needed == 1


class TestDevice:
    @pytest.fixture
    def device(self):
        config = ChipConfig(hct=HctConfig.small(), num_hcts=8)
        return DarthPumDevice(chip=DarthPumChip(config))

    def test_set_matrix_and_exec_mvm(self, device, rng):
        matrix = rng.integers(-3, 3, size=(12, 10))
        allocation = device.set_matrix(matrix, element_size=4, precision=0)
        x = rng.integers(0, 7, size=12)
        result = device.exec_mvm(allocation, x, input_bits=3)
        assert np.array_equal(result, x @ matrix)

    def test_update_row_and_re_execute(self, device, rng):
        matrix = rng.integers(0, 3, size=(8, 8))
        allocation = device.set_matrix(matrix, element_size=2, precision=0)
        new_row = np.ones(8, dtype=np.int64)
        device.update_row(allocation, 2, new_row)
        x = np.zeros(8, dtype=np.int64)
        x[2] = 1
        assert np.array_equal(device.exec_mvm(allocation, x, input_bits=1), new_row)

    def test_float_matrix_rejected(self, device):
        with pytest.raises(QuantizationError):
            device.set_matrix(np.ones((4, 4)) * 0.5)

    def test_release_returns_hcts(self, device, rng):
        allocation = device.set_matrix(rng.integers(0, 3, size=(8, 8)), element_size=2)
        assert device.chip.allocated_hcts > 0
        device.release(allocation)
        assert device.chip.allocated_hcts == 0

"""Cluster chaos layer: fault injection, hedging, breakers, supervision.

The unit half exercises the deterministic machinery in isolation --
:class:`TransportFaultInjector` on a raw ring, the seeded schedules, the
:class:`CircuitBreaker` state machine on a fake clock, and the worker's
duplicate-suppression/heartbeat behaviour via a direct ``_handle`` call
(no processes).  The e2e half spawns real worker processes and drives
the gray-failure paths end to end: induced stragglers hedged onto
replicas, dropped frames recovered by re-dispatch, breaker-open
backpressure, and supervised auto-restart after SIGKILL.

Every random schedule derives from ``REPRO_TEST_SEED`` (default 12345;
CI sweeps {12345, 1, 31337}), so any failure reproduces by exporting the
same seed locally.
"""

import asyncio
import os
import signal
import time

import numpy as np
import pytest

from repro.core.config import ChipConfig, HctConfig
from repro.errors import (
    AdmissionError,
    CircuitOpenError,
    ClusterError,
    TransportError,
)
from repro.runtime.cluster import (
    CircuitBreaker,
    ClusterGateway,
    ShmRing,
    TransportFaultEvent,
    TransportFaultInjector,
    TransportFaultSchedule,
    TransportFaultSpec,
)
from repro.runtime.cluster.messages import K_STRAGGLE, K_SUBMIT, encode_message
from repro.runtime.cluster.worker import WorkerState, _handle
from repro.runtime.pool import DevicePool
from repro.runtime.server import PumServer
from repro.testing import REPRO_TEST_SEED

RNG = np.random.default_rng(11)
MATRIX = RNG.integers(-8, 8, size=(24, 16), dtype=np.int64)
TRACE = RNG.integers(0, 16, size=(40, 24), dtype=np.int64)


def run(coroutine):
    return asyncio.run(coroutine)


def gateway(**kwargs):
    kwargs.setdefault("chip", "small")
    kwargs.setdefault("num_workers", 2)
    return ClusterGateway(**kwargs)


def local_server():
    pool = DevicePool(
        num_devices=1,
        config=ChipConfig(hct=HctConfig.small(), num_hcts=3),
    )
    return PumServer(pool=pool, queue_capacity=4096, admission="reject")


# --------------------------------------------------------------------- #
# Unit: seeded schedules                                                   #
# --------------------------------------------------------------------- #
class TestTransportFaultSchedule:
    def test_same_seed_same_schedule(self):
        first = TransportFaultSchedule.from_seed(REPRO_TEST_SEED)
        again = TransportFaultSchedule.from_seed(REPRO_TEST_SEED)
        assert first == again
        assert len(first.events) == 4

    def test_different_seeds_differ(self):
        assert TransportFaultSchedule.from_seed(1) \
            != TransportFaultSchedule.from_seed(2)

    def test_events_stay_inside_the_horizon(self):
        schedule = TransportFaultSchedule.from_seed(
            REPRO_TEST_SEED, num_events=16, horizon_frames=8
        )
        for event in schedule.events:
            assert 0 <= event.after_frame < 8
            assert event.duration_frames >= 1

    def test_bad_mode_rejected(self):
        with pytest.raises(ClusterError, match="unknown transport fault"):
            TransportFaultEvent(after_frame=0, mode="gremlins")
        with pytest.raises(ClusterError, match="unknown transport fault"):
            TransportFaultSchedule.from_seed(1, modes=("gremlins",))

    def test_spec_round_trips_and_derives_per_ring(self):
        spec = TransportFaultSpec(seed=REPRO_TEST_SEED)
        assert TransportFaultSpec.from_spec(spec.to_spec()) == spec
        # Every (worker, direction) ring gets its own schedule...
        request = spec.injector_for(0, "request")
        reply = spec.injector_for(0, "reply")
        other = spec.injector_for(1, "request")
        assert request.schedule != reply.schedule
        assert request.schedule != other.schedule
        # ... deterministically.
        assert spec.injector_for(0, "request").schedule == request.schedule

    def test_spec_rejects_unknown_direction(self):
        with pytest.raises(ClusterError, match="direction"):
            TransportFaultSpec(seed=1, directions=("sideways",))


# --------------------------------------------------------------------- #
# Unit: injector modes on a raw ring                                       #
# --------------------------------------------------------------------- #
class TestTransportFaultInjector:
    @pytest.fixture
    def ring(self):
        ring = ShmRing(capacity=1 << 12)
        yield ring
        ring.close()

    def test_drop_loses_the_frame_but_reports_success(self, ring):
        injector = TransportFaultInjector(kinds=None).attach(ring)
        injector.drop(1)
        assert ring.push([b"\x02gone"]) is True  # the lossy link "accepted"
        assert ring.pop() is None
        assert injector.frames_dropped == 1
        assert ring.push([b"\x02kept"])
        assert ring.pop() == b"\x02kept"

    def test_duplicate_delivers_twice(self, ring):
        injector = TransportFaultInjector(kinds=None).attach(ring)
        injector.duplicate(1)
        assert ring.push([b"\x02twin"])
        assert ring.pop() == b"\x02twin"
        assert ring.pop() == b"\x02twin"
        assert ring.pop() is None
        assert injector.frames_duplicated == 1

    def test_delay_reorders_past_later_frames(self, ring):
        injector = TransportFaultInjector(kinds=None).attach(ring)
        injector.delay_next(1, by=2)
        assert ring.push([b"\x02held"])
        assert ring.push([b"\x02first"])
        assert ring.pop() == b"\x02first"
        assert ring.pop() is None  # not due yet
        assert ring.push([b"\x02second"])
        assert ring.pop() == b"\x02held"  # delivered before the trigger frame
        assert ring.pop() == b"\x02second"
        assert injector.frames_delayed == 1

    def test_flush_force_delivers_held_frames(self, ring):
        injector = TransportFaultInjector(kinds=None).attach(ring)
        injector.delay_next(1, by=100)
        assert ring.push([b"\x02held"])
        assert ring.pop() is None
        assert injector.flush(ring) == 1
        assert ring.pop() == b"\x02held"

    def test_corrupt_is_detected_by_crc_and_skipped(self, ring):
        injector = TransportFaultInjector(
            seed=REPRO_TEST_SEED, kinds=None
        ).attach(ring)
        injector.corrupt(1)
        assert ring.push([b"\x02poisoned-frame"])
        with pytest.raises(TransportError, match="CRC mismatch"):
            ring.peek()
        assert ring.pop() is None  # skipped past: channel recovered
        assert ring.push([b"\x02clean"])
        assert ring.pop() == b"\x02clean"
        assert injector.frames_corrupted == 1

    def test_kind_filter_never_faults_control_frames(self, ring):
        injector = TransportFaultInjector(kinds=(K_SUBMIT,)).attach(ring)
        injector.drop(1)
        control = encode_message(K_STRAGGLE, {"batches": 1, "seconds": 0.0})
        assert ring.push(control)
        assert ring.pop() is not None  # control traffic untouched
        assert injector.frames_seen == 0
        data = encode_message(K_SUBMIT, {"batch": 0, "name": "w"},
                              [np.zeros((1, 4), dtype=np.int64)])
        assert ring.push(data)
        assert ring.pop() is None  # the armed drop hit the data frame
        assert injector.frames_dropped == 1

    def test_seeded_schedule_drives_injection(self, ring):
        schedule = TransportFaultSchedule(events=(
            TransportFaultEvent(after_frame=1, mode="drop"),
        ))
        TransportFaultInjector(schedule, kinds=None).attach(ring)
        assert ring.push([b"\x02zero"])
        assert ring.push([b"\x02one"])  # scheduled drop fires here
        assert ring.push([b"\x02two"])
        assert ring.pop() == b"\x02zero"
        assert ring.pop() == b"\x02two"
        assert ring.pop() is None

    def test_campaign_is_replayable_frame_for_frame(self):
        def campaign():
            ring = ShmRing(capacity=1 << 12)
            injector = TransportFaultInjector(
                TransportFaultSchedule.from_seed(REPRO_TEST_SEED),
                kinds=None,
            ).attach(ring)
            delivered = []
            try:
                for index in range(48):
                    ring.push([b"\x02" + bytes([index])])
                    while True:
                        try:
                            frame = ring.pop()
                        except TransportError:
                            delivered.append("corrupt")
                            continue
                        if frame is None:
                            break
                        delivered.append(frame[1])
            finally:
                ring.close()
            counts = (injector.frames_dropped, injector.frames_duplicated,
                      injector.frames_delayed, injector.frames_corrupted)
            return delivered, counts

        first_delivery, first_counts = campaign()
        again_delivery, again_counts = campaign()
        assert first_delivery == again_delivery
        assert first_counts == again_counts
        assert sum(first_counts) > 0  # the campaign actually did something


# --------------------------------------------------------------------- #
# Unit: circuit breaker state machine (fake clock)                         #
# --------------------------------------------------------------------- #
class TestCircuitBreaker:
    def make(self, **kwargs):
        self.now = 0.0
        kwargs.setdefault("threshold", 2)
        kwargs.setdefault("cooldown", 1.0)
        return CircuitBreaker(clock=lambda: self.now, **kwargs)

    def test_closed_until_consecutive_threshold(self):
        breaker = self.make()
        assert breaker.allows()
        assert breaker.record_failure() is False
        breaker.record_success()  # success resets the consecutive count
        assert breaker.record_failure() is False
        assert breaker.record_failure() is True
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allows()
        assert breaker.opens == 1

    def test_half_open_probe_failure_doubles_cooldown(self):
        breaker = self.make()
        breaker.record_failure()
        breaker.record_failure()
        self.now = 1.5
        assert breaker.allows()  # cooldown elapsed: half-open
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_dispatch()
        assert not breaker.allows()  # one probe at a time
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.cooldown == 2.0
        self.now = 2.5
        assert not breaker.allows()  # doubled cooldown not yet elapsed
        self.now = 3.6
        assert breaker.allows()

    def test_probe_success_closes_and_resets_cooldown(self):
        breaker = self.make()
        breaker.record_failure()
        breaker.record_failure()
        self.now = 1.5
        assert breaker.allows()
        breaker.record_dispatch()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.cooldown == 1.0
        assert breaker.allows()

    def test_cooldown_growth_is_capped(self):
        breaker = self.make(cooldown=1.0, max_cooldown=4.0)
        for _ in range(8):
            breaker.record_failure()
            breaker.record_failure()
            self.now += 100.0
            assert breaker.allows()
            breaker.record_dispatch()
        assert breaker.cooldown <= 4.0

    def test_validation(self):
        with pytest.raises(ClusterError, match="threshold"):
            CircuitBreaker(threshold=0)
        with pytest.raises(ClusterError, match="cooldown"):
            CircuitBreaker(cooldown=0.0)
        with pytest.raises(ClusterError, match="cooldown"):
            CircuitBreaker(cooldown=5.0, max_cooldown=1.0)


# --------------------------------------------------------------------- #
# Unit: worker-side duplicate suppression and in-dispatch heartbeats       #
# --------------------------------------------------------------------- #
class TestWorkerHandle:
    def test_duplicate_submit_replays_identical_reply(self):
        server = local_server()
        server.register_matrix("w", MATRIX)
        state = WorkerState()
        header = {"batch": 7, "name": "w", "input_bits": 8}
        first = _handle(server, K_SUBMIT, header, [TRACE[:4]], state=state)
        again = _handle(server, K_SUBMIT, header, [TRACE[:4]], state=state)
        assert b"".join(first) == b"".join(again)  # bit-identical replay
        assert state.duplicates_suppressed == 1
        # The replay never re-executed: the server saw the batch once.
        assert server.stats.snapshot()["completed"] == 4

    def test_reply_cache_is_bounded(self):
        state = WorkerState()
        for batch in range(200):
            state.remember_reply(batch, [b"frame"])
        assert len(state.reply_cache) == 64
        assert 199 in state.reply_cache and 0 not in state.reply_cache

    def test_dispatch_loop_beats_the_heartbeat(self):
        """Regression: liveness must reflect progress *within* a batch.

        Workers used to beat only between messages, so a long batch was
        indistinguishable from a hang; ``_handle`` now beats once per
        scheduler tick while the batch drains.
        """
        server = local_server()
        server.register_matrix("w", MATRIX)
        beats = []
        _handle(server, K_SUBMIT, {"batch": 1, "name": "w", "input_bits": 8},
                [TRACE[:8]], beat=lambda: beats.append(time.monotonic()))
        assert len(beats) >= 1

    def test_straggle_command_sleeps_while_beating(self):
        server = local_server()
        server.register_matrix("w", MATRIX)
        state = WorkerState()
        _handle(server, K_STRAGGLE, {"batches": 1, "seconds": 0.05}, [],
                state=state)
        assert state.straggle_batches == 1
        beats = []
        started = time.monotonic()
        _handle(server, K_SUBMIT, {"batch": 1, "name": "w", "input_bits": 8},
                [TRACE[:2]], beat=lambda: beats.append(time.monotonic()),
                state=state)
        elapsed = time.monotonic() - started
        assert elapsed >= 0.05  # it did straggle
        assert state.straggle_batches == 0  # one-shot
        # The heartbeat advanced *during* the sleep: the straggler looks
        # alive to liveness, which is the whole point of the gray failure.
        assert any(stamp - started < 0.05 for stamp in beats)


# --------------------------------------------------------------------- #
# E2E: straggler hedging                                                   #
# --------------------------------------------------------------------- #
def test_straggler_is_hedged_onto_replica():
    """An induced straggler times out and its batch completes elsewhere."""

    async def scenario():
        async with gateway(
            replication=2, heartbeat_interval=0.02, batch_timeout=0.25,
        ) as gw:
            await gw.register_matrix("w", MATRIX)
            slow = gw.placement_of("w")[0]
            ack = await gw.induce_straggler(slow, batches=1, seconds=2.0)
            assert ack["straggle"] is True
            futures = await gw.submit_batch("w", TRACE[:8])
            responses = await asyncio.wait_for(
                asyncio.gather(*futures), timeout=30
            )
            assert len(responses) == 8  # zero lost futures
            assert all(r.ok for r in responses)
            # The batch finished on a replica, not on the straggler.
            assert all(r.worker_id != slow for r in responses)
            stats = gw.stats.snapshot()
            assert stats["batch_timeouts"] >= 1
            assert stats["hedged_batches"] >= 1
            # Liveness never fired: the straggler kept beating.
            assert stats["worker_failures"] == 0
            assert gw.worker_status()[slow]["alive"] is True
            return np.stack([r.result for r in responses])

    hedged = run(scenario())
    server = local_server()
    server.register_matrix("w", MATRIX)
    futures = server.submit_batch("w", TRACE[:8])
    server.run_until_idle()
    local = np.stack([f.result().result for f in futures])
    assert np.array_equal(hedged, local)  # hedged answers stay bit-identical


def test_batch_timeout_surfaces_after_max_attempts():
    """With one replica and one attempt, a straggler fails the batch."""

    async def scenario():
        async with gateway(
            num_workers=1, batch_timeout=0.15, max_attempts=1,
            stop_timeout=8.0,
        ) as gw:
            await gw.register_matrix("w", MATRIX)
            await gw.induce_straggler(0, batches=1, seconds=1.0)
            futures = await gw.submit_batch("w", TRACE[:4])
            responses = await asyncio.wait_for(
                asyncio.gather(*futures), timeout=30
            )
            assert [r.status for r in responses] == ["failed"] * 4
            assert all("timed out" in r.error for r in responses)
            assert gw.stats.batch_timeouts >= 1
            # The worker's late reply must land as a counted duplicate,
            # never a second resolution.
            deadline = asyncio.get_running_loop().time() + 30
            while gw.stats.duplicate_replies < 1:
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.02)

    run(scenario())


def test_hedge_back_to_same_worker_at_r1():
    """At replication=1 the hedge re-sends to the same worker; the
    worker's duplicate suppression makes the re-send safe and the batch
    still completes exactly once."""

    async def scenario():
        async with gateway(
            num_workers=1, batch_timeout=0.2, hedge_backoff=2.0,
            stop_timeout=8.0,
        ) as gw:
            await gw.register_matrix("w", MATRIX)
            await gw.induce_straggler(0, batches=1, seconds=0.7)
            futures = await gw.submit_batch("w", TRACE[:4])
            responses = await asyncio.wait_for(
                asyncio.gather(*futures), timeout=30
            )
            assert all(r.ok for r in responses)
            assert gw.stats.hedged_batches >= 1
            stats = await gw.drain_worker(0)
            assert stats["duplicates_suppressed"] >= 1

    run(scenario())


# --------------------------------------------------------------------- #
# E2E: circuit breaker routing                                             #
# --------------------------------------------------------------------- #
def test_open_breaker_sheds_as_circuit_open_error():
    async def scenario():
        async with gateway(
            num_workers=1, breaker_threshold=1, breaker_cooldown=0.3,
        ) as gw:
            await gw.register_matrix("w", MATRIX)
            gw._workers[0].breaker.record_failure()  # trip it open
            with pytest.raises(CircuitOpenError, match="circuit breaker"):
                await gw.submit_batch("w", TRACE[:2])
            assert gw.worker_status()[0]["breaker"] == "open"
            await asyncio.sleep(0.35)  # cooldown elapses: half-open probe
            responses = await asyncio.gather(
                *await gw.submit_batch("w", TRACE[:2])
            )
            assert all(r.ok for r in responses)
            assert gw.worker_status()[0]["breaker"] == "closed"

    run(scenario())


def test_breaker_opens_on_consecutive_timeouts_and_feeds_health():
    async def scenario():
        async with gateway(
            num_workers=1, batch_timeout=0.15, max_attempts=1,
            breaker_threshold=2, breaker_cooldown=5.0, stop_timeout=8.0,
        ) as gw:
            await gw.register_matrix("w", MATRIX)
            await gw.induce_straggler(0, batches=2, seconds=0.8)
            for _ in range(2):
                futures = await gw.submit_batch("w", TRACE[:2])
                await asyncio.wait_for(asyncio.gather(*futures), timeout=30)
            assert gw.stats.circuit_opens >= 1
            status = gw.worker_status()[0]
            assert status["breaker"] == "open"
            # Timeouts fed the DeviceHealth EWMA on the way.
            assert status["health_score"] > 0.0
            with pytest.raises(CircuitOpenError):
                await gw.submit_batch("w", TRACE[:2])

    run(scenario())


# --------------------------------------------------------------------- #
# E2E: transport faults against real workers                               #
# --------------------------------------------------------------------- #
def test_dropped_submit_recovers_via_hedge():
    async def scenario():
        async with gateway(num_workers=1, batch_timeout=0.2) as gw:
            await gw.register_matrix("w", MATRIX)
            injector = TransportFaultInjector(
                kinds=(K_SUBMIT,)
            ).attach(gw._workers[0].requests)
            injector.drop(1)
            futures = await gw.submit_batch("w", TRACE[:4])
            responses = await asyncio.wait_for(
                asyncio.gather(*futures), timeout=30
            )
            assert all(r.ok for r in responses)
            assert injector.frames_dropped == 1
            assert gw.stats.batch_timeouts >= 1
            assert gw.stats.retried_batches >= 1

    run(scenario())


def test_duplicated_submit_is_suppressed_end_to_end():
    async def scenario():
        async with gateway(num_workers=1) as gw:
            await gw.register_matrix("w", MATRIX)
            injector = TransportFaultInjector(
                kinds=(K_SUBMIT,)
            ).attach(gw._workers[0].requests)
            injector.duplicate(1)
            futures = await gw.submit_batch("w", TRACE[:4])
            responses = await asyncio.wait_for(
                asyncio.gather(*futures), timeout=30
            )
            assert all(r.ok for r in responses)
            # The worker replayed (not re-executed) the dup, and the
            # gateway discarded the extra RESULTS frame.
            deadline = asyncio.get_running_loop().time() + 30
            while gw.stats.duplicate_replies < 1:
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.02)
            stats = await gw.drain_worker(0)
            assert stats["duplicates_suppressed"] >= 1
            assert stats["completed"] == 4.0  # executed exactly once

    run(scenario())


def test_seeded_fault_campaign_stays_bit_identical():
    """The chaos-gate core at test scale: a seeded drop/dup/delay/corrupt
    schedule on both directions of every ring, under replication=2 with
    hedging on -- zero lost futures and answers equal to a fault-free
    single-process server."""

    async def scenario():
        spec = TransportFaultSpec(
            seed=REPRO_TEST_SEED, num_events=3, horizon_frames=10,
        )
        async with gateway(
            replication=2, batch_timeout=0.4, transport_faults=spec,
            heartbeat_interval=0.02, stop_timeout=8.0,
        ) as gw:
            await gw.register_matrix("w", MATRIX)
            futures = []
            for start in range(0, 40, 4):
                while True:  # shed submits (window or breaker) retry
                    try:
                        futures.extend(
                            await gw.submit_batch("w", TRACE[start: start + 4])
                        )
                        break
                    except AdmissionError:
                        await asyncio.sleep(0.02)
                await asyncio.sleep(0.01)
            responses = await asyncio.wait_for(
                asyncio.gather(*futures), timeout=60
            )
            assert len(responses) == 40  # zero lost futures
            assert all(r.ok for r in responses), \
                [r.error for r in responses if not r.ok]
            ordered = sorted(responses, key=lambda r: r.request_id)
            return np.stack([r.result for r in ordered])

    chaotic = run(scenario())
    server = local_server()
    server.register_matrix("w", MATRIX)
    futures = server.submit_batch("w", TRACE)
    server.run_until_idle()
    local = np.stack([f.result().result for f in futures])
    assert np.array_equal(chaotic, local)


# --------------------------------------------------------------------- #
# E2E: supervised restart                                                  #
# --------------------------------------------------------------------- #
def test_supervisor_restarts_killed_worker():
    async def scenario():
        async with gateway(
            replication=2, heartbeat_interval=0.02, auto_restart=True,
            stop_timeout=2.0,
        ) as gw:
            await gw.register_matrix("w", MATRIX)
            os.kill(gw._workers[0].process.pid, signal.SIGKILL)
            deadline = asyncio.get_running_loop().time() + 30
            while gw.stats.supervised_restarts < 1 \
                    or not gw.worker_status()[0]["alive"]:
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.02)
            # The healed worker was re-registered and serves again.
            responses = await asyncio.gather(
                *await gw.submit_batch("w", TRACE[:6])
            )
            assert all(r.ok for r in responses)
            assert gw.stats.restarts >= 1

    run(scenario())


def test_supervisor_respects_restart_budget():
    async def scenario():
        async with gateway(
            replication=2, heartbeat_interval=0.02, auto_restart=True,
            restart_budget=1, restart_window=120.0, stop_timeout=2.0,
        ) as gw:
            await gw.register_matrix("w", MATRIX)
            os.kill(gw._workers[0].process.pid, signal.SIGKILL)
            deadline = asyncio.get_running_loop().time() + 30
            while gw.stats.supervised_restarts < 1 \
                    or not gw.worker_status()[0]["alive"]:
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.02)
            # Second crash inside the window: the budget is spent, so the
            # worker stays down instead of crash-looping.
            os.kill(gw._workers[0].process.pid, signal.SIGKILL)
            while gw.stats.worker_failures < 2:
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.02)
            await asyncio.sleep(0.2)
            assert gw.stats.supervised_restarts == 1
            assert gw.worker_status()[0]["alive"] is False
            # The surviving replica still serves.
            responses = await asyncio.gather(
                *await gw.submit_batch("w", TRACE[:4])
            )
            assert all(r.ok for r in responses)

    run(scenario())


# --------------------------------------------------------------------- #
# Configuration validation                                                 #
# --------------------------------------------------------------------- #
def test_chaos_knobs_are_validated():
    with pytest.raises(ClusterError, match="batch_timeout"):
        ClusterGateway(num_workers=1, batch_timeout=0.0)
    with pytest.raises(ClusterError, match="max_attempts"):
        ClusterGateway(num_workers=1, max_attempts=0)
    with pytest.raises(ClusterError, match="hedge_backoff"):
        ClusterGateway(num_workers=1, hedge_backoff=0.5)
    with pytest.raises(ClusterError, match="stop_timeout"):
        ClusterGateway(num_workers=1, stop_timeout=0.0)
    with pytest.raises(ClusterError, match="restart_budget"):
        ClusterGateway(num_workers=1, restart_budget=0)

"""DevicePool scheduling, sharding, and accounting edge cases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.testing import derive_rng

from repro.core import ChipConfig, HctConfig
from repro.errors import AllocationError, NoDevicesError, QuantizationError
from repro.runtime import (
    CacheAffinityPolicy,
    DevicePool,
    LeastLoadedPolicy,
    RoundRobinPolicy,
    make_placement_policy,
)


@pytest.fixture
def rng():
    return derive_rng("pool")


def tiny_pool(num_devices=3, num_hcts=3, policy="least_loaded"):
    """A pool of small chips so sharding kicks in at test-friendly sizes."""
    config = ChipConfig(hct=HctConfig.small(), num_hcts=num_hcts)
    return DevicePool(num_devices=num_devices, config=config, policy=policy)


class TestScheduling:
    def test_least_loaded_spreads_matrices(self):
        pool = tiny_pool()
        first = pool.set_matrix(np.eye(8, dtype=np.int64), element_size=4)
        second = pool.set_matrix(np.eye(8, dtype=np.int64), element_size=4)
        third = pool.set_matrix(np.eye(8, dtype=np.int64), element_size=4)
        assert first.devices_used == [0]
        assert second.devices_used == [1]
        assert third.devices_used == [2]

    def test_round_robin_cycles_devices(self):
        pool = tiny_pool(num_devices=2, policy="round_robin")
        placements = [
            pool.set_matrix(np.eye(8, dtype=np.int64), element_size=4).devices_used
            for _ in range(4)
        ]
        assert placements == [[0], [1], [0], [1]]

    def test_unknown_policy_rejected(self):
        with pytest.raises(AllocationError):
            tiny_pool(policy="random")

    def test_empty_pool_raises_named_error(self):
        with pytest.raises(NoDevicesError):
            DevicePool(num_devices=0)
        # The named error is still an AllocationError for legacy callers.
        assert issubclass(NoDevicesError, AllocationError)

    def test_set_matrix_with_zero_devices_raises_named_error(self):
        pool = tiny_pool(num_devices=1)
        pool.devices.clear()  # a misconfigured deployment, not a planner bug
        with pytest.raises(NoDevicesError, match="zero devices"):
            pool.set_matrix(np.eye(8, dtype=np.int64), element_size=4)


class TestPlacementPolicies:
    def test_policy_factory_resolves_names_and_instances(self):
        assert isinstance(make_placement_policy("round_robin"), RoundRobinPolicy)
        assert isinstance(make_placement_policy("least_loaded"), LeastLoadedPolicy)
        assert isinstance(make_placement_policy("cache_affinity"), CacheAffinityPolicy)
        instance = RoundRobinPolicy()
        assert make_placement_policy(instance) is instance
        with pytest.raises(AllocationError):
            make_placement_policy("fifo")

    def test_policy_instance_accepted_by_pool(self):
        pool = DevicePool(
            num_devices=2,
            config=ChipConfig(hct=HctConfig.small(), num_hcts=3),
            policy=RoundRobinPolicy(),
        )
        assert pool.policy == "round_robin"

    def test_cache_affinity_reuses_devices_for_updates(self):
        pool = tiny_pool(policy="cache_affinity")
        first = pool.set_matrix(np.eye(8, dtype=np.int64), element_size=4)
        assert first.devices_used == [0]  # least-loaded fallback seeds device 0
        updated = pool.set_matrix(
            np.eye(8, dtype=np.int64), element_size=4,
            affinity=first.devices_used,
        )
        assert updated.devices_used == first.devices_used
        # Without an affinity hint the policy behaves like least-loaded.
        fresh = pool.set_matrix(np.eye(8, dtype=np.int64), element_size=4)
        assert fresh.devices_used == [1]

    def test_cache_affinity_ignores_stale_affinity_hints(self):
        pool = tiny_pool(policy="cache_affinity")
        allocation = pool.set_matrix(
            np.eye(8, dtype=np.int64), element_size=4, affinity=[99, -3]
        )
        assert allocation.devices_used == [0]  # fell back to least-loaded

    def test_cache_affinity_falls_back_when_preferred_device_is_full(self, rng):
        pool = tiny_pool(policy="cache_affinity", num_devices=3)
        big = rng.integers(-8, 8, size=(100, 30))  # needs more than one chip
        allocation = pool.set_matrix(big, element_size=4, precision=0)
        assert len(allocation.devices_used) > 1
        vectors = rng.integers(0, 8, size=(4, 100))
        assert np.array_equal(
            pool.exec_mvm_batch(allocation, vectors, input_bits=3), vectors @ big
        )

    def test_round_robin_cursor_survives_refactor(self):
        pool = tiny_pool(num_devices=3, policy="round_robin")
        used = [
            pool.set_matrix(np.eye(8, dtype=np.int64), element_size=4).devices_used
            for _ in range(3)
        ]
        assert used == [[0], [1], [2]]


class TestCacheAffinityCycles:
    """Eviction/affinity decisions across repeated register/release cycles.

    The policy was previously exercised only incidentally (one update per
    test); serving reality is a churn of re-registrations and releases, and
    the affinity decisions must stay stable -- and honest -- through it.
    """

    def test_affinity_survives_many_update_cycles(self):
        pool = tiny_pool(policy="cache_affinity")
        allocation = pool.set_matrix(np.eye(8, dtype=np.int64), element_size=4)
        home = allocation.devices_used
        for generation in range(8):
            previous = allocation
            pool.release(previous)
            allocation = pool.set_matrix(
                np.full((8, 8), generation, dtype=np.int64) % 4,
                element_size=4, affinity=previous.devices_used,
            )
            assert allocation.devices_used == home, \
                f"update {generation} migrated off the affine device"

    def test_release_restores_affinity_capacity(self):
        """Churn must not leak: capacity returns fully after each cycle."""
        pool = tiny_pool(policy="cache_affinity")
        for _ in range(6):
            allocation = pool.set_matrix(
                np.eye(8, dtype=np.int64), element_size=4
            )
            assert any(u > 0 for u in pool.utilization())
            pool.release(allocation)
            assert pool.utilization() == [0.0] * pool.num_devices
        assert pool.allocations == []

    def test_eviction_to_other_device_when_affine_device_fills(self):
        pool = tiny_pool(policy="cache_affinity", num_devices=2)
        first = pool.set_matrix(np.eye(8, dtype=np.int64), element_size=4)
        home = first.devices_used[0]
        # Fill the affine device, then ask for affinity to it anyway.
        fillers = []
        while pool.free_hcts(home) > 0:
            fillers.append(
                pool.set_matrix(np.eye(8, dtype=np.int64), element_size=4,
                                affinity=[home])
            )
        overflow = pool.set_matrix(
            np.eye(8, dtype=np.int64), element_size=4, affinity=[home]
        )
        assert overflow.devices_used == [1 - home]  # fell back, not failed
        # Releasing a filler re-opens the affine device for the next cycle.
        pool.release(fillers[-1])
        back_home = pool.set_matrix(
            np.eye(8, dtype=np.int64), element_size=4, affinity=[home]
        )
        assert back_home.devices_used == [home]

    def test_affinity_accumulates_across_shards(self, rng):
        """Later shards of one allocation prefer devices of earlier shards."""
        pool = tiny_pool(policy="cache_affinity", num_devices=3)
        big = rng.integers(-8, 8, size=(100, 30))
        allocation = pool.set_matrix(big, element_size=4, precision=0)
        assert allocation.num_shards > 1
        ordered = [shard.device_index for shard, _ in allocation.shards]
        # Consecutive bands stay on one device until it fills (affinity
        # pull), so the device sequence is sorted runs, not alternation.
        runs = sum(
            1 for a, b in zip(ordered, ordered[1:]) if a != b
        )
        assert runs == len(set(ordered)) - 1


class TestReplication:
    """Pool-level replication basics (failure handling lives in test_chaos)."""

    def test_default_pools_are_unreplicated(self):
        pool = tiny_pool()
        allocation = pool.set_matrix(np.eye(8, dtype=np.int64), element_size=4)
        assert pool.replication == 1
        assert allocation.replication == 1
        assert len(allocation.shards) == allocation.num_shards

    def test_replicated_allocation_doubles_storage_not_bands(self, rng):
        pool = tiny_pool(num_devices=3)
        replicated = DevicePool(
            num_devices=3,
            config=ChipConfig(hct=HctConfig.small(), num_hcts=3),
            replication=2,
        )
        matrix = rng.integers(-8, 8, size=(8, 8))
        plain_alloc = pool.set_matrix(matrix, element_size=4)
        repl_alloc = replicated.set_matrix(matrix, element_size=4)
        assert repl_alloc.num_shards == plain_alloc.num_shards
        assert len(repl_alloc.shards) == 2 * len(plain_alloc.shards)
        assert len(repl_alloc.devices_used) == 2

    def test_release_frees_replicas_too(self, rng):
        pool = DevicePool(
            num_devices=2,
            config=ChipConfig(hct=HctConfig.small(), num_hcts=3),
            replication=2,
        )
        allocation = pool.set_matrix(
            rng.integers(-8, 8, size=(8, 8)), element_size=4
        )
        assert all(u > 0 for u in pool.utilization())
        pool.release(allocation)
        assert pool.utilization() == [0.0, 0.0]

    def test_device_health_marks_and_restores(self):
        pool = tiny_pool()
        assert pool.device_health() == [True, True, True]
        pool.mark_device_failed(1)
        pool.mark_device_failed(1)  # idempotent
        assert pool.failed_devices == [1]
        assert pool.device_failures == 1
        assert pool.device_health() == [True, False, True]
        pool.restore_device(1)
        pool.restore_device(1)
        assert pool.failed_devices == []
        assert pool.device_health() == [True, True, True]


class TestSharding:
    def test_matrix_larger_than_one_chip_is_sharded(self, rng):
        pool = tiny_pool()
        # Needs 7 small HCTs in one piece; each chip has only 3.
        matrix = rng.integers(-8, 8, size=(100, 30))
        allocation = pool.set_matrix(matrix, element_size=4, precision=0)
        assert allocation.num_shards > 1
        assert len(allocation.devices_used) > 1
        # Shards tile the row range contiguously and without overlap.
        bands = sorted((s.row_start, s.row_end) for s, _ in allocation.shards)
        assert bands[0][0] == 0 and bands[-1][1] == 100
        for (_, end), (start, _) in zip(bands, bands[1:]):
            assert end == start

    def test_uneven_shards_stay_exact(self, rng):
        pool = tiny_pool()
        matrix = rng.integers(-8, 8, size=(100, 30))  # 100 % 3 != 0
        allocation = pool.set_matrix(matrix, element_size=4, precision=0)
        sizes = {shard.rows for shard, _ in allocation.shards}
        assert len(sizes) > 1  # genuinely uneven bands
        vectors = rng.integers(0, 8, size=(6, 100))
        result = pool.exec_mvm_batch(allocation, vectors, input_bits=3)
        assert np.array_equal(result, vectors @ matrix)
        single = pool.exec_mvm(allocation, vectors[0], input_bits=3)
        assert np.array_equal(single, vectors[0] @ matrix)

    def test_expected_mvm_reassembles_shards(self, rng):
        pool = tiny_pool()
        matrix = rng.integers(-8, 8, size=(50, 20))
        allocation = pool.set_matrix(matrix, element_size=4, precision=0)
        vectors = rng.integers(0, 8, size=(2, 50))
        assert np.array_equal(pool.expected_mvm(allocation, vectors), vectors @ matrix)

    def test_oversized_matrix_rejected(self, rng):
        pool = tiny_pool(num_devices=1, num_hcts=1)
        matrix = rng.integers(-8, 8, size=(200, 200))
        with pytest.raises(AllocationError):
            pool.set_matrix(matrix, element_size=4, precision=0)

    def test_release_returns_capacity(self, rng):
        pool = tiny_pool()
        matrix = rng.integers(-8, 8, size=(100, 30))
        allocation = pool.set_matrix(matrix, element_size=4, precision=0)
        assert any(u > 0 for u in pool.utilization())
        pool.release(allocation)
        assert pool.utilization() == [0.0, 0.0, 0.0]
        assert pool.allocations == []


class TestServing:
    def test_exec_requests_serves_in_order(self, rng):
        pool = tiny_pool(num_devices=2)
        a = rng.integers(-8, 8, size=(8, 8))
        b = rng.integers(-8, 8, size=(8, 4))
        alloc_a = pool.set_matrix(a, element_size=4)
        alloc_b = pool.set_matrix(b, element_size=4)
        vec_a = rng.integers(0, 8, size=(3, 8))
        vec_b = rng.integers(0, 8, size=(2, 8))
        results = pool.exec_requests([(alloc_a, vec_a), (alloc_b, vec_b)], input_bits=3)
        assert np.array_equal(results[0], vec_a @ a)
        assert np.array_equal(results[1], vec_b @ b)

    def test_shape_mismatch_rejected(self, rng):
        pool = tiny_pool(num_devices=1)
        allocation = pool.set_matrix(np.eye(8, dtype=np.int64), element_size=4)
        with pytest.raises(QuantizationError):
            pool.exec_mvm(allocation, np.zeros(9, dtype=np.int64))
        with pytest.raises(QuantizationError):
            pool.exec_mvm_batch(allocation, np.zeros((2, 9), dtype=np.int64))

    def test_total_ledger_aggregates_devices(self, rng):
        pool = tiny_pool()
        matrix = rng.integers(-8, 8, size=(100, 30))
        allocation = pool.set_matrix(matrix, element_size=4, precision=0)
        pool.exec_mvm_batch(allocation, rng.integers(0, 8, size=(4, 100)), input_bits=3)
        snapshot = pool.total_ledger().snapshot()
        assert snapshot.cycles > 0
        assert snapshot.energy_pj > 0
        # No double counting: the pool ledger is exactly the chips' ledgers
        # (device.ledger holds runtime-level *copies* of the same charges).
        chip_energy = sum(
            d.chip.total_ledger().snapshot().energy_pj for d in pool.devices
        )
        assert snapshot.energy_pj == pytest.approx(chip_energy)


class TestClose:
    """`close()` is idempotent and safe after a failed fan-out."""

    def test_close_is_idempotent(self, rng):
        pool = tiny_pool()
        matrix = rng.integers(-8, 8, size=(100, 30))
        allocation = pool.set_matrix(matrix, element_size=4)
        vectors = rng.integers(0, 8, size=(2, 100))
        pool.exec_mvm_batch(allocation, vectors, input_bits=3)  # spins workers up
        pool.close()
        assert pool._executor is None
        pool.close()  # second close must be a no-op, not an error
        pool.close()
        # The pool stays usable: the executor is rebuilt lazily.
        out = pool.exec_mvm_batch(allocation, vectors, input_bits=3)
        assert np.array_equal(out, vectors @ matrix)
        pool.close()

    def test_close_safe_after_failed_fanout(self, rng):
        pool = tiny_pool(num_devices=3)
        matrix = rng.integers(-8, 8, size=(120, 30))
        allocation = pool.set_matrix(matrix, element_size=4)
        assert len(allocation.devices_used) > 1
        failing = allocation.devices_used[0]
        original = pool.devices[failing].exec_mvm_batch

        def boom(*args, **kwargs):
            raise RuntimeError("injected device fault")

        pool.devices[failing].exec_mvm_batch = boom
        vectors = rng.integers(0, 8, size=(2, 120))
        with pytest.raises(RuntimeError, match="injected device fault"):
            pool.exec_mvm_batch(allocation, vectors, input_bits=3)
        # Every sibling worker was joined before the raise; shutdown must
        # neither hang nor leave the pool in a half-closed state.
        pool.close()
        pool.close()
        pool.devices[failing].exec_mvm_batch = original
        out = pool.exec_mvm_batch(allocation, vectors, input_bits=3)
        assert np.array_equal(out, vectors @ matrix)
        pool.close()

    def test_context_manager_closes_even_on_error(self, rng):
        matrix = rng.integers(-8, 8, size=(100, 30))
        vectors = rng.integers(0, 8, size=(2, 100))
        with pytest.raises(RuntimeError, match="sentinel"):
            with tiny_pool() as pool:
                allocation = pool.set_matrix(matrix, element_size=4)
                pool.exec_mvm_batch(allocation, vectors, input_bits=3)
                raise RuntimeError("sentinel")
        assert pool._executor is None


class TestEnergyTotals:
    def test_total_energy_pj_is_bit_identical_to_the_ledger_merge(self):
        rng = derive_rng("pool-energy")
        pool = DevicePool(num_devices=2)
        allocation = pool.set_matrix(
            rng.integers(-20, 20, size=(24, 8)), element_size=8
        )
        assert pool.total_energy_pj() == pool.total_ledger().energy_pj
        vectors = rng.integers(0, 16, size=(6, 24))
        pool.exec_mvm_batch(allocation, vectors, input_bits=4)
        assert pool.total_energy_pj() == pool.total_ledger().energy_pj

"""Shared conformance suite for every RequestQueue implementation.

Until now the flat baseline and the indexed fast path were pinned together
in only one direction (the serving-latency gate compares their *responses*
under one traffic shape).  This suite drives both implementations through
the same parametrized scenarios -- push/discard/expire/ready/take/victim,
tombstone churn, mixed priorities -- and additionally replays identical
randomized operation sequences through both, asserting step-for-step
equality, so a future queue change cannot silently diverge from the
contract in either direction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.testing import derive_rng
from repro.errors import SchedulerError
from repro.runtime.queueing import (
    FlatRequestQueue,
    IndexedRequestQueue,
    batch_order,
    make_request_queue,
    victim_order,
)
from repro.runtime.server import Request

QUEUE_NAMES = ["flat", "indexed"]


def make_request(
    request_id,
    name="m",
    input_bits=4,
    priority=0,
    deadline=None,
    arrival_tick=0,
):
    return Request(
        request_id=request_id,
        name=name,
        vector=np.zeros(2, dtype=np.int64),
        input_bits=input_bits,
        priority=priority,
        deadline=deadline,
        arrival_tick=arrival_tick,
    )


@pytest.fixture(params=QUEUE_NAMES)
def queue(request):
    return make_request_queue(request.param)


class TestConformance:
    """Every implementation must satisfy the RequestQueue contract."""

    def test_len_push_take_roundtrip(self, queue):
        for i in range(5):
            queue.push(make_request(i))
        assert len(queue) == 5
        batch = queue.take(("m", 4), max_batch=3)
        assert [r.request_id for r in batch] == [0, 1, 2]
        assert len(queue) == 2

    def test_push_wave_equals_pushes(self, queue):
        wave = [make_request(i, arrival_tick=1) for i in range(4)]
        queue.push_wave(wave)
        assert len(queue) == 4
        assert queue.group_pending(("m", 4)) == 4
        assert [r.request_id for r in queue.take(("m", 4), 10)] == [0, 1, 2, 3]

    def test_discard_removes_exactly_one(self, queue):
        for i in range(4):
            queue.push(make_request(i))
        removed = queue.discard(2)
        assert removed is not None and removed.request_id == 2
        assert queue.discard(2) is None
        assert queue.discard(99) is None
        assert [r.request_id for r in queue.take(("m", 4), 10)] == [0, 1, 3]

    def test_group_pending_tracks_discards(self, queue):
        for i in range(4):
            queue.push(make_request(i))
        queue.push(make_request(4, name="other"))
        assert queue.group_pending(("m", 4)) == 4
        assert queue.group_pending(("other", 4)) == 1
        assert queue.group_pending(("missing", 4)) == 0
        queue.discard(0)
        queue.discard(3)
        assert queue.group_pending(("m", 4)) == 2

    def test_pop_expired_returns_id_order(self, queue):
        queue.push(make_request(0, deadline=5))
        queue.push(make_request(1))  # no deadline: never expires
        queue.push(make_request(2, deadline=3))
        queue.push(make_request(3, deadline=9))
        expired = queue.pop_expired(now=7)
        assert [r.request_id for r in expired] == [0, 2]
        assert len(queue) == 2
        assert queue.pop_expired(now=7) == []

    def test_deadline_boundary_is_exclusive(self, queue):
        # A request expires strictly *after* its deadline tick.
        queue.push(make_request(0, deadline=5))
        assert queue.pop_expired(now=5) == []
        assert [r.request_id for r in queue.pop_expired(now=6)] == [0]

    def test_ready_groups_full_batch(self, queue):
        for i in range(3):
            queue.push(make_request(i, arrival_tick=0))
        assert queue.ready_groups(now=1, max_batch=3, max_wait_ticks=100) \
            == [("m", 4)]
        assert queue.ready_groups(now=1, max_batch=4, max_wait_ticks=100) == []

    def test_ready_groups_aged(self, queue):
        queue.push(make_request(0, arrival_tick=0))
        assert queue.ready_groups(now=3, max_batch=8, max_wait_ticks=4) == []
        assert queue.ready_groups(now=4, max_batch=8, max_wait_ticks=4) \
            == [("m", 4)]

    def test_ready_groups_oldest_first(self, queue):
        queue.push(make_request(0, name="b", arrival_tick=2))
        queue.push(make_request(1, name="a", arrival_tick=0))
        ready = queue.ready_groups(now=10, max_batch=8, max_wait_ticks=1)
        assert ready == [("a", 4), ("b", 4)]

    def test_input_bits_split_groups(self, queue):
        queue.push(make_request(0, input_bits=2))
        queue.push(make_request(1, input_bits=8))
        assert queue.group_pending(("m", 2)) == 1
        assert queue.group_pending(("m", 8)) == 1
        assert [r.request_id for r in queue.take(("m", 8), 10)] == [1]

    def test_oldest_wait(self, queue):
        assert queue.oldest_wait(("m", 4), now=9) == -1
        queue.push(make_request(0, arrival_tick=3))
        queue.push(make_request(1, arrival_tick=5))
        assert queue.oldest_wait(("m", 4), now=9) == 6
        queue.discard(0)
        assert queue.oldest_wait(("m", 4), now=9) == 4

    def test_take_respects_priority_then_arrival(self, queue):
        queue.push(make_request(0, priority=0, arrival_tick=0))
        queue.push(make_request(1, priority=2, arrival_tick=1))
        queue.push(make_request(2, priority=1, arrival_tick=1))
        queue.push(make_request(3, priority=2, arrival_tick=2))
        batch = queue.take(("m", 4), max_batch=3)
        assert [r.request_id for r in batch] == [1, 3, 2]
        assert [r.request_id for r in queue.take(("m", 4), 10)] == [0]

    def test_victim_is_lowest_priority_oldest(self, queue):
        assert queue.victim() is None
        queue.push(make_request(0, priority=1, arrival_tick=0))
        queue.push(make_request(1, priority=0, arrival_tick=2))
        queue.push(make_request(2, priority=0, arrival_tick=1))
        victim = queue.victim()
        assert victim.request_id == 2  # lowest priority, then oldest
        assert len(queue) == 3  # victim() must not remove

    def test_tombstone_churn_stays_consistent(self, queue):
        """Interleaved push/discard/take cycles never corrupt the counters."""
        next_id = 0
        for _ in range(6):
            ids = []
            for _ in range(5):
                queue.push(make_request(next_id, arrival_tick=next_id))
                ids.append(next_id)
                next_id += 1
            queue.discard(ids[0])
            queue.discard(ids[3])
            batch = queue.take(("m", 4), max_batch=2)
            assert [r.request_id for r in batch] == [ids[1], ids[2]]
            assert queue.group_pending(("m", 4)) == len(queue)
            leftover = queue.take(("m", 4), max_batch=10)
            assert [r.request_id for r in leftover] == [ids[4]]
            assert len(queue) == 0

    def test_take_from_empty_group(self, queue):
        assert queue.take(("missing", 4), max_batch=4) == []


class TestSharedTieBreaks:
    def test_order_functions_are_shared(self):
        a = make_request(0, priority=1, arrival_tick=5)
        b = make_request(1, priority=0, arrival_tick=2)
        assert batch_order(a) < batch_order(b)
        assert victim_order(b) < victim_order(a)

    def test_factory_rejects_unknown_name(self):
        with pytest.raises(SchedulerError):
            make_request_queue("priority_heap")
        instance = IndexedRequestQueue()
        assert make_request_queue(instance) is instance


class TestDualDriveEquivalence:
    """Replaying one random op sequence through both queues matches exactly."""

    @pytest.mark.parametrize("case", range(20))
    def test_randomized_sequences_bit_identical(self, case):
        rng = derive_rng("queue-conformance", case)
        flat, indexed = FlatRequestQueue(), IndexedRequestQueue()
        names = ["a", "b"]
        next_id = 0
        for step in range(60):
            op = rng.integers(0, 5)
            if op <= 1:  # push (weighted: keeps queues populated)
                request_args = dict(
                    name=names[int(rng.integers(0, len(names)))],
                    input_bits=int(rng.choice([2, 4])),
                    priority=int(rng.integers(0, 3)),
                    deadline=(
                        int(step + rng.integers(1, 6))
                        if rng.integers(0, 2) else None
                    ),
                    arrival_tick=step,
                )
                flat.push(make_request(next_id, **request_args))
                indexed.push(make_request(next_id, **request_args))
                next_id += 1
            elif op == 2 and next_id:  # discard a (maybe absent) id
                victim_id = int(rng.integers(0, next_id))
                removed_flat = flat.discard(victim_id)
                removed_indexed = indexed.discard(victim_id)
                assert (removed_flat is None) == (removed_indexed is None)
            elif op == 3:  # expire
                expired_flat = flat.pop_expired(step)
                expired_indexed = indexed.pop_expired(step)
                assert [r.request_id for r in expired_flat] \
                    == [r.request_id for r in expired_indexed]
            else:  # readiness + dispatch
                ready_flat = flat.ready_groups(step, 4, 3)
                ready_indexed = indexed.ready_groups(step, 4, 3)
                assert ready_flat == ready_indexed
                for key in ready_flat:
                    taken_flat = flat.take(key, 4)
                    taken_indexed = indexed.take(key, 4)
                    assert [r.request_id for r in taken_flat] \
                        == [r.request_id for r in taken_indexed]
            assert len(flat) == len(indexed)
            victim_flat, victim_indexed = flat.victim(), indexed.victim()
            assert (victim_flat.request_id if victim_flat else None) \
                == (victim_indexed.request_id if victim_indexed else None)

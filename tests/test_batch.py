"""Batch-vs-single numerical equivalence for the batched execution engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.testing import derive_rng

from repro.core import HctConfig, HybridComputeTile
from repro.errors import QuantizationError
from repro.reram import NoiseConfig
from repro.runtime import DarthPumDevice


@pytest.fixture
def rng():
    return derive_rng("batch")


def _stacked_singles(tile, handle, vectors, input_bits):
    return np.stack(
        [tile.execute_mvm(handle, v, input_bits=input_bits).values for v in vectors]
    )


class TestHctBatchEquivalence:
    def test_bit_identical_noise_free(self, rng):
        tile = HybridComputeTile(HctConfig.small())
        matrix = rng.integers(-8, 8, size=(16, 12))
        handle = tile.set_matrix(matrix, value_bits=4, bits_per_cell=1)
        vectors = rng.integers(0, 15, size=(6, 16))
        batch = tile.execute_mvm_batch(handle, vectors, input_bits=4)
        check = HybridComputeTile(HctConfig.small())
        check_handle = check.set_matrix(matrix, value_bits=4, bits_per_cell=1)
        singles = _stacked_singles(check, check_handle, vectors, 4)
        assert np.array_equal(batch.values, singles)
        assert np.array_equal(batch.values, vectors @ matrix)

    def test_bit_identical_multi_bit_cells(self, rng):
        tile = HybridComputeTile(HctConfig.small())
        matrix = rng.integers(-8, 8, size=(16, 12))
        handle = tile.set_matrix(matrix, value_bits=4, bits_per_cell=2)
        vectors = rng.integers(0, 3, size=(5, 16))
        batch = tile.execute_mvm_batch(handle, vectors, input_bits=2)
        assert np.array_equal(batch.values, vectors @ matrix)

    def test_bit_identical_multiple_column_tiles(self, rng):
        tile = HybridComputeTile(HctConfig.small())
        # 24 columns > the 16-wide small arrays: two column tiles.
        matrix = rng.integers(-4, 4, size=(16, 24))
        handle = tile.set_matrix(matrix, value_bits=3, bits_per_cell=1)
        vectors = rng.integers(0, 7, size=(4, 16))
        batch = tile.execute_mvm_batch(handle, vectors, input_bits=3)
        assert np.array_equal(batch.values, vectors @ matrix)

    def test_bit_identical_with_frozen_noise_sources(self, rng):
        """Programming noise and stuck-at faults are frozen at set_matrix
        time, so the batch and single paths see identical conductances."""
        noise = NoiseConfig(
            programming_noise=True,
            read_noise=False,
            ir_drop=False,
            stuck_at_faults=True,
            seed=11,
        )
        tile = HybridComputeTile(HctConfig.small(), noise=noise)
        matrix = rng.integers(-8, 8, size=(16, 12))
        handle = tile.set_matrix(matrix, value_bits=4, bits_per_cell=1)
        vectors = rng.integers(0, 15, size=(4, 16))
        batch = tile.execute_mvm_batch(handle, vectors, input_bits=4)
        singles = _stacked_singles(tile, handle, vectors, 4)
        assert np.array_equal(batch.values, singles)

    def test_read_noise_stays_quantisation_bounded(self, rng):
        """With stochastic read noise the batch draws one conductance sample
        per step instead of one per vector, so results are not bit-identical;
        they must still round-trip close to the ideal product."""
        noise = NoiseConfig(
            programming_noise=False, read_noise=True, ir_drop=False, seed=3
        )
        tile = HybridComputeTile(HctConfig.small(), noise=noise)
        matrix = rng.integers(-8, 8, size=(16, 12))
        handle = tile.set_matrix(matrix, value_bits=4, bits_per_cell=1)
        vectors = rng.integers(0, 15, size=(4, 16))
        batch = tile.execute_mvm_batch(handle, vectors, input_bits=4)
        expected = vectors @ matrix
        scale = np.abs(expected).max() + 1
        assert np.abs(batch.values - expected).max() / scale < 0.2

    def test_raw_analog_batch_path(self, rng):
        """disableDigitalMode(): the batched raw reduction matches singles."""
        tile = HybridComputeTile(HctConfig.small())
        matrix = rng.integers(-8, 8, size=(16, 12))
        handle = tile.set_matrix(matrix, value_bits=4, bits_per_cell=1)
        tile.disable_digital_mode()
        vectors = rng.integers(0, 15, size=(3, 16))
        batch = tile.execute_mvm_batch(handle, vectors, input_bits=4)
        assert np.array_equal(batch.values, vectors @ matrix)

    def test_batch_cost_model_consistency(self, rng):
        """The batch pays the analog phase per vector but drains the pipelined
        ADD stream once, so it is never slower than the summed singles."""
        matrix = rng.integers(-8, 8, size=(16, 12))
        vectors = rng.integers(0, 15, size=(8, 16))

        tile = HybridComputeTile(HctConfig.small())
        handle = tile.set_matrix(matrix, value_bits=4, bits_per_cell=1)
        batch = tile.execute_mvm_batch(handle, vectors, input_bits=4)

        check = HybridComputeTile(HctConfig.small())
        check_handle = check.set_matrix(matrix, value_bits=4, bits_per_cell=1)
        single = check.execute_mvm(check_handle, vectors[0], input_bits=4)

        assert batch.batch == 8
        assert batch.optimized_cycles <= 8 * single.optimized_cycles
        assert batch.optimized_cycles > single.optimized_cycles
        assert batch.cycles_per_vector <= single.optimized_cycles
        assert batch.unoptimized_cycles > batch.optimized_cycles
        # Energy scales with the work actually performed (~batch x single).
        assert batch.energy_pj == pytest.approx(8 * single.energy_pj, rel=0.05)
        assert batch.iiu_slots_saved > single.iiu_slots_saved

    def test_batch_updates_iiu_statistics(self, rng):
        tile = HybridComputeTile(HctConfig.small())
        matrix = rng.integers(-8, 8, size=(16, 12))
        handle = tile.set_matrix(matrix, value_bits=4, bits_per_cell=1)
        before = tile.iiu.injections
        tile.execute_mvm_batch(handle, rng.integers(0, 15, size=(4, 16)), input_bits=4)
        assert tile.iiu.injections == before + 1
        assert tile.iiu.front_end_slots_saved > 0


class TestDeviceBatchApi:
    def test_device_batch_matches_loop(self, rng):
        device = DarthPumDevice()
        matrix = rng.integers(-100, 100, size=(70, 40))
        allocation = device.set_matrix(matrix, element_size=8, precision=0)
        vectors = rng.integers(0, 255, size=(5, 70))
        looped = np.stack(
            [device.exec_mvm(allocation, v, input_bits=8) for v in vectors]
        )
        batched = device.exec_mvm_batch(allocation, vectors, input_bits=8)
        assert np.array_equal(batched, looped)
        assert np.array_equal(batched, vectors @ matrix)

    def test_single_vector_promoted_to_batch_of_one(self, rng):
        device = DarthPumDevice()
        matrix = rng.integers(-8, 8, size=(10, 6))
        allocation = device.set_matrix(matrix, element_size=4, precision=0)
        vector = rng.integers(0, 15, size=10)
        batched = device.exec_mvm_batch(allocation, vector, input_bits=4)
        assert batched.shape == (1, 6)
        assert np.array_equal(batched[0], vector @ matrix)

    def test_shape_mismatch_rejected(self, rng):
        device = DarthPumDevice()
        allocation = device.set_matrix(np.eye(8, dtype=np.int64), element_size=4)
        with pytest.raises(QuantizationError):
            device.exec_mvm_batch(allocation, np.zeros((2, 9), dtype=np.int64))

    def test_empty_batch_returns_empty_result(self):
        device = DarthPumDevice()
        allocation = device.set_matrix(np.eye(8, dtype=np.int64), element_size=4)
        result = device.exec_mvm_batch(
            allocation, np.zeros((0, 8), dtype=np.int64), input_bits=2
        )
        assert result.shape == (0, 8)

    def test_empty_batch_rejected_at_tile_level(self):
        from repro.errors import ExecutionError

        tile = HybridComputeTile(HctConfig.small())
        handle = tile.set_matrix(np.eye(8, dtype=np.int64), value_bits=4)
        with pytest.raises(ExecutionError):
            tile.execute_mvm_batch(handle, np.zeros((0, 8), dtype=np.int64))

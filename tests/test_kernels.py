"""Backend equivalence: the vectorized executor vs the step-faithful reference.

Both executors interpret the same compiled :class:`~repro.plan.ir.MvmPlan`,
and the vectorized one is the default execution path, so its contract is
strict: across noise presets, weight slicings, multi-tile shapes, batch
sizes, and all three serving workloads it must match
``backend="reference"`` bit for bit -- results, cost-ledger totals *and*
breakdowns, timelines, and IIU statistics.  These tests pin that contract
down, plus the satellite behaviours that ride on the kernel layer: the
per-allocation shard kernel cache, the memoised
``PumServer.register_matrix``, and the parallel device-pool fan-out.
(Plan-cache lifecycle and registry behaviour live in ``tests/test_plan.py``.)
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.testing import derive_rng

from repro import ChipConfig, DevicePool, HctConfig, PumServer
from repro.analog.bitslicing import slice_inputs, slice_inputs_tensor
from repro.analog.compensation import ParasiticCompensation
from repro.core.hct import HybridComputeTile
from repro.errors import ConfigurationError, QuantizationError
from repro.plan import BACKENDS, DEFAULT_BACKEND, ReferenceExecutor, resolve_backend
from repro.reram import NoiseConfig, ParasiticModel
from repro.runtime.apps import (
    serve_aes_mixcolumns,
    serve_cnn_conv,
    serve_llm_projection,
)
from repro.workloads.cnn.layers import Conv2d


NOISE_PRESETS = {
    "ideal": dict(noise=None, parasitics=None),
    "frozen_program_noise": dict(
        noise=NoiseConfig(
            programming_noise=True, read_noise=False, ir_drop=False,
            stuck_at_faults=True, seed=11,
        ),
        parasitics=None,
    ),
    "read_noise": dict(
        noise=NoiseConfig(
            programming_noise=False, read_noise=True, ir_drop=False, seed=3
        ),
        parasitics=None,
    ),
    "ir_drop": dict(
        noise=None, parasitics=ParasiticModel(wire_resistance_ohm=0.5)
    ),
    "full_stack": dict(
        noise=NoiseConfig(
            programming_noise=True, read_noise=True, ir_drop=True, seed=5
        ),
        parasitics=ParasiticModel(wire_resistance_ohm=0.2),
    ),
}

SHAPE_CASES = {
    # (shape, value_bits, bits_per_cell, input_bits, batch)
    "single_tile": ((16, 12), 4, 1, 4, 6),
    "multi_tile": ((32, 24), 3, 1, 3, 4),
    "multi_bit_cells": ((16, 12), 4, 2, 2, 5),
    "batch_of_one": ((16, 12), 4, 1, 4, 1),
}


def run_engine(backend, preset, shape_case):
    shape, value_bits, bits_per_cell, input_bits, batch = shape_case
    rng = derive_rng("kernels-1")
    magnitude = 2 ** (value_bits - 1)
    matrix = rng.integers(-magnitude, magnitude, size=shape)
    vectors = rng.integers(0, 2 ** input_bits, size=(batch, shape[0]))
    tile = HybridComputeTile(HctConfig.small(), **preset)
    handle = tile.set_matrix(matrix, value_bits=value_bits, bits_per_cell=bits_per_cell)
    result = tile.execute_mvm_batch(
        handle, vectors, input_bits=input_bits, backend=backend
    )
    return result, tile.ledger, matrix, vectors


def assert_bit_identical(reference, vectorized):
    ref_result, ref_ledger = reference
    vec_result, vec_ledger = vectorized
    assert np.array_equal(ref_result.values, vec_result.values)
    assert ref_result.optimized_cycles == vec_result.optimized_cycles
    assert ref_result.unoptimized_cycles == vec_result.unoptimized_cycles
    assert ref_result.energy_pj == vec_result.energy_pj
    assert ref_result.breakdown == vec_result.breakdown
    assert ref_result.num_partial_products == vec_result.num_partial_products
    assert ref_result.iiu_slots_saved == vec_result.iiu_slots_saved
    assert ref_ledger.cycles == vec_ledger.cycles
    assert ref_ledger.energy_pj == vec_ledger.energy_pj
    assert ref_ledger.cycle_breakdown == vec_ledger.cycle_breakdown
    assert ref_ledger.energy_breakdown == vec_ledger.energy_breakdown


class TestEngineEquivalence:
    @pytest.mark.parametrize("preset_name", sorted(NOISE_PRESETS))
    @pytest.mark.parametrize("case_name", sorted(SHAPE_CASES))
    def test_engines_bit_identical(self, preset_name, case_name):
        preset = NOISE_PRESETS[preset_name]
        case = SHAPE_CASES[case_name]
        ref_result, ref_ledger, matrix, vectors = run_engine("reference", preset, case)
        vec_result, vec_ledger, _, _ = run_engine("vectorized", preset, case)
        assert_bit_identical((ref_result, ref_ledger), (vec_result, vec_ledger))
        if preset_name == "ideal":
            assert np.array_equal(vec_result.values, vectors @ matrix)

    def test_raw_analog_path_bit_identical(self):
        rng = derive_rng("kernels-2")
        matrix = rng.integers(-8, 8, size=(16, 12))
        vectors = rng.integers(0, 16, size=(4, 16))
        outs = {}
        for backend in ("reference", "vectorized"):
            tile = HybridComputeTile(HctConfig.small())
            handle = tile.set_matrix(matrix, value_bits=4)
            tile.disable_digital_mode()
            outs[backend] = tile.execute_mvm_batch(
                handle, vectors, input_bits=4, backend=backend
            )
        assert np.array_equal(outs["reference"].values, outs["vectorized"].values)
        assert outs["reference"].optimized_cycles == outs["vectorized"].optimized_cycles
        assert outs["reference"].energy_pj == outs["vectorized"].energy_pj

    def test_compensation_path_bit_identical(self):
        compensation = ParasiticCompensation()
        matrix01 = (np.arange(64).reshape(8, 8) % 2).astype(np.int64)
        remapped = compensation.remap(matrix01)
        vectors = np.array([[1, 0, 1, 1, 0, 0, 1, 0], [1, 1, 1, 1, 0, 0, 0, 0]])
        outs = {}
        for backend in ("reference", "vectorized"):
            tile = HybridComputeTile(HctConfig.small())
            handle = tile.set_matrix(remapped, value_bits=2)
            outs[backend] = tile.execute_mvm_batch(
                handle, vectors, input_bits=1, backend=backend,
                compensation=compensation,
            ).values
        assert np.array_equal(outs["reference"], outs["vectorized"])
        assert np.array_equal(outs["vectorized"], vectors @ matrix01)

    def test_vectorized_is_the_default_backend(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert DEFAULT_BACKEND == "vectorized"
        assert resolve_backend(None).name == "vectorized"
        assert isinstance(resolve_backend("reference"), ReferenceExecutor)
        assert {"reference", "vectorized"} <= set(BACKENDS.names())
        with pytest.raises(ConfigurationError):
            resolve_backend("turbo")

    def test_slice_inputs_tensor_matches_slice_inputs(self):
        rng = derive_rng("kernels-3")
        vectors = rng.integers(0, 32, size=(5, 11))
        planes = slice_inputs_tensor(vectors, 5)
        listed = slice_inputs(vectors, 5)
        assert planes.shape == (5, 5, 11)
        for bit, plane in enumerate(listed):
            assert np.array_equal(planes[bit], plane)


class TestShardKernelCache:
    def test_cache_built_lazily_and_reused(self):
        tile = HybridComputeTile(HctConfig.small())
        handle = tile.set_matrix(np.eye(8, dtype=np.int64), value_bits=4)
        assert tile.ace.cached_kernels == 0
        vectors = np.ones((2, 8), dtype=np.int64)
        # The tensors belong to the vectorized interpreter (pinned here so
        # the assertion holds under any REPRO_BACKEND default).
        tile.execute_mvm_batch(handle, vectors, input_bits=2, backend="vectorized")
        assert tile.ace.cached_kernels == 1
        kernel = tile.ace.kernel_for(handle)
        tile.execute_mvm_batch(handle, vectors, input_bits=2, backend="vectorized")
        assert tile.ace.kernel_for(handle) is kernel  # reused, not rebuilt

    def test_cache_invalidated_on_reprogram(self):
        tile = HybridComputeTile(HctConfig.small())
        matrix = np.eye(8, dtype=np.int64)
        handle = tile.set_matrix(matrix, value_bits=4)
        vectors = np.arange(16, dtype=np.int64).reshape(2, 8) % 4
        tile.execute_mvm_batch(handle, vectors, input_bits=2, backend="vectorized")
        assert tile.ace.cached_kernels == 1
        new_handle = tile.ace.update_row(handle, 0, np.array([3, 0, 0, 0, 0, 0, 0, 1]))
        assert tile.ace.cached_kernels == 0  # stale entry dropped with release
        updated = matrix.copy()
        updated[0] = [3, 0, 0, 0, 0, 0, 0, 1]
        out = tile.execute_mvm_batch(new_handle, vectors, input_bits=2,
                                     backend="vectorized")
        assert np.array_equal(out.values, vectors @ updated)

    def test_exact_fast_path_disabled_under_programming_noise(self):
        noisy = NoiseConfig(
            programming_noise=True, read_noise=False, ir_drop=False, seed=1
        )
        tile = HybridComputeTile(HctConfig.small(), noise=noisy)
        handle = tile.set_matrix(np.eye(8, dtype=np.int64) * 3, value_bits=4)
        tile.execute_mvm_batch(handle, np.ones((1, 8), dtype=np.int64), input_bits=1)
        assert not tile.ace.kernel_for(handle).exact

        clean = HybridComputeTile(HctConfig.small())
        clean_handle = clean.set_matrix(np.eye(8, dtype=np.int64) * 3, value_bits=4)
        clean.execute_mvm_batch(clean_handle, np.ones((1, 8), dtype=np.int64), input_bits=1)
        assert clean.ace.kernel_for(clean_handle).exact


class TestRegisterMatrixMemoisation:
    def test_identical_reregistration_skips_programming(self):
        rng = derive_rng("kernels-4")
        matrix = rng.integers(-8, 8, size=(16, 16))
        server = PumServer(num_devices=2)
        first = server.register_matrix("m", matrix, element_size=4)
        energy_after_first = server.pool.total_ledger().energy_pj
        again = server.register_matrix("m", matrix.copy(), element_size=4)
        assert again is first  # same live allocation, nothing reprogrammed
        assert server.registration_reuses == 1
        assert server.pool.total_ledger().energy_pj == energy_after_first

    def test_changed_matrix_reprograms(self):
        rng = derive_rng("kernels-5")
        matrix = rng.integers(-8, 8, size=(16, 16))
        server = PumServer(num_devices=2)
        first = server.register_matrix("m", matrix, element_size=4)
        changed = matrix.copy()
        changed[0, 0] += 1
        second = server.register_matrix("m", changed, element_size=4)
        assert second is not first
        assert server.registration_reuses == 0
        vector = np.ones(16, dtype=np.int64)
        future = server.submit("m", vector, input_bits=1)
        server.run_until_idle()
        assert np.array_equal(future.result().result, vector @ changed)

    def test_changed_quantisation_config_reprograms(self):
        matrix = np.eye(16, dtype=np.int64)
        server = PumServer(num_devices=2)
        first = server.register_matrix("m", matrix, element_size=4)
        second = server.register_matrix("m", matrix, element_size=8)
        assert second is not first
        assert server.registration_reuses == 0


class TestParallelFanout:
    @staticmethod
    def _sharded_pool(parallel):
        # One tiny HCT per device forces a multi-row-band placement, so the
        # fan-out really spans devices.
        config = ChipConfig(hct=HctConfig.small(), num_hcts=2)
        return DevicePool(
            num_devices=3, config=config, policy="round_robin", parallel=parallel
        )

    def test_parallel_exec_mvm_batch_matches_serial(self):
        rng = derive_rng("kernels-6")
        matrix = rng.integers(-100, 100, size=(96, 16))
        vectors = rng.integers(0, 256, size=(4, 96))
        results = {}
        ledgers = {}
        for parallel in (False, True):
            pool = self._sharded_pool(parallel)
            allocation = pool.set_matrix(matrix, element_size=8, precision=0)
            assert allocation.num_shards > 1
            assert len(allocation.devices_used) > 1
            results[parallel] = pool.exec_mvm_batch(allocation, vectors, input_bits=8)
            ledgers[parallel] = pool.total_ledger()
        assert np.array_equal(results[True], results[False])
        assert np.array_equal(results[True], vectors @ matrix)
        assert ledgers[True].cycles == ledgers[False].cycles
        assert ledgers[True].energy_pj == ledgers[False].energy_pj

    def test_parallel_exec_requests_matches_serial(self):
        rng = derive_rng("kernels-7")
        matrices = [rng.integers(-8, 8, size=(12, 10)) for _ in range(3)]
        request_vectors = [rng.integers(0, 16, size=(3, 12)) for _ in range(3)]
        outputs = {}
        for parallel in (False, True):
            pool = DevicePool(num_devices=3, policy="round_robin", parallel=parallel)
            allocations = [pool.set_matrix(m, element_size=4) for m in matrices]
            assert len({a.devices_used[0] for a in allocations}) > 1
            outputs[parallel] = pool.exec_requests(
                list(zip(allocations, request_vectors)), input_bits=4
            )
        for serial_out, parallel_out, matrix, vectors in zip(
            outputs[False], outputs[True], matrices, request_vectors
        ):
            assert np.array_equal(serial_out, parallel_out)
            assert np.array_equal(parallel_out, vectors @ matrix)

    def test_failing_device_propagates_after_joining_siblings(self):
        rng = derive_rng("kernels-8")
        matrix = rng.integers(-100, 100, size=(96, 16))
        pool = self._sharded_pool(parallel=True)
        allocation = pool.set_matrix(matrix, element_size=8, precision=0)
        assert len(allocation.devices_used) > 1
        failing = allocation.devices_used[0]
        original = pool.devices[failing].exec_mvm_batch

        def boom(*args, **kwargs):
            raise RuntimeError("injected device fault")

        pool.devices[failing].exec_mvm_batch = boom
        vectors = rng.integers(0, 256, size=(2, 96))
        with pytest.raises(RuntimeError, match="injected device fault"):
            pool.exec_mvm_batch(allocation, vectors, input_bits=8)
        # Every sibling worker was joined before the raise, so the pool is
        # immediately reusable once the fault clears.
        pool.devices[failing].exec_mvm_batch = original
        out = pool.exec_mvm_batch(allocation, vectors, input_bits=8)
        assert np.array_equal(out, vectors @ matrix)

    def test_backend_override_per_call(self):
        rng = derive_rng("kernels-9")
        matrix = rng.integers(-8, 8, size=(8, 8))
        vectors = rng.integers(0, 4, size=(2, 8))
        pool = DevicePool(num_devices=1, backend="reference")
        allocation = pool.set_matrix(matrix, element_size=4)
        default_out = pool.exec_mvm_batch(allocation, vectors, input_bits=2)
        override_out = pool.exec_mvm_batch(
            allocation, vectors, input_bits=2, backend="vectorized"
        )
        assert np.array_equal(default_out, override_out)
        assert np.array_equal(override_out, vectors @ matrix)


class TestWorkloadEquivalence:
    """AES / CNN / LLM serving is bit-identical under either engine."""

    @staticmethod
    def _servers():
        return {
            backend: PumServer(num_devices=2, max_batch=8, max_wait_ticks=2,
                               backend=backend)
            for backend in ("reference", "vectorized")
        }

    def test_aes_mixcolumns(self):
        rng = derive_rng("kernels-10")
        columns = rng.integers(0, 256, size=(8, 4)).astype(np.int64)
        outs = {}
        servers = self._servers()
        for engine, server in servers.items():
            outs[engine] = serve_aes_mixcolumns(server, columns)
        assert np.array_equal(outs["reference"], outs["vectorized"])
        ref_ledger = servers["reference"].pool.total_ledger()
        vec_ledger = servers["vectorized"].pool.total_ledger()
        assert ref_ledger.cycles == vec_ledger.cycles
        assert ref_ledger.energy_pj == vec_ledger.energy_pj
        assert ref_ledger.energy_breakdown == vec_ledger.energy_breakdown

    def test_cnn_conv(self):
        rng = derive_rng("kernels-11")
        conv = Conv2d(in_channels=2, out_channels=3, kernel=3,
                      rng=derive_rng("kernels-12"))
        image = rng.normal(size=(1, 2, 6, 6))
        outs = {}
        for engine, server in self._servers().items():
            device, _ = serve_cnn_conv(server, conv, image, positions=4)
            outs[engine] = device
        assert np.array_equal(outs["reference"], outs["vectorized"])

    def test_llm_projection(self):
        rng = derive_rng("kernels-13")
        weight = rng.normal(size=(12, 8))
        activations = rng.normal(size=(5, 12))
        outs = {}
        for engine, server in self._servers().items():
            device, _ = serve_llm_projection(server, weight, activations)
            outs[engine] = device
        assert np.array_equal(outs["reference"], outs["vectorized"])


class TestBatchedHelpers:
    def test_parasitic_apply_batch_matches_loop(self):
        rng = derive_rng("kernels-14")
        model = ParasiticModel(wire_resistance_ohm=25.0)
        conductances = rng.uniform(1e-6, 1e-4, size=(8, 6))
        inputs = rng.integers(0, 2, size=(5, 8))
        batched = model.apply_batch(conductances, inputs)
        for index in range(inputs.shape[0]):
            assert np.array_equal(batched[index], model.apply(conductances, inputs[index]))

    def test_compensation_apply_batch_matches_loop(self):
        rng = derive_rng("kernels-15")
        compensation = ParasiticCompensation()
        raw = rng.integers(-20, 20, size=(6, 9))
        inputs = rng.integers(0, 2, size=(6, 12))
        batched = compensation.recover_batch(raw, inputs)
        for index in range(raw.shape[0]):
            assert np.array_equal(
                batched[index], compensation.recover(raw[index], inputs[index])
            )


class TestBitPlaneScratch:
    def test_slice_inputs_tensor_out_matches_allocation(self):
        rng = derive_rng("kernels-16")
        vectors = rng.integers(0, 32, size=(5, 11))
        fresh = slice_inputs_tensor(vectors, 5)
        scratch = np.empty((5, 5, 11), dtype=np.int64)
        written = slice_inputs_tensor(vectors, 5, out=scratch)
        assert written is scratch
        assert np.array_equal(written, fresh)
        with pytest.raises(QuantizationError, match="out="):
            slice_inputs_tensor(vectors, 5, out=np.empty((4, 5, 11), dtype=np.int64))

    def test_ace_scratch_is_reused_per_shape(self):
        tile = HybridComputeTile(HctConfig.small())
        planes = tile.ace.bitplane_scratch(3, 4, 8)
        assert tile.ace.bitplane_scratch(3, 4, 8) is planes
        assert tile.ace.bitplane_scratch(3, 5, 8) is not planes
        floats = tile.ace.float_scratch(4, 8)
        assert tile.ace.float_scratch(4, 8) is floats

    def test_steady_state_batches_reuse_scratch_and_stay_correct(self):
        tile = HybridComputeTile(HctConfig.small())
        matrix = np.arange(32, dtype=np.int64).reshape(8, 4) % 7
        handle = tile.set_matrix(matrix, value_bits=4)
        rng = derive_rng("kernels-17")
        for _ in range(3):
            vectors = rng.integers(0, 8, size=(4, 8))
            out = tile.execute_mvm_batch(
                handle, vectors, input_bits=3, backend="vectorized"
            )
            assert np.array_equal(out.values, vectors @ matrix)

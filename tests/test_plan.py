"""Plan/compile/execute: planner caching, backend registry, sharded plans.

The tentpole invariants of the ExecutionPlan IR:

* plans are compiled once per ``(allocation, input_bits)`` and shared by
  every backend (cross-backend reuse), invalidated on release/reprogram
  alongside the shard-kernel cache;
* the serving hot path performs zero planning -- the planner runs at
  ``register_matrix`` time only, asserted via ``planner_builds()``;
* the cost-only ``"estimate"`` backend reproduces the real engines' ledgers
  and timelines without computing values;
* the registry accepts new backends and the ``REPRO_BACKEND`` environment
  variable flips the default for the whole stack.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.testing import derive_rng

from repro import ChipConfig, DevicePool, HctConfig, PumServer
from repro.core.hct import HybridComputeTile
from repro.errors import ConfigurationError
from repro.plan import (
    BACKENDS,
    BackendRegistry,
    ExecutionBackend,
    ReferenceExecutor,
    VectorizedExecutor,
    default_backend,
    resolve_backend,
)


def _tile_with_matrix(noise=None):
    rng = derive_rng("plan")
    matrix = rng.integers(-8, 8, size=(32, 24))
    tile = HybridComputeTile(HctConfig.small(), noise=noise)
    handle = tile.set_matrix(matrix, value_bits=4, bits_per_cell=1)
    return tile, handle, matrix


class TestPlanCacheLifecycle:
    def test_plan_built_once_and_reused(self):
        tile, handle, _ = _tile_with_matrix()
        vectors = np.ones((2, 32), dtype=np.int64)
        assert tile.ace.cached_plans == 0
        tile.execute_mvm_batch(handle, vectors, input_bits=3)
        assert tile.planner.builds == 1
        assert tile.ace.cached_plans == 1
        plan = tile.planner.plan_for(handle, 3)
        tile.execute_mvm_batch(handle, vectors, input_bits=3)
        assert tile.planner.plan_for(handle, 3) is plan  # reused, not rebuilt
        assert tile.planner.builds == 1
        assert tile.planner.hits >= 2

    def test_distinct_input_bits_get_distinct_plans(self):
        tile, handle, _ = _tile_with_matrix()
        plan3 = tile.planner.plan_for(handle, 3)
        plan5 = tile.planner.plan_for(handle, 5)
        assert plan3 is not plan5
        assert tile.planner.builds == 2
        assert tile.ace.cached_plans == 2
        # Both plans share the one shard-kernel snapshot.
        assert plan3.kernel is plan5.kernel
        assert tile.ace.cached_kernels == 1

    def test_kernel_tensors_built_lazily_per_backend(self):
        """Step-walking interpreters never pay for the stacked tensors."""
        tile, handle, _ = _tile_with_matrix()
        vectors = np.ones((2, 32), dtype=np.int64)
        tile.execute_mvm_batch(handle, vectors, input_bits=2, backend="reference")
        assert tile.ace.cached_plans == 1
        assert tile.ace.cached_kernels == 0  # plan compiled, tensors untouched
        tile.execute_mvm_batch(handle, vectors, input_bits=2, backend="vectorized")
        assert tile.ace.cached_kernels == 1  # first tensor interpreter builds

    def test_cross_backend_plan_reuse(self):
        """Both executors interpret the *same* cached plan object."""
        tile, handle, matrix = _tile_with_matrix()
        vectors = np.arange(64, dtype=np.int64).reshape(2, 32) % 8
        ref = tile.execute_mvm_batch(handle, vectors, input_bits=3,
                                     backend="reference")
        vec = tile.execute_mvm_batch(handle, vectors, input_bits=3,
                                     backend="vectorized")
        assert tile.planner.builds == 1  # one plan, two interpreters
        assert np.array_equal(ref.values, vec.values)
        assert np.array_equal(vec.values, vectors @ matrix)

    def test_invalidated_on_release(self):
        tile, handle, _ = _tile_with_matrix()
        tile.planner.plan_for(handle, 3)
        tile.planner.plan_for(handle, 5)
        assert tile.ace.cached_plans == 2
        tile.release_matrix(handle)
        assert tile.ace.cached_plans == 0
        assert tile.ace.cached_kernels == 0

    def test_invalidated_on_reprogram(self):
        """update_row reprograms through release, so stale plans must drop."""
        tile = HybridComputeTile(HctConfig.small())
        matrix = np.eye(8, dtype=np.int64)
        handle = tile.set_matrix(matrix, value_bits=4)
        vectors = np.arange(16, dtype=np.int64).reshape(2, 8) % 4
        tile.execute_mvm_batch(handle, vectors, input_bits=2)
        assert tile.ace.cached_plans == 1
        new_handle = tile.ace.update_row(handle, 0, np.array([3, 0, 0, 0, 0, 0, 0, 1]))
        assert tile.ace.cached_plans == 0  # stale plan dropped with the kernel
        updated = matrix.copy()
        updated[0] = [3, 0, 0, 0, 0, 0, 0, 1]
        out = tile.execute_mvm_batch(new_handle, vectors, input_bits=2)
        assert np.array_equal(out.values, vectors @ updated)
        assert tile.planner.builds == 2  # one per programming


class TestServingHotPathDoesNotPlan:
    def test_planner_runs_at_registration_only(self):
        rng = derive_rng("plan-3")
        matrix = rng.integers(-8, 8, size=(16, 16))
        server = PumServer(num_devices=2, max_batch=4, max_wait_ticks=1)
        assert server.planner_builds() == 0
        server.register_matrix("m", matrix, element_size=4, input_bits=4)
        builds_after_registration = server.planner_builds()
        assert builds_after_registration >= 1  # compiled ahead of time

        for wave in range(3):
            futures = [
                server.submit("m", np.full(16, (wave + i) % 16, dtype=np.int64),
                              input_bits=4)
                for i in range(8)
            ]
            server.run_until_idle()
            assert all(f.result().ok for f in futures)
        # The hot path never invoked the planner: registration compiled it all.
        assert server.planner_builds() == builds_after_registration

    def test_memoised_reregistration_keeps_plans_warm(self):
        rng = derive_rng("plan-5")
        matrix = rng.integers(-8, 8, size=(16, 16))
        server = PumServer(num_devices=2)
        first = server.register_matrix("m", matrix, element_size=4, input_bits=4)
        builds = server.planner_builds()
        again = server.register_matrix("m", matrix.copy(), element_size=4,
                                       input_bits=4)
        assert again is first
        assert server.registration_reuses == 1
        assert server.planner_builds() == builds  # sha256 memo hit: no rebuild

    def test_sharded_plan_cached_and_invalidated(self):
        rng = derive_rng("plan-17")
        config = ChipConfig(hct=HctConfig.small(), num_hcts=2)
        pool = DevicePool(num_devices=3, config=config, policy="round_robin")
        matrix = rng.integers(-100, 100, size=(96, 16))
        allocation = pool.set_matrix(matrix, element_size=8, precision=0)
        assert len(allocation.devices_used) > 1
        plan = pool.compile(allocation, input_bits=8)
        assert plan.num_shards == len(allocation.shards)
        assert pool.sharded_plan(allocation) is plan  # cached topology
        builds = pool.planner_builds()
        vectors = rng.integers(0, 256, size=(2, 96))
        out = pool.exec_mvm_batch(allocation, vectors, input_bits=8)
        assert np.array_equal(out, vectors @ matrix)
        assert pool.planner_builds() == builds  # compiled ahead of the call
        pool.release(allocation)
        assert allocation.allocation_id not in pool._sharded_plans


class TestCostModelBackend:
    def test_estimate_matches_real_ledger_without_values(self):
        results = {}
        ledgers = {}
        for backend in ("vectorized", "estimate"):
            tile, handle, _ = _tile_with_matrix()
            vectors = np.arange(96, dtype=np.int64).reshape(3, 32) % 8
            results[backend] = tile.execute_mvm_batch(
                handle, vectors, input_bits=3, backend=backend
            )
            ledgers[backend] = tile.ledger
        est, vec = results["estimate"], results["vectorized"]
        assert est.estimated and not vec.estimated
        assert not est.values.any()
        assert est.optimized_cycles == vec.optimized_cycles
        assert est.unoptimized_cycles == vec.unoptimized_cycles
        assert est.breakdown == vec.breakdown
        assert est.energy_pj == vec.energy_pj
        assert est.iiu_slots_saved == vec.iiu_slots_saved
        assert ledgers["estimate"].cycles == ledgers["vectorized"].cycles
        assert ledgers["estimate"].energy_pj == ledgers["vectorized"].energy_pj
        assert (
            ledgers["estimate"].energy_breakdown
            == ledgers["vectorized"].energy_breakdown
        )

    def test_estimate_skips_noise_rng(self):
        """The estimator draws no read noise, so a later real run is clean."""
        from repro.reram import NoiseConfig

        noise = NoiseConfig(
            programming_noise=False, read_noise=True, ir_drop=False, seed=7
        )
        baseline_tile, baseline_handle, _ = _tile_with_matrix(noise=noise)
        vectors = np.ones((2, 32), dtype=np.int64)
        baseline = baseline_tile.execute_mvm_batch(
            baseline_handle, vectors, input_bits=2
        )

        tile, handle, _ = _tile_with_matrix(noise=noise)
        tile.execute_mvm_batch(handle, vectors, input_bits=2, backend="estimate")
        after_estimate = tile.execute_mvm_batch(handle, vectors, input_bits=2)
        assert np.array_equal(after_estimate.values, baseline.values)


class TestBackendRegistry:
    def test_custom_backend_drops_in(self):
        class CountingBackend(ExecutionBackend):
            name = "counting"

            def __init__(self):
                self.calls = 0
                self._inner = VectorizedExecutor()

            def execute_batch(self, tile, plan, vectors, **kwargs):
                self.calls += 1
                return self._inner.execute_batch(tile, plan, vectors, **kwargs)

        registry = BackendRegistry()
        backend = registry.register(CountingBackend())
        assert registry.get("counting") is backend
        with pytest.raises(ConfigurationError):
            registry.register(CountingBackend())  # duplicate name

        # An instance works everywhere a name does -- no registration needed
        # for the process-wide registry, nothing above it knows the set.
        tile, handle, matrix = _tile_with_matrix()
        vectors = np.ones((2, 32), dtype=np.int64)
        out = tile.execute_mvm_batch(handle, vectors, input_bits=1, backend=backend)
        assert backend.calls == 1
        assert np.array_equal(out.values, vectors @ matrix)

    def test_env_var_flips_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "reference")
        assert default_backend() == "reference"
        assert isinstance(resolve_backend(None), ReferenceExecutor)
        monkeypatch.delenv("REPRO_BACKEND")
        assert resolve_backend(None) is BACKENDS.get("vectorized")


class TestDescribe:
    def test_mvm_plan_describe_renders_schedule(self):
        tile, handle, _ = _tile_with_matrix()
        plan = tile.planner.plan_for(handle, 3)
        text = plan.describe()
        assert "MvmPlan: 32x24 matrix" in text
        assert "analog macro-steps/vector" in text
        assert "reduce" in text and "cost" in text
        # Truncation keeps the dump readable for big schedules.
        assert "more steps" in text
        full = plan.describe(max_steps=len(plan.steps))
        assert "more steps" not in full

    def test_sharded_plan_describe(self):
        rng = derive_rng("plan-19")
        config = ChipConfig(hct=HctConfig.small(), num_hcts=2)
        pool = DevicePool(num_devices=3, config=config, policy="round_robin")
        matrix = rng.integers(-100, 100, size=(96, 16))
        allocation = pool.set_matrix(matrix, element_size=8)
        plan = pool.compile(allocation, input_bits=2)
        text = plan.describe()
        assert "ShardedPlan" in text
        assert "shard 0" in text
        assert "precompiled input_bits: [2]" in text

    def test_plan_dump_entry_point_runs(self, capsys):
        from repro.plan.__main__ import main

        main()
        out = capsys.readouterr().out
        assert "MvmPlan" in out and "ShardedPlan" in out
        assert "registered backends" in out

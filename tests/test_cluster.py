"""End-to-end cluster tests: gateway + worker processes over shm rings.

Every test spawns real worker processes (fork start method where the
platform has it) against the small chip configuration, so the whole
suite stays in CI-friendly territory while exercising the actual
process boundary: registration fan-out, zero-copy submission, failover,
backpressure, and graceful drain/restart.
"""

import asyncio
import os
import signal

import numpy as np
import pytest

from repro.core.config import ChipConfig, HctConfig
from repro.errors import AdmissionError, ClusterError
from repro.runtime.cluster import ClusterGateway
from repro.runtime.pool import DevicePool
from repro.runtime.server import PumServer

RNG = np.random.default_rng(11)
MATRIX = RNG.integers(-8, 8, size=(24, 16), dtype=np.int64)
TRACE = RNG.integers(0, 16, size=(40, 24), dtype=np.int64)


def run(coroutine):
    return asyncio.run(coroutine)


def gateway(**kwargs):
    kwargs.setdefault("chip", "small")
    kwargs.setdefault("num_workers", 2)
    return ClusterGateway(**kwargs)


def local_server(num_devices=1):
    pool = DevicePool(
        num_devices=num_devices,
        config=ChipConfig(hct=HctConfig.small(), num_hcts=3),
    )
    return PumServer(pool=pool, queue_capacity=4096)


# --------------------------------------------------------------------- #
# Correctness                                                             #
# --------------------------------------------------------------------- #
def test_results_bit_identical_to_single_server():
    """The cluster answer equals a single-process PumServer's, bit for bit."""

    async def cluster_trace():
        async with gateway(replication=2) as gw:
            await gw.register_matrix("w", MATRIX)
            futures = await gw.submit_batch("w", TRACE)
            responses = await asyncio.gather(*futures)
            assert all(r.ok for r in responses), \
                [r.error for r in responses if not r.ok]
            return np.stack([r.result for r in responses])

    cluster = run(cluster_trace())
    server = local_server()
    server.register_matrix("w", MATRIX)
    futures = server.submit_batch("w", TRACE)
    server.run_until_idle()
    local = np.stack([f.result().result for f in futures])
    assert np.array_equal(cluster, local)


def test_submit_single_vector():
    async def scenario():
        async with gateway(num_workers=1) as gw:
            await gw.register_matrix("w", MATRIX)
            future = await gw.submit("w", TRACE[0])
            response = await future
            assert response.ok
            assert response.worker_id == 0
            assert response.latency_ticks >= 0
            return response.result

    result = run(scenario())
    server = local_server()
    server.register_matrix("w", MATRIX)
    future = server.submit("w", TRACE[0])
    server.run_until_idle()
    assert np.array_equal(result, future.result().result)


def test_responses_preserve_row_order_and_ids():
    async def scenario():
        async with gateway(num_workers=1) as gw:
            await gw.register_matrix("w", MATRIX)
            futures = await gw.submit_batch("w", TRACE[:10])
            responses = await asyncio.gather(*futures)
            assert [r.request_id for r in responses] == list(range(10))
            assert all(r.name == "w" for r in responses)

    run(scenario())


# --------------------------------------------------------------------- #
# Placement and registration                                              #
# --------------------------------------------------------------------- #
def test_registration_reuse_is_noop():
    async def scenario():
        async with gateway(replication=2) as gw:
            first = await gw.register_matrix("w", MATRIX)
            again = await gw.register_matrix("w", MATRIX.copy())
            assert first == again
            assert gw.stats.registration_reuses == 1
            # Different bytes re-place and re-program.
            await gw.register_matrix("w", MATRIX + 1)
            assert gw.stats.registration_reuses == 1

    run(scenario())


def test_placement_is_content_deterministic():
    """Rendezvous placement depends only on matrix bytes, not call order."""

    async def placements(names):
        async with gateway(num_workers=2, replication=1, num_hcts=9) as gw:
            result = {}
            for name, offset in names:
                await gw.register_matrix(name, MATRIX + offset)
                result[name] = gw.placement_of(name)
            return result

    forward = run(placements([("a", 0), ("b", 1), ("c", 2)]))
    reverse = run(placements([("c", 2), ("b", 1), ("a", 0)]))
    assert forward == reverse


def test_unregistered_name_is_rejected():
    async def scenario():
        async with gateway(num_workers=1) as gw:
            with pytest.raises(AdmissionError, match="no matrix registered"):
                await gw.submit_batch("ghost", TRACE[:2])

    run(scenario())


def test_plan_handle_crosses_the_wire():
    async def scenario():
        async with gateway(num_workers=1) as gw:
            await gw.register_matrix("w", MATRIX)
            handle = gw.plan_handle("w")
            assert handle.shape == MATRIX.shape
            assert handle.predicted_cycles(8) > handle.predicted_cycles(1) > 0

    run(scenario())


# --------------------------------------------------------------------- #
# Failure handling                                                        #
# --------------------------------------------------------------------- #
def test_bad_vectors_fail_their_batch_not_the_worker():
    """An out-of-range batch resolves failed; the worker keeps serving."""

    async def scenario():
        async with gateway(num_workers=1) as gw:
            await gw.register_matrix("w", MATRIX)
            bad = np.full((3, 24), 999, dtype=np.int64)  # >= 2**8
            futures = await gw.submit_batch("w", bad)
            responses = await asyncio.gather(*futures)
            assert [r.status for r in responses] == ["failed"] * 3
            assert all("QuantizationError" in r.error for r in responses)
            # The worker survived and still serves good traffic.
            futures = await gw.submit_batch("w", TRACE[:4])
            responses = await asyncio.gather(*futures)
            assert all(r.ok for r in responses)

    run(scenario())


def test_killed_worker_retries_on_replica_without_losing_futures():
    """Chaos: SIGKILL one holder under load; replicas absorb everything."""

    async def scenario():
        async with gateway(replication=2, heartbeat_interval=0.02) as gw:
            await gw.register_matrix("w", MATRIX)
            futures = []
            rng = np.random.default_rng(5)
            for wave in range(25):
                vectors = rng.integers(0, 16, size=(8, 24), dtype=np.int64)
                futures.extend(await gw.submit_batch("w", vectors))
                if wave == 4:
                    os.kill(gw._workers[0].process.pid, signal.SIGKILL)
                await asyncio.sleep(0.002)
            responses = await asyncio.gather(*futures)
            assert len(responses) == 25 * 8  # every future resolved
            assert all(r.ok for r in responses)
            stats = gw.stats.snapshot()
            assert stats["worker_failures"] == 1
            assert stats["retried_batches"] >= 1
            status = gw.worker_status()
            assert status[0]["alive"] is False
            assert status[1]["alive"] is True

    run(scenario())


def test_killed_worker_without_replica_resolves_failed():
    """With replication=1 the stranded futures fail -- but never hang."""

    async def scenario():
        async with gateway(replication=1, heartbeat_interval=0.02) as gw:
            await gw.register_matrix("w", MATRIX)
            holder = gw.placement_of("w")[0]
            futures = await gw.submit_batch("w", TRACE[:16])
            os.kill(gw._workers[holder].process.pid, signal.SIGKILL)
            responses = await asyncio.wait_for(
                asyncio.gather(*futures), timeout=30
            )
            assert len(responses) == 16
            for response in responses:
                assert response.status in ("completed", "failed")
            # Later traffic for the dead placement is shed to the caller.
            deadline = asyncio.get_running_loop().time() + 30
            while True:
                try:
                    await gw.submit_batch("w", TRACE[:2])
                except AdmissionError:
                    break
                assert asyncio.get_running_loop().time() < deadline

    run(scenario())


# --------------------------------------------------------------------- #
# Backpressure                                                            #
# --------------------------------------------------------------------- #
def test_saturated_windows_shed_to_caller():
    async def scenario():
        async with gateway(num_workers=1, inflight_window=4) as gw:
            await gw.register_matrix("w", MATRIX)
            admitted, shed = [], 0
            for _ in range(10):
                try:
                    admitted.extend(await gw.submit_batch("w", TRACE[:2]))
                except AdmissionError:
                    shed += 1
            assert shed > 0
            assert gw.stats.shed == shed * 2
            responses = await asyncio.gather(*admitted)
            assert all(r.ok for r in responses)

    run(scenario())


def test_batch_larger_than_window_is_rejected_upfront():
    async def scenario():
        async with gateway(num_workers=1, inflight_window=4) as gw:
            await gw.register_matrix("w", MATRIX)
            with pytest.raises(AdmissionError, match="inflight window"):
                await gw.submit_batch("w", TRACE[:8])

    run(scenario())


# --------------------------------------------------------------------- #
# Drain and restart                                                       #
# --------------------------------------------------------------------- #
def test_graceful_drain_returns_worker_stats():
    async def scenario():
        async with gateway(num_workers=1) as gw:
            await gw.register_matrix("w", MATRIX)
            futures = await gw.submit_batch("w", TRACE[:6])
            stats = await gw.drain_worker(0)
            # Drain waited for the inflight window to empty first.
            assert all(future.done() for future in futures)
            assert stats["completed"] == 6.0
            assert stats["batches"] >= 1.0

    run(scenario())


def test_restart_worker_keeps_serving_without_losing_futures():
    async def scenario():
        async with gateway(num_workers=2, replication=2) as gw:
            await gw.register_matrix("w", MATRIX)
            before = await gw.submit_batch("w", TRACE[:8])
            await gw.restart_worker(0)
            assert all(future.done() for future in before)
            resolved = await asyncio.gather(*before)
            assert all(r.ok for r in resolved)
            # The restarted worker was re-registered and serves again.
            after = await asyncio.gather(
                *await gw.submit_batch("w", TRACE[8:16])
            )
            assert all(r.ok for r in after)
            assert gw.stats.restarts == 1
            assert gw.worker_status()[0]["alive"] is True

    run(scenario())


def test_submitting_after_close_raises():
    async def scenario():
        gw = gateway(num_workers=1)
        async with gw:
            await gw.register_matrix("w", MATRIX)
        with pytest.raises(ClusterError, match="not running"):
            await gw.submit_batch("w", TRACE[:2])

    run(scenario())


# --------------------------------------------------------------------- #
# Configuration validation                                                #
# --------------------------------------------------------------------- #
def test_invalid_configuration_is_rejected():
    with pytest.raises(ClusterError, match="at least one worker"):
        ClusterGateway(num_workers=0)
    with pytest.raises(ClusterError, match="replication"):
        ClusterGateway(num_workers=2, replication=3)
    with pytest.raises(ClusterError, match="inflight_window"):
        ClusterGateway(num_workers=1, inflight_window=0)

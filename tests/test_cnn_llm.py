"""Tests for the CNN (ResNet-20) and LLM encoder workloads."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.workloads.cnn import (
    CnnMapping,
    Conv2d,
    NoisyInferenceEngine,
    ResNet20,
    SyntheticCifar10,
    conv2d,
    im2col,
    max_pool2d,
    quantize,
    resnet20_profile,
    run_conv_on_tile,
)
from repro.workloads.llm import (
    EncoderConfig,
    TransformerEncoder,
    encoder_profile,
    i_softmax,
    integer_sqrt,
    quantize_activation,
    run_projection_on_tile,
    LlmMapping,
)


class TestTensorOps:
    def test_conv2d_matches_naive_convolution(self, rng):
        x = rng.normal(size=(1, 2, 5, 5))
        w = rng.normal(size=(3, 2, 3, 3))
        out = conv2d(x, w, stride=1, padding=1)
        assert out.shape == (1, 3, 5, 5)
        # Check the centre output position against a direct dot product.
        patch = x[0, :, 1:4, 1:4].reshape(-1)
        assert out[0, 0, 2, 2] == pytest.approx(patch @ w[0].reshape(-1))

    def test_im2col_shapes(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        patches, out_h, out_w = im2col(x, kernel=3, stride=2, padding=1)
        assert (out_h, out_w) == (4, 4)
        assert patches.shape == (2 * 16, 27)

    def test_max_pool(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        pooled = max_pool2d(x, kernel=2)
        assert np.array_equal(pooled[0, 0], [[5, 7], [13, 15]])

    def test_quantize_roundtrip_error_bounded(self, rng):
        x = rng.normal(size=(16, 16))
        q = quantize(x, bits=8)
        assert np.abs(q.dequantize() - x).max() <= q.scale


class TestResNet20:
    def test_parameter_count_matches_published_size(self):
        model = ResNet20()
        assert 0.26e6 < model.parameter_count() < 0.29e6

    def test_forward_shape_and_determinism(self, rng):
        model = ResNet20(seed=3)
        x = rng.normal(size=(2, 3, 32, 32))
        logits = model.forward(x)
        assert logits.shape == (2, 10)
        assert np.array_equal(logits, ResNet20(seed=3).forward(x))

    def test_named_layers_match_figure15_labels(self):
        labels = [label for label, _, _ in ResNet20().named_mvm_layers()]
        assert labels[0] == "c1-Conv1"
        assert labels[-1] == "Seq-b4-Seq"
        assert "r2-ds" in labels and "r3-ds" in labels
        assert len(labels) == 22  # 19 convs + 2 downsample convs + 1 FC

    def test_total_macs_match_published_flops(self):
        profile = resnet20_profile()
        assert 38e6 < profile.total_macs < 43e6  # ~40.8 M MACs

    def test_mapping_fits_on_chip(self):
        mapping = CnnMapping(ResNet20())
        assert 0 < mapping.total_hcts < 1860
        assert mapping.placement_for("c1-Conv1").rows == 27


class TestConvOnTile:
    def test_device_result_within_quantisation_error(self, small_tile, rng):
        conv = Conv2d(3, 4, kernel=3, stride=1, padding=1, name="t", rng=rng)
        image = rng.normal(size=(1, 3, 8, 8))
        device, reference = run_conv_on_tile(small_tile, conv, image, positions=3)
        scale = np.abs(reference).max() + 1e-9
        assert np.abs(device - reference).max() / scale < 0.1


class TestNoisyInference:
    def test_zero_noise_matches_quantised_reference(self, rng):
        model = ResNet20(seed=1)
        dataset = SyntheticCifar10(seed=1)
        images, labels = dataset.sample(4)
        clean = NoisyInferenceEngine(model, noise_lsb=0.0)
        again = NoisyInferenceEngine(model, noise_lsb=0.0)
        assert np.array_equal(clean.forward(images), again.forward(images))

    def test_moderate_noise_preserves_predictions(self):
        model = ResNet20(seed=1)
        images, labels = SyntheticCifar10(seed=1).sample(8)
        clean = np.argmax(NoisyInferenceEngine(model, noise_lsb=0.0).forward(images), axis=1)
        noisy = np.argmax(NoisyInferenceEngine(model, noise_lsb=0.5, seed=2).forward(images), axis=1)
        assert np.mean(clean == noisy) >= 0.75

    def test_accuracy_helper(self):
        model = ResNet20(seed=1)
        images, labels = SyntheticCifar10(seed=1).sample(4)
        accuracy = NoisyInferenceEngine(model).accuracy(images, labels)
        assert 0.0 <= accuracy <= 1.0


class TestIbertKernels:
    @given(st.lists(st.integers(min_value=0, max_value=10 ** 6), min_size=1, max_size=16))
    def test_integer_sqrt_is_floor_sqrt(self, values):
        values = np.array(values, dtype=np.int64)
        roots = integer_sqrt(values)
        assert np.all(roots ** 2 <= values)
        assert np.all((roots + 1) ** 2 > values)

    def test_integer_softmax_close_to_float(self, rng):
        x = rng.normal(size=(4, 12))
        q, scale = quantize_activation(x, bits=16)
        probs_q, probs_scale = i_softmax(q, scale, axis=-1)
        probs = probs_q * probs_scale
        reference = np.exp(x - x.max(axis=-1, keepdims=True))
        reference = reference / reference.sum(axis=-1, keepdims=True)
        assert np.abs(probs / probs.sum(axis=-1, keepdims=True) - reference).max() < 0.05


class TestEncoder:
    def test_forward_shape(self, rng):
        config = EncoderConfig.tiny()
        encoder = TransformerEncoder(config)
        x = rng.normal(size=(config.sequence_length, config.hidden_size))
        assert encoder.forward(x).shape == x.shape

    def test_integer_kernels_stay_close_to_float(self, rng):
        config = EncoderConfig.tiny()
        encoder = TransformerEncoder(config, seed=5)
        x = rng.normal(size=(config.sequence_length, config.hidden_size))
        float_out = encoder.forward(x, integer_kernels=False)
        int_out = encoder.forward(x, integer_kernels=True)
        relative = np.abs(float_out - int_out).mean() / (np.abs(float_out).mean() + 1e-9)
        assert relative < 0.05

    def test_bert_base_parameter_count(self):
        encoder = TransformerEncoder(EncoderConfig.bert_base())
        assert 80e6 < encoder.parameter_count() < 90e6

    def test_profile_macs_scale_with_sequence_length(self):
        short = encoder_profile(EncoderConfig.bert_base(sequence_length=64))
        long = encoder_profile(EncoderConfig.bert_base(sequence_length=128))
        assert long.total_macs > short.total_macs
        assert long.nonlinear_ops > 0

    def test_mapping_reports_static_matrices(self):
        mapping = LlmMapping(EncoderConfig.bert_base())
        assert mapping.total_hcts > 0
        assert mapping.weight_bytes == pytest.approx(
            12 * (4 * 768 * 768 + 2 * 768 * 3072), rel=0.01
        )

    def test_projection_on_tile(self, small_tile, rng):
        weight = rng.normal(size=(20, 10))
        activations = rng.normal(size=(3, 20))
        device, reference = run_projection_on_tile(small_tile, weight, activations)
        scale = np.abs(reference).max() + 1e-9
        assert np.abs(device - reference).max() / scale < 0.1

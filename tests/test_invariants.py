"""Property-based conservation harness: randomized submit/kill/tick schedules.

The library cannot depend on hypothesis, so this is a hand-rolled property
harness: each case derives an independent RNG stream from the suite's
master seed (``REPRO_TEST_SEED``), generates a random server configuration
(queue strategy, replication, admission mode, batching knobs) and a random
operation schedule (single submits, bulk waves, ticks, device kills, hangs
and heals), runs it, and checks the *conservation invariant*:

    every submitted request id reaches exactly one terminal state
    (completed, rejected, shed, or failed), the stats counters agree
    with the futures, and the queue is empty at the end.

This must hold for ANY schedule -- including ones that kill every device
(batches then resolve as failed rather than wedging the scheduler).  The
case count (200+) and per-case seeds are fixed, so a failure reproduces by
running the named case alone; sweeping ``REPRO_TEST_SEED`` in CI explores
fresh schedules without touching the code.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.testing import derive_rng
from repro.core import ChipConfig, HctConfig
from repro.runtime import DevicePool, FaultInjector, PumServer

#: Randomized schedules checked per master seed (the acceptance criterion
#: asks for 200+).
NUM_CASES = 224

ROWS = 4
STATUSES = ("completed", "rejected", "shed", "failed")


def build_server(rng):
    """A random small-but-real serving stack."""
    num_devices = int(rng.integers(1, 4))
    replication = int(rng.integers(1, num_devices + 1))
    pool = DevicePool(
        num_devices=num_devices,
        config=ChipConfig(hct=HctConfig.small(), num_hcts=2),
        replication=replication,
        policy=str(rng.choice(["round_robin", "least_loaded", "cache_affinity"])),
    )
    server = PumServer(
        pool=pool,
        max_batch=int(rng.integers(1, 5)),
        max_wait_ticks=int(rng.integers(0, 4)),
        queue_capacity=int(rng.integers(2, 10)),
        admission=str(rng.choice(["reject", "shed_lowest"])),
        queue=str(rng.choice(["flat", "indexed"])),
    )
    matrix = rng.integers(-4, 4, size=(ROWS, ROWS))
    server.register_matrix("m", matrix, element_size=4, input_bits=2)
    return server


def random_schedule(server, injector, rng):
    """Run a random op sequence; returns every future handed out."""
    futures = []
    num_devices = server.pool.num_devices
    for _ in range(int(rng.integers(8, 25))):
        op = rng.integers(0, 10)
        if op <= 3:  # single submit
            futures.append(server.submit(
                "m",
                rng.integers(0, 4, size=ROWS),
                input_bits=2,
                priority=int(rng.integers(0, 3)),
                deadline=(
                    server.now + int(rng.integers(1, 6))
                    if rng.integers(0, 3) == 0 else None
                ),
            ))
        elif op <= 5:  # bulk wave
            futures.extend(server.submit_batch(
                "m",
                rng.integers(0, 4, size=(int(rng.integers(1, 5)), ROWS)),
                input_bits=2,
                priority=int(rng.integers(0, 3)),
            ))
        elif op <= 7:  # advance the clock
            server.tick()
        elif op == 8:  # fault: kill or hang someone
            device = int(rng.integers(0, num_devices))
            if rng.integers(0, 2):
                injector.kill(device)
            else:
                injector.hang(device, calls=int(rng.integers(1, 3)))
        else:  # heal someone (possibly never faulted: heal is idempotent)
            injector.heal(int(rng.integers(0, num_devices)))
    return futures


@pytest.mark.parametrize("case", range(NUM_CASES))
def test_conservation_under_random_schedules(case):
    rng = derive_rng("invariants", case)
    server = build_server(rng)
    injector = FaultInjector(seed=case).attach(server.pool)
    futures = random_schedule(server, injector, rng)
    server.run_until_idle()

    # Conservation: every id handed out is terminal, exactly once, with a
    # known status; nothing is left pending; the stats agree.
    assert server.pending == 0
    assert len({f.request_id for f in futures}) == len(futures)
    counts = dict.fromkeys(STATUSES, 0)
    for future in futures:
        assert future.done(), f"request {future.request_id} never resolved"
        response = future.result(timeout=0)
        assert response.status in STATUSES
        counts[response.status] += 1
    stats = server.stats
    assert stats.submitted == len(futures)
    assert counts["completed"] == stats.completed
    assert counts["rejected"] == stats.rejected
    assert counts["shed"] == stats.shed
    assert counts["failed"] == stats.failed
    assert stats.submitted == stats.completed + stats.rejected \
        + stats.shed + stats.failed

    # Completed responses carry real results; terminal non-completions
    # carry none.  Spot-check correctness where the run stayed clean.
    for future in futures:
        response = future.result(timeout=0)
        if response.status == "completed":
            assert response.result is not None
            assert response.result.shape == (ROWS,)
        else:
            assert response.result is None

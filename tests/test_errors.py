"""Error-path coverage: every public exception is raisable via the public API.

Each test provokes one class from :mod:`repro.errors` through a *public*
entry point (no reaching into private helpers), then asserts the type, the
documented hierarchy, and -- where the class documents structured fields
(``DeviceFailedError``, ``ReplicationError``) -- those fields.  A final
registry test enumerates ``repro.errors`` so adding a new public exception
without extending this suite fails loudly.
"""

from __future__ import annotations

import inspect

import numpy as np
import pytest

import repro.errors as errors_module
from repro.core import (
    AnalogDigitalArbiter,
    ChipConfig,
    Domain,
    HctConfig,
    HybridComputeTile,
    InstructionInjectionUnit,
)
from repro.digital import BitPipeline
from repro.errors import (
    AdmissionError,
    AllocationError,
    ArbiterConflictError,
    BatchTimeoutError,
    CapacityError,
    CircuitOpenError,
    ClusterError,
    ConfigurationError,
    DeviceError,
    DeviceFailedError,
    ExecutionError,
    IntegrityError,
    IsaError,
    MappingError,
    NoDevicesError,
    QuantizationError,
    RebuildError,
    RegisterLiveError,
    ReplicationError,
    ReproError,
    SchedulerError,
    SloError,
    TransportError,
    WorkerFailedError,
)
from repro.isa import assemble
from repro.runtime import AesSession, DevicePool, FaultInjector, PumServer
from repro.analog import AnalogCrossbar


def small_pool(**kwargs) -> DevicePool:
    kwargs.setdefault("num_devices", 2)
    kwargs.setdefault("config", ChipConfig(hct=HctConfig.small(), num_hcts=2))
    return DevicePool(**kwargs)


class TestRaisableViaPublicApi:
    """One provocation per public exception class."""

    def test_configuration_error(self):
        with pytest.raises(ConfigurationError, match="at least one HCT"):
            ChipConfig(hct=HctConfig.small(), num_hcts=0)

    def test_capacity_error(self):
        pipeline = BitPipeline(depth=16, rows=8, cols=16)
        with pytest.raises(CapacityError, match="out of range"):
            pipeline.write_vr(99, [0] * 8)

    def test_allocation_error(self):
        pool = small_pool(num_devices=1)
        with pytest.raises(AllocationError):
            pool.set_matrix(np.ones((4096, 4096), dtype=np.int64))

    def test_no_devices_error(self):
        with pytest.raises(NoDevicesError, match="at least one device"):
            DevicePool(num_devices=0, config=ChipConfig(hct=HctConfig.small()))

    def test_scheduler_error(self):
        with pytest.raises(SchedulerError, match="max_batch"):
            PumServer(pool=small_pool(), max_batch=0)

    def test_admission_error(self):
        server = PumServer(pool=small_pool())
        with pytest.raises(AdmissionError, match="no matrix registered"):
            server.allocation_for("missing")

    def test_slo_error(self):
        server = PumServer(pool=small_pool())
        server.register_matrix("proj", np.eye(4, dtype=np.int64))
        with pytest.raises(SloError, match="unknown SLO class"):
            server.submit("proj", np.zeros(4, dtype=np.int64), slo="platinum")
        from repro.runtime import SloClass
        with pytest.raises(SloError, match="latency_target_ticks"):
            SloClass("bogus", latency_target_ticks=0)

    def test_mapping_error(self):
        session = AesSession()  # no key at init
        with pytest.raises(MappingError, match="needs a key"):
            session.encrypt(b"\x00" * 16)

    def test_isa_error(self):
        with pytest.raises(IsaError, match="unknown mnemonic"):
            assemble("FROBNICATE vr0")

    def test_execution_error(self):
        tile = HybridComputeTile(HctConfig.small())
        handle = tile.set_matrix(np.ones((4, 4), dtype=np.int64))
        with pytest.raises(ExecutionError, match="at least one input vector"):
            tile.execute_mvm_batch(handle, np.empty((0, 4), dtype=np.int64))

    def test_arbiter_conflict_error(self):
        arbiter = AnalogDigitalArbiter()
        arbiter.acquire("pipeline:0", Domain.ANALOG, now=0.0, duration=10.0)
        with pytest.raises(ArbiterConflictError, match="busy with analog"):
            arbiter.try_acquire("pipeline:0", Domain.DIGITAL, now=1.0,
                                duration=1.0)

    def test_register_live_error(self):
        tile = HybridComputeTile(HctConfig.small())
        pipeline = tile.pipeline(0)  # never reserved for analog output
        with pytest.raises(RegisterLiveError, match="unreserved pipeline"):
            InstructionInjectionUnit().inject_reduction(
                pipeline, [np.arange(4)], accumulator_vr=0,
                staging_vrs=[1], shifts=[0],
            )

    def test_device_error(self):
        crossbar = AnalogCrossbar(rows=8, cols=8)
        with pytest.raises(DeviceError, match="has not been programmed"):
            crossbar.positive_levels()

    def test_quantization_error(self):
        pool = small_pool()
        with pytest.raises(QuantizationError, match="2-D"):
            pool.set_matrix(np.arange(8))

    def test_cluster_error(self):
        from repro.runtime.cluster import ClusterGateway
        with pytest.raises(ClusterError, match="at least one worker"):
            ClusterGateway(num_workers=0)

    def test_transport_error(self):
        from repro.runtime.cluster import ShmRing
        ring = ShmRing(capacity=4096)
        try:
            assert ring.push([b"\x01\x02\x03\x04"])
            # Corrupt the committed frame's payload in place (first byte
            # past the 64-byte control block + 12-byte frame header): the
            # reader must flag the CRC instead of serving torn bytes.
            ring.shm.buf[64 + 12] ^= 0xFF
            with pytest.raises(TransportError, match="CRC mismatch"):
                ring.peek()
        finally:
            ring.close()

    def test_worker_failed_error(self):
        from repro.runtime.cluster import ClusterGateway

        async def scenario():
            import asyncio
            import os
            import signal
            async with ClusterGateway(
                num_workers=1, chip="small", heartbeat_interval=0.02
            ) as gateway:
                await gateway.register_matrix(
                    "w", np.eye(8, dtype=np.int64), input_bits=2
                )
                futures = await gateway.submit_batch(
                    "w", np.ones((2, 8), dtype=np.int64), 2
                )
                os.kill(gateway._workers[0].process.pid, signal.SIGKILL)
                responses = await asyncio.gather(*futures)
                assert all(r.status == "failed" for r in responses)
                assert all(
                    "cluster worker 0 failed" in r.error for r in responses
                )

        import asyncio
        asyncio.run(scenario())

    def test_repro_error_is_the_catchable_base(self):
        # The library contract: one `except ReproError` catches any
        # library failure without swallowing unrelated Python errors.
        server = PumServer(pool=small_pool())
        with pytest.raises(ReproError):
            server.allocation_for("missing")


class TestDeviceFailedErrorFields:
    def test_kill_carries_device_and_kind(self):
        pool = small_pool()
        injector = FaultInjector().attach(pool)
        injector.kill(1)
        with pytest.raises(DeviceFailedError) as excinfo:
            injector.before_call(1)
        assert excinfo.value.device_index == 1
        assert excinfo.value.kind == "kill"

    def test_hang_kind(self):
        pool = small_pool()
        injector = FaultInjector().attach(pool)
        injector.hang(0, calls=1)
        with pytest.raises(DeviceFailedError) as excinfo:
            injector.before_call(0)
        assert excinfo.value.device_index == 0
        assert excinfo.value.kind == "hang"

    def test_exhausted_kind_when_every_replica_is_dead(self):
        pool = small_pool(num_devices=1)
        allocation = pool.set_matrix(np.ones((4, 4), dtype=np.int64))
        injector = FaultInjector().attach(pool)
        injector.kill(0)
        with pytest.raises(DeviceFailedError) as excinfo:
            pool.exec_mvm(allocation, np.ones(4, dtype=np.int64),
                          input_bits=2)
        assert excinfo.value.kind == "exhausted"
        assert isinstance(excinfo.value.device_index, int)

    def test_retryable_hierarchy(self):
        # Documented: a failed device is a *device*-level error, hence
        # catchable by anything already handling DeviceError.
        assert issubclass(DeviceFailedError, DeviceError)


class TestReplicationErrorFields:
    def test_fields_match_the_impossible_request(self):
        with pytest.raises(ReplicationError) as excinfo:
            small_pool(num_devices=2, replication=3)
        assert excinfo.value.replication == 3
        assert excinfo.value.num_devices == 2
        assert "distinct devices" in str(excinfo.value)

    def test_is_an_allocation_error(self):
        assert issubclass(ReplicationError, AllocationError)


class TestIntegrityErrorFields:
    def test_corruption_exhausts_into_integrity_error(self):
        # Public-API provocation: an unreplicated pool in full-verification
        # mode has no replica to re-execute on, so a corrupted result
        # surfaces as IntegrityError(kind="exhausted").
        pool = small_pool(num_devices=1, verify="full")
        allocation = pool.set_matrix(np.eye(4, dtype=np.int64))
        injector = FaultInjector(seed=3).attach(pool)
        injector.corrupt(0, calls=4)
        with pytest.raises(IntegrityError) as excinfo:
            pool.exec_mvm_batch(allocation, np.ones((1, 4), dtype=np.int64),
                                input_bits=2)
        assert excinfo.value.kind == "exhausted"
        assert excinfo.value.device_index == 0
        assert excinfo.value.band == 0

    def test_is_a_device_error(self):
        # Documented: a checksum mismatch is a *device*-level failure, so
        # existing DeviceError handlers see it without new except clauses.
        assert issubclass(IntegrityError, DeviceError)


class TestRebuildErrorFields:
    def test_no_capacity_anywhere(self):
        pool = small_pool(num_devices=2, replication=2)
        allocation = pool.set_matrix(np.eye(4, dtype=np.int64))
        pool.mark_device_failed(0)
        pool.mark_device_failed(1)
        with pytest.raises(RebuildError) as excinfo:
            pool.rebuild(allocation)
        assert excinfo.value.allocation_id == allocation.allocation_id
        assert excinfo.value.band == 0
        assert "rebuilt" in str(excinfo.value)

    def test_is_an_allocation_error(self):
        assert issubclass(RebuildError, AllocationError)


class TestWorkerFailedErrorFields:
    def test_fields_and_default_message(self):
        error = WorkerFailedError(3, kind="stale")
        assert error.worker_id == 3
        assert error.kind == "stale"
        assert "worker 3" in str(error)
        assert "stale" in str(error)

    def test_is_a_cluster_error(self):
        assert issubclass(WorkerFailedError, ClusterError)


class TestBatchTimeoutErrorFields:
    def test_fields_and_default_message(self):
        error = BatchTimeoutError(1, batch_id=7, attempts=3)
        assert error.worker_id == 1
        assert error.batch_id == 7
        assert error.attempts == 3
        assert "batch 7" in str(error)
        assert "worker 1" in str(error)

    def test_is_a_cluster_error(self):
        # A gray failure is a *cluster*-tier event, not an admission one:
        # it fires after admission, while the batch is inflight.
        assert issubclass(BatchTimeoutError, ClusterError)


class TestCircuitOpenErrorFields:
    def test_fields_and_default_message(self):
        error = CircuitOpenError(worker_ids=(0, 2))
        assert error.worker_ids == (0, 2)
        assert "circuit breaker open" in str(error)

    def test_is_admission_backpressure(self):
        # Documented contract: existing `except AdmissionError` retry
        # loops must absorb breaker-open refusals without modification.
        assert issubclass(CircuitOpenError, AdmissionError)


class TestHierarchy:
    """The documented lattice, asserted explicitly."""

    @pytest.mark.parametrize("child, parent", [
        (ConfigurationError, ReproError),
        (CapacityError, ReproError),
        (AllocationError, CapacityError),
        (NoDevicesError, AllocationError),
        (ReplicationError, AllocationError),
        (SchedulerError, ReproError),
        (AdmissionError, SchedulerError),
        (SloError, SchedulerError),
        (MappingError, ReproError),
        (IsaError, ReproError),
        (ExecutionError, ReproError),
        (ArbiterConflictError, ExecutionError),
        (RegisterLiveError, ExecutionError),
        (DeviceError, ReproError),
        (DeviceFailedError, DeviceError),
        (IntegrityError, DeviceError),
        (RebuildError, AllocationError),
        (QuantizationError, ReproError),
        (ClusterError, ReproError),
        (TransportError, ClusterError),
        (WorkerFailedError, ClusterError),
        (BatchTimeoutError, ClusterError),
        (CircuitOpenError, AdmissionError),
    ])
    def test_subclassing(self, child, parent):
        assert issubclass(child, parent)

    def test_every_public_exception_is_covered_here(self):
        """Registry check: a new exception class must extend this suite."""
        public = {
            name for name, obj in vars(errors_module).items()
            if inspect.isclass(obj) and issubclass(obj, ReproError)
        }
        covered = {
            "ReproError", "ConfigurationError", "CapacityError",
            "AllocationError", "NoDevicesError", "ReplicationError",
            "SchedulerError", "AdmissionError", "SloError", "MappingError",
            "IsaError",
            "ExecutionError", "ArbiterConflictError", "RegisterLiveError",
            "DeviceError", "DeviceFailedError", "IntegrityError",
            "RebuildError", "QuantizationError",
            "ClusterError", "TransportError", "WorkerFailedError",
            "BatchTimeoutError", "CircuitOpenError",
        }
        assert public == covered, (
            "public exceptions changed; update tests/test_errors.py: "
            f"uncovered={sorted(public - covered)} "
            f"stale={sorted(covered - public)}"
        )

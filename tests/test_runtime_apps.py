"""Tests for the application-specific runtime sessions (Table 1)."""

import numpy as np
import pytest

from repro.errors import MappingError
from repro.runtime.apps import AesSession, CnnSession, LlmSession
from repro.workloads.aes import encrypt_block
from repro.workloads.llm import EncoderConfig


class TestAesSession:
    def test_encrypt_matches_reference_and_decrypt_roundtrips(self):
        key = bytes(range(16))
        session = AesSession(key=key)
        plaintext = bytes(range(100, 116))
        ciphertext = session.encrypt(plaintext)
        assert ciphertext == bytes(encrypt_block(plaintext, key))
        assert session.decrypt(ciphertext) == plaintext

    def test_missing_key_rejected(self):
        session = AesSession()
        with pytest.raises(MappingError):
            session.encrypt(bytes(16))

    def test_kernel_cycles_exposed(self):
        session = AesSession(key=bytes(16))
        session.encrypt(bytes(range(16)))
        assert session.kernel_cycles.total() > 0


class TestCnnSession:
    def test_set_model_allocates_hcts(self):
        session = CnnSession()
        assert session.hcts_allocated > 0
        assert len(session.mapping.placements) == 22

    def test_run_inference_shapes_and_prediction(self, rng):
        session = CnnSession()
        images = rng.normal(size=(2, 3, 32, 32))
        logits = session.run_inference(images)
        assert logits.shape == (2, 10)
        assert session.predict(images).shape == (2,)

    def test_accuracy_target_changes_bits_per_cell(self):
        precise = CnnSession(accuracy_target=0)
        dense = CnnSession(accuracy_target=2)
        assert dense.hcts_allocated <= precise.hcts_allocated

    def test_change_activation_is_recorded(self):
        session = CnnSession()
        session.change_activation(np.tanh)
        assert session._activation is np.tanh


class TestLlmSession:
    def test_build_encoder_and_run_inference(self, rng):
        session = LlmSession(EncoderConfig.tiny())
        tokens = rng.normal(size=(session.config.sequence_length, session.config.hidden_size))
        out = session.run_inference(tokens)
        assert out.shape == tokens.shape
        assert session.hcts_allocated > 0

    def test_wrong_input_shape_rejected(self, rng):
        session = LlmSession(EncoderConfig.tiny())
        with pytest.raises(MappingError):
            session.run_inference(rng.normal(size=(3, 3)))

    def test_change_activation_toggles_integer_kernels(self, rng):
        session = LlmSession(EncoderConfig.tiny())
        tokens = rng.normal(size=(session.config.sequence_length, session.config.hidden_size))
        integer_out = session.run_inference(tokens)
        session.change_activation(False)
        float_out = session.run_inference(tokens)
        assert not np.array_equal(integer_out, float_out)
        assert np.abs(integer_out - float_out).mean() / np.abs(float_out).mean() < 0.05

"""Tests for the analog PUM substrate."""

import numpy as np
import pytest

from repro.testing import derive_rng
from hypothesis import given, settings, strategies as st

from repro.analog import (
    AceConfig,
    AnalogComputeElement,
    AnalogCrossbar,
    DifferentialPairs,
    OffsetSubtraction,
    ParasiticCompensation,
    RampAdc,
    SarAdc,
    ShiftAddPlan,
    make_adc,
    recombine,
    slice_inputs,
    slice_matrix,
)
from repro.errors import CapacityError, DeviceError, QuantizationError
from repro.reram import NoiseConfig


class TestAdcs:
    def test_sar_latency_scales_with_bitlines_per_adc(self):
        adc = SarAdc()
        assert adc.conversion_latency(64, num_adcs=2) == 32
        assert adc.conversion_latency(64, num_adcs=64) == 1

    def test_ramp_converts_all_bitlines_in_parallel(self):
        adc = RampAdc()
        assert adc.conversion_latency(64, num_adcs=1) == 256
        assert adc.conversion_latency(64, num_adcs=1, active_bits=2) == 4

    def test_quantisation_clips_to_range(self):
        adc = SarAdc(min_value=0, max_value=255)
        out = adc.convert(np.array([-5.0, 300.0, 100.4]))
        assert out[0] == 0 and out[1] == 255 and out[2] == pytest.approx(100.0)

    def test_make_adc_factory(self):
        assert make_adc("sar").kind == "sar"
        assert make_adc("ramp").kind == "ramp"
        with pytest.raises(Exception):
            make_adc("flash")

    def test_ramp_energy_accounts_for_early_termination(self):
        adc = RampAdc()
        assert adc.conversion_energy_pj(64, active_bits=2) < adc.conversion_energy_pj(64)


class TestBitSlicing:
    def test_slice_matrix_recombines(self):
        matrix = np.arange(16).reshape(4, 4)
        slices = slice_matrix(matrix, value_bits=4, bits_per_cell=2)
        assert len(slices) == 2
        recombined = slices[0] + (slices[1] << 2)
        assert np.array_equal(recombined, matrix)

    def test_slice_inputs_binary(self):
        bits = slice_inputs(np.array([5, 2]), input_bits=3)
        assert np.array_equal(bits[0], [1, 0])
        assert np.array_equal(bits[1], [0, 1])
        assert np.array_equal(bits[2], [1, 0])

    def test_negative_matrix_rejected(self):
        with pytest.raises(QuantizationError):
            slice_matrix(np.array([[-1]]), 4, 2)

    def test_recombine_matches_long_multiplication(self):
        partials = [np.array([3]), np.array([1])]
        assert recombine(partials, [0, 2])[0] == 3 + (1 << 2)

    def test_shift_add_plan_steps(self):
        plan = ShiftAddPlan(input_bits=3, weight_slices=2, bits_per_cell=2)
        steps = plan.steps
        assert len(steps) == 6
        assert plan.max_shift == 2 + 2
        assert plan.temporaries_needed() == 3

    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=4))
    def test_plan_shift_coverage(self, input_bits, slices):
        plan = ShiftAddPlan(input_bits=input_bits, weight_slices=slices, bits_per_cell=2)
        assert plan.num_partial_products == input_bits * slices
        assert len(plan.steps) == plan.num_partial_products


class TestNumberRepresentations:
    def test_differential_encoding_splits_sign(self):
        matrix = np.array([[3, -2], [0, -7]])
        encoded = DifferentialPairs(value_bits=4).encode(matrix)
        assert np.array_equal(encoded.positive - encoded.negative, matrix)
        assert encoded.positive.min() >= 0 and encoded.negative.min() >= 0

    def test_offset_encoding_and_decode(self):
        matrix = np.array([[3, -2]])
        scheme = OffsetSubtraction(value_bits=4)
        scheme.encode(matrix)
        decoded = scheme.decode_partial(np.array([10.0]), np.zeros(1), np.array([1.0]))
        assert decoded[0] == 10.0 - scheme.offset

    def test_magnitude_overflow_rejected(self):
        with pytest.raises(QuantizationError):
            DifferentialPairs(value_bits=2).encode(np.array([[9]]))


class TestCrossbar:
    def test_exact_mvm_without_noise(self):
        crossbar = AnalogCrossbar(rows=8, cols=8, bits_per_cell=2)
        matrix = np.arange(16).reshape(8, 2) % 4
        crossbar.program(matrix)
        x = np.array([1, 0, 1, 1, 0, 1, 0, 1])
        out = crossbar.mvm_1bit(x)
        assert np.array_equal(np.rint(out.values).astype(int), x @ matrix)

    def test_differential_programming_signed_result(self):
        crossbar = AnalogCrossbar(rows=4, cols=2, bits_per_cell=1)
        positive = np.array([[1, 0], [0, 1], [1, 1], [0, 0]])
        negative = np.array([[0, 1], [1, 0], [0, 0], [1, 1]])
        crossbar.program_differential(positive, negative)
        x = np.ones(4, dtype=np.int64)
        out = crossbar.mvm_1bit(x)
        assert np.array_equal(np.rint(out.values).astype(int),
                              (positive - negative).sum(axis=0))

    def test_unprogrammed_crossbar_rejects_mvm(self):
        with pytest.raises(DeviceError):
            AnalogCrossbar(rows=4, cols=4).mvm_1bit(np.zeros(4, dtype=np.int64))

    def test_non_binary_input_rejected(self):
        crossbar = AnalogCrossbar(rows=4, cols=4)
        crossbar.program(np.zeros((4, 4), dtype=np.int64))
        with pytest.raises(DeviceError):
            crossbar.mvm_1bit(np.array([0, 1, 2, 0]))

    def test_oversize_slice_rejected(self):
        crossbar = AnalogCrossbar(rows=4, cols=4)
        with pytest.raises(CapacityError):
            crossbar.program(np.zeros((8, 4), dtype=np.int64))

    def test_mvm_charges_latency_and_energy(self):
        crossbar = AnalogCrossbar(rows=4, cols=4)
        crossbar.program(np.ones((4, 4), dtype=np.int64))
        out = crossbar.mvm_1bit(np.ones(4, dtype=np.int64))
        assert out.latency_cycles > 0 and out.energy_pj > 0


class TestAce:
    def test_bit_sliced_mvm_is_exact(self, rng):
        ace = AnalogComputeElement(AceConfig(num_arrays=64, array_rows=16, array_cols=16))
        matrix = rng.integers(-100, 100, size=(40, 30))
        handle = ace.set_matrix(matrix, value_bits=8, bits_per_cell=2)
        x = rng.integers(0, 255, size=40)
        execution = ace.execute_mvm(handle, x, input_bits=8)
        assert np.array_equal(execution.reduce(), x @ matrix)

    def test_arrays_needed_and_capacity_error(self):
        ace = AnalogComputeElement(AceConfig(num_arrays=4, array_rows=16, array_cols=16))
        assert ace.arrays_needed((32, 32), 8, 2) == 16
        with pytest.raises(CapacityError):
            ace.set_matrix(np.zeros((32, 32), dtype=np.int64), 8, 2)

    def test_release_frees_arrays(self, rng):
        ace = AnalogComputeElement(AceConfig(num_arrays=8, array_rows=16, array_cols=16))
        handle = ace.set_matrix(rng.integers(0, 3, size=(16, 16)), value_bits=2, bits_per_cell=1)
        used = ace.arrays_used
        ace.release(handle)
        assert ace.arrays_used == used - handle.arrays_used

    def test_update_row_changes_result(self, rng):
        ace = AnalogComputeElement(AceConfig(num_arrays=8, array_rows=8, array_cols=8))
        matrix = rng.integers(0, 3, size=(8, 8))
        handle = ace.set_matrix(matrix, value_bits=3, bits_per_cell=1)
        new_row = np.ones(8, dtype=np.int64) * 3
        handle = ace.update_row(handle, 0, new_row)
        assert np.array_equal(ace.stored_matrix(handle)[0], new_row)

    def test_noise_injection_stays_close(self, rng):
        noisy = AnalogComputeElement(
            AceConfig(num_arrays=64, array_rows=16, array_cols=16),
            noise=NoiseConfig(programming_sigma=0.02, read_sigma=0.01),
        )
        matrix = rng.integers(-10, 10, size=(16, 16))
        handle = noisy.set_matrix(matrix, value_bits=5, bits_per_cell=1)
        x = rng.integers(0, 15, size=16)
        got = noisy.execute_mvm(handle, x, input_bits=4).reduce()
        want = x @ matrix
        assert np.abs(got - want).max() <= max(8, 0.2 * np.abs(want).max())


class TestCompensation:
    def test_remap_and_recover_roundtrip(self, rng):
        compensation = ParasiticCompensation()
        matrix = rng.integers(0, 2, size=(16, 8))
        x = rng.integers(0, 2, size=16)
        remapped = compensation.remap(matrix)
        raw = x @ remapped
        recovered = compensation.recover(raw, x)
        assert np.array_equal(recovered, x @ matrix)

    def test_fixed_input_ones_factor(self):
        plan = ParasiticCompensation(fixed_input_ones=4).plan
        assert plan.factor(np.array([1, 1, 0, 0])) == 4

    def test_non_binary_matrix_rejected(self):
        with pytest.raises(QuantizationError):
            ParasiticCompensation().remap(np.array([[2]]))


@settings(max_examples=20, deadline=None)
@given(
    rows=st.integers(min_value=2, max_value=12),
    cols=st.integers(min_value=1, max_value=8),
    bits=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_ace_mvm_matches_numpy(rows, cols, bits, seed):
    """Property: noise-free bit-sliced analog MVM equals the integer matmul."""
    rng = derive_rng("analog", seed)
    ace = AnalogComputeElement(AceConfig(num_arrays=64, array_rows=16, array_cols=16))
    magnitude = 2 ** (bits - 1)
    matrix = rng.integers(-magnitude, magnitude, size=(rows, cols))
    handle = ace.set_matrix(matrix, value_bits=bits, bits_per_cell=1)
    x = rng.integers(0, 2 ** bits, size=rows)
    execution = ace.execute_mvm(handle, x, input_bits=bits)
    assert np.array_equal(execution.reduce(), x @ matrix)

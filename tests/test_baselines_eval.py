"""Tests for the architecture models and the figure/table harness."""

import numpy as np
import pytest

from repro.baselines import (
    NAIVE_HYBRID_SPLITS,
    figure7_sweep,
    model_for,
    naive_hybrid_throughput,
)
from repro.eval import (
    figure13_throughput,
    figure14_aes_breakdown,
    figure15_resnet_layers,
    figure16_energy,
    figure17_adc_comparison,
    figure18_gpu_comparison,
    format_table,
    headline_results,
    render_report,
    section75_accuracy,
    table2_configuration,
    table3_area_power,
    workload_profiles,
)
from repro.metrics import geometric_mean


class TestArchitectureModels:
    @pytest.fixture(scope="class")
    def profiles(self):
        return workload_profiles()

    def test_darth_pum_beats_baseline_on_every_workload(self, profiles):
        for workload, profile in profiles.items():
            base = model_for("baseline", workload).evaluate(profile)
            darth = model_for("darth_pum", workload).evaluate(profile)
            assert darth.speedup_over(base) > 5
            assert darth.energy_savings_over(base) > 5

    def test_headline_speedups_within_paper_band(self, profiles):
        """Who wins and by roughly what factor (within 2x of the paper)."""
        paper = {"aes128": 59.4, "resnet20": 14.8, "llm_encoder": 40.8}
        for workload, target in paper.items():
            base = model_for("baseline", workload).evaluate(profiles[workload])
            darth = model_for("darth_pum", workload).evaluate(profiles[workload])
            speedup = darth.speedup_over(base)
            assert target / 2 < speedup < target * 2

    def test_headline_energy_within_paper_band(self, profiles):
        paper = {"aes128": 39.6, "resnet20": 51.2, "llm_encoder": 110.7}
        for workload, target in paper.items():
            base = model_for("baseline", workload).evaluate(profiles[workload])
            darth = model_for("darth_pum", workload).evaluate(profiles[workload])
            savings = darth.energy_savings_over(base)
            assert target / 2.5 < savings < target * 2.5

    def test_appaccel_relative_positions_match_paper(self, profiles):
        """AES-NI loses badly to DARTH-PUM; the CNN accelerator wins slightly."""
        aes_base = model_for("baseline", "aes128").evaluate(profiles["aes128"])
        aes_darth = model_for("darth_pum", "aes128").evaluate(profiles["aes128"])
        aes_app = model_for("app_accel", "aes128").evaluate(profiles["aes128"])
        assert aes_darth.speedup_over(aes_base) / aes_app.speedup_over(aes_base) > 10

        cnn_base = model_for("baseline", "resnet20").evaluate(profiles["resnet20"])
        cnn_darth = model_for("darth_pum", "resnet20").evaluate(profiles["resnet20"])
        cnn_app = model_for("app_accel", "resnet20").evaluate(profiles["resnet20"])
        assert cnn_app.speedup_over(cnn_base) > cnn_darth.speedup_over(cnn_base)
        assert cnn_app.speedup_over(cnn_base) < 2.5 * cnn_darth.speedup_over(cnn_base)

        llm_darth = model_for("darth_pum", "llm_encoder").evaluate(profiles["llm_encoder"])
        llm_app = model_for("app_accel", "llm_encoder").evaluate(profiles["llm_encoder"])
        assert llm_app.throughput_items_per_s > llm_darth.throughput_items_per_s

    def test_gpu_sits_between_baseline_and_darth(self, profiles):
        for workload, profile in profiles.items():
            base = model_for("baseline", workload).evaluate(profile)
            gpu = model_for("gpu", workload).evaluate(profile)
            darth = model_for("darth_pum", workload).evaluate(profile)
            assert gpu.speedup_over(base) > 1
            assert darth.throughput_items_per_s > gpu.throughput_items_per_s

    def test_unknown_architecture_rejected(self):
        with pytest.raises(Exception):
            model_for("tpu", "aes128")

    def test_latency_breakdown_sums_to_total(self, profiles):
        perf = model_for("baseline", "aes128").evaluate(profiles["aes128"])
        assert sum(perf.latency_breakdown_s.values()) == pytest.approx(perf.latency_s)


class TestNaiveHybridSweep:
    def test_hybrid_peak_beats_both_extremes(self):
        sweep = figure7_sweep(("oscar",))["oscar"]
        digital_only = sweep[0]
        analog_cpu = sweep[-1]
        peak = max(sweep[1:-1])
        assert peak > digital_only and peak > analog_cpu
        assert 2.0 < peak < 5.0  # paper: 3.54x over digital PUM

    def test_analog_cpu_close_to_digital(self):
        sweep = figure7_sweep(("oscar",))["oscar"]
        assert 0.8 < sweep[-1] < 1.6  # paper: A is 18% better than D

    def test_ideal_family_helps_pure_digital_most(self):
        sweep = figure7_sweep(("oscar", "ideal"))
        digital_gain = sweep["ideal"][0] / sweep["oscar"][0]
        best_index = int(np.argmax(sweep["oscar"][1:-1])) + 1
        hybrid_gain = sweep["ideal"][best_index] / sweep["oscar"][best_index]
        assert digital_gain > 1.5          # paper: 2.1x for pure digital
        assert hybrid_gain < 1.25          # paper: only 3.2% at the best hybrid

    def test_throughput_positive_for_all_splits(self):
        for split in NAIVE_HYBRID_SPLITS:
            assert naive_hybrid_throughput(split) > 0


class TestFigures:
    def test_figure13_structure_and_geomean(self):
        data = figure13_throughput()
        assert set(data) == {"digital_pum", "darth_pum", "app_accel"}
        darth = data["darth_pum"]
        assert darth["GeoMean"] == pytest.approx(
            geometric_mean([darth["AES"], darth["ResNet-20"], darth["LLMEnc"]])
        )

    def test_figure14_baseline_sums_to_100_percent(self):
        data = figure14_aes_breakdown()
        assert sum(data["baseline"].values()) == pytest.approx(100.0, rel=0.01)
        darth_total = sum(data["darth_pum"].values())
        assert darth_total < sum(data["baseline"].values())

    def test_figure14_mixcolumns_improves_most_on_darth(self):
        data = figure14_aes_breakdown()
        assert data["darth_pum"]["MixColumns"] < data["digital_pum"]["MixColumns"]

    def test_figure15_covers_every_resnet_layer(self):
        data = figure15_resnet_layers()
        assert len(data["darth_pum"]) == 23  # 22 layers + GeoMean
        assert all(value > 0 for value in data["darth_pum"].values())

    def test_figure16_energy_log_scale_ordering(self):
        data = figure16_energy()
        assert data["darth_pum"]["GeoMean"] > data["digital_pum"]["GeoMean"]

    def test_figure17_sar_beats_ramp_overall(self):
        data = figure17_adc_comparison()
        sar = data["throughput"]["darth_pum_sar"]["GeoMean"]
        ramp = data["throughput"]["darth_pum_ramp"]["GeoMean"]
        assert sar > ramp                       # paper: SAR 1.5x faster overall
        assert sar / ramp < 3.0
        energy_ratio = (data["energy"]["darth_pum_ramp"]["GeoMean"]
                        / data["energy"]["darth_pum_sar"]["GeoMean"])
        assert 0.7 < energy_ratio < 1.3         # paper: ramp achieves ~99% of SAR savings

    def test_figure17_aes_prefers_ramp_adcs(self):
        data = figure17_adc_comparison()
        assert data["throughput"]["darth_pum_ramp"]["AES"] >= \
            0.99 * data["throughput"]["darth_pum_sar"]["AES"]

    def test_figure18_darth_beats_gpu(self):
        data = figure18_gpu_comparison()
        assert data["darth_pum_speedup"]["GeoMean"] > 1
        assert data["darth_pum_energy"]["GeoMean"] > 1

    def test_table2_matches_paper_configuration(self):
        table = table2_configuration()
        assert table["dce_num_pipelines"] == 64
        assert table["ace_num_arrays"] == 64
        assert table["num_adcs"] == {"sar": 2, "ramp": 1}

    def test_table3_iso_area_counts(self):
        table = table3_area_power()
        assert table["iso_area_hcts"] == {"sar": 1860, "ramp": 1660}

    def test_section75_noise_does_not_change_predictions(self):
        result = section75_accuracy(samples=8)
        assert result["prediction_agreement"] >= 0.75

    def test_headline_results_reported_against_paper(self):
        results = headline_results()
        assert set(results["speedup"]) == {"AES", "ResNet-20", "LLMEnc"}
        assert results["paper_speedup"]["AES"] == 59.4

    def test_report_rendering(self):
        text = format_table(figure13_throughput(), title="Figure 13")
        assert "Figure 13" in text and "GeoMean" in text
        report = render_report({"figure13": figure13_throughput()})
        assert "figure13" in report

"""Documentation health: runtime-API doctests and markdown link checking.

Runs as part of tier-1 so the README / architecture docs cannot silently
rot: every doctest-style example in the public runtime API must execute,
and every relative link in the tracked markdown files must resolve.
"""

from __future__ import annotations

import doctest
import re
from pathlib import Path

import pytest

from repro.plan import ir
from repro.runtime import allocator, apps, pool, session

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Markdown files whose links must stay valid.
DOC_FILES = [
    "README.md",
    "docs/architecture.md",
    "CHANGES.md",
    "ROADMAP.md",
]

#: Modules whose docstring examples form the executable API documentation.
DOCTEST_MODULES = [allocator, apps, ir, pool, session]

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


@pytest.mark.parametrize(
    "module", DOCTEST_MODULES, ids=lambda m: m.__name__.rsplit(".", 1)[-1]
)
def test_runtime_doctests_pass(module):
    """Equivalent to ``pytest --doctest-modules src/repro/runtime``."""
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module.__name__}"


def test_runtime_api_examples_exist():
    """The documented entry points keep doctest-style usage examples."""
    assert session.DarthPumDevice.__doc__ and ">>>" in session.DarthPumDevice.__doc__
    assert session.MatrixAllocation.__doc__ and ">>>" in session.MatrixAllocation.__doc__
    assert (session.DarthPumDevice.exec_mvm_batch.__doc__
            and ">>>" in session.DarthPumDevice.exec_mvm_batch.__doc__)
    assert pool.DevicePool.__doc__ and ">>>" in pool.DevicePool.__doc__


@pytest.mark.parametrize("doc", DOC_FILES)
def test_markdown_links_resolve(doc):
    path = REPO_ROOT / doc
    assert path.exists(), f"{doc} is missing"
    text = path.read_text(encoding="utf-8")
    broken = []
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        if not (path.parent / relative).exists():
            broken.append(target)
    assert not broken, f"{doc} has broken relative links: {broken}"


def test_readme_documents_the_tier1_command():
    """The README must tell users how to run the canonical test suite."""
    text = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "python -m pytest -x -q" in text
    assert "--doctest-modules" in text


def test_changelog_has_per_pr_entries():
    """CHANGES.md keeps one `## PR N` heading per pull request."""
    text = (REPO_ROOT / "CHANGES.md").read_text(encoding="utf-8")
    entries = re.findall(r"^## PR \d+", text, flags=re.MULTILINE)
    assert len(entries) >= 2, "CHANGES.md should record PR 0 and later PRs"

"""Cluster transport tests: array codec, SPSC ring, wire protocol.

Everything here is single-process -- the ring's two ends are exercised
from one test body, which is exactly the SPSC contract (one producer,
one consumer; they just happen to share a thread here).  Process-level
behaviour lives in ``test_cluster.py``.
"""

import numpy as np
import pytest

from repro.errors import TransportError
from repro.runtime.cluster import (
    STATUS_CODES,
    STATUS_NAMES,
    HeartbeatBoard,
    ShmRing,
    decode_array,
    decode_message,
    encode_array,
    encode_message,
)
from repro.runtime.cluster.messages import K_RESULTS, K_SUBMIT


@pytest.fixture
def ring():
    ring = ShmRing(capacity=1 << 12)
    yield ring
    ring.close()


def push_bytes(ring, payload):
    return ring.push([payload])


# --------------------------------------------------------------------- #
# Array codec                                                             #
# --------------------------------------------------------------------- #
ALL_DTYPES = [
    np.int8, np.int16, np.int32, np.int64,
    np.uint8, np.uint16, np.uint32, np.uint64,
    np.float16, np.float32, np.float64,
    np.bool_,
]


@pytest.mark.parametrize("dtype", ALL_DTYPES)
def test_array_codec_identity_every_dtype(dtype):
    """Encode/decode is bit-exact for every fixed-width dtype."""
    rng = np.random.default_rng(7)
    if dtype is np.bool_:
        array = rng.integers(0, 2, size=(5, 3)).astype(dtype)
    elif np.issubdtype(dtype, np.floating):
        array = rng.standard_normal((5, 3)).astype(dtype)
    else:
        info = np.iinfo(dtype)
        array = rng.integers(
            max(info.min, -1000), min(info.max, 1000), size=(5, 3)
        ).astype(dtype)
    blob = b"".join(bytes(part) for part in encode_array(array))
    decoded, offset = decode_array(memoryview(blob), 0)
    assert offset == len(blob)
    assert decoded.dtype == array.dtype
    assert decoded.shape == array.shape
    assert np.array_equal(decoded, array)


@pytest.mark.parametrize("shape", [(0,), (7,), (2, 3, 4)])
def test_array_codec_identity_shapes(shape):
    array = np.arange(int(np.prod(shape)), dtype=np.int64).reshape(shape)
    blob = b"".join(bytes(part) for part in encode_array(array))
    decoded, _ = decode_array(memoryview(blob), 0)
    assert decoded.shape == array.shape
    assert np.array_equal(decoded, array)


def test_array_codec_is_zero_copy_on_decode():
    """Decoded arrays are views of the source buffer, not copies."""
    array = np.arange(12, dtype=np.int64)
    blob = bytearray(b"".join(bytes(part) for part in encode_array(array)))
    decoded, _ = decode_array(memoryview(blob), 0)
    header = len(blob) - array.nbytes
    blob[header] = 0xAA  # mutate the underlying buffer
    assert decoded[0] != array[0]  # the view saw the mutation


def test_array_codec_rejects_object_dtype():
    with pytest.raises(TransportError, match="object"):
        encode_array(np.array([object()], dtype=object))


def test_array_codec_rejects_truncated_payload():
    array = np.arange(8, dtype=np.int64)
    blob = b"".join(bytes(part) for part in encode_array(array))
    with pytest.raises(TransportError, match="malformed"):
        decode_array(memoryview(blob[: len(blob) // 2]), 0)


# --------------------------------------------------------------------- #
# SPSC ring                                                               #
# --------------------------------------------------------------------- #
def test_ring_round_trip(ring):
    assert push_bytes(ring, b"hello")
    assert push_bytes(ring, b"world")
    assert ring.pop() == b"hello"
    assert ring.pop() == b"world"
    assert ring.pop() is None


def test_ring_attach_by_name(ring):
    """A second handle attached by name sees the same frames."""
    push_bytes(ring, b"cross-process payload")
    attached = ShmRing(name=ring.name, create=False)
    try:
        assert attached.capacity == ring.capacity
        assert attached.pop() == b"cross-process payload"
    finally:
        attached.close()


def test_ring_backpressure_returns_false_when_full(ring):
    """A full ring refuses the frame instead of blocking or raising."""
    frame = bytes(1024)
    accepted = 0
    while push_bytes(ring, frame):
        accepted += 1
    assert accepted == 3  # 4 KiB ring, ~1 KiB frames + headers
    assert not push_bytes(ring, frame)
    # Draining one frame makes room again.
    assert ring.pop() == frame
    assert push_bytes(ring, frame)


def test_ring_oversized_frame_raises(ring):
    with pytest.raises(TransportError, match="cannot fit"):
        push_bytes(ring, bytes(ring.capacity))


def test_ring_wrap_around_preserves_frames(ring):
    """Thousands of variable-size frames survive ring wrap-around."""
    rng = np.random.default_rng(3)
    outstanding = []
    pushed = popped = 0
    for step in range(2000):
        payload = bytes(rng.integers(0, 256, size=rng.integers(1, 300),
                                     dtype=np.uint8))
        if push_bytes(ring, payload):
            outstanding.append(payload)
            pushed += 1
        else:
            assert outstanding, "ring full while logically empty"
            assert ring.pop() == outstanding.pop(0)
            popped += 1
    while outstanding:
        assert ring.pop() == outstanding.pop(0)
        popped += 1
    assert ring.pop() is None
    assert pushed == popped
    assert ring.frames_pushed == pushed


def test_ring_frames_pushed_is_continuous(ring):
    for index in range(10):
        assert push_bytes(ring, b"x" * (index + 1))
        assert ring.frames_pushed == index + 1


def test_ring_detects_torn_write(ring):
    """A frame corrupted after commit fails its CRC -- and is skipped."""
    push_bytes(ring, b"first frame, about to be mangled")
    push_bytes(ring, b"second frame, intact")
    # Flip one payload byte behind the transport's back (a torn write
    # from a producer dying mid-push looks exactly like this).
    ring._data[16] ^= 0xFF
    with pytest.raises(TransportError, match="CRC"):
        ring.peek()
    # The reader stepped past the bad frame: the channel recovers.
    assert ring.pop() == b"second frame, intact"
    assert ring.pop() is None


def test_ring_detects_uncommitted_header(ring):
    """Header bytes past the committed head are flagged, not decoded."""
    push_bytes(ring, b"frame")
    # Pretend a producer wrote a huge length field then died before
    # bumping head past it.
    import struct
    struct.pack_into("<I", ring._data, 0, 10_000)
    with pytest.raises(TransportError, match="truncated"):
        ring.peek()


def test_ring_peek_is_zero_copy_until_advance(ring):
    push_bytes(ring, bytes(range(32)))
    view = ring.peek()
    assert isinstance(view, memoryview)
    assert bytes(view) == bytes(range(32))
    # Not consumed until advance.
    assert len(ring) > 0
    view.release()
    ring.advance()
    assert len(ring) == 0


# --------------------------------------------------------------------- #
# Message layer                                                           #
# --------------------------------------------------------------------- #
def test_message_round_trip_through_ring(ring):
    vectors = np.arange(24, dtype=np.int64).reshape(4, 6)
    header = {"batch": 17, "name": "weights", "input_bits": 4}
    assert ring.push(encode_message(K_SUBMIT, header, [vectors]))
    payload = ring.peek()
    kind, decoded_header, arrays = decode_message(payload)
    assert kind == K_SUBMIT
    assert decoded_header == header
    assert np.array_equal(arrays[0], vectors)
    ring.advance()


def test_message_multiple_arrays_in_order(ring):
    statuses = np.zeros(3, dtype=np.uint8)
    results = np.ones((3, 5), dtype=np.int64)
    latency = np.full(3, 9, dtype=np.int64)
    assert ring.push(encode_message(
        K_RESULTS, {"batch": 1}, [statuses, results, latency]
    ))
    _, _, arrays = decode_message(ring.peek())
    assert [a.dtype for a in arrays] == [np.uint8, np.int64, np.int64]
    assert np.array_equal(arrays[1], results)
    ring.advance()


def test_message_malformed_header_raises():
    with pytest.raises(TransportError, match="malformed"):
        decode_message(memoryview(b"\x02\x00\xff\xff\xff\xff"))


def test_status_code_tables_are_inverse():
    assert STATUS_NAMES == {code: name for name, code in STATUS_CODES.items()}
    assert STATUS_CODES["completed"] == 0


# --------------------------------------------------------------------- #
# Heartbeat board                                                         #
# --------------------------------------------------------------------- #
def test_heartbeat_board_counts_beats_per_slot():
    board = HeartbeatBoard(num_slots=3)
    try:
        attached = HeartbeatBoard(name=board.name, create=False)
        try:
            assert attached.num_slots == 3
            for _ in range(5):
                attached.beat(1)
            beats, stamp = board.read(1)
            assert beats == 5
            assert stamp > 0.0
            assert board.read(0) == (0, 0.0)
            assert board.read(2) == (0, 0.0)
        finally:
            attached.close()
    finally:
        board.close()


# --------------------------------------------------------------------- #
# Edge cases: duplicates, sequence gaps, backpressure under load          #
# --------------------------------------------------------------------- #
def test_ring_duplicate_delivery_has_distinct_seqs(ring):
    """A duplicated frame arrives as two frames with *different* seqs.

    The ring's sequence number identifies commits, not messages, so a
    link-level dup is invisible at the transport layer -- which is why
    de-duplication lives in the message layer (worker reply cache keyed
    by batch id), not here.
    """
    from repro.runtime.cluster import TransportFaultInjector

    injector = TransportFaultInjector(kinds=None).attach(ring)
    injector.duplicate(1)
    assert push_bytes(ring, b"\x02dup-me")
    first = bytes(ring.peek())
    first_seq = ring.last_seq
    ring.advance()
    second = bytes(ring.peek())
    second_seq = ring.last_seq
    ring.advance()
    assert first == second == b"\x02dup-me"
    assert second_seq == first_seq + 1
    assert ring.peek() is None


def test_ring_seq_gap_observable_after_skip_past(ring):
    """Skip-past CRC recovery leaves a visible gap in ``last_seq``.

    The consumer that just caught a ``TransportError`` can tell exactly
    how many frames the channel lost by diffing the seq across the
    recovery, which is what turns silent corruption into an accounted
    drop.
    """
    from repro.runtime.cluster import TransportFaultInjector

    injector = TransportFaultInjector(seed=7, kinds=None).attach(ring)
    assert push_bytes(ring, b"\x02before")
    injector.corrupt(1)
    assert push_bytes(ring, b"\x02mangled-in-flight")
    assert push_bytes(ring, b"\x02after")

    assert bytes(ring.peek()) == b"\x02before"
    seq_before = ring.last_seq
    ring.advance()
    with pytest.raises(TransportError, match="CRC mismatch"):
        ring.peek()
    assert bytes(ring.peek()) == b"\x02after"
    assert ring.last_seq == seq_before + 2  # exactly one frame lost
    ring.advance()


def test_ring_backpressure_bounded_backoff_producer():
    """A producer that backs off on ``push() -> False`` loses nothing.

    Drives 64 frames through a ring sized for ~4 of them; every refusal
    is counted, the consumer drains between retries, and each frame
    arrives exactly once and in order -- backpressure is lossless and
    fair, just slow.
    """
    ring = ShmRing(capacity=1 << 8)
    try:
        delivered = []
        refusals = 0
        for index in range(64):
            payload = b"\x02" + index.to_bytes(2, "little") + b"x" * 29
            attempts = 0
            while not ring.push([payload]):
                refusals += 1
                attempts += 1
                assert attempts <= 8, "backoff did not bound itself"
                frame = ring.pop()  # "another thread" drains one frame
                assert frame is not None
                delivered.append(frame)
        while (frame := ring.pop()) is not None:
            delivered.append(frame)
        assert refusals > 0  # the ring really did push back
        assert len(delivered) == 64
        order = [int.from_bytes(frame[1:3], "little") for frame in delivered]
        assert order == list(range(64))
    finally:
        ring.close()

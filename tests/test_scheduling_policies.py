"""Cost-model-driven scheduling: policies, SLO classes, and the autotuner.

Covers the pluggable :class:`~repro.runtime.scheduling.SchedulingPolicy`
surface end to end:

* dual construction -- legacy ``max_batch=``/``max_wait_ticks=`` kwargs and
  ``scheduling=StaticBatchingPolicy(...)`` produce bit-identical responses
  *and* ledgers over identical traffic;
* the cost oracle -- ``predicted_batch_cycles`` exactly matches the
  optimized cycles execution charges, and is memoised (and invalidated on
  re-registration);
* :class:`CostAwarePolicy` determinism -- replaying one tick trace twice
  yields identical dispatch batches, responses, and shed sets -- plus its
  deadline-pressure dispatch and priced admission shedding;
* SLO classes filling in deadlines/priorities at admission;
* the :class:`Autotuner` nudging the static knobs from live telemetry;
* :class:`PredictedFinishTimePolicy` placement on the pool;
* the queue-level ``group_keys`` / ``min_deadline`` / ``victim(order=)``
  extensions on both queue implementations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SchedulerError, SloError
from repro.runtime import (
    Autotuner,
    CostAwarePolicy,
    DevicePool,
    PumServer,
    SloClass,
    StaticBatchingPolicy,
    make_scheduling_policy,
    resolve_slo,
)
from repro.runtime.queueing import FlatRequestQueue, IndexedRequestQueue
from repro.runtime.server import Request
from repro.testing import derive_rng


def make_server(**kwargs):
    kwargs.setdefault("num_devices", 2)
    server = PumServer(**kwargs)
    server.register_matrix("proj", np.eye(8, dtype=np.int64))
    return server


def drive(server, trace):
    """Replay a deterministic trace: ``trace[t]`` arrives before tick t+1.

    Each trace entry is a list of ``(vector, kwargs)`` submissions.  Returns
    ``(responses, dispatch_batches, shed_ids)`` accumulated over the run.
    """
    responses = []
    for wave in trace:
        for vector, kwargs in wave:
            server.submit("proj", vector, input_bits=3, **kwargs)
        responses.extend(server.tick())
    responses.extend(server.run_until_idle())
    batches = [
        (r.request_id, r.batch_size) for r in responses if r.status == "completed"
    ]
    shed = sorted(r.request_id for r in responses if r.status == "shed")
    return responses, batches, shed


def random_trace(label, ticks=40, rate=3):
    rng = derive_rng("scheduling", label)
    trace = []
    for t in range(ticks):
        wave = []
        for _ in range(int(rng.integers(0, rate + 1))):
            vector = rng.integers(0, 8, size=8).astype(np.int64)
            kwargs = {}
            roll = rng.random()
            if roll < 0.3:
                kwargs["slo"] = "interactive"
            elif roll < 0.6:
                kwargs["slo"] = "batch"
            wave.append((vector, kwargs))
        trace.append(wave)
    return trace


class TestDualConstruction:
    def test_legacy_kwargs_build_a_static_policy(self):
        server = make_server(max_batch=4, max_wait_ticks=2)
        assert isinstance(server.scheduling, StaticBatchingPolicy)
        assert server.scheduling.max_batch == 4
        assert server.scheduling.max_wait_ticks == 2
        assert server.batching.max_batch == 4

    def test_equivalence_responses_and_ledgers(self):
        trace = random_trace("dual", ticks=30)
        legacy = make_server(max_batch=4, max_wait_ticks=2, queue_capacity=16)
        policy = make_server(
            scheduling=StaticBatchingPolicy(max_batch=4, max_wait_ticks=2),
            queue_capacity=16,
        )
        r1, b1, s1 = drive(legacy, trace)
        r2, b2, s2 = drive(policy, trace)
        assert b1 == b2
        assert s1 == s2
        assert len(r1) == len(r2)
        for a, b in zip(r1, r2):
            assert (a.request_id, a.status, a.completion_tick, a.batch_size) \
                == (b.request_id, b.status, b.completion_tick, b.batch_size)
            if a.result is None:
                assert b.result is None
            else:
                assert np.array_equal(a.result, b.result)
        l1 = legacy.pool.total_ledger()
        l2 = policy.pool.total_ledger()
        assert l1.cycles == l2.cycles
        assert l1.energy_pj == l2.energy_pj
        assert l1.cycle_breakdown == l2.cycle_breakdown
        assert legacy.queue_scans() == policy.queue_scans()

    def test_instance_plus_legacy_knobs_rejected(self):
        with pytest.raises(SchedulerError, match="not both"):
            make_scheduling_policy(StaticBatchingPolicy(), max_batch=8)
        with pytest.raises(SchedulerError, match="not both"):
            PumServer(num_devices=1, scheduling=CostAwarePolicy(),
                      max_wait_ticks=3)

    def test_unknown_policy_name(self):
        with pytest.raises(SchedulerError, match="unknown scheduling policy"):
            make_scheduling_policy("oracle")

    def test_names_resolve(self):
        assert make_scheduling_policy("static").name == "static"
        assert make_scheduling_policy("cost_aware", max_batch=8).max_batch == 8
        assert make_scheduling_policy("autotuned").name == "autotuned"


class TestCostOracle:
    def test_prediction_matches_execution_exactly(self):
        # The oracle models the optimized MVM timeline -- the quantity the
        # device runtime charges under "runtime.mvm_batch" -- with the same
        # max-over-devices (critical path) semantics as the pool predictor.
        server = make_server(max_batch=8, max_wait_ticks=1)
        predicted = server.predicted_batch_cycles("proj", 3, 4)
        before = [device.ledger.cycles_for("runtime.mvm_batch")
                  for device in server.pool.devices]
        vectors = np.arange(32, dtype=np.int64).reshape(4, 8) % 8
        server.submit_batch("proj", vectors, input_bits=3)
        server.run_until_idle()
        after = [device.ledger.cycles_for("runtime.mvm_batch")
                 for device in server.pool.devices]
        charged = max(now - then for now, then in zip(after, before))
        assert charged == predicted

    def test_prediction_is_memoised_and_invalidated(self):
        server = make_server()
        first = server.predicted_batch_cycles("proj", 3, 4)
        assert server.predicted_batch_cycles("proj", 3, 4) == first
        assert (server.allocation_for("proj").allocation_id, 3, 4) \
            in server._cost_cache
        server.register_matrix("proj", np.ones((8, 8), dtype=np.int64))
        assert not server._cost_cache
        again = server.predicted_batch_cycles("proj", 3, 4)
        assert again > 0

    def test_energy_prediction_positive_and_monotonic(self):
        server = make_server()
        e1 = server.predicted_batch_energy_pj("proj", 3, 1)
        e4 = server.predicted_batch_energy_pj("proj", 3, 4)
        assert 0 < e1 < e4

    def test_batch_monotonicity(self):
        server = make_server()
        c1 = server.predicted_batch_cycles("proj", 3, 1)
        c8 = server.predicted_batch_cycles("proj", 3, 8)
        assert 0 < c1 < c8
        # Amortisation: per-request cost falls with batch size.
        assert c8 / 8 < c1


class TestSloClasses:
    def test_resolution(self):
        assert resolve_slo(None) is None
        interactive = resolve_slo("interactive")
        assert interactive.latency_target_ticks == 4
        custom = SloClass("gold", latency_target_ticks=2, shed_priority=99)
        assert resolve_slo(custom) is custom
        with pytest.raises(SloError, match="unknown SLO class"):
            resolve_slo("nope")

    def test_slo_fills_deadline_and_priority(self):
        server = make_server(max_batch=16, max_wait_ticks=50, queue_capacity=8)
        server.submit("proj", np.zeros(8, dtype=np.int64), input_bits=3,
                      slo="interactive")
        request = next(iter(server.request_queue._requests.values()))
        assert request.deadline == server.now + 4
        assert request.priority == 20

    def test_explicit_arguments_win_over_slo(self):
        server = make_server(max_batch=16, max_wait_ticks=50)
        server.submit("proj", np.zeros(8, dtype=np.int64), input_bits=3,
                      slo="interactive", priority=7, deadline=1000)
        request = next(iter(server.request_queue._requests.values()))
        assert request.deadline == 1000
        assert request.priority == 7

    def test_batch_slo_has_no_deadline(self):
        server = make_server(max_batch=16, max_wait_ticks=50)
        server.submit_batch("proj", np.zeros((2, 8), dtype=np.int64),
                            input_bits=3, slo="batch")
        for request in server.request_queue._requests.values():
            assert request.deadline is None
            assert request.priority == 0


class TestCostAwarePolicy:
    def test_deterministic_replay(self):
        trace = random_trace("replay", ticks=40)
        runs = []
        for _ in range(2):
            server = make_server(
                scheduling=CostAwarePolicy(max_batch=8, max_wait_ticks=6),
                queue_capacity=32,
            )
            runs.append(drive(server, trace))
        (r1, b1, s1), (r2, b2, s2) = runs
        assert b1 == b2
        assert s1 == s2
        for a, b in zip(r1, r2):
            assert (a.request_id, a.status, a.completion_tick) \
                == (b.request_id, b.status, b.completion_tick)
            if a.result is not None:
                assert np.array_equal(a.result, b.result)

    def test_deadline_pressure_dispatches_before_shedding(self):
        # One tight request in a half-empty group: the static policy would
        # age it out past its deadline; the cost-aware policy dispatches
        # the moment slack dips below the predicted batch latency.
        policy = CostAwarePolicy(max_batch=16, max_wait_ticks=10,
                                 margin_ticks=1, amortization_tolerance=0.0)
        server = make_server(scheduling=policy)
        server.submit("proj", np.zeros(8, dtype=np.int64), input_bits=3,
                      slo="interactive")
        responses = server.run_until_idle()
        assert [r.status for r in responses] == ["completed"]
        assert responses[0].latency_ticks <= 4

        static = make_server(max_batch=16, max_wait_ticks=10)
        static.submit("proj", np.zeros(8, dtype=np.int64), input_bits=3,
                      slo="interactive")
        shed = static.run_until_idle()
        assert [r.status for r in shed] == ["shed"]

    def test_amortization_valve_dispatches_converged_groups(self):
        # Deadline-free traffic whose per-request cost has converged should
        # not wait out the full max_wait_ticks.
        policy = CostAwarePolicy(max_batch=4, max_wait_ticks=30,
                                 amortization_tolerance=10.0)
        server = make_server(scheduling=policy)
        server.submit("proj", np.zeros(8, dtype=np.int64), input_bits=3)
        responses = server.run_until_idle()
        assert responses[0].status == "completed"
        assert responses[0].latency_ticks < 30

    def test_full_batch_dispatches_immediately(self):
        policy = CostAwarePolicy(max_batch=4, max_wait_ticks=30)
        server = make_server(scheduling=policy)
        server.submit_batch("proj", np.zeros((4, 8), dtype=np.int64),
                            input_bits=3)
        responses = server.tick()
        assert [r.batch_size for r in responses] == [4, 4, 4, 4]

    def test_priced_admission_victim(self):
        # Two matrices of very different cost at priority 0: when the queue
        # is full the cost-aware pricer sheds the *expensive* request,
        # where the default order would shed the oldest.
        server = PumServer(num_devices=2, queue_capacity=2,
                           admission="shed_lowest",
                           scheduling=CostAwarePolicy(max_batch=16,
                                                      max_wait_ticks=50))
        server.register_matrix("big", np.eye(128, dtype=np.int64))
        server.register_matrix("small", np.eye(4, dtype=np.int64))
        assert server.predicted_batch_cycles("big", 3, 1) \
            > server.predicted_batch_cycles("small", 3, 1)
        f_small = server.submit("small", np.zeros(4, dtype=np.int64),
                                input_bits=3)
        f_big = server.submit("big", np.zeros(128, dtype=np.int64),
                              input_bits=3)
        f_new = server.submit("small", np.zeros(4, dtype=np.int64),
                              input_bits=3, priority=5)
        assert f_big.done() and f_big.result().status == "shed"
        assert not f_small.done()
        assert not f_new.done()

    def test_ready_groups_tightest_slack_first(self):
        policy = CostAwarePolicy(max_batch=2, max_wait_ticks=50)
        server = PumServer(num_devices=2, scheduling=policy)
        server.register_matrix("loose", np.eye(8, dtype=np.int64))
        server.register_matrix("tight", np.eye(8, dtype=np.int64))
        server.submit_batch("loose", np.zeros((2, 8), dtype=np.int64),
                            input_bits=3)
        server.submit_batch("tight", np.zeros((2, 8), dtype=np.int64),
                            input_bits=3, slo="interactive")
        keys = policy.ready_groups(server, server.request_queue,
                                   server.now + 1)
        assert keys == [("tight", 3), ("loose", 3)]


class TestAutotuner:
    def test_sheds_lower_wait(self):
        tuner = Autotuner(max_batch=16, max_wait_ticks=6, interval_ticks=4)
        server = make_server(scheduling=tuner)
        # Interactive deadline (now+4) with wait 6: requests shed, and the
        # tuner reacts by lowering the wait knob at its next window.
        for _ in range(3):
            server.submit("proj", np.zeros(8, dtype=np.int64), input_bits=3,
                          slo="interactive")
            for _ in range(4):
                server.tick()
        assert any(knob == "max_wait_ticks" and new < old
                   for _, knob, old, new in tuner.history)
        assert tuner.max_wait_ticks < 6

    def test_saturated_fill_grows_batch(self):
        tuner = Autotuner(max_batch=2, max_wait_ticks=1, interval_ticks=2)
        server = make_server(scheduling=tuner, queue_capacity=64)
        for _ in range(4):
            server.submit_batch("proj", np.zeros((4, 8), dtype=np.int64),
                                input_bits=3)
            server.tick()
            server.tick()
        assert any(knob == "max_batch" and new > old
                   for _, knob, old, new in tuner.history)

    def test_sparse_fill_raises_wait(self):
        tuner = Autotuner(max_batch=8, max_wait_ticks=1, interval_ticks=2,
                          max_wait_ticks_limit=4)
        server = make_server(scheduling=tuner)
        for _ in range(4):
            server.submit("proj", np.zeros(8, dtype=np.int64), input_bits=3)
            server.tick()
            server.tick()
        assert any(knob == "max_wait_ticks" and new > old
                   for _, knob, old, new in tuner.history)
        assert tuner.max_wait_ticks <= 4

    def test_knobs_respect_bounds(self):
        tuner = Autotuner(max_batch=4, max_wait_ticks=1, interval_ticks=1,
                          min_wait_ticks=1, max_batch_limit=8)
        server = make_server(scheduling=tuner)
        for _ in range(20):
            server.submit_batch("proj", np.zeros((8, 8), dtype=np.int64),
                                input_bits=3)
            server.tick()
        assert 1 <= tuner.max_wait_ticks
        assert tuner.max_batch <= 8


class TestPredictedFinishTimePlacement:
    def small_pool(self, **kwargs):
        from repro.core.config import ChipConfig, HctConfig
        kwargs.setdefault("config", ChipConfig(hct=HctConfig.small(),
                                               num_hcts=4))
        return DevicePool(policy="predicted_finish_time", **kwargs)

    def test_balances_by_predicted_load_not_hct_count(self):
        pool = self.small_pool(num_devices=2)
        first = pool.set_matrix(np.eye(8, dtype=np.int64))
        second = pool.set_matrix(np.eye(8, dtype=np.int64))
        # Least-loaded would also separate these; the point is the tie-break
        # flows through the cost model without error and spreads the load.
        assert first.devices_used != second.devices_used
        loads = [pool.predicted_device_finish_cycles(i) for i in range(2)]
        assert all(load > 0 for load in loads)

    def test_registered_in_factories(self):
        assert "predicted_finish_time" in DevicePool.POLICIES
        pool = self.small_pool(num_devices=2)
        assert pool.policy == "predicted_finish_time"
        assert pool.placement_policy._pool is pool

    def test_finish_cycles_track_allocations(self):
        pool = self.small_pool(num_devices=1)
        assert pool.predicted_device_finish_cycles(0) == 0.0
        allocation = pool.set_matrix(np.eye(8, dtype=np.int64))
        loaded = pool.predicted_device_finish_cycles(0)
        assert loaded > 0
        pool.release(allocation)
        assert pool.predicted_device_finish_cycles(0) == 0.0


class TestQueueExtensions:
    def request(self, request_id, name="m", deadline=None, priority=0):
        return Request(request_id=request_id, name=name,
                       vector=np.zeros(2, dtype=np.int64), input_bits=2,
                       priority=priority, deadline=deadline,
                       arrival_tick=0)

    @pytest.mark.parametrize("queue_cls",
                             [IndexedRequestQueue, FlatRequestQueue])
    def test_group_keys_and_min_deadline(self, queue_cls):
        queue = queue_cls()
        assert queue.group_keys() == []
        queue.push(self.request(0, name="a", deadline=9))
        queue.push(self.request(1, name="a", deadline=5))
        queue.push(self.request(2, name="b"))
        assert sorted(queue.group_keys()) == [("a", 2), ("b", 2)]
        assert queue.min_deadline(("a", 2)) == 5
        assert queue.min_deadline(("b", 2)) is None
        queue.discard(1)
        assert queue.min_deadline(("a", 2)) == 9
        queue.discard(0)
        assert queue.group_keys() == [("b", 2)]
        assert queue.min_deadline(("a", 2)) is None

    @pytest.mark.parametrize("queue_cls",
                             [IndexedRequestQueue, FlatRequestQueue])
    def test_victim_accepts_custom_order(self, queue_cls):
        queue = queue_cls()
        queue.push(self.request(0, priority=5))
        queue.push(self.request(1, priority=1))
        assert queue.victim().request_id == 1
        # Invert the order: the custom key wins.
        assert queue.victim(order=lambda r: -r.priority).request_id == 0

    def test_indexed_group_keys_do_not_scan(self):
        queue = IndexedRequestQueue()
        for i in range(16):
            queue.push(self.request(i, deadline=100 + i))
        before = queue.scans
        queue.group_keys()
        queue.min_deadline(("m", 2))
        assert queue.scans == before

    def test_indexed_take_cleans_group_deadlines(self):
        queue = IndexedRequestQueue()
        queue.push(self.request(0, deadline=10))
        queue.push(self.request(1, deadline=11))
        queue.take(("m", 2), max_batch=2)
        assert queue.min_deadline(("m", 2)) is None
        assert not queue._group_deadlines

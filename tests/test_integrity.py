"""Unit coverage for the PR 8 integrity layer.

Three pieces, tested bottom-up:

* :mod:`repro.runtime.integrity` -- the ABFT column-sum checksum math
  (exact on the integer fast path, tolerance-banded under noise) and the
  :class:`DeviceHealth` EWMA used for quarantine decisions;
* :class:`DevicePool` wiring -- verify-mode validation, checksum
  registration lifecycle, and counters on clean traffic;
* :meth:`DevicePool.rebuild` / :meth:`PumServer.rebuild` -- live shard
  reconstruction: replication restored from the retained source matrix,
  the cached :class:`ShardedPlan` spliced in place (no planning stall),
  and the no-op / failure edges.

The end-to-end corruption and rebuild gates live in ``tests/test_chaos.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.testing import derive_rng
from repro.core import ChipConfig, HctConfig
from repro.errors import ConfigurationError, RebuildError
from repro.reram import NoiseConfig
from repro.runtime import (
    DeviceHealth,
    DevicePool,
    FaultInjector,
    IntegrityChecker,
    PumServer,
    band_check_vector,
)
from repro.runtime.integrity import DEFAULT_NOISE_TOLERANCE, VERIFY_MODES


def small_pool(**kwargs) -> DevicePool:
    kwargs.setdefault("num_devices", 2)
    kwargs.setdefault("config", ChipConfig(hct=HctConfig.small(), num_hcts=3))
    return DevicePool(**kwargs)


class TestBandCheckVector:
    def test_is_the_column_sum(self):
        rng = derive_rng("abft-check-vector")
        matrix = rng.integers(-9, 9, size=(6, 5))
        assert np.array_equal(band_check_vector(matrix), matrix.sum(axis=1))

    def test_checksum_identity_holds_for_any_input(self):
        # The load-bearing algebra: (x @ W) @ 1 == x @ (W @ 1).
        rng = derive_rng("abft-identity")
        matrix = rng.integers(-9, 9, size=(8, 6))
        vectors = rng.integers(-5, 5, size=(4, 8))
        assert np.array_equal(
            (vectors @ matrix).sum(axis=1), vectors @ band_check_vector(matrix)
        )


class TestIntegrityChecker:
    def _registered(self, rows=8, cols=5):
        rng = derive_rng("abft-checker", rows, cols)
        matrix = rng.integers(-9, 9, size=(rows, cols))
        checker = IntegrityChecker()
        checker.register(0, matrix, [(0, rows)])
        return checker, matrix

    def test_accepts_the_true_product(self):
        checker, matrix = self._registered()
        x = np.arange(8, dtype=np.int64).reshape(1, 8)
        assert checker.verify(0, 0, x, x @ matrix) is True

    def test_detects_every_single_bit_flip(self):
        # Exact mode: a flip of any bit of any element must perturb the
        # row sum, so detection is guaranteed, not probabilistic.
        checker, matrix = self._registered()
        x = np.arange(8, dtype=np.int64).reshape(1, 8)
        clean = x @ matrix
        for column in range(clean.shape[1]):
            for bit in range(8):
                corrupted = clean.copy()
                corrupted[0, column] ^= np.int64(1 << bit)
                assert checker.verify(0, 0, x, corrupted) is False

    def test_single_vector_input_is_promoted(self):
        checker, matrix = self._registered()
        x = np.ones(8, dtype=np.int64)  # 1-D, as exec_mvm passes it
        assert checker.verify(0, 0, x, x @ matrix) is True

    def test_unregistered_band_returns_none(self):
        checker, matrix = self._registered()
        x = np.ones((1, 8), dtype=np.int64)
        assert checker.verify(0, 99, x, x @ matrix) is None
        assert checker.verify(42, 0, x, x @ matrix) is None

    def test_multi_band_registration(self):
        rng = derive_rng("abft-bands")
        matrix = rng.integers(-9, 9, size=(10, 4))
        checker = IntegrityChecker()
        checker.register(7, matrix, [(0, 6), (6, 10)])
        x = rng.integers(0, 5, size=(3, 10))
        assert checker.verify(7, 0, x[:, 0:6], x[:, 0:6] @ matrix[0:6]) is True
        assert checker.verify(7, 1, x[:, 6:10], x[:, 6:10] @ matrix[6:10]) is True
        assert checker.verify(7, 1, x[:, 6:10], x[:, 0:6] @ matrix[0:6]) is False

    def test_forget_and_covers(self):
        checker, matrix = self._registered()
        assert checker.covers(0) is True
        checker.forget(0)
        assert checker.covers(0) is False
        x = np.ones((1, 8), dtype=np.int64)
        assert checker.verify(0, 0, x, x @ matrix) is None

    def test_tolerance_bands_absorb_noise_but_not_gross_corruption(self):
        checker, matrix = self._registered()
        checker.tolerance = 0.05
        x = np.full((1, 8), 4, dtype=np.int64)
        clean = x @ matrix
        budget = 0.05 * (np.abs(x) @ np.abs(matrix).sum(axis=1)) + 0.05
        within = clean.copy()
        within[0, 0] += int(budget[0] // 2)  # a noise-sized residual
        assert checker.verify(0, 0, x, within) is True
        gross = clean.copy()
        gross[0, 0] += int(budget[0] * 4) + 8  # far outside the band
        assert checker.verify(0, 0, x, gross) is False

    def test_noisy_default_and_explicit_zero(self):
        assert IntegrityChecker(noisy=True)._effective_tolerance() \
            == DEFAULT_NOISE_TOLERANCE
        assert IntegrityChecker(noisy=False)._effective_tolerance() == 0.0
        # Explicit 0.0 forces exact comparison even on a noisy pool.
        assert IntegrityChecker(tolerance=0.0, noisy=True) \
            ._effective_tolerance() == 0.0
        assert IntegrityChecker(tolerance=0.2, noisy=False) \
            ._effective_tolerance() == 0.2

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            IntegrityChecker(tolerance=-0.1)


class TestDeviceHealth:
    def test_three_consecutive_events_cross_the_default_threshold(self):
        health = DeviceHealth()
        assert health.record_corruption() is False  # 0.25
        assert health.record_corruption() is False  # 0.4375
        assert health.record_corruption() is True   # 0.578
        assert health.corruptions == 3

    def test_isolated_glitches_wash_out(self):
        health = DeviceHealth()
        health.record_corruption()
        for _ in range(10):
            health.record_ok()
        assert health.score < 0.05
        # A later isolated failure still does not quarantine.
        assert health.record_failure() is False

    def test_mixed_corruptions_and_failures_share_the_score(self):
        health = DeviceHealth()
        assert health.record_corruption() is False
        assert health.record_failure() is False
        assert health.record_corruption() is True
        assert health.corruptions == 2
        assert health.failures == 1

    def test_reset_clears_score_but_keeps_lifetime_counters(self):
        health = DeviceHealth()
        for _ in range(3):
            health.record_corruption()
        health.quarantined = True
        health.reset()
        assert health.score == 0.0
        assert health.quarantined is False
        assert health.corruptions == 3  # lifetime telemetry survives restore


class TestPoolWiring:
    def test_verify_mode_is_validated(self):
        with pytest.raises(ConfigurationError, match="verify mode"):
            small_pool(verify="paranoid")
        pool = small_pool(verify="audit")
        assert pool.verify == "audit"
        pool.verify = "full"  # live switch via the property setter
        assert pool.verify == "full"
        with pytest.raises(ConfigurationError, match="verify mode"):
            pool.verify = "sometimes"
        assert set(VERIFY_MODES) == {"off", "audit", "full"}

    def test_checksums_follow_the_allocation_lifecycle(self):
        pool = small_pool(verify="full")
        allocation = pool.set_matrix(np.eye(8, dtype=np.int64), element_size=4)
        assert pool.integrity.covers(allocation.allocation_id)
        pool.release(allocation)
        assert not pool.integrity.covers(allocation.allocation_id)

    def test_clean_traffic_counts_checks_and_nothing_else(self):
        pool = small_pool(verify="full")
        rng = derive_rng("integrity-clean")
        matrix = rng.integers(-8, 8, size=(16, 8))
        allocation = pool.set_matrix(matrix, element_size=4, precision=0)
        vectors = rng.integers(0, 8, size=(4, 16))
        out = pool.exec_mvm_batch(allocation, vectors, input_bits=3)
        assert np.array_equal(out, vectors @ matrix)
        assert pool.integrity_checks >= 1
        assert pool.corruptions_detected == 0
        assert pool.integrity_reexecutions == 0
        assert pool.quarantines == 0

    def test_verify_off_performs_no_checks(self):
        pool = small_pool(verify="off")
        allocation = pool.set_matrix(np.eye(8, dtype=np.int64), element_size=4)
        pool.exec_mvm_batch(
            allocation, np.ones((2, 8), dtype=np.int64), input_bits=1
        )
        assert pool.integrity_checks == 0

    def test_noisy_pool_verification_has_no_false_positives(self):
        # Under a noise preset the identity is tolerance-banded; ordinary
        # analog error must not be flagged as corruption.
        pool = small_pool(
            verify="full", noise=NoiseConfig.paper_default(), num_devices=1
        )
        rng = derive_rng("integrity-noisy")
        matrix = rng.integers(0, 4, size=(8, 4))
        allocation = pool.set_matrix(matrix, element_size=4, precision=0)
        vectors = rng.integers(0, 4, size=(3, 8))
        pool.exec_mvm_batch(allocation, vectors, input_bits=2)
        assert pool.integrity_checks >= 1
        assert pool.corruptions_detected == 0


class TestRebuild:
    def _pool(self, num_devices=4):
        pool = small_pool(num_devices=num_devices, replication=2)
        rng = derive_rng("rebuild-unit")
        matrix = rng.integers(-8, 8, size=(16, 8))
        allocation = pool.set_matrix(matrix, element_size=4, precision=0)
        return pool, allocation, matrix

    def test_healthy_allocation_is_a_noop(self):
        pool, allocation, _ = self._pool()
        shards_before = list(allocation.shards)
        report = pool.rebuild(allocation)
        assert report.changed is False
        assert report.bands_rebuilt == ()
        assert report.copies_programmed == ()
        assert allocation.shards == shards_before
        assert pool.rebuilds == 0

    def test_lost_replica_is_reprogrammed_on_a_healthy_device(self):
        pool, allocation, matrix = self._pool()
        holders = sorted({s.device_index for s, _ in allocation.shards})
        pool.mark_device_failed(holders[0])
        report = pool.rebuild(allocation)
        assert report.changed is True
        assert report.bands_rebuilt == (0,)
        assert report.replication == 2
        assert len(report.copies_programmed) == 1
        fresh = report.copies_programmed[0]
        assert fresh.device_index not in holders
        assert fresh.device_index not in pool.failed_devices
        assert pool.rebuilds == 1 and pool.bands_rebuilt == 1
        # The rebuilt copy serves exact results.
        rng = derive_rng("rebuild-unit-exec")
        vectors = rng.integers(0, 8, size=(3, 16))
        assert np.array_equal(
            pool.exec_mvm_batch(allocation, vectors, input_bits=3),
            vectors @ matrix,
        )

    def test_rebuild_splices_the_cached_plan_without_replanning(self):
        pool, allocation, matrix = self._pool()
        plan_before = pool.sharded_plan(allocation)
        holders = sorted({s.device_index for s, _ in allocation.shards})
        pool.mark_device_failed(holders[0])
        pool.mark_device_failed(holders[1])  # lose *every* copy of the band
        report = pool.rebuild(allocation)
        assert report.changed is True
        assert report.replication == 2
        plan_after = pool.sharded_plan(allocation)
        assert plan_after is plan_before  # spliced in place, not rebuilt
        devices = {task.device_index for task in plan_after.tasks}
        assert not devices & {holders[0], holders[1]}
        vector = np.ones(16, dtype=np.int64)
        assert np.array_equal(
            pool.exec_mvm(allocation, vector, input_bits=1), vector @ matrix
        )

    def test_degraded_band_is_left_serving_when_capacity_is_short(self):
        # 2 devices, R=2: once one device fails there is nowhere to put a
        # second copy, but the surviving copy must keep the band alive.
        pool = small_pool(num_devices=2, replication=2)
        matrix = np.eye(8, dtype=np.int64)
        allocation = pool.set_matrix(matrix, element_size=4)
        victim = allocation.shards[0][0].device_index
        pool.mark_device_failed(victim)
        report = pool.rebuild(allocation)
        assert report.changed is True  # the dead copy was dropped
        assert report.replication == 1  # degraded, not dead
        vectors = np.ones((2, 8), dtype=np.int64)
        assert np.array_equal(
            pool.exec_mvm_batch(allocation, vectors, input_bits=1), vectors
        )

    def test_unbuildable_band_raises_rebuild_error(self):
        pool = small_pool(num_devices=2, replication=2)
        allocation = pool.set_matrix(np.eye(8, dtype=np.int64), element_size=4)
        pool.mark_device_failed(0)
        pool.mark_device_failed(1)
        with pytest.raises(RebuildError) as excinfo:
            pool.rebuild(allocation)
        assert excinfo.value.allocation_id == allocation.allocation_id
        assert excinfo.value.band == 0

    def test_allocation_without_retained_matrix_is_rejected(self):
        pool, allocation, _ = self._pool()
        allocation.matrix = None  # e.g. an allocation from an old pickle
        with pytest.raises(RebuildError, match="retained no source matrix"):
            pool.rebuild(allocation)

    def test_server_rebuild_api_counts_and_recovers(self):
        pool = small_pool(num_devices=4, replication=2)
        server = PumServer(pool=pool, max_batch=4, max_wait_ticks=1)
        rng = derive_rng("server-rebuild")
        matrix = rng.integers(-8, 8, size=(16, 8))
        allocation = server.register_matrix(
            "model", matrix, element_size=4, input_bits=3
        )
        injector = FaultInjector().attach(pool)
        holders = sorted({s.device_index for s, _ in allocation.shards})
        for device_index in holders:
            injector.kill(device_index)
            pool.mark_device_failed(device_index)
        report = server.rebuild("model")
        assert report.changed is True
        assert server.stats.rebuilds == 1
        futures = server.submit_batch(
            "model", rng.integers(0, 8, size=(3, 16)), input_bits=3
        )
        server.run_until_idle()
        assert all(f.result().status == "completed" for f in futures)


class TestRebuildErrorNormalization:
    """A bookkeeping bug mid-rebuild must surface as RebuildError, not leak
    a bare KeyError/IndexError from the placement walk -- and must roll
    back any copies programmed earlier in the same pass."""

    def test_policy_keyerror_is_normalized_and_rolled_back(self):
        pool = small_pool(num_devices=4, replication=2)
        rng = derive_rng("rebuild-normalize")
        matrix = rng.integers(-8, 8, size=(16, 8))
        allocation = pool.set_matrix(matrix, element_size=4, precision=0)
        victim = allocation.shards[0][0].device_index
        pool.mark_device_failed(victim)
        free_before = [pool.free_hcts(i) for i in range(pool.num_devices)]

        class BuggyPolicy:
            def choose(self, free, needed, holders):
                raise KeyError("stale device index")

        original = pool.placement_policy
        pool.placement_policy = BuggyPolicy()
        try:
            with pytest.raises(RebuildError) as excinfo:
                pool.rebuild(allocation)
        finally:
            pool.placement_policy = original
        assert excinfo.value.allocation_id == allocation.allocation_id
        assert "placing replacement copies" in str(excinfo.value)
        assert isinstance(excinfo.value.__cause__, KeyError)
        # Nothing programmed by the aborted pass was left behind.
        assert [pool.free_hcts(i) for i in range(pool.num_devices)] \
            == free_before
        # The pool recovers: with the real policy back, rebuild succeeds.
        report = pool.rebuild(allocation)
        assert report.changed is True

    def test_index_error_is_normalized(self):
        pool = small_pool(num_devices=2, replication=2)
        allocation = pool.set_matrix(np.eye(8, dtype=np.int64), element_size=4)
        pool.mark_device_failed(allocation.shards[0][0].device_index)

        class BuggyPolicy:
            def choose(self, free, needed, holders):
                raise IndexError("device list out of range")

        pool.placement_policy = BuggyPolicy()
        with pytest.raises(RebuildError, match="IndexError"):
            pool.rebuild(allocation)

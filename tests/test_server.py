"""PumServer scheduler: batching, admission, deadlines, telemetry, threading."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PumServer, ThreadedServerDriver
from repro.errors import AdmissionError, QuantizationError, SchedulerError
from repro.runtime import (
    serve_aes_mixcolumns,
    serve_cnn_conv,
    serve_llm_projection,
)
from repro.runtime.server import BatchingConfig
from repro.workloads.aes.gf import gf_mul
from repro.workloads.aes.reference import MIX_COLUMNS_MATRIX
from repro.workloads.cnn.layers import Conv2d


@pytest.fixture
def rng():
    return np.random.default_rng(2026)


def make_server(**kwargs):
    defaults = dict(num_devices=2, max_batch=4, max_wait_ticks=2)
    defaults.update(kwargs)
    server = PumServer(**defaults)
    server.register_matrix("eye", np.eye(8, dtype=np.int64))
    return server


def submit_n(server, n, name="eye", **kwargs):
    return [
        server.submit(name, np.full(8, i % 4, dtype=np.int64), input_bits=3, **kwargs)
        for i in range(n)
    ]


class TestSchedulerEdgeCases:
    def test_empty_queue_tick_is_a_no_op(self):
        server = make_server()
        assert server.tick() == []
        assert server.tick() == []
        assert server.now == 2
        assert server.pending == 0
        assert list(server.stats.queue_depth_samples) == [0, 0]
        assert server.stats.batches == 0

    def test_deadline_expired_request_is_shed(self):
        server = make_server(max_batch=8, max_wait_ticks=10)
        future = server.submit("eye", np.ones(8, dtype=np.int64),
                               input_bits=3, deadline=2)
        assert server.tick() == []  # now=1: still within deadline, batch not due
        assert server.tick() == []  # now=2: deadline tick itself is still valid
        responses = server.tick()   # now=3: past the deadline -> shed
        assert len(responses) == 1
        assert responses[0].status == "shed"
        assert future.done()
        assert future.result().result is None
        assert server.stats.shed == 1
        assert server.pending == 0

    def test_single_request_batch_dispatches_after_max_wait(self):
        server = make_server(max_batch=8, max_wait_ticks=3)
        vector = np.arange(8, dtype=np.int64) % 4
        future = server.submit("eye", vector, input_bits=3)
        for _ in range(2):
            assert server.tick() == []
        responses = server.tick()  # oldest has now waited max_wait_ticks
        assert len(responses) == 1
        assert responses[0].batch_size == 1
        assert np.array_equal(future.result().result, vector)
        assert server.stats.batch_fill == {1: 1}

    def test_queue_full_rejects_newcomer(self):
        server = make_server(queue_capacity=2, admission="reject")
        admitted = submit_n(server, 2)
        rejected = server.submit("eye", np.ones(8, dtype=np.int64), input_bits=3)
        assert rejected.done()
        assert rejected.result().status == "rejected"
        assert server.stats.rejected == 1
        assert server.pending == 2
        server.run_until_idle()
        assert all(f.result().ok for f in admitted)

    def test_queue_full_sheds_lowest_priority_for_higher(self):
        server = make_server(queue_capacity=2, admission="shed_lowest",
                             max_batch=8, max_wait_ticks=10)
        low_a, low_b = submit_n(server, 2, priority=0)
        high = server.submit("eye", np.ones(8, dtype=np.int64),
                             input_bits=3, priority=5)
        assert low_a.done()  # oldest lowest-priority request was evicted
        assert low_a.result().status == "shed"
        assert not low_b.done()
        assert not high.done()
        assert server.pending == 2
        # A newcomer that does not outrank anyone queued is rejected instead.
        lowest = server.submit("eye", np.ones(8, dtype=np.int64),
                               input_bits=3, priority=-1)
        assert lowest.result().status == "rejected"


class TestBatching:
    def test_full_batch_dispatches_immediately(self, rng):
        server = make_server(max_batch=4, max_wait_ticks=50)
        futures = submit_n(server, 4)
        responses = server.tick()
        assert len(responses) == 4
        assert all(r.batch_size == 4 for r in responses)
        assert server.stats.batch_fill == {4: 1}
        for i, future in enumerate(futures):
            assert np.array_equal(future.result().result,
                                  np.full(8, i % 4, dtype=np.int64))

    def test_results_bit_identical_to_direct_pool_execution(self, rng):
        matrix = rng.integers(-50, 50, size=(16, 12))
        vectors = rng.integers(0, 16, size=(10, 16))
        server = PumServer(num_devices=2, max_batch=4, max_wait_ticks=1)
        server.register_matrix("m", matrix, element_size=8)
        futures = [server.submit("m", v, input_bits=4) for v in vectors]
        server.run_until_idle()
        served = np.stack([f.result().result for f in futures])
        assert np.array_equal(served, vectors @ matrix)

    def test_incompatible_input_bits_batch_separately(self):
        server = make_server(max_batch=8, max_wait_ticks=1)
        coarse = server.submit("eye", np.ones(8, dtype=np.int64), input_bits=2)
        fine = server.submit("eye", np.full(8, 3, dtype=np.int64), input_bits=4)
        server.run_until_idle()
        assert coarse.result().batch_size == 1
        assert fine.result().batch_size == 1
        assert server.stats.batches == 2

    def test_higher_priority_rides_the_first_batch(self):
        server = make_server(max_batch=2, max_wait_ticks=1)
        low_a, low_b = submit_n(server, 2, priority=0)
        high = server.submit("eye", np.full(8, 3, dtype=np.int64),
                             input_bits=3, priority=9)
        server.tick()
        assert high.done() and low_a.done()
        assert high.result().batch_size == 2
        assert low_b.done()  # remainder flushed by the same wait trigger
        assert low_b.result().batch_size == 1

    def test_submit_validates_name_and_shape(self):
        server = make_server()
        with pytest.raises(AdmissionError):
            server.submit("missing", np.ones(8, dtype=np.int64))
        with pytest.raises(QuantizationError):
            server.submit("eye", np.ones(9, dtype=np.int64))

    def test_submit_rejects_unrepresentable_values(self):
        server = make_server()
        with pytest.raises(QuantizationError, match="values must be"):
            server.submit("eye", np.full(8, -1, dtype=np.int64), input_bits=3)
        with pytest.raises(QuantizationError, match="values must be"):
            server.submit("eye", np.full(8, 8, dtype=np.int64), input_bits=3)

    def test_failing_batch_does_not_wedge_the_scheduler(self):
        server = make_server(max_batch=2, max_wait_ticks=1)
        def explode(*args, **kwargs):
            raise QuantizationError("chip fault")
        server.pool.exec_mvm_batch = explode
        doomed = submit_n(server, 2)
        responses = server.tick()
        assert [r.status for r in responses] == ["failed", "failed"]
        assert "chip fault" in doomed[0].result().error
        assert server.pending == 0
        assert server.stats.failed == 2
        assert server.tick() == []  # the loop is still alive

    def test_invalid_batching_config_rejected(self):
        with pytest.raises(SchedulerError):
            BatchingConfig(max_batch=0)
        with pytest.raises(SchedulerError):
            BatchingConfig(admission="drop_everything")


class TestTelemetry:
    def test_latency_percentiles_and_energy(self, rng):
        server = make_server(max_batch=4, max_wait_ticks=3)
        submit_n(server, 10)
        server.run_until_idle()
        summary = server.stats.summary()
        assert summary["completed"] == 10
        assert summary["batches"] >= 3
        assert 1 <= summary["p50_latency_ticks"] <= summary["p99_latency_ticks"]
        assert summary["mean_energy_per_request_pj"] > 0
        assert summary["max_queue_depth"] >= 4

    def test_energy_matches_pool_ledger(self):
        server = make_server(max_batch=4, max_wait_ticks=1)
        programming_energy = server.pool.total_ledger().energy_pj
        submit_n(server, 8)
        server.run_until_idle()
        execution_energy = server.pool.total_ledger().energy_pj - programming_energy
        accounted = sum(server.stats.energy_per_request_pj)
        assert accounted == pytest.approx(execution_energy)

    def test_empty_stats_summary_is_well_defined(self):
        stats = PumServer(num_devices=1).stats
        summary = stats.summary()
        assert summary["p99_latency_ticks"] == 0.0
        assert summary["mean_batch_fill"] == 0.0


class TestMatrixRegistry:
    def test_reregistration_releases_the_old_allocation(self, rng):
        server = PumServer(num_devices=2, policy="cache_affinity")
        first = server.register_matrix("m", rng.integers(-5, 5, size=(8, 8)))
        used_before = sum(u > 0 for u in server.pool.utilization())
        second = server.register_matrix("m", rng.integers(-5, 5, size=(8, 8)))
        assert sum(u > 0 for u in server.pool.utilization()) == used_before
        # Cache affinity re-places the update on the device(s) that held it.
        assert second.devices_used == first.devices_used

    def test_requests_use_the_latest_registration(self):
        server = make_server(max_batch=1, max_wait_ticks=1)
        server.register_matrix("eye", 2 * np.eye(8, dtype=np.int64), element_size=4)
        future = server.submit("eye", np.full(8, 2, dtype=np.int64), input_bits=3)
        server.run_until_idle()
        assert np.array_equal(future.result().result, np.full(8, 4, dtype=np.int64))


class TestThreadedDriver:
    def test_background_driver_serves_requests(self):
        server = make_server(max_batch=4, max_wait_ticks=2)
        with ThreadedServerDriver(server, tick_interval=1e-5):
            futures = submit_n(server, 6)
            responses = [f.result(timeout=5.0) for f in futures]
        assert all(r.ok for r in responses)
        assert server.pending == 0

    def test_driver_start_stop_idempotent(self):
        server = make_server()
        driver = ThreadedServerDriver(server, tick_interval=0.0)
        driver.start()
        driver.start()
        driver.stop()
        driver.stop()
        with pytest.raises(SchedulerError):
            ThreadedServerDriver(server, tick_interval=-1.0)


class TestServingEntryPoints:
    def test_serve_aes_mixcolumns_matches_gf_reference(self, rng):
        server = PumServer(num_devices=2, max_batch=4, max_wait_ticks=2)
        columns = rng.integers(0, 256, size=(6, 4))
        served = serve_aes_mixcolumns(server, columns)
        reference = np.zeros_like(columns)
        for n in range(columns.shape[0]):
            for i in range(4):
                acc = 0
                for j in range(4):
                    acc ^= gf_mul(int(MIX_COLUMNS_MATRIX[i, j]), int(columns[n, j]))
                reference[n, i] = acc
        assert np.array_equal(served, reference)
        # The bit matrix is registered once and reused on the next call.
        assert server.matrix_names.count("aes.mixcolumns") == 1
        serve_aes_mixcolumns(server, columns[:2])
        assert server.matrix_names.count("aes.mixcolumns") == 1

    def test_serve_cnn_conv_within_quantisation_tolerance(self, rng):
        server = PumServer(num_devices=2, max_batch=4, max_wait_ticks=2)
        conv = Conv2d(3, 4, kernel=3, rng=rng)
        image = rng.standard_normal((1, 3, 8, 8))
        device, reference = serve_cnn_conv(server, conv, image, positions=6)
        scale = np.abs(reference).max()
        assert np.allclose(device, reference, atol=0.1 * scale + 1e-6)

    def test_serve_llm_projection_within_quantisation_tolerance(self, rng):
        server = PumServer(num_devices=2, max_batch=8, max_wait_ticks=2)
        weight = rng.standard_normal((16, 8))
        activations = rng.standard_normal((5, 16))
        device, reference = serve_llm_projection(server, weight, activations)
        scale = np.abs(reference).max()
        assert np.allclose(device, reference, atol=0.1 * scale + 1e-6)

    def test_workloads_larger_than_queue_capacity_are_served_in_waves(self, rng):
        server = PumServer(num_devices=2, max_batch=4, max_wait_ticks=1,
                           queue_capacity=4, admission="reject")
        weight = rng.standard_normal((16, 8))
        activations = rng.standard_normal((11, 16))  # ~3x the queue capacity
        device, reference = serve_llm_projection(server, weight, activations)
        assert device.shape == reference.shape == (11, 8)
        assert server.stats.rejected == 0

"""PumServer scheduler: batching, admission, deadlines, telemetry, threading."""

from __future__ import annotations

import numpy as np
import pytest

from repro.testing import derive_rng

from repro import PumServer, ThreadedServerDriver
from repro.errors import AdmissionError, QuantizationError, SchedulerError
from repro.metrics import percentile
from repro.runtime import (
    serve_aes_mixcolumns,
    serve_cnn_conv,
    serve_llm_projection,
)
from repro.runtime.queueing import make_request_queue
from repro.runtime.server import TELEMETRY_WINDOW, BatchingConfig, ServingStats
from repro.workloads.aes.gf import gf_mul
from repro.workloads.aes.reference import MIX_COLUMNS_MATRIX
from repro.workloads.cnn.layers import Conv2d


@pytest.fixture
def rng():
    return derive_rng("server")


def make_server(**kwargs):
    defaults = dict(num_devices=2, max_batch=4, max_wait_ticks=2)
    defaults.update(kwargs)
    server = PumServer(**defaults)
    server.register_matrix("eye", np.eye(8, dtype=np.int64))
    return server


def submit_n(server, n, name="eye", **kwargs):
    return [
        server.submit(name, np.full(8, i % 4, dtype=np.int64), input_bits=3, **kwargs)
        for i in range(n)
    ]


class TestSchedulerEdgeCases:
    def test_empty_queue_tick_is_a_no_op(self):
        server = make_server()
        assert server.tick() == []
        assert server.tick() == []
        assert server.now == 2
        assert server.pending == 0
        assert list(server.stats.queue_depth_samples) == [0, 0]
        assert server.stats.batches == 0

    def test_deadline_expired_request_is_shed(self):
        server = make_server(max_batch=8, max_wait_ticks=10)
        future = server.submit("eye", np.ones(8, dtype=np.int64),
                               input_bits=3, deadline=2)
        assert server.tick() == []  # now=1: still within deadline, batch not due
        assert server.tick() == []  # now=2: deadline tick itself is still valid
        responses = server.tick()   # now=3: past the deadline -> shed
        assert len(responses) == 1
        assert responses[0].status == "shed"
        assert future.done()
        assert future.result().result is None
        assert server.stats.shed == 1
        assert server.pending == 0

    def test_single_request_batch_dispatches_after_max_wait(self):
        server = make_server(max_batch=8, max_wait_ticks=3)
        vector = np.arange(8, dtype=np.int64) % 4
        future = server.submit("eye", vector, input_bits=3)
        for _ in range(2):
            assert server.tick() == []
        responses = server.tick()  # oldest has now waited max_wait_ticks
        assert len(responses) == 1
        assert responses[0].batch_size == 1
        assert np.array_equal(future.result().result, vector)
        assert server.stats.batch_fill == {1: 1}

    def test_queue_full_rejects_newcomer(self):
        server = make_server(queue_capacity=2, admission="reject")
        admitted = submit_n(server, 2)
        rejected = server.submit("eye", np.ones(8, dtype=np.int64), input_bits=3)
        assert rejected.done()
        assert rejected.result().status == "rejected"
        assert server.stats.rejected == 1
        assert server.pending == 2
        server.run_until_idle()
        assert all(f.result().ok for f in admitted)

    def test_queue_full_sheds_lowest_priority_for_higher(self):
        server = make_server(queue_capacity=2, admission="shed_lowest",
                             max_batch=8, max_wait_ticks=10)
        low_a, low_b = submit_n(server, 2, priority=0)
        high = server.submit("eye", np.ones(8, dtype=np.int64),
                             input_bits=3, priority=5)
        assert low_a.done()  # oldest lowest-priority request was evicted
        assert low_a.result().status == "shed"
        assert not low_b.done()
        assert not high.done()
        assert server.pending == 2
        # A newcomer that does not outrank anyone queued is rejected instead.
        lowest = server.submit("eye", np.ones(8, dtype=np.int64),
                               input_bits=3, priority=-1)
        assert lowest.result().status == "rejected"


class TestBatching:
    def test_full_batch_dispatches_immediately(self, rng):
        server = make_server(max_batch=4, max_wait_ticks=50)
        futures = submit_n(server, 4)
        responses = server.tick()
        assert len(responses) == 4
        assert all(r.batch_size == 4 for r in responses)
        assert server.stats.batch_fill == {4: 1}
        for i, future in enumerate(futures):
            assert np.array_equal(future.result().result,
                                  np.full(8, i % 4, dtype=np.int64))

    def test_results_bit_identical_to_direct_pool_execution(self, rng):
        matrix = rng.integers(-50, 50, size=(16, 12))
        vectors = rng.integers(0, 16, size=(10, 16))
        server = PumServer(num_devices=2, max_batch=4, max_wait_ticks=1)
        server.register_matrix("m", matrix, element_size=8)
        futures = [server.submit("m", v, input_bits=4) for v in vectors]
        server.run_until_idle()
        served = np.stack([f.result().result for f in futures])
        assert np.array_equal(served, vectors @ matrix)

    def test_incompatible_input_bits_batch_separately(self):
        server = make_server(max_batch=8, max_wait_ticks=1)
        coarse = server.submit("eye", np.ones(8, dtype=np.int64), input_bits=2)
        fine = server.submit("eye", np.full(8, 3, dtype=np.int64), input_bits=4)
        server.run_until_idle()
        assert coarse.result().batch_size == 1
        assert fine.result().batch_size == 1
        assert server.stats.batches == 2

    def test_higher_priority_rides_the_first_batch(self):
        server = make_server(max_batch=2, max_wait_ticks=1)
        low_a, low_b = submit_n(server, 2, priority=0)
        high = server.submit("eye", np.full(8, 3, dtype=np.int64),
                             input_bits=3, priority=9)
        server.tick()
        assert high.done() and low_a.done()
        assert high.result().batch_size == 2
        assert low_b.done()  # remainder flushed by the same wait trigger
        assert low_b.result().batch_size == 1

    def test_submit_validates_name_and_shape(self):
        server = make_server()
        with pytest.raises(AdmissionError):
            server.submit("missing", np.ones(8, dtype=np.int64))
        with pytest.raises(QuantizationError):
            server.submit("eye", np.ones(9, dtype=np.int64))

    def test_submit_rejects_unrepresentable_values(self):
        server = make_server()
        with pytest.raises(QuantizationError, match="values must be"):
            server.submit("eye", np.full(8, -1, dtype=np.int64), input_bits=3)
        with pytest.raises(QuantizationError, match="values must be"):
            server.submit("eye", np.full(8, 8, dtype=np.int64), input_bits=3)

    def test_failing_batch_does_not_wedge_the_scheduler(self):
        server = make_server(max_batch=2, max_wait_ticks=1)
        def explode(*args, **kwargs):
            raise QuantizationError("chip fault")
        server.pool.exec_mvm_batch = explode
        doomed = submit_n(server, 2)
        responses = server.tick()
        assert [r.status for r in responses] == ["failed", "failed"]
        assert "chip fault" in doomed[0].result().error
        assert server.pending == 0
        assert server.stats.failed == 2
        assert server.tick() == []  # the loop is still alive

    def test_invalid_batching_config_rejected(self):
        with pytest.raises(SchedulerError):
            BatchingConfig(max_batch=0)
        with pytest.raises(SchedulerError):
            BatchingConfig(admission="drop_everything")


class TestTelemetry:
    def test_latency_percentiles_and_energy(self, rng):
        server = make_server(max_batch=4, max_wait_ticks=3)
        submit_n(server, 10)
        server.run_until_idle()
        summary = server.stats.summary()
        assert summary["completed"] == 10
        assert summary["batches"] >= 3
        assert 1 <= summary["p50_latency_ticks"] <= summary["p99_latency_ticks"]
        assert summary["mean_energy_per_request_pj"] > 0
        assert summary["max_queue_depth"] >= 4

    def test_energy_matches_pool_ledger(self):
        server = make_server(max_batch=4, max_wait_ticks=1)
        programming_energy = server.pool.total_ledger().energy_pj
        submit_n(server, 8)
        server.run_until_idle()
        execution_energy = server.pool.total_ledger().energy_pj - programming_energy
        accounted = sum(server.stats.energy_per_request_pj)
        assert accounted == pytest.approx(execution_energy)

    def test_empty_stats_summary_is_well_defined(self):
        stats = PumServer(num_devices=1).stats
        summary = stats.summary()
        assert summary["p99_latency_ticks"] == 0.0
        assert summary["mean_batch_fill"] == 0.0


class TestMatrixRegistry:
    def test_reregistration_releases_the_old_allocation(self, rng):
        server = PumServer(num_devices=2, policy="cache_affinity")
        first = server.register_matrix("m", rng.integers(-5, 5, size=(8, 8)))
        used_before = sum(u > 0 for u in server.pool.utilization())
        second = server.register_matrix("m", rng.integers(-5, 5, size=(8, 8)))
        assert sum(u > 0 for u in server.pool.utilization()) == used_before
        # Cache affinity re-places the update on the device(s) that held it.
        assert second.devices_used == first.devices_used

    def test_requests_use_the_latest_registration(self):
        server = make_server(max_batch=1, max_wait_ticks=1)
        server.register_matrix("eye", 2 * np.eye(8, dtype=np.int64), element_size=4)
        future = server.submit("eye", np.full(8, 2, dtype=np.int64), input_bits=3)
        server.run_until_idle()
        assert np.array_equal(future.result().result, np.full(8, 4, dtype=np.int64))


class TestThreadedDriver:
    def test_background_driver_serves_requests(self):
        server = make_server(max_batch=4, max_wait_ticks=2)
        with ThreadedServerDriver(server, tick_interval=1e-5):
            futures = submit_n(server, 6)
            responses = [f.result(timeout=5.0) for f in futures]
        assert all(r.ok for r in responses)
        assert server.pending == 0

    def test_driver_start_stop_idempotent(self):
        server = make_server()
        driver = ThreadedServerDriver(server, tick_interval=0.0)
        driver.start()
        driver.start()
        driver.stop()
        driver.stop()
        with pytest.raises(SchedulerError):
            ThreadedServerDriver(server, tick_interval=-1.0)


class TestServingEntryPoints:
    def test_serve_aes_mixcolumns_matches_gf_reference(self, rng):
        server = PumServer(num_devices=2, max_batch=4, max_wait_ticks=2)
        columns = rng.integers(0, 256, size=(6, 4))
        served = serve_aes_mixcolumns(server, columns)
        reference = np.zeros_like(columns)
        for n in range(columns.shape[0]):
            for i in range(4):
                acc = 0
                for j in range(4):
                    acc ^= gf_mul(int(MIX_COLUMNS_MATRIX[i, j]), int(columns[n, j]))
                reference[n, i] = acc
        assert np.array_equal(served, reference)
        # The bit matrix is registered once and reused on the next call.
        assert server.matrix_names.count("aes.mixcolumns") == 1
        serve_aes_mixcolumns(server, columns[:2])
        assert server.matrix_names.count("aes.mixcolumns") == 1

    def test_serve_cnn_conv_within_quantisation_tolerance(self, rng):
        server = PumServer(num_devices=2, max_batch=4, max_wait_ticks=2)
        conv = Conv2d(3, 4, kernel=3, rng=rng)
        image = rng.standard_normal((1, 3, 8, 8))
        device, reference = serve_cnn_conv(server, conv, image, positions=6)
        scale = np.abs(reference).max()
        assert np.allclose(device, reference, atol=0.1 * scale + 1e-6)

    def test_serve_llm_projection_within_quantisation_tolerance(self, rng):
        server = PumServer(num_devices=2, max_batch=8, max_wait_ticks=2)
        weight = rng.standard_normal((16, 8))
        activations = rng.standard_normal((5, 16))
        device, reference = serve_llm_projection(server, weight, activations)
        scale = np.abs(reference).max()
        assert np.allclose(device, reference, atol=0.1 * scale + 1e-6)

    def test_workloads_larger_than_queue_capacity_are_served_in_waves(self, rng):
        server = PumServer(num_devices=2, max_batch=4, max_wait_ticks=1,
                           queue_capacity=4, admission="reject")
        weight = rng.standard_normal((16, 8))
        activations = rng.standard_normal((11, 16))  # ~3x the queue capacity
        device, reference = serve_llm_projection(server, weight, activations)
        assert device.shape == reference.shape == (11, 8)
        assert server.stats.rejected == 0


class TestSubmitBatch:
    def test_empty_batch_returns_no_futures(self):
        server = make_server()
        futures = server.submit_batch("eye", np.empty((0, 8), dtype=np.int64),
                                      input_bits=3)
        assert futures == []
        assert server.stats.submitted == 0
        assert server.pending == 0

    def test_results_match_per_vector_submission(self, rng):
        matrix = rng.integers(-50, 50, size=(16, 12))
        vectors = rng.integers(0, 16, size=(10, 16))
        server = PumServer(num_devices=2, max_batch=4, max_wait_ticks=1)
        server.register_matrix("m", matrix, element_size=8, input_bits=4)
        futures = server.submit_batch("m", vectors, input_bits=4)
        server.run_until_idle()
        served = np.stack([f.result().result for f in futures])
        assert np.array_equal(served, vectors @ matrix)
        # Full batches of consecutive wave rows dispatch as zero-copy slices.
        assert server.stats.zero_copy_batches == server.stats.batches

    def test_bad_shape_is_rejected_synchronously(self):
        server = make_server()
        with pytest.raises(QuantizationError, match="submit_batch expects"):
            server.submit_batch("eye", np.ones((2, 9), dtype=np.int64))
        with pytest.raises(QuantizationError, match="submit_batch expects"):
            server.submit_batch("eye", np.ones(8, dtype=np.int64))

    def test_out_of_range_batch_rejected_in_one_pass(self):
        # "Mixed precision": one vector needs more bits than input_bits, so
        # the whole array is rejected before any request is created.
        server = make_server()
        vectors = np.ones((4, 8), dtype=np.int64)
        vectors[2, 5] = 8  # needs 4 bits
        with pytest.raises(QuantizationError, match="values must be"):
            server.submit_batch("eye", vectors, input_bits=3)
        with pytest.raises(QuantizationError, match="values must be"):
            server.submit_batch("eye", -vectors, input_bits=3)
        assert server.stats.submitted == 0
        assert server.pending == 0

    def test_partial_admission_rejects_overflow_rows(self):
        server = make_server(queue_capacity=4, max_batch=8, max_wait_ticks=1,
                             admission="reject")
        vectors = np.ones((6, 8), dtype=np.int64)
        futures = server.submit_batch("eye", vectors, input_bits=3)
        assert len(futures) == 6
        # The first four rows were admitted; the overflow resolved instantly.
        assert server.pending == 4
        assert [f.done() for f in futures] == [False] * 4 + [True] * 2
        assert all(f.result().status == "rejected" for f in futures[4:])
        assert server.stats.rejected == 2
        server.run_until_idle()
        assert all(f.result().ok for f in futures[:4])

    def test_partial_admission_sheds_lower_priority_victims(self):
        server = make_server(queue_capacity=2, max_batch=8, max_wait_ticks=10,
                             admission="shed_lowest")
        low_a, low_b = submit_n(server, 2, priority=0)
        futures = server.submit_batch("eye", np.ones((3, 8), dtype=np.int64),
                                      input_bits=3, priority=5)
        # Both low-priority requests were evicted for the first two rows;
        # the third row found no victim it outranks and was rejected.
        assert low_a.result().status == "shed"
        assert low_b.result().status == "shed"
        assert futures[2].result().status == "rejected"
        assert server.pending == 2
        server.run_until_idle()
        assert all(f.result().ok for f in futures[:2])

    def test_deadline_expired_bulk_requests_all_resolve(self):
        server = make_server(max_batch=32, max_wait_ticks=10)
        futures = server.submit_batch("eye", np.ones((5, 8), dtype=np.int64),
                                      input_bits=3, deadline=1)
        assert server.tick() == []  # now=1: deadline tick itself still valid
        responses = server.tick()   # now=2: all five shed in id order
        assert [r.status for r in responses] == ["shed"] * 5
        assert [r.request_id for r in responses] == sorted(
            r.request_id for r in responses
        )
        assert all(f.done() for f in futures)
        assert server.pending == 0
        assert server.stats.shed == 5

    def test_failed_bulk_batch_resolves_every_future(self):
        server = make_server(max_batch=4, max_wait_ticks=1)
        def explode(*args, **kwargs):
            raise QuantizationError("chip fault")
        server.pool.exec_mvm_batch = explode
        futures = server.submit_batch("eye", np.ones((4, 8), dtype=np.int64),
                                      input_bits=3)
        responses = server.tick()
        assert [r.status for r in responses] == ["failed"] * 4
        assert all(f.done() for f in futures)
        assert server.pending == 0
        assert server.tick() == []  # the loop is still alive

    def test_mixed_ingress_batches_gather_through_the_arena(self):
        server = make_server(max_batch=4, max_wait_ticks=1)
        bulk = server.submit_batch("eye", np.full((2, 8), 2, dtype=np.int64),
                                   input_bits=3)
        single = server.submit("eye", np.full(8, 3, dtype=np.int64), input_bits=3)
        server.run_until_idle()
        assert all(f.result().ok for f in bulk + [single])
        assert np.array_equal(single.result().result, np.full(8, 3, dtype=np.int64))
        # A batch mixing bulk rows and a single submit cannot be a slice of
        # one source array; it is gathered into the reusable arena instead.
        assert server.stats.gathered_batches == 1
        assert server.stats.zero_copy_batches == 0

    def test_bulk_vectors_are_views_of_one_source_array(self):
        server = make_server(max_batch=8, max_wait_ticks=10)
        vectors = np.full((3, 8), 1, dtype=np.int64)
        server.submit_batch("eye", vectors, input_bits=3)
        queued = [server.request_queue.take(("eye", 3), 8)][0]
        sources = {id(request.source) for request in queued}
        assert len(sources) == 1
        assert all(
            np.shares_memory(request.vector, request.source)
            for request in queued
        )


class TestDispatchOrder:
    """Regression pins for the queue rework (oldest-group-first dispatch)."""

    def expected_matrix(self, server, name):
        allocation = server.allocation_for(name)
        return server.pool.expected_mvm(allocation, np.eye(8, dtype=np.int64)).T

    def run_mixed_traffic(self, queue):
        server = PumServer(num_devices=2, max_batch=4, max_wait_ticks=3,
                           queue_capacity=32, queue=queue)
        server.register_matrix("a", np.eye(8, dtype=np.int64))
        server.register_matrix("b", 2 * np.eye(8, dtype=np.int64), element_size=4)
        responses = []
        # Tick 0: two b-requests age toward the wait trigger; tick 2: a full
        # a-batch (plus mixed priorities) and a doomed deadline request.
        server.submit_batch("b", np.full((2, 8), 1, dtype=np.int64), input_bits=3)
        responses.extend(server.tick())
        responses.extend(server.tick())
        for priority in (0, 5, 0, 2):
            server.submit("a", np.full(8, 2, dtype=np.int64), input_bits=3,
                          priority=priority)
        server.submit("b", np.full(8, 3, dtype=np.int64), input_bits=3,
                      deadline=2)
        responses.extend(server.run_until_idle())
        return server, responses

    def test_oldest_group_dispatches_first(self):
        server, responses = self.run_mixed_traffic("indexed")
        # At tick 3 both groups are due (b aged past max_wait, a full): the
        # older b-group dispatches first, and the expired b request is shed
        # ahead of any dispatch that tick.
        completed = [r.name for r in responses if r.status == "completed"]
        assert completed == ["b", "b", "a", "a", "a", "a"]
        assert [r.status for r in responses].count("shed") == 1
        assert responses[0].status == "shed"

    def test_priority_orders_rows_within_a_batch(self):
        server = make_server(max_batch=4, max_wait_ticks=10)
        ids = {}
        for priority in (0, 5, 0, 2):
            future = server.submit("eye", np.full(8, 1, dtype=np.int64),
                                   input_bits=3, priority=priority)
            ids[priority] = ids.get(priority, []) + [future.request_id]
        responses = server.tick()
        # Batch rows are ordered (-priority, arrival, id).
        assert [r.request_id for r in responses] == (
            ids[5] + ids[2] + ids[0]
        )

    def test_flat_and_indexed_queues_dispatch_identically(self):
        indexed_server, indexed = self.run_mixed_traffic("indexed")
        flat_server, flat = self.run_mixed_traffic("flat")
        assert [r.request_id for r in indexed] == [r.request_id for r in flat]
        assert [r.status for r in indexed] == [r.status for r in flat]
        assert [r.batch_size for r in indexed] == [r.batch_size for r in flat]
        for fast, slow in zip(indexed, flat):
            if fast.result is None:
                assert slow.result is None
            else:
                assert np.array_equal(fast.result, slow.result)
        fast_ledger = indexed_server.pool.total_ledger()
        slow_ledger = flat_server.pool.total_ledger()
        assert fast_ledger.cycles == slow_ledger.cycles
        assert fast_ledger.energy_pj == slow_ledger.energy_pj


class TestQueueScans:
    def test_indexed_tick_loop_never_scans_the_queue(self):
        for depth in (16, 64):
            server = make_server(max_batch=4, max_wait_ticks=2,
                                 queue_capacity=depth)
            server.submit_batch(
                "eye", np.ones((depth, 8), dtype=np.int64), input_bits=3
            )
            server.run_until_idle()
            assert server.queue_scans() == 0

    def test_flat_queue_scans_grow_with_depth(self):
        scans = {}
        for depth in (16, 64):
            server = make_server(max_batch=4, max_wait_ticks=2,
                                 queue_capacity=depth, queue="flat")
            submit_n(server, depth)
            server.run_until_idle()
            scans[depth] = server.queue_scans()
        assert scans[64] > scans[16] > 0

    def test_unknown_queue_name_rejected(self):
        with pytest.raises(SchedulerError, match="unknown request queue"):
            make_request_queue("priority_heap")
        with pytest.raises(SchedulerError):
            PumServer(num_devices=1, queue="linked_list")


class TestLatencyPercentileCache:
    def make_stats_with(self, latencies_batches):
        stats = ServingStats()
        for batch in latencies_batches:
            stats.record_batch(len(batch), list(batch), energy_pj=1.0)
        return stats

    def test_matches_fresh_sort_at_window_boundaries(self):
        # Overflow the sliding window so old entries fall out mid-stream.
        stats = self.make_stats_with(
            [range(i, i + 7) for i in range(0, 2 * TELEMETRY_WINDOW, 7)]
        )
        assert len(stats.latencies) == TELEMETRY_WINDOW
        for q in (0, 50, 95, 99, 100):
            assert stats.latency_percentile(q) == percentile(
                list(stats.latencies), q
            )

    def test_cache_refreshes_after_each_recorded_batch(self):
        stats = self.make_stats_with([[10, 20, 30]])
        assert stats.latency_percentile(50) == 20.0
        stats.record_batch(2, [100, 200], energy_pj=1.0)
        assert stats.latency_percentile(50) == 30.0
        assert stats.latency_percentile(100) == 200.0

    def test_empty_window_is_zero(self):
        assert ServingStats().latency_percentile(99) == 0.0


class TestStatsSnapshot:
    """Regression: snapshot() must never observe a torn telemetry window."""

    def test_snapshot_blocks_on_the_stats_lock(self):
        # The mutators and snapshot() serialize on the same lock; a reader
        # arriving mid-record_batch must wait for the whole batch.
        import threading

        stats = ServingStats()
        stats.record_batch(2, [5, 7], energy_pj=4.0)
        acquired = threading.Event()
        release = threading.Event()
        observed = {}

        def hold_lock():
            with stats._stats_lock:
                acquired.set()
                release.wait(timeout=10)

        def read_snapshot():
            observed["summary"] = stats.snapshot()

        holder = threading.Thread(target=hold_lock)
        holder.start()
        assert acquired.wait(timeout=10)
        reader = threading.Thread(target=read_snapshot)
        reader.start()
        reader.join(timeout=0.2)
        assert reader.is_alive()  # blocked behind the writer's lock
        release.set()
        reader.join(timeout=10)
        holder.join(timeout=10)
        assert not reader.is_alive()
        assert observed["summary"]["completed"] == 2.0

    def test_snapshot_is_consistent_under_concurrent_recording(self):
        # Hammer record_batch from a writer thread while snapshotting:
        # completed is only ever bumped alongside its batch, so every
        # snapshot must satisfy completed == 2 * batches exactly.
        import threading

        stats = ServingStats()
        stop = threading.Event()

        def writer():
            tick = 0
            while not stop.is_set():
                stats.record_batch(2, [tick, tick + 1], energy_pj=2.0)
                tick += 1

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(300):
                summary = stats.snapshot()
                assert summary["completed"] == 2 * summary["batches"]
        finally:
            stop.set()
            thread.join(timeout=10)

    def test_snapshot_matches_summary_when_quiescent(self):
        stats = ServingStats()
        stats.record_batch(3, [1, 2, 3], energy_pj=9.0)
        stats.observe_queue_depth(5)
        assert stats.snapshot() == stats.summary()

"""Shared fixtures for the DARTH-PUM reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import HctConfig, HybridComputeTile
from repro.digital import BitPipeline


@pytest.fixture
def rng():
    """A deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_pipeline():
    """A 16-bit, 8-row digital pipeline (fast enough for functional tests)."""
    return BitPipeline(depth=16, rows=8, cols=16)


@pytest.fixture
def small_tile():
    """A reduced hybrid compute tile."""
    return HybridComputeTile(HctConfig.small())

"""Shared fixtures for the DARTH-PUM reproduction test suite.

All randomness in the suite derives from one knob: ``REPRO_TEST_SEED``
(environment variable, default 12345).  Tests obtain generators through
:func:`repro.testing.derive_rng` / the ``make_rng`` fixture, which hand
out independent, label-keyed streams of the master seed -- so every chaos
schedule, property case, and random matrix in the suite is reproducible
from a single number, and the CI chaos job can sweep seeds by exporting
the variable.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import HctConfig, HybridComputeTile
from repro.digital import BitPipeline
from repro.testing import REPRO_TEST_SEED, derive_rng


@pytest.fixture(scope="session")
def test_seed() -> int:
    """The suite-wide master seed (``REPRO_TEST_SEED``)."""
    return REPRO_TEST_SEED


@pytest.fixture
def make_rng():
    """Factory fixture: ``make_rng("label")`` -> a derived generator."""
    return derive_rng


@pytest.fixture
def rng():
    """The default deterministic generator (master seed, no label)."""
    return np.random.default_rng(REPRO_TEST_SEED)


@pytest.fixture
def small_pipeline():
    """A 16-bit, 8-row digital pipeline (fast enough for functional tests)."""
    return BitPipeline(depth=16, rows=8, cols=16)


@pytest.fixture
def small_tile():
    """A reduced hybrid compute tile."""
    return HybridComputeTile(HctConfig.small())

"""Tests for the ReRAM device and non-ideality models."""

import numpy as np
import pytest

from repro.testing import derive_rng
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError, QuantizationError
from repro.reram import (
    ConductanceMapper,
    DeviceParameters,
    DriftModel,
    NoiseConfig,
    NoiseStack,
    ParasiticModel,
    StuckAtFaultModel,
)


class TestDeviceParameters:
    def test_defaults_valid(self):
        params = DeviceParameters()
        assert params.conductance_range > 0
        assert params.levels(1) == 2
        assert params.levels(8) == 256

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ConfigurationError):
            DeviceParameters(g_min=1e-4, g_max=1e-6)
        with pytest.raises(ConfigurationError):
            DeviceParameters(g_min=-1.0)
        with pytest.raises(ConfigurationError):
            DeviceParameters().levels(20)


class TestConductanceMapper:
    @given(st.integers(min_value=1, max_value=8))
    def test_roundtrip_is_exact_for_all_levels(self, bits):
        params = DeviceParameters()
        mapper = ConductanceMapper(params, bits)
        values = np.arange(2 ** bits)
        conductances = mapper.value_to_conductance(values)
        assert np.array_equal(mapper.conductance_to_value(conductances), values)

    def test_out_of_range_value_rejected(self):
        mapper = ConductanceMapper(DeviceParameters(), 2)
        with pytest.raises(QuantizationError):
            mapper.value_to_conductance(np.array([4]))

    def test_quantisation_is_nearest_level(self):
        mapper = ConductanceMapper(DeviceParameters(), 1)
        midpoint = (mapper.params.g_min + mapper.params.g_max) / 2
        assert mapper.conductance_to_value(np.array([midpoint * 1.01]))[0] == 1


class TestNoiseStack:
    def test_ideal_config_is_deterministic(self):
        stack = NoiseStack(DeviceParameters(), NoiseConfig.ideal())
        conductances = np.full((4, 4), 5e-5)
        assert np.array_equal(stack.program(conductances), conductances)
        assert np.array_equal(stack.read(conductances), conductances)

    def test_programming_noise_perturbs_but_stays_in_range(self):
        params = DeviceParameters(programming_noise_sigma=0.05)
        stack = NoiseStack(params, NoiseConfig(programming_noise=True, read_noise=False))
        conductances = np.full((8, 8), 5e-5)
        programmed = stack.program(conductances)
        assert not np.array_equal(programmed, conductances)
        assert programmed.min() >= params.g_min and programmed.max() <= params.g_max

    def test_read_noise_changes_between_reads(self):
        stack = NoiseStack(DeviceParameters(), NoiseConfig(programming_noise=False, read_noise=True))
        conductances = np.full((4, 4), 5e-5)
        assert not np.array_equal(stack.read(conductances), stack.read(conductances))

    def test_seed_reproducibility(self):
        config = NoiseConfig(seed=42)
        a = NoiseStack(DeviceParameters(), config).program(np.full((4, 4), 5e-5))
        b = NoiseStack(DeviceParameters(), config).program(np.full((4, 4), 5e-5))
        assert np.array_equal(a, b)


class TestDriftAndStuckAt:
    def test_drift_decays_toward_gmin(self):
        params = DeviceParameters()
        drift = DriftModel(params, drift_rate=0.1)
        conductances = np.array([params.g_max])
        later = drift.apply(conductances, elapsed=10)
        assert params.g_min < later[0] < params.g_max

    def test_drift_zero_elapsed_is_identity(self):
        params = DeviceParameters()
        drift = DriftModel(params, 0.1)
        values = np.array([5e-5])
        assert np.allclose(drift.apply(values, 0), values)

    def test_stuck_at_fault_count_matches_rate(self):
        params = DeviceParameters()
        model = StuckAtFaultModel(params, rate=0.5)
        rng = derive_rng("reram")
        model.build_fault_map((100, 100), rng)
        assert 3000 < model.fault_count < 7000

    def test_stuck_at_zero_rate_is_identity(self):
        model = StuckAtFaultModel(DeviceParameters(), rate=0.0)
        values = np.full((4, 4), 5e-5)
        assert np.array_equal(model.apply(values, derive_rng("reram")), values)


class TestParasitics:
    def test_zero_wire_resistance_is_ideal(self):
        model = ParasiticModel(wire_resistance_ohm=0.0)
        conductances = np.full((8, 4), 5e-5)
        attenuation = model.attenuation(conductances, np.ones(8))
        assert np.allclose(attenuation, 1.0)

    def test_attenuation_grows_with_activated_rows(self):
        model = ParasiticModel(wire_resistance_ohm=50.0)
        conductances = np.full((16, 4), 1e-4)
        few = model.worst_case_drop_fraction(conductances[:2])
        many = model.worst_case_drop_fraction(conductances)
        assert many > few

    def test_balanced_matrix_has_less_positive_line_current(self):
        from repro.analog import ParasiticCompensation

        compensation = ParasiticCompensation()
        matrix = np.ones((16, 4), dtype=np.int64)
        improvement = compensation.ir_drop_improvement(matrix, ParasiticModel(10.0))
        assert improvement > 1.0

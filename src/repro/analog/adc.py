"""Analog-to-digital converter models (Section 2.2.1, Section 4.1, 7.3).

Two ADC families matter for DARTH-PUM:

* **SAR ADCs** binary-search the input range, finishing a single conversion
  in one (pipelined) cycle, but each SAR ADC serves many bitlines through an
  analog multiplexer, so converting a whole array output takes one cycle per
  bitline per ADC.
* **Ramp ADCs** sweep a shared reference over all levels (256 cycles for an
  8-bit conversion) but digitise *every* bitline in parallel, and can be
  terminated early when only a few output states matter (the AES MixColumns
  trick in Section 5.3 needs only 4 of the 256 steps).

Both models perform real quantisation of the analog column outputs and
charge latency/energy/area according to Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError

__all__ = ["AdcSpec", "AnalogToDigitalConverter", "SarAdc", "RampAdc", "make_adc"]


@dataclass(frozen=True)
class AdcSpec:
    """Resolution and cost parameters of one ADC instance."""

    resolution_bits: int = 8
    area_um2: float = 600.0
    power_mw: float = 1.5
    #: Cycles to digitise a single sample.
    conversion_cycles: float = 1.0
    #: How many bitlines can be converted concurrently by one ADC.
    parallel_lanes: int = 1

    def __post_init__(self) -> None:
        if self.resolution_bits < 1:
            raise ConfigurationError("ADC resolution must be at least 1 bit")
        if self.parallel_lanes < 1:
            raise ConfigurationError("ADC must serve at least one lane")

    @property
    def levels(self) -> int:
        """Number of representable output codes."""
        return 2 ** self.resolution_bits


class AnalogToDigitalConverter:
    """Base ADC: quantises a vector of analog values to integer codes.

    The converter is configured with a full-scale range ``[min_value,
    max_value]`` in the *value domain* (i.e. after the crossbar's currents
    have been normalised by the LSB conductance), mirroring how write-verify
    programming calibrates the ADC reference ladder.
    """

    kind = "generic"

    def __init__(self, spec: AdcSpec, min_value: float, max_value: float) -> None:
        if max_value <= min_value:
            raise ConfigurationError("ADC range must have max_value > min_value")
        self.spec = spec
        self.min_value = float(min_value)
        self.max_value = float(max_value)
        self._step = (self.max_value - self.min_value) / (self.spec.levels - 1)

    @property
    def lsb(self) -> float:
        """Value-domain width of one ADC code."""
        return self._step

    def convert(self, values: np.ndarray) -> np.ndarray:
        """Quantise ``values`` to the nearest ADC code and return the codes
        mapped back into the value domain (integers)."""
        values = np.asarray(values, dtype=float)
        codes = np.rint((values - self.min_value) / self._step)
        codes = np.clip(codes, 0, self.spec.levels - 1)
        return codes * self._step + self.min_value

    # ------------------------------------------------------------------ #
    # Cost model                                                          #
    # ------------------------------------------------------------------ #
    def conversion_latency(self, num_bitlines: int, num_adcs: int, active_bits: int | None = None) -> float:
        """Cycles to digitise ``num_bitlines`` outputs using ``num_adcs`` ADCs."""
        raise NotImplementedError

    def conversion_energy_pj(self, num_bitlines: int, active_bits: int | None = None) -> float:
        """Energy to digitise ``num_bitlines`` outputs (pJ)."""
        raise NotImplementedError

    def conversion_costs(
        self, num_bitlines: int, num_adcs: int, active_bits: int | None = None
    ) -> tuple[float, float]:
        """``(latency_cycles, energy_pj)`` of one full-array conversion pass.

        Convenience for callers that account latency and energy together
        (the crossbar cost model and the vectorized execution engine, which
        reconstructs per-step charges analytically instead of invoking the
        converter once per partial product).
        """
        return (
            self.conversion_latency(num_bitlines, num_adcs, active_bits),
            self.conversion_energy_pj(num_bitlines, active_bits),
        )


class SarAdc(AnalogToDigitalConverter):
    """Successive-approximation ADC: 1-cycle conversions, multiplexed lanes."""

    kind = "sar"

    def __init__(self, spec: AdcSpec | None = None, min_value: float = 0.0, max_value: float = 255.0) -> None:
        spec = spec if spec is not None else AdcSpec(
            resolution_bits=8, area_um2=600.0, power_mw=1.5, conversion_cycles=1.0
        )
        super().__init__(spec, min_value, max_value)

    def conversion_latency(self, num_bitlines: int, num_adcs: int, active_bits: int | None = None) -> float:
        if num_adcs < 1:
            raise ConfigurationError("at least one ADC is required")
        conversions_per_adc = int(np.ceil(num_bitlines / num_adcs))
        return conversions_per_adc * self.spec.conversion_cycles

    def conversion_energy_pj(self, num_bitlines: int, active_bits: int | None = None) -> float:
        # One conversion per bitline; power * cycles at 1 GHz is pJ.
        return num_bitlines * self.spec.power_mw * self.spec.conversion_cycles


class RampAdc(AnalogToDigitalConverter):
    """Ramp (single-slope) ADC: slow sweeps, all bitlines in parallel.

    ``active_bits`` allows early termination: AES MixColumns only needs the
    bottom two bits of the conversion (Section 7.3), reducing the sweep from
    256 steps to 4.
    """

    kind = "ramp"

    def __init__(self, spec: AdcSpec | None = None, min_value: float = 0.0, max_value: float = 255.0) -> None:
        spec = spec if spec is not None else AdcSpec(
            resolution_bits=8,
            area_um2=3800.0,
            power_mw=1.2,
            conversion_cycles=256.0,
            parallel_lanes=64,
        )
        super().__init__(spec, min_value, max_value)

    def conversion_latency(self, num_bitlines: int, num_adcs: int, active_bits: int | None = None) -> float:
        if num_adcs < 1:
            raise ConfigurationError("at least one ADC is required")
        steps = self.spec.conversion_cycles
        if active_bits is not None:
            steps = min(steps, float(2 ** active_bits))
        lanes = self.spec.parallel_lanes * num_adcs
        passes = int(np.ceil(num_bitlines / lanes))
        return passes * steps

    def conversion_energy_pj(self, num_bitlines: int, active_bits: int | None = None) -> float:
        steps = self.spec.conversion_cycles
        if active_bits is not None:
            steps = min(steps, float(2 ** active_bits))
        # The shared reference generator dominates; energy scales with the
        # sweep length, amortised over the bitlines converted in parallel.
        passes = max(1, int(np.ceil(num_bitlines / self.spec.parallel_lanes)))
        return passes * self.spec.power_mw * steps


def make_adc(kind: str, min_value: float = 0.0, max_value: float = 255.0,
             spec: AdcSpec | None = None) -> AnalogToDigitalConverter:
    """Factory for ADC models by name (``"sar"`` or ``"ramp"``)."""
    kind = kind.lower()
    if kind == "sar":
        return SarAdc(spec, min_value, max_value)
    if kind == "ramp":
        return RampAdc(spec, min_value, max_value)
    raise ConfigurationError(f"unknown ADC kind {kind!r}; expected 'sar' or 'ramp'")

"""Parasitic compensation scheme (Section 4.3).

Strictly positive binary matrices (like the AES MixColumns matrix) stored
with differential cells put all of the current on the positive bitline,
producing IR drops large enough to flip ADC outputs.  DARTH-PUM's scheme has
two parts:

1. **Remapping**: the bit values 0/1 are remapped to -1/+1 (equivalently
   -0.5/+0.5 after range scaling), so current flows down both bitlines and
   largely cancels, bringing the residual IR drop below one ADC LSB.
2. **Compensation factor**: because the remapped matrix computes
   ``sum(x * (2*w - 1)) / 2`` instead of ``sum(x * w)``, a post-MVM factor of
   ``popcount(x) / 2`` must be added back -- a cheap vector ADD in the nearby
   DCE.  For AES the input always has exactly four ones, so the factor is a
   constant 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import QuantizationError

__all__ = ["ParasiticCompensation", "CompensationPlan"]


@dataclass(frozen=True)
class CompensationPlan:
    """Everything needed to undo the remapping after the MVM.

    ``result = (raw + popcount(inputs)) // 2`` where ``raw`` is the signed
    ADC output of the remapped matrix.  When ``fixed_input_ones`` is set the
    compensation factor is a compile-time constant (the AES case).
    """

    scale: int = 2
    fixed_input_ones: int | None = None

    def factor(self, inputs: np.ndarray) -> int:
        """The additive compensation factor for the given input vector."""
        if self.fixed_input_ones is not None:
            return self.fixed_input_ones
        inputs = np.asarray(inputs)
        return int(np.count_nonzero(inputs))

    def apply(self, raw: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        """Recover the true binary-matrix MVM result from the remapped result."""
        raw = np.asarray(raw, dtype=np.int64)
        return (raw + self.factor(inputs)) // self.scale

    def factors(self, inputs: np.ndarray) -> np.ndarray:
        """Per-vector compensation factors for a ``(batch, rows)`` input."""
        inputs = np.asarray(inputs)
        if inputs.ndim != 2:
            raise QuantizationError("factors expects a (batch, rows) input matrix")
        if self.fixed_input_ones is not None:
            return np.full(inputs.shape[0], self.fixed_input_ones, dtype=np.int64)
        return np.count_nonzero(inputs, axis=1).astype(np.int64)

    def apply_batch(self, raw: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        """Batched :meth:`apply`: recover a whole ``(batch, cols)`` result.

        Row ``b`` is bit-identical to ``apply(raw[b], inputs[b])`` -- the
        recovery is integer arithmetic, so the vectorized form is exact.
        """
        raw = np.asarray(raw, dtype=np.int64)
        return (raw + self.factors(inputs)[:, None]) // self.scale


class ParasiticCompensation:
    """Remaps binary matrices to balanced +/-1 differential form."""

    def __init__(self, fixed_input_ones: int | None = None) -> None:
        self.plan = CompensationPlan(scale=2, fixed_input_ones=fixed_input_ones)

    def remap(self, matrix01: np.ndarray) -> np.ndarray:
        """Remap a 0/1 matrix to a -1/+1 matrix for differential programming.

        The remapped matrix ``M' = 2*M - 1`` satisfies
        ``x @ M = (x @ M' + popcount(x)) / 2`` for binary inputs ``x``.
        """
        matrix01 = np.asarray(matrix01)
        if not np.issubdtype(matrix01.dtype, np.integer):
            raise QuantizationError("remap expects an integer 0/1 matrix")
        if np.any((matrix01 != 0) & (matrix01 != 1)):
            raise QuantizationError("remap expects a strictly binary matrix")
        return (2 * matrix01 - 1).astype(np.int64)

    def remap_differential(self, matrix01: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Positive/negative device planes of the remapped matrix."""
        remapped = self.remap(matrix01)
        positive = np.where(remapped > 0, remapped, 0)
        negative = np.where(remapped < 0, -remapped, 0)
        return positive, negative

    def recover(self, raw: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        """Apply the post-MVM compensation factor (done in the DCE)."""
        return self.plan.apply(raw, inputs)

    def recover_batch(self, raw: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        """Batched :meth:`recover` for ``(batch, cols)`` raw results.

        One vectorized integer op instead of a per-vector Python loop; row
        ``b`` is bit-identical to ``recover(raw[b], inputs[b])``.
        """
        return self.plan.apply_batch(raw, inputs)

    def ir_drop_improvement(self, matrix01: np.ndarray, parasitics, inputs: np.ndarray | None = None) -> float:
        """Ratio of worst-case IR drop before vs after remapping.

        A value greater than 1 means the remapping reduced the worst-case
        bitline drop, which is the mechanism Section 4.3 relies on.
        """
        matrix01 = np.asarray(matrix01, dtype=np.int64)
        rows = matrix01.shape[0]
        inputs = np.ones(rows) if inputs is None else np.asarray(inputs, dtype=float)
        # Effective current load per bitline is proportional to the number of
        # activated on-state devices on the positive line.  The remapping also
        # halves the programmed range ([-1, 1] -> [-0.5, 0.5]), so the
        # positive-line current is at most half of the naive mapping's.
        naive_load = (matrix01 * inputs[:, None]).sum(axis=0).max()
        positive, _ = self.remap_differential(matrix01)
        remapped_load = 0.5 * (positive * inputs[:, None]).sum(axis=0).max()
        if remapped_load == 0:
            return float("inf") if naive_load > 0 else 1.0
        return float(naive_load) / float(remapped_load)

"""Negative-number representations for analog crossbars (Section 2.2.1).

Conductance is strictly positive, so signed matrices need an encoding.  The
paper discusses two and uses differential cell pairs (Figure 3):

* **Offset subtraction** shifts every value by half the representable range
  and subtracts ``offset * sum(inputs)`` after the ADC.
* **Differential cell pairs** store the positive and negative parts of each
  value in two devices driven with opposite polarity; the bitline current is
  directly proportional to the signed result, and the representation is more
  resilient to parasitic effects (which the parasitic-compensation scheme of
  Section 4.3 relies on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import QuantizationError

__all__ = ["DifferentialPairs", "OffsetSubtraction", "EncodedMatrix"]


@dataclass(frozen=True)
class EncodedMatrix:
    """A signed integer matrix encoded for programming into crossbars.

    ``positive`` and ``negative`` are non-negative integer matrices; the
    represented value is ``positive - negative`` for differential pairs, or
    ``positive - offset`` (with ``negative`` unused and all zeros) for offset
    subtraction.
    """

    positive: np.ndarray
    negative: np.ndarray
    offset: int
    scheme: str

    @property
    def shape(self) -> Tuple[int, int]:
        """Logical matrix shape."""
        return tuple(self.positive.shape)  # type: ignore[return-value]


class DifferentialPairs:
    """Differential cell-pair encoding of signed integer matrices."""

    name = "differential"

    def __init__(self, value_bits: int = 8) -> None:
        if value_bits < 1:
            raise QuantizationError("value_bits must be >= 1")
        self.value_bits = int(value_bits)
        self.max_magnitude = 2 ** (value_bits - 1) if value_bits > 1 else 1

    def encode(self, matrix: np.ndarray) -> EncodedMatrix:
        """Split a signed matrix into positive and negative magnitude parts."""
        matrix = np.asarray(matrix)
        if not np.issubdtype(matrix.dtype, np.integer):
            raise QuantizationError("differential encoding expects integer matrices")
        if np.any(np.abs(matrix) > self.max_magnitude):
            raise QuantizationError(
                f"matrix magnitude exceeds {self.max_magnitude} for "
                f"{self.value_bits}-bit values"
            )
        positive = np.where(matrix > 0, matrix, 0).astype(np.int64)
        negative = np.where(matrix < 0, -matrix, 0).astype(np.int64)
        return EncodedMatrix(positive=positive, negative=negative, offset=0, scheme=self.name)

    def decode_partial(self, positive_sum: np.ndarray, negative_sum: np.ndarray,
                       inputs: np.ndarray) -> np.ndarray:
        """Signed partial product from the two bitline currents."""
        return np.asarray(positive_sum, dtype=float) - np.asarray(negative_sum, dtype=float)


class OffsetSubtraction:
    """Offset-subtraction encoding of signed integer matrices."""

    name = "offset"

    def __init__(self, value_bits: int = 8) -> None:
        if value_bits < 1:
            raise QuantizationError("value_bits must be >= 1")
        self.value_bits = int(value_bits)
        self.offset = 2 ** (value_bits - 1)
        self.max_magnitude = self.offset

    def encode(self, matrix: np.ndarray) -> EncodedMatrix:
        """Shift a signed matrix into the non-negative range ``[0, 2*offset]``."""
        matrix = np.asarray(matrix)
        if not np.issubdtype(matrix.dtype, np.integer):
            raise QuantizationError("offset encoding expects integer matrices")
        if np.any(np.abs(matrix) > self.max_magnitude):
            raise QuantizationError(
                f"matrix magnitude exceeds {self.max_magnitude} for "
                f"{self.value_bits}-bit values"
            )
        positive = (matrix + self.offset).astype(np.int64)
        negative = np.zeros_like(positive)
        return EncodedMatrix(positive=positive, negative=negative, offset=self.offset,
                             scheme=self.name)

    def decode_partial(self, positive_sum: np.ndarray, negative_sum: np.ndarray,
                       inputs: np.ndarray) -> np.ndarray:
        """Subtract ``offset * sum(inputs)`` from the raw bitline sums."""
        inputs = np.asarray(inputs, dtype=float)
        correction = self.offset * float(inputs.sum())
        return np.asarray(positive_sum, dtype=float) - correction

"""Analog PUM substrate: crossbar MVM, periphery, bit-slicing, compensation."""

from .ace import AceConfig, AnalogComputeElement, MatrixHandle, MvmExecution, PartialProduct
from .adc import AdcSpec, AnalogToDigitalConverter, RampAdc, SarAdc, make_adc
from .bitslicing import (
    ShiftAddPlan,
    ShiftAddStep,
    recombine,
    slice_inputs,
    slice_inputs_tensor,
    slice_matrix,
)
from .compensation import CompensationPlan, ParasiticCompensation
from .crossbar import AnalogCrossbar, CrossbarOutput
from .dac import DacSpec, DigitalToAnalogConverter
from .kernels import ShardKernel
from .numbers import DifferentialPairs, EncodedMatrix, OffsetSubtraction

__all__ = [
    "AceConfig",
    "AdcSpec",
    "AnalogComputeElement",
    "AnalogCrossbar",
    "AnalogToDigitalConverter",
    "CompensationPlan",
    "CrossbarOutput",
    "DacSpec",
    "DifferentialPairs",
    "DigitalToAnalogConverter",
    "EncodedMatrix",
    "MatrixHandle",
    "MvmExecution",
    "OffsetSubtraction",
    "ParasiticCompensation",
    "PartialProduct",
    "RampAdc",
    "SarAdc",
    "ShardKernel",
    "ShiftAddPlan",
    "ShiftAddStep",
    "make_adc",
    "recombine",
    "slice_inputs",
    "slice_inputs_tensor",
    "slice_matrix",
]

"""Vectorized bit-plane kernels for analog MVMs.

The reference interpreter of an :class:`~repro.plan.ir.MvmPlan` walks a
four-deep schedule over ``input_bit x row_tile x col_tile x weight_slice``,
issuing one tiny crossbar call per step.  That is faithful to the hardware
schedule but the interpreter overhead dwarfs the arithmetic.  This module
holds the tensor layer the
:class:`~repro.plan.backends.VectorizedExecutor` interprets the same plan
with, collapsing the schedule into a handful of NumPy contractions:

* all input bit-planes of a batch are stacked into one
  ``(input_bits, batch, rows)`` tensor (:func:`~repro.analog.bitslicing.slice_inputs_tensor`);
* the per-shard conductance slices are stacked once at programming time into
  ``(num_slices, rows, cols)`` tensors -- the **shard kernel cache** held by
  the owning :class:`~repro.analog.ace.AnalogComputeElement` and invalidated
  whenever the allocation is released or reprogrammed;
* every ``(input_bit, weight_slice)`` partial product of a shard is computed
  by one broadcast matmul, and ADC quantisation runs as a single
  element-wise pass over the stacked output tensor.

Bit-for-bit equivalence with the reference engine is a hard invariant, not
an aspiration: the stacked matmuls hand BLAS the *same* ``(batch, rows) @
(rows, cols)`` operands per step (broadcasting only moves the loop out of
Python), stochastic read noise is drawn in bulk from each crossbar's own
generator in exactly the per-step order the reference engine consumes it,
and latency/energy ledger charges are re-issued value-for-value in the
reference charge order so even the floating-point accumulation of the
:class:`~repro.metrics.CostLedger` matches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..errors import AllocationError, QuantizationError
from .bitslicing import ShiftAddPlan, slice_inputs_tensor
from .crossbar import normalised_column_sums, parasitic_signed_sums

__all__ = [
    "AceForward",
    "ShardKernel",
    "TileForward",
    "TileKernel",
    "ace_forward_vectorized",
    "analog_step_costs",
    "build_shard_kernel",
    "issue_mvm_charges",
    "validate_input_range",
]


@dataclass(frozen=True)
class TileKernel:
    """Cached tensors and geometry for one (row tile, column tile) shard."""

    row_tile: int
    col_tile: int
    row_start: int
    row_end: int
    col_offset: int
    used_rows: int
    used_cols: int
    array_ids: Tuple[int, ...]
    #: Crossbars holding this shard's weight slices, least significant first.
    crossbars: Tuple[object, ...]
    #: Stacked positive-plane conductances, shape ``(num_slices, rows, cols)``.
    pos: np.ndarray
    #: Stacked negative-plane conductances, same shape as ``pos``.
    neg: np.ndarray
    #: Weight slices recombined to signed values (``sum_s (pos_s - neg_s) <<
    #: s*bits_per_cell``), as exact float64 integers -- the operand of the
    #: proven-exact integer fast path.
    recombined: np.ndarray


@dataclass(frozen=True)
class ShardKernel:
    """The per-allocation kernel cache: stacked conductances for every shard.

    Built lazily on the first vectorized MVM against a handle and cached by
    the owning ACE (``AnalogComputeElement.kernel_for``); released together
    with the handle, so ``update_row`` / ``update_col`` -- which reprogram
    through release + set_matrix -- can never serve stale tensors.
    """

    handle_id: int
    num_slices: int
    bits_per_cell: int
    lsb_conductance: float
    g_min: float
    tiles: Tuple[TileKernel, ...]
    #: Whether the proven-exact integer fast path may serve this allocation
    #: (ideal conductances and a verified-lossless ADC; see
    #: :func:`exact_path_eligible`).
    exact: bool = False

    @property
    def num_tiles(self) -> int:
        """Number of (row tile, column tile) shards in the cache."""
        return len(self.tiles)


def exact_path_eligible(crossbars) -> bool:
    """Whether the analog chain of these crossbars is provably lossless.

    The general engine mirrors the reference float pipeline operation for
    operation.  A much faster path is valid when the quantise/recover chain
    is the identity on every partial product the schedule can produce, i.e.
    ``rint(adc.convert(v + eps)) == v`` for every reachable integer ``v``
    and any accumulated float rounding ``eps``.  That holds exactly when

    * the programmed conductances are the *ideal* value mapping (no
      programming noise, no stuck-at faults) -- checked bit-for-bit against
      the mapper, not inferred from config flags; and
    * the ADC grid is fine enough that one code step plus the worst
      boundary flip stays below half an integer (``lsb < 0.999``), verified
      by quantising every reachable integer and checking it round-trips.

    Read noise, drift, and parasitics are per-call concerns checked by the
    forward pass itself.
    """
    for crossbar in crossbars:
        adc = crossbar.adc
        if adc.lsb >= 0.999:
            return False
        ideal_pos = crossbar.mapper.value_to_conductance(crossbar.positive_levels)
        ideal_neg = crossbar.mapper.value_to_conductance(crossbar.negative_levels)
        if not np.array_equal(crossbar.positive_conductances, ideal_pos):
            return False
        if not np.array_equal(crossbar.negative_conductances, ideal_neg):
            return False
        lo = int(np.ceil(adc.min_value))
        hi = int(np.floor(adc.max_value))
        candidates = np.arange(lo, hi + 1, dtype=float)
        if not np.array_equal(np.rint(adc.convert(candidates)), candidates):
            return False
    return True


def build_shard_kernel(ace, handle) -> ShardKernel:
    """Snapshot the programmed conductances of ``handle`` into stacked tensors.

    The crossbars are walked in the allocation order of ``set_matrix``
    (row tile, then column tile, then weight slice), so ``array_ids`` of
    each tile kernel mirrors the reference engine's array grid.
    """
    rows, cols = handle.shape
    array_rows = ace.config.array_rows
    array_cols = ace.config.array_cols
    tiles: List[TileKernel] = []
    index = 0
    for row_tile in range(handle.row_tiles):
        r0 = row_tile * array_rows
        r1 = min(rows, r0 + array_rows)
        for col_tile in range(handle.col_tiles):
            c0 = col_tile * array_cols
            ids = handle.array_ids[index: index + handle.num_slices]
            index += handle.num_slices
            crossbars = tuple(ace.crossbar(array_id) for array_id in ids)
            pos = np.stack([xb.positive_conductances for xb in crossbars])
            neg = np.stack([xb.negative_conductances for xb in crossbars])
            used_rows, used_cols = crossbars[0].programmed_shape
            shifts = (
                np.arange(handle.num_slices, dtype=np.int64)
                * handle.bits_per_cell
            )
            levels = np.stack(
                [
                    xb.positive_levels.astype(np.int64)
                    - xb.negative_levels.astype(np.int64)
                    for xb in crossbars
                ]
            )
            recombined = (levels << shifts[:, None, None]).sum(axis=0).astype(float)
            tiles.append(
                TileKernel(
                    row_tile=row_tile,
                    col_tile=col_tile,
                    row_start=r0,
                    row_end=r1,
                    col_offset=c0,
                    used_rows=used_rows,
                    used_cols=used_cols,
                    array_ids=ids,
                    crossbars=crossbars,
                    pos=pos,
                    neg=neg,
                    recombined=recombined,
                )
            )
    sample = tiles[0].crossbars[0]
    return ShardKernel(
        handle_id=handle.handle_id,
        num_slices=handle.num_slices,
        bits_per_cell=handle.bits_per_cell,
        lsb_conductance=sample.mapper.lsb_conductance(),
        g_min=ace.device.g_min,
        tiles=tuple(tiles),
        exact=all(exact_path_eligible(tile.crossbars) for tile in tiles),
    )


@dataclass(frozen=True)
class TileForward:
    """Post-ADC partial products of one shard for a whole batched MVM.

    Exactly one of ``codes`` / ``totals`` is set: the general engine carries
    the full post-ADC tensor, while the proven-exact integer path collapses
    the shift-and-add over input bits and weight slices up front.
    """

    kernel: TileKernel
    #: ADC output values, shape ``(num_slices, input_bits, batch, used_cols)``.
    codes: Optional[np.ndarray] = None
    #: Pre-summed shifted partial products, shape ``(batch, used_cols)``.
    totals: Optional[np.ndarray] = None


@dataclass
class AceForward:
    """Everything the digital side needs after a vectorized analog pass."""

    handle: object
    batch: int
    input_bits: int
    plan: ShiftAddPlan
    tiles: List[TileForward]
    analog_cycles: float = 0.0
    analog_energy_pj: float = 0.0

    @property
    def num_partials(self) -> int:
        """Partial products the reference engine would have produced."""
        return self.plan.num_partial_products * self.handle.row_tiles * self.handle.col_tiles

    def tile_totals(self, tile: TileForward) -> np.ndarray:
        """Shift-and-add sum of one shard's partial products, pre-truncation.

        For the general engine this applies the same ``rint -> int64 ->
        << shift -> accumulate`` sequence the shift units and DCE perform,
        vectorized over the whole ``(num_slices, input_bits)`` plane; the
        exact path already carries the sum.
        """
        if tile.totals is not None:
            return tile.totals
        shifts = (
            np.arange(self.input_bits, dtype=np.int64)[None, :]
            + np.arange(self.plan.weight_slices, dtype=np.int64)[:, None]
            * self.plan.bits_per_cell
        )
        codes = np.rint(tile.codes).astype(np.int64)
        return (codes << shifts[:, :, None, None]).sum(axis=(0, 1))

    def raw_reduce(self) -> np.ndarray:
        """Shift-and-add reduction without DCE truncation (``reduce()`` parity)."""
        rows, cols = self.handle.shape
        result = np.zeros((self.batch, cols), dtype=np.int64)
        for tile in self.tiles:
            kernel = tile.kernel
            result[:, kernel.col_offset: kernel.col_offset + kernel.used_cols] += (
                self.tile_totals(tile)
            )
        return result


def validate_input_range(vectors: np.ndarray, input_bits: int) -> None:
    """Range checks of ``slice_inputs_tensor`` without building bit planes.

    The exact integer path (and the cost-only backend) never materialise
    the bit-plane tensor, but they must reject invalid inputs with the same
    errors the general path (and the reference interpreter's
    ``slice_inputs``) raises.
    """
    if not np.issubdtype(vectors.dtype, np.integer):
        raise QuantizationError("input bit-slicing expects an integer vector")
    if np.any(vectors < 0):
        raise QuantizationError("input bit-slicing expects non-negative inputs")
    if np.any(vectors >= (1 << input_bits)):
        raise QuantizationError(f"input values exceed {input_bits} bits")


def _tile_codes(
    ace,
    kernel: ShardKernel,
    tile: TileKernel,
    bit_planes: np.ndarray,
    input_bits: int,
) -> np.ndarray:
    """ADC output values of one shard, shape ``(slices, input_bits, batch, cols)``."""
    bits_int = np.ascontiguousarray(bit_planes[:, :, tile.row_start: tile.row_end])
    x = bits_int.astype(float)
    lsb = kernel.lsb_conductance
    baseline = kernel.g_min * x.sum(axis=2)  # (input_bits, batch)
    adc = tile.crossbars[0].adc

    read_active = tile.crossbars[0].noise.read_noise_active
    parasitics = ace.parasitics

    if not read_active and parasitics is None:
        # Fast path: one broadcast matmul per conductance plane.  Each
        # (slice, input bit) pair is the same (batch, rows) @ (rows, cols)
        # product the reference engine issues, so BLAS sees identical
        # operands and the outputs match bit for bit.
        stacked_baseline = baseline[..., None]
        signed = normalised_column_sums(
            x[None, :, :, :], tile.pos[:, None, :, :], stacked_baseline, lsb
        ) - normalised_column_sums(
            x[None, :, :, :], tile.neg[:, None, :, :], stacked_baseline, lsb
        )
        return adc.convert(signed)

    batch = x.shape[1]
    signed = np.empty(
        (kernel.num_slices, input_bits, batch, tile.used_cols), dtype=float
    )
    for slice_index, crossbar in enumerate(tile.crossbars):
        # One bulk draw per crossbar reproduces the reference engine's
        # per-step consumption of that crossbar's private generator:
        # (positive plane, negative plane) per input bit, in bit order.
        pos_planes, neg_planes = crossbar.noise.read_pair_bulk(
            tile.pos[slice_index], tile.neg[slice_index], input_bits
        )
        if parasitics is None:
            stacked_baseline = baseline[..., None]
            signed[slice_index] = normalised_column_sums(
                x, pos_planes, stacked_baseline, lsb
            ) - normalised_column_sums(x, neg_planes, stacked_baseline, lsb)
        else:
            for bit in range(input_bits):
                signed[slice_index, bit] = parasitic_signed_sums(
                    parasitics, x[bit], bits_int[bit],
                    pos_planes[bit], neg_planes[bit],
                    baseline[bit][:, None], lsb,
                )
    return adc.convert(signed)


def analog_step_costs(
    kernel: ShardKernel,
    batch: int,
    input_bits: int,
    active_adc_bits: Optional[int] = None,
) -> List[Tuple[float, float]]:
    """Per-shard ``(cycles, energy_pj)`` of one analog macro-step of a batch.

    The analytic counterpart of the reference interpreter's per-step
    crossbar charges, shared by the vectorized and cost-only backends.
    Also advances each crossbar's ``mvm_count`` statistic exactly as the
    per-step path would.
    """
    step_costs: List[Tuple[float, float]] = []
    for tile in kernel.tiles:
        sample = tile.crossbars[0]
        adc_latency, adc_energy = sample.adc.conversion_costs(
            tile.used_cols, sample.num_adcs, active_adc_bits
        )
        latency = sample.dac.drive_latency(tile.used_rows) + 1.0 + adc_latency
        energy = (
            sample.dac.drive_energy_pj(tile.used_rows)
            + sample.row_periphery_power_mw * 1.0
            + tile.used_cols * sample.sample_hold_energy_pj
            + adc_energy
        )
        step_costs.append((batch * latency, batch * energy))
        for crossbar in tile.crossbars:
            crossbar.mvm_count += input_bits * batch
    return step_costs


def issue_mvm_charges(
    ledger,
    input_bits: int,
    num_slices: int,
    step_costs: List[Tuple[float, float]],
) -> None:
    """Re-issue the reference interpreter's ``ace.mvm`` charge stream.

    One charge per (input bit, shard, slice) step, input bits outermost, so
    the floating-point accumulation inside the ledger is reproduced exactly
    value for value.
    """
    charge = ledger.charge
    for _ in range(input_bits):
        for cycles, energy_pj in step_costs:
            for _ in range(num_slices):
                charge("ace.mvm", cycles=cycles, energy_pj=energy_pj)


def ace_forward_vectorized(
    ace,
    plan,
    vectors: np.ndarray,
    active_adc_bits: Optional[int] = None,
) -> AceForward:
    """Vectorized interpretation of one :class:`~repro.plan.ir.MvmPlan`.

    Computes every post-ADC partial product of the batch with stacked tensor
    ops over the plan's shard kernel and re-issues the reference
    interpreter's ``ace.mvm`` ledger charges analytically (same values, same
    order), so results, cycle totals, and energy totals are bit-identical to
    the per-step schedule walk.
    """
    if not ace.enabled:
        raise AllocationError("the ACE of this tile has been disabled")
    handle = plan.handle
    input_bits = plan.input_bits
    vectors = np.atleast_2d(np.asarray(vectors, dtype=np.int64))
    rows, cols = handle.shape
    if vectors.shape[1] != rows:
        raise QuantizationError(
            f"input batch of shape {vectors.shape} does not match matrix rows ({rows})"
        )
    batch = vectors.shape[0]
    kernel = plan.kernel
    exact = (
        kernel.exact
        and ace.parasitics is None
        and not kernel.tiles[0].crossbars[0].noise.read_noise_active
    )
    if exact:
        validate_input_range(vectors, input_bits)
        # int64 -> float64 is exact for every representable input; writing
        # into the ACE's per-shape scratch block instead of astype() keeps
        # the steady-state serving path allocation-free.
        vectors_float = ace.float_scratch(batch, rows)
        np.copyto(vectors_float, vectors)
    else:
        bit_planes = slice_inputs_tensor(
            vectors, input_bits, out=ace.bitplane_scratch(input_bits, batch, rows)
        )

    start = ace.ledger.snapshot()
    forward = AceForward(
        handle=handle, batch=batch, input_bits=input_bits, plan=plan.shift_add, tiles=[]
    )
    for tile in kernel.tiles:
        if exact:
            # Proven-exact fast path: with ideal conductances and a
            # verified-lossless ADC, every (input bit, slice) partial
            # product survives the quantise/recover chain exactly, so the
            # whole bit-plane schedule collapses into one exact-integer
            # matmul against the recombined weight slices (all values stay
            # far below 2**53, so float64 arithmetic is exact).
            totals = (
                vectors_float[:, tile.row_start: tile.row_end] @ tile.recombined
            ).astype(np.int64)
            forward.tiles.append(TileForward(kernel=tile, totals=totals))
        else:
            forward.tiles.append(
                TileForward(
                    kernel=tile,
                    codes=_tile_codes(ace, kernel, tile, bit_planes, input_bits),
                )
            )
    step_costs = analog_step_costs(kernel, batch, input_bits, active_adc_bits)
    issue_mvm_charges(ace.ledger, input_bits, kernel.num_slices, step_costs)
    end = ace.ledger.snapshot()
    forward.analog_cycles = end.cycles - start.cycles
    forward.analog_energy_pj = end.energy_pj - start.energy_pj
    return forward

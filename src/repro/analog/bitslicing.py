"""Weight and input bit-slicing for analog MVM (Section 2.2.1, Figure 2).

Analog devices reliably hold only a few bits, so an ``N``-bit matrix value
is *bit-sliced* into ``ceil(N / M)`` chunks of ``M`` bits, each programmed
into a different array.  Inputs are likewise applied one bit at a time to
avoid wide DACs.  Every (input bit, weight slice) pair produces a partial
product that must be shifted by ``input_bit + M * slice_index`` positions and
accumulated -- exactly the long-multiplication recombination the DCE (and
DARTH-PUM's shift units) perform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import QuantizationError

__all__ = [
    "slice_matrix",
    "slice_inputs",
    "slice_inputs_tensor",
    "recombine",
    "ShiftAddStep",
    "ShiftAddPlan",
]


def slice_matrix(matrix: np.ndarray, value_bits: int, bits_per_cell: int) -> List[np.ndarray]:
    """Split a non-negative integer matrix into per-cell bit slices.

    Slice ``s`` holds bits ``[s*bits_per_cell, (s+1)*bits_per_cell)`` of each
    value; slices are ordered from least to most significant.
    """
    matrix = np.asarray(matrix)
    if not np.issubdtype(matrix.dtype, np.integer):
        raise QuantizationError("bit-slicing expects an integer matrix")
    if np.any(matrix < 0):
        raise QuantizationError("bit-slicing expects a non-negative matrix; encode sign first")
    if value_bits < 1 or bits_per_cell < 1:
        raise QuantizationError("value_bits and bits_per_cell must be >= 1")
    if np.any(matrix >= (1 << value_bits)):
        raise QuantizationError(f"matrix values exceed {value_bits} bits")
    num_slices = int(np.ceil(value_bits / bits_per_cell))
    mask = (1 << bits_per_cell) - 1
    return [((matrix >> (s * bits_per_cell)) & mask).astype(np.int64) for s in range(num_slices)]


def slice_inputs(vector: np.ndarray, input_bits: int) -> List[np.ndarray]:
    """Split a non-negative integer input vector into one-bit slices.

    Bit ``i`` of every element forms slice ``i`` (least significant first).
    """
    vector = np.asarray(vector)
    if not np.issubdtype(vector.dtype, np.integer):
        raise QuantizationError("input bit-slicing expects an integer vector")
    if np.any(vector < 0):
        raise QuantizationError("input bit-slicing expects non-negative inputs")
    if np.any(vector >= (1 << input_bits)):
        raise QuantizationError(f"input values exceed {input_bits} bits")
    return [((vector >> i) & 1).astype(np.int64) for i in range(input_bits)]


def slice_inputs_tensor(
    vectors: np.ndarray, input_bits: int, out: "np.ndarray | None" = None
) -> np.ndarray:
    """Bit-slice a whole batch of input vectors into one stacked tensor.

    ``vectors`` has shape ``(batch, rows)``; the result has shape
    ``(input_bits, batch, rows)`` with plane ``i`` holding bit ``i`` of every
    element (least significant first).  Plane ``i`` is bit-identical to
    ``slice_inputs(vectors, input_bits)[i]``; the stacked form is what the
    vectorized execution engine feeds to its per-shard tensor contractions.

    ``out``, when given, must be an int64 array of exactly that shape; the
    planes are written into it and it is returned.  The serving hot path
    passes a per-ACE scratch tensor here so a steady stream of same-shaped
    batches performs zero per-batch allocations of the bit-plane tensor.
    """
    vectors = np.asarray(vectors)
    if not np.issubdtype(vectors.dtype, np.integer):
        raise QuantizationError("input bit-slicing expects an integer vector")
    if np.any(vectors < 0):
        raise QuantizationError("input bit-slicing expects non-negative inputs")
    if np.any(vectors >= (1 << input_bits)):
        raise QuantizationError(f"input values exceed {input_bits} bits")
    planes = np.arange(input_bits, dtype=np.int64).reshape(-1, 1, 1)
    if out is None:
        return ((vectors[None, :, :] >> planes) & 1).astype(np.int64)
    expected = (input_bits,) + vectors.shape
    if out.shape != expected or out.dtype != np.int64:
        raise QuantizationError(
            f"slice_inputs_tensor out= must be int64 of shape {expected} "
            f"(got {out.dtype} {out.shape})"
        )
    np.right_shift(vectors[None, :, :], planes, out=out)
    np.bitwise_and(out, 1, out=out)
    return out


def recombine(partials: Sequence[np.ndarray], shifts: Sequence[int]) -> np.ndarray:
    """Shift-and-add recombination of partial products (long multiplication)."""
    if len(partials) != len(shifts):
        raise ValueError("partials and shifts must have the same length")
    if not partials:
        raise ValueError("recombine() needs at least one partial product")
    total = np.zeros_like(np.asarray(partials[0], dtype=np.int64))
    for partial, shift in zip(partials, shifts):
        total = total + (np.asarray(partial, dtype=np.int64) << int(shift))
    return total


@dataclass(frozen=True)
class ShiftAddStep:
    """One step of the reduction sequence executed after an analog MVM."""

    input_bit: int
    weight_slice: int
    shift: int


@dataclass(frozen=True)
class ShiftAddPlan:
    """The full shift-and-add plan for a bit-sliced MVM.

    The instruction injection unit (Section 4.2) stores exactly this
    information -- a fixed table of shifts plus a counter -- so the front end
    does not have to issue the hundreds of µops of the reduction itself.
    """

    input_bits: int
    weight_slices: int
    bits_per_cell: int

    @property
    def steps(self) -> Tuple[ShiftAddStep, ...]:
        """All (input bit, weight slice) steps in issue order."""
        result = []
        for input_bit in range(self.input_bits):
            for weight_slice in range(self.weight_slices):
                result.append(
                    ShiftAddStep(
                        input_bit=input_bit,
                        weight_slice=weight_slice,
                        shift=input_bit + weight_slice * self.bits_per_cell,
                    )
                )
        return tuple(result)

    @property
    def num_partial_products(self) -> int:
        """Number of partial products the plan reduces."""
        return self.input_bits * self.weight_slices

    @property
    def max_shift(self) -> int:
        """Largest shift applied by any step."""
        return (self.input_bits - 1) + (self.weight_slices - 1) * self.bits_per_cell

    def temporaries_needed(self) -> int:
        """Upper bound on temporary vector registers the reduction may need
        (Section 4.2: up to N for an N-bit input)."""
        return self.input_bits

"""A single analog ReRAM crossbar performing in-array MVM (Figure 1).

The crossbar stores one weight *bit slice* per device column pair (when a
differential encoding is used) and executes one-bit-input MVMs: the input
bit vector is applied to the wordlines, Ohm's law multiplies each bit by its
device conductance, and Kirchhoff's current law sums the currents down every
bitline.  The resulting column currents are normalised by the LSB
conductance (value domain) and digitised by an ADC model.

The functional path is exact in the absence of noise: programming the slice
``W`` and applying input bits ``x`` returns ``x @ W`` once quantised by an
ADC whose range covers the possible sums.  Enabling the noise stack and the
parasitic model perturbs the conductances exactly the way the paper's
CrossSim+MILO methodology does, which is what the accuracy experiments
(Section 7.5) and the parasitic-compensation scheme (Section 4.3) exercise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import CapacityError, DeviceError
from ..metrics import CostLedger
from ..reram import ConductanceMapper, DeviceParameters, NoiseConfig, NoiseStack, ParasiticModel
from .adc import AnalogToDigitalConverter, SarAdc
from .dac import DigitalToAnalogConverter

__all__ = [
    "AnalogCrossbar",
    "CrossbarOutput",
    "normalised_column_sums",
    "parasitic_signed_sums",
]


def normalised_column_sums(x, conductances, baseline, lsb):
    """Column currents normalised to the value domain: ``(x @ g - b) / lsb``.

    The Ohm/Kirchhoff current sum shared by every execution engine -- the
    crossbar's looped reference path and the vectorized kernel layer both
    compute signed column sums through this one expression, so the float
    pipeline cannot drift between them.  Broadcasts over any leading stack
    dimensions of ``x`` / ``conductances`` (NumPy dispatches the same 2-D
    products either way).
    """
    return (np.matmul(x, conductances) - baseline) / lsb


def parasitic_signed_sums(parasitics, x, input_bits_matrix, pos_g, neg_g, baseline, lsb):
    """Signed value-domain sums of one binary input batch under IR drop.

    ``input_bits_matrix`` is the raw ``(batch, rows)`` 0/1 matrix (the
    parasitic solve is input-dependent), ``x`` its float view.  Single
    source of truth for the parasitic branch of both execution engines.
    """
    p_eff = parasitics.apply_batch(pos_g, input_bits_matrix)
    n_eff = parasitics.apply_batch(neg_g, input_bits_matrix)
    pos_sum = (np.matmul(x[:, None, :], p_eff)[:, 0, :] - baseline) / lsb
    neg_sum = (np.matmul(x[:, None, :], n_eff)[:, 0, :] - baseline) / lsb
    return pos_sum - neg_sum


@dataclass(frozen=True)
class CrossbarOutput:
    """Result of one one-bit-input MVM over a crossbar.

    Attributes
    ----------
    values:
        Signed partial products per bitline (value domain, post-ADC).
    latency_cycles:
        Cycles spent driving, settling, and converting.
    energy_pj:
        Energy spent in the array, periphery, and ADC.
    """

    values: np.ndarray
    latency_cycles: float
    energy_pj: float


class AnalogCrossbar:
    """A ``rows x cols`` multi-level-cell analog crossbar with periphery."""

    def __init__(
        self,
        rows: int = 64,
        cols: int = 64,
        bits_per_cell: int = 1,
        device: Optional[DeviceParameters] = None,
        noise: Optional[NoiseConfig] = None,
        parasitics: Optional[ParasiticModel] = None,
        adc: Optional[AnalogToDigitalConverter] = None,
        num_adcs: int = 2,
        dac: Optional[DigitalToAnalogConverter] = None,
        ledger: Optional[CostLedger] = None,
        row_periphery_power_mw: float = 0.7,
        sample_hold_energy_pj: float = 2.1e-5,
    ) -> None:
        self.rows = int(rows)
        self.cols = int(cols)
        self.bits_per_cell = int(bits_per_cell)
        self.device = device if device is not None else DeviceParameters()
        self.noise = NoiseStack(self.device, noise if noise is not None else NoiseConfig.ideal())
        self.parasitics = parasitics
        self.mapper = ConductanceMapper(self.device, self.bits_per_cell)
        max_sum = self.rows * (2 ** self.bits_per_cell - 1)
        self.adc = adc if adc is not None else SarAdc(min_value=-max_sum, max_value=max_sum)
        self.num_adcs = int(num_adcs)
        self.dac = dac if dac is not None else DigitalToAnalogConverter()
        self.ledger = ledger if ledger is not None else CostLedger()
        self.row_periphery_power_mw = row_periphery_power_mw
        self.sample_hold_energy_pj = sample_hold_energy_pj

        self._positive_levels: Optional[np.ndarray] = None
        self._negative_levels: Optional[np.ndarray] = None
        self._positive_g: Optional[np.ndarray] = None
        self._negative_g: Optional[np.ndarray] = None
        #: Number of MVM operations executed (utilisation statistics).
        self.mvm_count = 0

    # ------------------------------------------------------------------ #
    # Programming                                                          #
    # ------------------------------------------------------------------ #
    @property
    def is_programmed(self) -> bool:
        """Whether a matrix slice has been written into the array."""
        return self._positive_g is not None

    def program(self, levels: np.ndarray) -> None:
        """Program a non-negative integer slice into the positive devices only."""
        zeros = np.zeros_like(np.asarray(levels, dtype=np.int64))
        self.program_differential(levels, zeros)

    def program_differential(self, positive: np.ndarray, negative: np.ndarray) -> None:
        """Program positive and negative device planes (differential pairs)."""
        positive = np.asarray(positive, dtype=np.int64)
        negative = np.asarray(negative, dtype=np.int64)
        if positive.shape != negative.shape:
            raise DeviceError("positive and negative slices must have the same shape")
        if positive.shape[0] > self.rows or positive.shape[1] > self.cols:
            raise CapacityError(
                f"slice of shape {positive.shape} does not fit a "
                f"{self.rows}x{self.cols} crossbar"
            )
        self._positive_levels = positive
        self._negative_levels = negative
        ideal_pos = self.mapper.value_to_conductance(positive)
        ideal_neg = self.mapper.value_to_conductance(negative)
        self._positive_g = self.noise.program(ideal_pos)
        self._negative_g = self.noise.program(ideal_neg)
        cells = 2 * positive.size
        self.ledger.charge(
            "ace.program",
            cycles=self.device.program_latency_cycles,
            energy_pj=cells * self.device.program_energy_pj,
        )

    @property
    def programmed_shape(self) -> tuple:
        """Shape of the currently programmed slice."""
        if self._positive_levels is None:
            raise DeviceError("crossbar has not been programmed")
        return self._positive_levels.shape

    @property
    def positive_levels(self) -> np.ndarray:
        """Programmed positive-plane integer levels (pre conductance mapping)."""
        if self._positive_levels is None:
            raise DeviceError("crossbar has not been programmed")
        return self._positive_levels

    @property
    def negative_levels(self) -> np.ndarray:
        """Programmed negative-plane integer levels (pre conductance mapping)."""
        if self._negative_levels is None:
            raise DeviceError("crossbar has not been programmed")
        return self._negative_levels

    @property
    def positive_conductances(self) -> np.ndarray:
        """Programmed positive-plane conductances (post write-verify noise).

        These are the frozen post-programming values; read-time error
        sources (read noise, drift) are applied on top of them per MVM.
        The vectorized execution engine snapshots them into its per-shard
        kernel cache.
        """
        if self._positive_g is None:
            raise DeviceError("crossbar has not been programmed")
        return self._positive_g

    @property
    def negative_conductances(self) -> np.ndarray:
        """Programmed negative-plane conductances (post write-verify noise)."""
        if self._negative_g is None:
            raise DeviceError("crossbar has not been programmed")
        return self._negative_g

    # ------------------------------------------------------------------ #
    # One-bit-input MVM                                                    #
    # ------------------------------------------------------------------ #
    def mvm_1bit(self, input_bits: np.ndarray, active_adc_bits: Optional[int] = None) -> CrossbarOutput:
        """Apply a binary input vector to the wordlines and digitise the columns.

        Parameters
        ----------
        input_bits:
            0/1 vector of length ``programmed rows``.
        active_adc_bits:
            Optional early-termination hint forwarded to ramp ADCs.
        """
        if self._positive_g is None or self._negative_g is None:
            raise DeviceError("crossbar has not been programmed")
        input_bits = np.asarray(input_bits, dtype=np.int64)
        used_rows, used_cols = self._positive_levels.shape  # type: ignore[union-attr]
        if input_bits.shape != (used_rows,):
            raise DeviceError(
                f"input vector of shape {input_bits.shape} does not match the "
                f"programmed slice rows ({used_rows})"
            )
        if np.any((input_bits != 0) & (input_bits != 1)):
            raise DeviceError("mvm_1bit expects a binary input vector")

        pos_g = self.noise.read(self._positive_g)
        neg_g = self.noise.read(self._negative_g)
        if self.parasitics is not None:
            pos_g = self.parasitics.apply(pos_g, input_bits)
            neg_g = self.parasitics.apply(neg_g, input_bits)

        x = input_bits.astype(float)
        lsb = self.mapper.lsb_conductance()
        # Column currents, normalised to the value domain: subtract the
        # baseline current contributed by g_min on every activated device.
        baseline = self.device.g_min * x.sum()
        pos_sum = (x @ pos_g - baseline) / lsb
        neg_sum = (x @ neg_g - baseline) / lsb
        signed = pos_sum - neg_sum
        quantised = self.adc.convert(signed)

        latency = (
            self.dac.drive_latency(used_rows)
            + 1.0  # array settling / sample-and-hold
            + self.adc.conversion_latency(used_cols, self.num_adcs, active_adc_bits)
        )
        energy = (
            self.dac.drive_energy_pj(used_rows)
            + self.row_periphery_power_mw * 1.0
            + used_cols * self.sample_hold_energy_pj
            + self.adc.conversion_energy_pj(used_cols, active_adc_bits)
        )
        self.ledger.charge("ace.mvm", cycles=latency, energy_pj=energy)
        self.mvm_count += 1
        return CrossbarOutput(values=quantised, latency_cycles=latency, energy_pj=energy)

    def mvm_batch(
        self, input_bit_matrix: np.ndarray, active_adc_bits: Optional[int] = None
    ) -> CrossbarOutput:
        """Apply a batch of binary input vectors in one vectorised pass.

        Functionally equivalent to calling :meth:`mvm_1bit` once per row of
        ``input_bit_matrix`` (shape ``(batch, programmed rows)``), but the
        column currents of the whole batch are computed with a single matrix
        multiply and digitised together, which is what makes the batched
        execution engine fast on the host.  The returned ``values`` has shape
        ``(batch, cols)``; latency and energy are charged for all ``batch``
        sequential hardware MVMs at once.

        With read noise enabled, one conductance sample is drawn per batched
        call (the whole batch sees the same read perturbation), whereas
        ``mvm_1bit`` re-draws per vector.  In the noise-free configuration
        the results are bit-identical to the single-vector path.
        """
        if self._positive_g is None or self._negative_g is None:
            raise DeviceError("crossbar has not been programmed")
        input_bit_matrix = np.atleast_2d(np.asarray(input_bit_matrix, dtype=np.int64))
        batch = input_bit_matrix.shape[0]
        used_rows, used_cols = self._positive_levels.shape  # type: ignore[union-attr]
        if input_bit_matrix.shape[1] != used_rows:
            raise DeviceError(
                f"input batch of shape {input_bit_matrix.shape} does not match the "
                f"programmed slice rows ({used_rows})"
            )
        if np.any((input_bit_matrix != 0) & (input_bit_matrix != 1)):
            raise DeviceError("mvm_batch expects binary input vectors")

        pos_g = self.noise.read(self._positive_g)
        neg_g = self.noise.read(self._negative_g)
        x = input_bit_matrix.astype(float)
        lsb = self.mapper.lsb_conductance()
        baseline = self.device.g_min * x.sum(axis=1, keepdims=True)
        if self.parasitics is not None:
            # IR drop depends on the individual input pattern, but the
            # parasitic network solve is element-wise per vector, so the
            # whole batch runs through one stacked attenuation + matmul pass
            # (bit-identical to solving vector by vector).
            signed = parasitic_signed_sums(
                self.parasitics, x, input_bit_matrix, pos_g, neg_g, baseline, lsb
            )
        else:
            signed = normalised_column_sums(
                x, pos_g, baseline, lsb
            ) - normalised_column_sums(x, neg_g, baseline, lsb)
        quantised = self.adc.convert(signed)

        per_vector_latency = (
            self.dac.drive_latency(used_rows)
            + 1.0
            + self.adc.conversion_latency(used_cols, self.num_adcs, active_adc_bits)
        )
        per_vector_energy = (
            self.dac.drive_energy_pj(used_rows)
            + self.row_periphery_power_mw * 1.0
            + used_cols * self.sample_hold_energy_pj
            + self.adc.conversion_energy_pj(used_cols, active_adc_bits)
        )
        latency = batch * per_vector_latency
        energy = batch * per_vector_energy
        self.ledger.charge("ace.mvm", cycles=latency, energy_pj=energy)
        self.mvm_count += batch
        return CrossbarOutput(values=quantised, latency_cycles=latency, energy_pj=energy)

    def expected_1bit(self, input_bits: np.ndarray) -> np.ndarray:
        """Noise-free reference result for ``mvm_1bit`` (used in tests)."""
        if self._positive_levels is None or self._negative_levels is None:
            raise DeviceError("crossbar has not been programmed")
        x = np.asarray(input_bits, dtype=np.int64)
        return x @ (self._positive_levels - self._negative_levels)

"""The Analog Compute Element (ACE) of a hybrid compute tile.

An ACE bundles 64 analog crossbars with their input buffers, wordline
drivers, and ADCs (Table 2).  Matrices are programmed once -- tiled over
arrays by rows, columns, and weight bit slices -- and then reused by many
MVMs, because programming multi-bit analog devices is slow and energetic
(Section 4.1).  ``execute_mvm`` applies the input one bit per cycle and
emits the stream of per-bit partial products that the hybrid compute tile
forwards (through its shift units) to the digital compute element for
reduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import AllocationError, CapacityError, QuantizationError
from ..metrics import CostLedger
from ..reram import DeviceParameters, NoiseConfig, ParasiticModel
from .adc import AdcSpec, AnalogToDigitalConverter, make_adc
from .bitslicing import ShiftAddPlan, slice_inputs, slice_matrix
from .crossbar import AnalogCrossbar
from .dac import DigitalToAnalogConverter
from .kernels import ShardKernel, build_shard_kernel
from .numbers import DifferentialPairs, OffsetSubtraction

__all__ = [
    "AceConfig",
    "AnalogComputeElement",
    "BatchMvmExecution",
    "BatchPartialProduct",
    "MatrixHandle",
    "MvmExecution",
    "PartialProduct",
]


@dataclass(frozen=True)
class AceConfig:
    """Geometry and periphery of an analog compute element (Table 2)."""

    num_arrays: int = 64
    array_rows: int = 64
    array_cols: int = 64
    adc_kind: str = "sar"
    #: ADCs per active array: 2 SAR or 1 ramp (Table 2).
    adcs_per_array: int = 2
    row_periphery_power_mw: float = 0.7
    input_buffer_area_um2: float = 27000.0

    @property
    def adc_latency_label(self) -> str:
        """Human-readable ADC configuration label."""
        return f"{self.adc_kind.upper()} x{self.adcs_per_array}"


@dataclass(frozen=True)
class MatrixHandle:
    """A matrix programmed into one or more analog arrays."""

    handle_id: int
    shape: Tuple[int, int]
    value_bits: int
    bits_per_cell: int
    signed: bool
    representation: str
    row_tiles: int
    col_tiles: int
    num_slices: int
    array_ids: Tuple[int, ...]

    @property
    def arrays_used(self) -> int:
        """Number of analog arrays occupied by this matrix."""
        return len(self.array_ids)


@dataclass(frozen=True)
class PartialProduct:
    """One ADC output vector produced during a bit-sliced MVM."""

    values: np.ndarray
    shift: int
    input_bit: int
    weight_slice: int
    row_tile: int
    col_tile: int
    col_offset: int


@dataclass
class MvmExecution:
    """The full partial-product stream and cost of one analog MVM."""

    handle: MatrixHandle
    partials: List[PartialProduct] = field(default_factory=list)
    plan: Optional[ShiftAddPlan] = None
    analog_cycles: float = 0.0
    analog_energy_pj: float = 0.0

    def reduce(self) -> np.ndarray:
        """Functionally reduce the partial products (reference reduction).

        On hardware this reduction is what the DCE performs; the method is
        used by tests and by the runtime's ``disableDigitalMode`` path.
        """
        rows, cols = self.handle.shape
        result = np.zeros(cols, dtype=np.int64)
        for partial in self.partials:
            width = partial.values.shape[0]
            segment = np.rint(partial.values).astype(np.int64) << partial.shift
            result[partial.col_offset: partial.col_offset + width] += segment
        return result


@dataclass(frozen=True)
class BatchPartialProduct:
    """One ADC output *matrix* produced during a batched bit-sliced MVM.

    Identical to :class:`PartialProduct` except that ``values`` holds the
    partial products of the whole batch, one row per input vector
    (shape ``(batch, tile_cols)``).
    """

    values: np.ndarray
    shift: int
    input_bit: int
    weight_slice: int
    row_tile: int
    col_tile: int
    col_offset: int


@dataclass
class BatchMvmExecution:
    """The partial-product stream and cost of one batched analog MVM."""

    handle: MatrixHandle
    batch: int
    partials: List[BatchPartialProduct] = field(default_factory=list)
    plan: Optional[ShiftAddPlan] = None
    analog_cycles: float = 0.0
    analog_energy_pj: float = 0.0

    def reduce(self) -> np.ndarray:
        """Vectorised shift-and-add reduction of the whole batch.

        Returns an ``(batch, cols)`` integer matrix; this is the reference
        reduction the DCE performs in hardware.
        """
        rows, cols = self.handle.shape
        result = np.zeros((self.batch, cols), dtype=np.int64)
        for partial in self.partials:
            width = partial.values.shape[1]
            segment = np.rint(partial.values).astype(np.int64) << partial.shift
            result[:, partial.col_offset: partial.col_offset + width] += segment
        return result


class AnalogComputeElement:
    """64 analog crossbars plus the shared periphery of one HCT."""

    def __init__(
        self,
        config: Optional[AceConfig] = None,
        device: Optional[DeviceParameters] = None,
        noise: Optional[NoiseConfig] = None,
        parasitics: Optional[ParasiticModel] = None,
        adc_spec: Optional[AdcSpec] = None,
        ledger: Optional[CostLedger] = None,
    ) -> None:
        self.config = config if config is not None else AceConfig()
        self.device = device if device is not None else DeviceParameters()
        self.noise_config = noise if noise is not None else NoiseConfig.ideal()
        self.parasitics = parasitics
        self.adc_spec = adc_spec
        self.ledger = ledger if ledger is not None else CostLedger()
        self._crossbars: Dict[int, AnalogCrossbar] = {}
        self._free_arrays = list(range(self.config.num_arrays))
        self._handles: Dict[int, MatrixHandle] = {}
        self._matrices: Dict[int, np.ndarray] = {}
        self._kernels: Dict[int, ShardKernel] = {}
        #: Compiled execution plans, keyed ``(handle_id, input_bits)`` and
        #: populated by the owning tile's :class:`~repro.plan.planner.Planner`;
        #: invalidated together with the shard-kernel cache.
        self._plans: Dict[Tuple[int, int], object] = {}
        #: Reusable per-shape scratch tensors for the vectorized forward
        #: pass (bit-plane stacks and float input blocks).  Keyed purely by
        #: shape -- contents are fully overwritten on every use -- so no
        #: invalidation is needed on release/reprogram.
        self._scratch: Dict[Tuple, np.ndarray] = {}
        self._next_handle = 0
        self.enabled = True

    # ------------------------------------------------------------------ #
    # Array / ADC management                                               #
    # ------------------------------------------------------------------ #
    @property
    def arrays_free(self) -> int:
        """Number of analog arrays not yet allocated to a matrix."""
        return len(self._free_arrays)

    @property
    def arrays_used(self) -> int:
        """Number of analog arrays currently holding matrix slices."""
        return self.config.num_arrays - len(self._free_arrays)

    def _make_adc(self, bits_per_cell: int) -> AnalogToDigitalConverter:
        max_sum = self.config.array_rows * (2 ** bits_per_cell - 1)
        return make_adc(
            self.config.adc_kind, min_value=-max_sum, max_value=max_sum, spec=self.adc_spec
        )

    def _allocate_crossbar(self, bits_per_cell: int) -> Tuple[int, AnalogCrossbar]:
        if not self._free_arrays:
            raise AllocationError("no free analog arrays remain in this ACE")
        array_id = self._free_arrays.pop(0)
        crossbar = AnalogCrossbar(
            rows=self.config.array_rows,
            cols=self.config.array_cols,
            bits_per_cell=bits_per_cell,
            device=self.device,
            noise=self.noise_config,
            parasitics=self.parasitics,
            adc=self._make_adc(bits_per_cell),
            num_adcs=self.config.adcs_per_array,
            dac=DigitalToAnalogConverter(),
            ledger=self.ledger,
            row_periphery_power_mw=self.config.row_periphery_power_mw,
        )
        self._crossbars[array_id] = crossbar
        return array_id, crossbar

    def crossbar(self, array_id: int) -> AnalogCrossbar:
        """Return the crossbar occupying array slot ``array_id``."""
        return self._crossbars[array_id]

    # ------------------------------------------------------------------ #
    # Matrix programming                                                   #
    # ------------------------------------------------------------------ #
    def arrays_needed(self, shape: Tuple[int, int], value_bits: int, bits_per_cell: int) -> int:
        """How many arrays a matrix of ``shape`` would occupy."""
        rows, cols = shape
        row_tiles = int(np.ceil(rows / self.config.array_rows))
        col_tiles = int(np.ceil(cols / self.config.array_cols))
        num_slices = int(np.ceil(value_bits / bits_per_cell))
        return row_tiles * col_tiles * num_slices

    def set_matrix(
        self,
        matrix: np.ndarray,
        value_bits: int = 8,
        bits_per_cell: int = 1,
        representation: str = "differential",
    ) -> MatrixHandle:
        """Tile, encode, bit-slice, and program ``matrix`` into analog arrays.

        The matrix is stored column-major over the bitlines: each output
        element of an MVM corresponds to one bitline of one column tile.
        """
        matrix = np.asarray(matrix)
        if matrix.ndim != 2:
            raise QuantizationError("set_matrix expects a 2-D matrix")
        if not np.issubdtype(matrix.dtype, np.integer):
            raise QuantizationError("set_matrix expects an integer (quantised) matrix")
        if bits_per_cell > self.device.max_bits_per_cell:
            raise QuantizationError(
                f"bits_per_cell {bits_per_cell} exceeds the device maximum "
                f"{self.device.max_bits_per_cell}"
            )
        rows, cols = matrix.shape
        needed = self.arrays_needed((rows, cols), value_bits, bits_per_cell)
        if needed > self.arrays_free:
            raise CapacityError(
                f"matrix needs {needed} arrays but only {self.arrays_free} are free"
            )

        signed = bool(np.any(matrix < 0))
        if representation == "differential":
            encoder = DifferentialPairs(value_bits)
        elif representation == "offset":
            encoder = OffsetSubtraction(value_bits)
        else:
            raise QuantizationError(f"unknown representation {representation!r}")
        encoded = encoder.encode(matrix.astype(np.int64))

        row_tiles = int(np.ceil(rows / self.config.array_rows))
        col_tiles = int(np.ceil(cols / self.config.array_cols))
        pos_slices = slice_matrix(encoded.positive, value_bits, bits_per_cell)
        neg_slices = slice_matrix(encoded.negative, value_bits, bits_per_cell)

        array_ids: List[int] = []
        for row_tile in range(row_tiles):
            r0 = row_tile * self.config.array_rows
            r1 = min(rows, r0 + self.config.array_rows)
            for col_tile in range(col_tiles):
                c0 = col_tile * self.config.array_cols
                c1 = min(cols, c0 + self.config.array_cols)
                for pos_slice, neg_slice in zip(pos_slices, neg_slices):
                    array_id, crossbar = self._allocate_crossbar(bits_per_cell)
                    crossbar.program_differential(
                        pos_slice[r0:r1, c0:c1], neg_slice[r0:r1, c0:c1]
                    )
                    array_ids.append(array_id)

        handle = MatrixHandle(
            handle_id=self._next_handle,
            shape=(rows, cols),
            value_bits=value_bits,
            bits_per_cell=bits_per_cell,
            signed=signed,
            representation=representation,
            row_tiles=row_tiles,
            col_tiles=col_tiles,
            num_slices=len(pos_slices),
            array_ids=tuple(array_ids),
        )
        self._handles[handle.handle_id] = handle
        self._matrices[handle.handle_id] = matrix.astype(np.int64)
        self._next_handle += 1
        return handle

    def update_row(self, handle: MatrixHandle, row: int, values: np.ndarray) -> MatrixHandle:
        """Re-program a single matrix row (updateRow library call)."""
        matrix = self._matrices[handle.handle_id].copy()
        matrix[row, :] = np.asarray(values, dtype=np.int64)
        return self._reprogram(handle, matrix)

    def update_col(self, handle: MatrixHandle, col: int, values: np.ndarray) -> MatrixHandle:
        """Re-program a single matrix column (updateCol library call)."""
        matrix = self._matrices[handle.handle_id].copy()
        matrix[:, col] = np.asarray(values, dtype=np.int64)
        return self._reprogram(handle, matrix)

    def _reprogram(self, handle: MatrixHandle, matrix: np.ndarray) -> MatrixHandle:
        self.release(handle)
        return self.set_matrix(
            matrix,
            value_bits=handle.value_bits,
            bits_per_cell=handle.bits_per_cell,
            representation=handle.representation,
        )

    def release(self, handle: MatrixHandle) -> None:
        """Free the arrays used by ``handle`` (disableAnalogMode path)."""
        for array_id in handle.array_ids:
            self._crossbars.pop(array_id, None)
            self._free_arrays.append(array_id)
        self._free_arrays.sort()
        self._handles.pop(handle.handle_id, None)
        self._matrices.pop(handle.handle_id, None)
        self._kernels.pop(handle.handle_id, None)
        for key in [k for k in self._plans if k[0] == handle.handle_id]:
            del self._plans[key]

    # ------------------------------------------------------------------ #
    # Shard kernel cache (vectorized execution engine)                     #
    # ------------------------------------------------------------------ #
    def kernel_for(self, handle: MatrixHandle) -> ShardKernel:
        """Stacked per-shard conductance tensors for ``handle``.

        Built lazily on first use and cached per allocation; ``release``
        (and therefore ``update_row`` / ``update_col``, which reprogram
        through release + ``set_matrix``) invalidates the entry, so the
        cache can never serve conductances of a stale programming.
        """
        kernel = self._kernels.get(handle.handle_id)
        if kernel is None:
            kernel = build_shard_kernel(self, handle)
            self._kernels[handle.handle_id] = kernel
        return kernel

    #: Distinct scratch shapes retained before the cache resets (a serving
    #: deployment sees a handful of batch shapes; a runaway caller churning
    #: through arbitrary shapes must not leak memory).
    SCRATCH_SHAPES = 8

    def _scratch_for(self, key: Tuple, shape: Tuple[int, ...], dtype) -> np.ndarray:
        buffer = self._scratch.get(key)
        if buffer is None:
            if len(self._scratch) >= self.SCRATCH_SHAPES:
                # Evict the oldest shape only, so a caller cycling through
                # many batch shapes cannot flush the hot steady-state
                # buffers along with the cold ones.
                self._scratch.pop(next(iter(self._scratch)))
            buffer = np.empty(shape, dtype=dtype)
            self._scratch[key] = buffer
        return buffer

    def bitplane_scratch(self, input_bits: int, batch: int, rows: int) -> np.ndarray:
        """Reusable ``(input_bits, batch, rows)`` int64 bit-plane tensor.

        The vectorized forward pass overwrites it completely via
        :func:`~repro.analog.bitslicing.slice_inputs_tensor`'s ``out=``, so
        a steady stream of same-shaped batches (the serving steady state)
        allocates the bit-plane stack exactly once per shape.  The buffer
        never outlives one ``execute_batch`` call: each HCT is driven by one
        pool worker at a time, and no result aliases it.
        """
        key = ("planes", input_bits, batch, rows)
        return self._scratch_for(key, (input_bits, batch, rows), np.int64)

    def float_scratch(self, batch: int, rows: int) -> np.ndarray:
        """Reusable ``(batch, rows)`` float64 input block (exact fast path)."""
        key = ("float", batch, rows)
        return self._scratch_for(key, (batch, rows), np.float64)

    @property
    def cached_kernels(self) -> int:
        """Number of allocations with a live shard kernel cache entry."""
        return len(self._kernels)

    @property
    def cached_plans(self) -> int:
        """Number of live compiled execution plans (all ``input_bits``)."""
        return len(self._plans)

    def stored_matrix(self, handle: MatrixHandle) -> np.ndarray:
        """The quantised integer matrix associated with ``handle``."""
        return self._matrices[handle.handle_id].copy()

    # ------------------------------------------------------------------ #
    # MVM execution                                                        #
    # ------------------------------------------------------------------ #
    def execute_mvm(
        self,
        handle: MatrixHandle,
        vector: np.ndarray,
        input_bits: int = 8,
        active_adc_bits: Optional[int] = None,
        steps: Optional[Sequence] = None,
    ) -> MvmExecution:
        """Run ``vector @ matrix`` through the analog arrays bit-serially.

        Returns the partial-product stream; the caller (HCT) is responsible
        for the shift-and-add reduction in the digital domain.  ``steps``
        optionally supplies the pre-compiled schedule of a cached
        :class:`~repro.plan.ir.MvmPlan` (the HCT passes its plan's steps);
        bare-ACE callers omit it and the schedule is unrolled on the fly
        from the same single source (:func:`~repro.plan.ir.unroll_schedule`).

        Batched execution has no ACE-level entry point: it is interpreted
        from the plan by the backends in :mod:`repro.plan.backends`.
        """
        if not self.enabled:
            raise AllocationError("the ACE of this tile has been disabled")
        vector = np.asarray(vector, dtype=np.int64)
        rows, cols = handle.shape
        if vector.shape != (rows,):
            raise QuantizationError(
                f"input vector of shape {vector.shape} does not match matrix rows ({rows})"
            )
        bit_vectors = slice_inputs(vector, input_bits)
        plan = ShiftAddPlan(
            input_bits=input_bits,
            weight_slices=handle.num_slices,
            bits_per_cell=handle.bits_per_cell,
        )
        execution = MvmExecution(handle=handle, plan=plan)
        if steps is None:
            # Deferred import: repro.plan imports the backends package,
            # which imports this module.
            from ..plan.ir import unroll_schedule

            steps = unroll_schedule(
                handle, input_bits, self.config.array_rows, self.config.array_cols
            )

        start = self.ledger.snapshot()
        for step in steps:
            output = self._crossbars[step.array_id].mvm_1bit(
                bit_vectors[step.input_bit][step.row_start: step.row_end],
                active_adc_bits=active_adc_bits,
            )
            execution.partials.append(
                PartialProduct(
                    values=output.values,
                    shift=step.shift,
                    input_bit=step.input_bit,
                    weight_slice=step.weight_slice,
                    row_tile=step.row_tile,
                    col_tile=step.col_tile,
                    col_offset=step.col_offset,
                )
            )
        end = self.ledger.snapshot()
        execution.analog_cycles = end.cycles - start.cycles
        execution.analog_energy_pj = end.energy_pj - start.energy_pj
        return execution

    def expected_mvm(self, handle: MatrixHandle, vector: np.ndarray) -> np.ndarray:
        """Noise-free reference ``vector @ matrix`` (used by tests and the runtime).

        Accepts a single vector or a ``(batch, rows)`` matrix of vectors.
        """
        matrix = self._matrices[handle.handle_id]
        return np.asarray(vector, dtype=np.int64) @ matrix

"""Digital-to-analog converter (wordline driver) model.

With input bit-slicing (Section 2.2.1) each wordline only ever receives a
one-bit input per cycle, so the "DAC" degenerates to a simple two-level
driver; the model nevertheless supports multi-bit input DACs so the library
can also express non-bit-sliced analog accelerators (e.g. the AppAccel
baselines).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError

__all__ = ["DacSpec", "DigitalToAnalogConverter"]


@dataclass(frozen=True)
class DacSpec:
    """Resolution and cost parameters of a wordline DAC/driver."""

    resolution_bits: int = 1
    area_um2: float = 2.0
    power_mw: float = 0.01
    conversion_cycles: float = 1.0

    def __post_init__(self) -> None:
        if self.resolution_bits < 1:
            raise ConfigurationError("DAC resolution must be at least 1 bit")

    @property
    def levels(self) -> int:
        """Number of distinct analog voltages the DAC can drive."""
        return 2 ** self.resolution_bits


class DigitalToAnalogConverter:
    """Converts digital input codes to (idealised) wordline voltages."""

    def __init__(self, spec: DacSpec | None = None, full_scale: float = 1.0) -> None:
        self.spec = spec if spec is not None else DacSpec()
        self.full_scale = float(full_scale)

    def convert(self, codes: np.ndarray) -> np.ndarray:
        """Map integer codes to analog activation levels in ``[0, full_scale]``."""
        codes = np.asarray(codes, dtype=float)
        max_code = self.spec.levels - 1
        if np.any(codes < 0) or np.any(codes > max_code):
            raise ConfigurationError(
                f"DAC codes must be in [0, {max_code}] for "
                f"{self.spec.resolution_bits}-bit resolution"
            )
        return codes / max_code * self.full_scale if max_code else codes

    def drive_latency(self, num_wordlines: int) -> float:
        """Cycles to drive ``num_wordlines`` inputs (all wordlines parallel)."""
        return self.spec.conversion_cycles

    def drive_energy_pj(self, num_wordlines: int) -> float:
        """Energy to drive ``num_wordlines`` inputs (pJ)."""
        return num_wordlines * self.spec.power_mw * self.spec.conversion_cycles

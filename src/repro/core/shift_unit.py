"""The ACE-to-DCE shift unit (Section 4.1).

Without a shift unit, every partial product written into the DCE must be
shifted into its bit position with digital PUM operations *before* it can be
accumulated, serialising write, shift, and add (Figure 10a).  The shift unit
applies the (statically known) shift while the data crosses the ACE-to-DCE
transfer network, so the DCE receives partial products already aligned and
only the pipelined adds remain (Figure 10b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ConfigurationError

__all__ = ["ShiftUnit", "ShiftedTransfer"]


@dataclass(frozen=True)
class ShiftedTransfer:
    """A partial-product vector after the in-flight shift."""

    values: np.ndarray
    shift: int
    transfer_cycles: float


class ShiftUnit:
    """Applies fixed shifts during ACE-to-DCE transfers and rate-matches them.

    Parameters
    ----------
    transfer_bytes_per_cycle:
        Bandwidth of the ACE-to-DCE data network (Table 2 uses 8 B/cycle,
        chosen to rate-match ADC throughput with DCE write bandwidth).
    element_bytes:
        Size of one transferred partial-product element.
    """

    def __init__(self, transfer_bytes_per_cycle: int = 8, element_bytes: int = 2) -> None:
        if transfer_bytes_per_cycle < 1 or element_bytes < 1:
            raise ConfigurationError("transfer bandwidth and element size must be positive")
        self.transfer_bytes_per_cycle = int(transfer_bytes_per_cycle)
        self.element_bytes = int(element_bytes)
        #: Shift amount per input bit position, configured when a vACore is
        #: allocated; ``None`` means "use the shift supplied with the data".
        self.configured_shift_per_bit: Optional[int] = None

    def configure(self, shift_per_input_bit: int) -> None:
        """Fix the per-input-bit shift (done by ``allocVACore``)."""
        if shift_per_input_bit < 0:
            raise ConfigurationError("shift per input bit must be non-negative")
        self.configured_shift_per_bit = shift_per_input_bit

    def transfer_cycles(self, num_elements: int) -> float:
        """Cycles to move ``num_elements`` partial products across the network."""
        total_bytes = num_elements * self.element_bytes
        return float(-(-total_bytes // self.transfer_bytes_per_cycle))

    def apply(self, values: np.ndarray, input_bit: int, extra_shift: int = 0) -> ShiftedTransfer:
        """Shift ``values`` according to their input-bit position during transfer.

        ``extra_shift`` carries the weight-slice contribution for bit-sliced
        matrices; both are known statically, so no software intervention or
        reconfigurable interconnect is needed.
        """
        per_bit = 1 if self.configured_shift_per_bit is None else self.configured_shift_per_bit
        shift = input_bit * per_bit + extra_shift
        shifted = np.asarray(values, dtype=np.int64) << shift
        # ``values`` may be one partial-product vector or a (batch, width)
        # matrix of them; either way every element crosses the network.
        return ShiftedTransfer(
            values=shifted,
            shift=shift,
            transfer_cycles=self.transfer_cycles(int(np.asarray(values).size)),
        )

    def rate_matched(self, adc_elements_per_cycle: float, dce_rows_per_cycle: float = 1.0) -> bool:
        """Whether ADC production and DCE write consumption rates match.

        The network bandwidth is provisioned so that neither side stalls the
        other (Section 4, "chosen to rate-match ADC throughput with DCE write
        bandwidth").
        """
        network_elements_per_cycle = self.transfer_bytes_per_cycle / self.element_bytes
        return network_elements_per_cycle >= min(adc_elements_per_cycle, dce_rows_per_cycle)

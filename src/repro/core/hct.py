"""The Hybrid Compute Tile (HCT): DARTH-PUM's core building block (Section 4).

An HCT couples an analog compute element (ACE, 64 crossbars) with a digital
compute element (DCE, 64 bit pipelines) through four auxiliary components:

* **shift units** align partial products while they cross the ACE-to-DCE
  network (Section 4.1),
* a **transpose unit** converts between the analog row format and the
  digital column format (Section 4.2),
* an **analog/digital arbiter** serialises the two instruction classes so an
  MVM's reduction appears atomic (Section 4.2), and
* an **instruction injection unit** expands the shift-and-add reduction
  locally instead of through the front end (Section 4.2).

``execute_mvm`` is fully functional: the crossbars really compute the
bit-sliced partial products (with whatever noise model is enabled) and the
DCE really reduces them with NOR-synthesised adds, so the returned vector is
the genuine hybrid result.  The same call also produces a cycle-accurate
timeline for both the unoptimised (Figure 10a) and optimised (Figure 10b)
schedules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..analog.ace import (
    AnalogComputeElement,
    BatchMvmExecution,
    MatrixHandle,
    MvmExecution,
)
from ..analog.compensation import ParasiticCompensation
from ..analog.kernels import AceForward, ace_forward_vectorized, resolve_engine
from ..digital.dce import DigitalComputeElement
from ..digital.logic import get_family
from ..digital.microops import WordOpCost
from ..errors import AllocationError, CapacityError, ExecutionError
from ..metrics import CostLedger
from ..reram import DeviceParameters, NoiseConfig, ParasiticModel
from .arbiter import AnalogDigitalArbiter, Domain
from .config import HctConfig
from .injection_unit import InstructionInjectionUnit
from .shift_unit import ShiftUnit
from .transpose_unit import TransposeUnit
from .vacore import VACore, VACoreManager

__all__ = ["HybridComputeTile", "HctBatchMvmResult", "HctMvmResult"]


@dataclass
class HctMvmResult:
    """The outcome of one hybrid MVM on an HCT."""

    #: The reduced output vector (signed integers).
    values: np.ndarray
    #: Wall-clock cycles with the optimised (shift-in-flight) schedule.
    optimized_cycles: float
    #: Wall-clock cycles with the naive serialised schedule (Figure 10a).
    unoptimized_cycles: float
    #: Energy consumed by this MVM (analog + digital), in pJ.
    energy_pj: float
    #: Per-phase cycle breakdown of the optimised schedule.
    breakdown: Dict[str, float] = field(default_factory=dict)
    #: Number of partial products the reduction consumed.
    num_partial_products: int = 0
    #: Front-end instruction slots saved by the IIU.
    iiu_slots_saved: int = 0

    @property
    def cycles(self) -> float:
        """Alias for the optimised wall-clock latency."""
        return self.optimized_cycles

    @property
    def speedup_from_optimization(self) -> float:
        """How much the Section 4.1 optimisations help for this MVM."""
        if self.optimized_cycles == 0:
            return 1.0
        return self.unoptimized_cycles / self.optimized_cycles


@dataclass
class HctBatchMvmResult:
    """The outcome of one batched hybrid MVM on an HCT."""

    #: The reduced output vectors, one row per input vector (signed integers).
    values: np.ndarray
    #: Number of input vectors in the batch.
    batch: int
    #: Wall-clock cycles for the whole batch, optimised schedule.
    optimized_cycles: float
    #: Wall-clock cycles for the whole batch, naive serialised schedule.
    unoptimized_cycles: float
    #: Energy consumed by the batch (analog + digital), in pJ.
    energy_pj: float
    #: Per-phase cycle breakdown of the optimised schedule.
    breakdown: Dict[str, float] = field(default_factory=dict)
    #: Partial products the reduction consumed *per vector*.
    num_partial_products: int = 0
    #: Front-end instruction slots saved by the IIU across the batch.
    iiu_slots_saved: int = 0

    @property
    def cycles(self) -> float:
        """Alias for the optimised wall-clock latency of the batch."""
        return self.optimized_cycles

    @property
    def cycles_per_vector(self) -> float:
        """Amortised optimised latency per input vector."""
        return self.optimized_cycles / max(1, self.batch)

    @property
    def speedup_from_optimization(self) -> float:
        """How much the Section 4.1 optimisations help for this batch."""
        if self.optimized_cycles == 0:
            return 1.0
        return self.unoptimized_cycles / self.optimized_cycles


class HybridComputeTile:
    """One DARTH-PUM hybrid compute tile."""

    def __init__(
        self,
        config: Optional[HctConfig] = None,
        device: Optional[DeviceParameters] = None,
        noise: Optional[NoiseConfig] = None,
        parasitics: Optional[ParasiticModel] = None,
        ledger: Optional[CostLedger] = None,
        tile_id: int = 0,
    ) -> None:
        self.config = config if config is not None else HctConfig.paper_default()
        self.ledger = ledger if ledger is not None else CostLedger()
        self.tile_id = int(tile_id)
        family = get_family(self.config.logic_family)
        self.ace = AnalogComputeElement(
            config=self.config.ace,
            device=device,
            noise=noise,
            parasitics=parasitics,
            ledger=self.ledger,
        )
        self.dce = DigitalComputeElement(
            config=self.config.dce,
            family=family,
            ledger=self.ledger,
            auto_cycles=False,
        )
        self.shift_unit = ShiftUnit(self.config.transfer_bytes_per_cycle)
        self.transpose_unit = TransposeUnit(self.config.transfer_bytes_per_cycle)
        self.arbiter = AnalogDigitalArbiter()
        self.iiu = InstructionInjectionUnit()
        self.vacores = VACoreManager()
        self._matrix_output_pipeline: Dict[int, int] = {}
        self._clock = 0.0
        self.analog_enabled = True
        self.digital_post_processing = True

    # ------------------------------------------------------------------ #
    # Allocation                                                           #
    # ------------------------------------------------------------------ #
    def alloc_vacore(self, element_size: int, bits_per_cell: int) -> VACore:
        """Allocate a vACore and configure the shift units and IIU for it."""
        core = self.vacores.allocate(element_size, bits_per_cell)
        self.shift_unit.configure(shift_per_input_bit=1)
        plan = core.shift_add_plan()
        staging = self._staging_vrs()
        self.iiu.configure(plan, accumulator_vr=0, staging_vrs=staging)
        return core

    def set_matrix(
        self,
        matrix: np.ndarray,
        value_bits: int = 8,
        bits_per_cell: int = 1,
        representation: str = "differential",
        vacore: Optional[VACore] = None,
        output_pipeline: int = 0,
    ) -> MatrixHandle:
        """Program a matrix into the ACE and reserve its output pipelines."""
        handle = self.ace.set_matrix(
            matrix,
            value_bits=value_bits,
            bits_per_cell=bits_per_cell,
            representation=representation,
        )
        if vacore is not None:
            vacore.bind(handle)
        # Reserve one digital pipeline per column tile for the MVM outputs,
        # marking their contents dead (pipeline-reserve instruction).
        for tile in range(handle.col_tiles):
            self.dce.reserve_pipeline(output_pipeline + tile)
        self._matrix_output_pipeline[handle.handle_id] = output_pipeline
        return handle

    def release_matrix(self, handle: MatrixHandle) -> None:
        """Free a matrix's analog arrays and its reserved output pipelines."""
        base = self._matrix_output_pipeline.pop(handle.handle_id, 0)
        for tile in range(handle.col_tiles):
            self.dce.release_pipeline(base + tile)
        self.ace.release(handle)

    def disable_analog_mode(self, handle: MatrixHandle, target_pipeline: int = 0) -> None:
        """disableAnalogMode(): copy the matrix into digital arrays and free the ACE.

        The matrix is transposed by the transpose unit (digital pipelines
        store one matrix column per vector register) and written one VR per
        column.
        """
        matrix = self.ace.stored_matrix(handle)
        transposed = self.transpose_unit.matrix_transpose(matrix)
        pipeline = self.dce.pipeline(target_pipeline)
        cols = transposed.values.shape[0]
        if cols > pipeline.num_vrs:
            raise CapacityError(
                f"matrix with {cols} columns does not fit the {pipeline.num_vrs} "
                "vector registers of one pipeline"
            )
        for col in range(cols):
            pipeline.write_vr(col, transposed.values[col])
        self.release_matrix(handle)
        self.analog_enabled = False
        self.ace.enabled = False
        self.ledger.charge("hct.mode_switch", cycles=transposed.cycles)

    def disable_digital_mode(self) -> None:
        """disableDigitalMode(): bypass DCE post-processing for raw MVM output."""
        self.digital_post_processing = False

    def enable_digital_mode(self) -> None:
        """Re-enable DCE post-processing."""
        self.digital_post_processing = True

    # ------------------------------------------------------------------ #
    # Hybrid MVM                                                           #
    # ------------------------------------------------------------------ #
    def execute_mvm(
        self,
        handle: MatrixHandle,
        vector: np.ndarray,
        input_bits: int = 8,
        optimized: bool = True,
        compensation: Optional[ParasiticCompensation] = None,
        active_adc_bits: Optional[int] = None,
    ) -> HctMvmResult:
        """Run a full hybrid MVM: analog partial products + digital reduction."""
        if not self.analog_enabled:
            raise AllocationError("the ACE of this tile has been disabled")
        start_energy = self.ledger.energy_pj
        execution = self.ace.execute_mvm(
            handle, vector, input_bits=input_bits, active_adc_bits=active_adc_bits
        )

        output_base = self._matrix_output_pipeline.get(handle.handle_id, 0)
        if not self.digital_post_processing:
            # Expert mode: hand back the raw analog reduction without the DCE.
            values = execution.reduce()
            if compensation is not None:
                values = compensation.recover(values, vector)
            cycles = execution.analog_cycles
            return HctMvmResult(
                values=values,
                optimized_cycles=cycles,
                unoptimized_cycles=cycles,
                energy_pj=self.ledger.energy_pj - start_energy,
                breakdown={"analog": cycles},
                num_partial_products=len(execution.partials),
            )

        values, reduce_costs, slots_saved = self._reduce_in_dce(execution, output_base)
        if compensation is not None:
            values = compensation.recover(values, vector)

        optimized_cycles, breakdown = self._timeline(execution, reduce_costs, optimized=True)
        unoptimized_cycles, _ = self._timeline(execution, reduce_costs, optimized=False)

        # The arbiter locks the output pipelines for the analog domain for
        # the duration of the MVM, serialising younger digital work.
        for tile in range(handle.col_tiles):
            self.arbiter.acquire(
                f"pipeline:{output_base + tile}", Domain.ANALOG, self._clock, optimized_cycles
            )
        charged = optimized_cycles if optimized else unoptimized_cycles
        self._clock += charged
        self.ledger.charge("hct.mvm", cycles=charged)

        return HctMvmResult(
            values=values,
            optimized_cycles=optimized_cycles,
            unoptimized_cycles=unoptimized_cycles,
            energy_pj=self.ledger.energy_pj - start_energy,
            breakdown=breakdown,
            num_partial_products=len(execution.partials),
            iiu_slots_saved=slots_saved,
        )

    def execute_mvm_batch(
        self,
        handle: MatrixHandle,
        vectors: np.ndarray,
        input_bits: int = 8,
        optimized: bool = True,
        compensation: Optional[ParasiticCompensation] = None,
        active_adc_bits: Optional[int] = None,
        engine: Optional[str] = None,
    ) -> HctBatchMvmResult:
        """Run a whole batch of hybrid MVMs through the tile in one pass.

        ``vectors`` has shape ``(batch, rows)``.  The arbiter serialises the
        batch as one analog-domain reservation and the whole batch streams
        through every (input bit, tile, slice) step of the bit-sliced
        schedule.  ``engine`` picks the host-side implementation:

        * ``"vectorized"`` (the default) collapses the schedule into stacked
          tensor contractions over the ACE's shard kernel cache and
          reconstructs all cost accounting analytically;
        * ``"reference"`` walks the per-step crossbar loop.

        The two engines are bit-identical -- results, ledger totals, and
        timelines -- which ``tests/test_kernels.py`` pins down.  In the
        noise-free configuration the returned rows also match ``batch``
        sequential :meth:`execute_mvm` calls bit for bit.
        """
        if resolve_engine(engine) == "vectorized":
            return self._execute_mvm_batch_vectorized(
                handle, vectors, input_bits, optimized, compensation, active_adc_bits
            )
        if not self.analog_enabled:
            raise AllocationError("the ACE of this tile has been disabled")
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.int64))
        batch = vectors.shape[0]
        if batch == 0:
            raise ExecutionError("execute_mvm_batch needs at least one input vector")
        start_energy = self.ledger.energy_pj
        execution = self.ace.execute_mvm_batch(
            handle, vectors, input_bits=input_bits, active_adc_bits=active_adc_bits
        )

        output_base = self._matrix_output_pipeline.get(handle.handle_id, 0)
        if not self.digital_post_processing:
            values = execution.reduce()
            if compensation is not None:
                values = compensation.recover_batch(values, vectors)
            cycles = execution.analog_cycles
            return HctBatchMvmResult(
                values=values,
                batch=batch,
                optimized_cycles=cycles,
                unoptimized_cycles=cycles,
                energy_pj=self.ledger.energy_pj - start_energy,
                breakdown={"analog": cycles},
                num_partial_products=len(execution.partials),
            )

        values, reduce_costs, slots_saved = self._reduce_batch_in_dce(execution, output_base)
        if compensation is not None:
            values = compensation.recover_batch(values, vectors)

        optimized_cycles, breakdown = self._timeline(
            execution, reduce_costs, optimized=True, batch=batch
        )
        unoptimized_cycles, _ = self._timeline(
            execution, reduce_costs, optimized=False, batch=batch
        )

        for tile in range(handle.col_tiles):
            self.arbiter.acquire(
                f"pipeline:{output_base + tile}", Domain.ANALOG, self._clock, optimized_cycles
            )
        charged = optimized_cycles if optimized else unoptimized_cycles
        self._clock += charged
        self.ledger.charge("hct.mvm_batch", cycles=charged)

        return HctBatchMvmResult(
            values=values,
            batch=batch,
            optimized_cycles=optimized_cycles,
            unoptimized_cycles=unoptimized_cycles,
            energy_pj=self.ledger.energy_pj - start_energy,
            breakdown=breakdown,
            num_partial_products=len(execution.partials),
            iiu_slots_saved=slots_saved,
        )

    def _execute_mvm_batch_vectorized(
        self,
        handle: MatrixHandle,
        vectors: np.ndarray,
        input_bits: int,
        optimized: bool,
        compensation: Optional[ParasiticCompensation],
        active_adc_bits: Optional[int],
    ) -> HctBatchMvmResult:
        """The vectorized bit-plane engine: tensor ops + analytic accounting."""
        if not self.analog_enabled:
            raise AllocationError("the ACE of this tile has been disabled")
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.int64))
        batch = vectors.shape[0]
        if batch == 0:
            raise ExecutionError("execute_mvm_batch needs at least one input vector")
        start_energy = self.ledger.energy_pj
        forward = ace_forward_vectorized(
            self.ace, handle, vectors, input_bits=input_bits,
            active_adc_bits=active_adc_bits,
        )

        output_base = self._matrix_output_pipeline.get(handle.handle_id, 0)
        if not self.digital_post_processing:
            values = forward.raw_reduce()
            if compensation is not None:
                values = compensation.recover_batch(values, vectors)
            cycles = forward.analog_cycles
            return HctBatchMvmResult(
                values=values,
                batch=batch,
                optimized_cycles=cycles,
                unoptimized_cycles=cycles,
                energy_pj=self.ledger.energy_pj - start_energy,
                breakdown={"analog": cycles},
                num_partial_products=forward.num_partials,
            )

        values, add_info, slots_saved = self._reduce_batch_analytic(forward, output_base)
        if compensation is not None:
            values = compensation.recover_batch(values, vectors)

        shim = BatchMvmExecution(handle=handle, batch=batch, plan=forward.plan)
        optimized_cycles, breakdown = self._timeline(
            shim, (), optimized=True, batch=batch, add_info=add_info
        )
        unoptimized_cycles, _ = self._timeline(
            shim, (), optimized=False, batch=batch, add_info=add_info
        )

        for tile in range(handle.col_tiles):
            self.arbiter.acquire(
                f"pipeline:{output_base + tile}", Domain.ANALOG, self._clock, optimized_cycles
            )
        charged = optimized_cycles if optimized else unoptimized_cycles
        self._clock += charged
        self.ledger.charge("hct.mvm_batch", cycles=charged)

        return HctBatchMvmResult(
            values=values,
            batch=batch,
            optimized_cycles=optimized_cycles,
            unoptimized_cycles=unoptimized_cycles,
            energy_pj=self.ledger.energy_pj - start_energy,
            breakdown=breakdown,
            num_partial_products=forward.num_partials,
            iiu_slots_saved=slots_saved,
        )

    # ------------------------------------------------------------------ #
    # Internals                                                            #
    # ------------------------------------------------------------------ #
    def _staging_vrs(self) -> List[int]:
        """Vector registers used to stage incoming partial products."""
        pipeline_cols = self.config.dce.cols
        num_vrs = pipeline_cols - 8  # ScratchColumns.COUNT
        # Keep VR 0 for the accumulator and use the next few as staging slots.
        count = max(2, min(4, num_vrs - 1))
        return list(range(1, 1 + count))

    def _reduce_in_dce(self, execution: MvmExecution, output_base: int):
        """Functionally reduce the partial-product stream in the DCE."""
        handle = execution.handle
        rows, cols = handle.shape
        staging = self._staging_vrs()
        accumulator = 0
        all_costs: List[WordOpCost] = []
        slots_saved = 0
        result = np.zeros(cols, dtype=np.int64)

        for col_tile in range(handle.col_tiles):
            pipeline_index = output_base + col_tile
            pipeline = self.dce.pipeline(pipeline_index)
            tile_partials = [p for p in execution.partials if p.col_tile == col_tile]
            if not tile_partials:
                continue
            shifted_values = []
            shifts = []
            for partial in tile_partials:
                transfer = self.shift_unit.apply(
                    np.rint(partial.values).astype(np.int64),
                    input_bit=partial.input_bit,
                    extra_shift=partial.weight_slice * handle.bits_per_cell,
                )
                self.transpose_unit.vector_to_register(transfer.values)
                shifted_values.append(transfer.values)
                shifts.append(transfer.shift)
            costs, saved = self.iiu.inject_reduction(
                pipeline, shifted_values, accumulator, staging, shifts
            )
            all_costs.extend(costs)
            slots_saved += saved
            tile_width = tile_partials[0].values.shape[0]
            col_offset = tile_partials[0].col_offset
            reduced = pipeline.read_vr(accumulator, signed=True)[:tile_width]
            result[col_offset: col_offset + tile_width] = reduced
        return result, all_costs, slots_saved

    def _reduce_batch_in_dce(self, execution: BatchMvmExecution, output_base: int):
        """Vectorised batch reduction of the partial-product stream.

        One NumPy shift-and-add per column tile replaces the per-element
        gate-level path of :meth:`_reduce_in_dce`; the shift units still
        align every partial product in flight and the IIU reconstructs the
        equivalent µop stream for cost accounting.
        """
        handle = execution.handle
        rows, cols = handle.shape
        staging = self._staging_vrs()
        accumulator = 0
        all_costs: List[WordOpCost] = []
        slots_saved = 0
        result = np.zeros((execution.batch, cols), dtype=np.int64)

        for col_tile in range(handle.col_tiles):
            pipeline_index = output_base + col_tile
            pipeline = self.dce.pipeline(pipeline_index)
            tile_partials = [p for p in execution.partials if p.col_tile == col_tile]
            if not tile_partials:
                continue
            shifted_values = []
            shifts = []
            for partial in tile_partials:
                transfer = self.shift_unit.apply(
                    np.rint(partial.values).astype(np.int64),
                    input_bit=partial.input_bit,
                    extra_shift=partial.weight_slice * handle.bits_per_cell,
                )
                self.transpose_unit.batch_to_registers(transfer.values)
                shifted_values.append(transfer.values)
                shifts.append(transfer.shift)
            reduced, costs, saved = self.iiu.inject_reduction_batch(
                pipeline, shifted_values, accumulator, staging, shifts
            )
            all_costs.extend(costs)
            slots_saved += saved
            tile_width = tile_partials[0].values.shape[1]
            col_offset = tile_partials[0].col_offset
            result[:, col_offset: col_offset + tile_width] = reduced[:, :tile_width]
        return result, all_costs, slots_saved

    def _reduce_batch_analytic(self, forward: AceForward, output_base: int):
        """Vectorized-engine DCE reduction with analytic µop reconstruction.

        Computes the shift-and-add sum of every column tile as one integer
        tensor reduction, then re-issues the exact accounting the reference
        path's ``inject_reduction_batch`` performs: the same ``dce.write`` /
        ``dce.boolean`` ledger charges, op-log entries, IIU statistics, and
        accumulator-register state.  Returns ``(values, (n_adds,
        add_uops_per_bit), slots_saved)`` where ``add_info`` feeds the
        timeline model without materialising per-partial cost lists.
        """
        handle = forward.handle
        rows, cols = handle.shape
        batch = forward.batch
        partials_per_col_tile = (
            forward.plan.num_partial_products * handle.row_tiles
        )
        result = np.zeros((batch, cols), dtype=np.int64)
        slots_saved = 0
        n_adds = 0
        add_uops = 12.0

        for col_tile in range(handle.col_tiles):
            pipeline = self.dce.pipeline(output_base + col_tile)
            tiles = [t for t in forward.tiles if t.kernel.col_tile == col_tile]
            if not tiles:
                continue
            reduced = forward.tile_totals(tiles[0]).copy()
            for tile in tiles[1:]:
                reduced += forward.tile_totals(tile)
            depth = pipeline.depth
            if depth < 64:
                mask = np.int64((1 << depth) - 1)
                sign = np.int64(1) << (depth - 1)
                reduced = ((reduced & mask) ^ sign) - sign

            width = reduced.shape[1]
            add_uops = float(pipeline.add_uops_per_bit)
            _, saved = self.iiu.account_reduction_batch(
                pipeline, partials_per_col_tile, batch, width
            )
            pipeline.set_vr_bits(0, reduced[-1])
            slots_saved += saved
            self.transpose_unit.vector_count += batch * partials_per_col_tile
            n_adds += batch * partials_per_col_tile

            col_offset = tiles[0].kernel.col_offset
            result[:, col_offset: col_offset + width] = reduced[:, :width]
        return result, (n_adds, add_uops), slots_saved

    def _timeline(
        self,
        execution,
        reduce_costs: Sequence[WordOpCost],
        optimized: bool,
        batch: int = 1,
        add_info: Optional[tuple] = None,
    ):
        """Wall-clock latency of the MVM under the two schedules of Figure 10.

        ``batch`` scales the analog production phase: a batch of input
        vectors streams ``batch`` times as many partial products through the
        same schedule (``reduce_costs`` already contains the whole batch's
        write+ADD stream).
        """
        handle = execution.handle
        cols_per_tile = min(handle.shape[1], self.config.ace.array_cols)
        rows_per_write = self.config.dce.rows

        # Analog production latency of one partial product (all arrays of a
        # step operate concurrently; input bits are serial).
        sample = self.ace.crossbar(handle.array_ids[0])
        adc_latency = sample.adc.conversion_latency(
            cols_per_tile, sample.num_adcs, None
        )
        per_step_analog = sample.dac.drive_latency(handle.shape[0]) + 1.0 + adc_latency

        steps = execution.plan.num_partial_products * handle.row_tiles if execution.plan else len(
            execution.partials
        )
        steps *= batch
        transfer = self.shift_unit.transfer_cycles(cols_per_tile)
        write = float(rows_per_write)

        if add_info is not None:
            # Vectorized engine: the ADD stream is described analytically
            # instead of by materialised per-partial cost objects.
            n_adds, add_uops_per_bit = add_info
        else:
            add_costs = [c for c in reduce_costs if c.name == "add"]
            n_adds = len(add_costs)
            add_uops_per_bit = add_costs[0].uops_per_bit if add_costs else 12.0
        depth = self.config.dce.pipeline_depth

        breakdown: Dict[str, float] = {}
        if optimized:
            # Figure 10b: shifts happen in flight; ADC production, network
            # transfer, and DCE writes are rate-matched and overlap, so the
            # steady-state step cost is their maximum; the pipelined ADD
            # stream drains afterwards.
            step_cost = max(per_step_analog, transfer, write)
            analog_phase = steps * step_cost
            add_stream = (
                add_uops_per_bit * depth + max(0, n_adds - 1) * add_uops_per_bit
                if n_adds
                else 0.0
            )
            breakdown["analog_and_transfer"] = analog_phase
            breakdown["pipelined_adds"] = add_stream
            total = analog_phase + add_stream
        else:
            # Figure 10a: every partial product pays analog production, write,
            # an explicit digital shift, and a full (unpipelined) ADD before
            # the next one may start.
            shift_cost = float(execution.plan.max_shift if execution.plan else depth)
            per_partial = (
                per_step_analog + write + shift_cost + add_uops_per_bit * depth
            )
            total = steps * per_partial
            breakdown["serialized_steps"] = total
        breakdown["total"] = total
        return total, breakdown

    # ------------------------------------------------------------------ #
    # Convenience passthroughs                                             #
    # ------------------------------------------------------------------ #
    def pipeline(self, index: int):
        """Access a digital pipeline of this tile's DCE."""
        return self.dce.pipeline(index)

    def expected_mvm(self, handle: MatrixHandle, vector: np.ndarray) -> np.ndarray:
        """Noise-free reference result (for verification)."""
        return self.ace.expected_mvm(handle, vector)

    @property
    def snapshot(self):
        """Snapshot of the tile's cost ledger."""
        return self.ledger.snapshot()

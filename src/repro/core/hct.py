"""The Hybrid Compute Tile (HCT): DARTH-PUM's core building block (Section 4).

An HCT couples an analog compute element (ACE, 64 crossbars) with a digital
compute element (DCE, 64 bit pipelines) through four auxiliary components:

* **shift units** align partial products while they cross the ACE-to-DCE
  network (Section 4.1),
* a **transpose unit** converts between the analog row format and the
  digital column format (Section 4.2),
* an **analog/digital arbiter** serialises the two instruction classes so an
  MVM's reduction appears atomic (Section 4.2), and
* an **instruction injection unit** expands the shift-and-add reduction
  locally instead of through the front end (Section 4.2).

``execute_mvm`` is fully functional: the crossbars really compute the
bit-sliced partial products (with whatever noise model is enabled) and the
DCE really reduces them with NOR-synthesised adds, so the returned vector is
the genuine hybrid result.  The same call also produces a cycle-accurate
timeline for both the unoptimised (Figure 10a) and optimised (Figure 10b)
schedules.

Batched MVMs follow the plan/compile/execute split: the tile's
:class:`~repro.plan.planner.Planner` compiles the bit-sliced schedule into
one cached :class:`~repro.plan.ir.MvmPlan` per ``(allocation,
input_bits)``, and ``execute_mvm_batch`` hands that plan to whichever
:class:`~repro.plan.backends.ExecutionBackend` the caller selects
(``backend="vectorized"`` by default, ``"reference"`` for the per-step
ground truth, ``"estimate"`` for ledgers without arithmetic).  The
backends are two interpreters of one IR, so their bit-identity is
structural -- see ``tests/test_kernels.py``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

import numpy as np

from ..analog.ace import AnalogComputeElement, MatrixHandle, MvmExecution
from ..analog.compensation import ParasiticCompensation
from ..digital.dce import DigitalComputeElement
from ..digital.logic import get_family
from ..digital.microops import WordOpCost
from ..errors import AllocationError, CapacityError
from ..metrics import CostLedger
from ..plan.backends import ExecutionBackend, resolve_backend
from ..plan.ir import HctBatchMvmResult, HctMvmResult, MvmPlan
from ..plan.planner import Planner
from ..reram import DeviceParameters, NoiseConfig, ParasiticModel
from .arbiter import AnalogDigitalArbiter, Domain
from .config import HctConfig
from .injection_unit import InstructionInjectionUnit
from .shift_unit import ShiftUnit
from .transpose_unit import TransposeUnit
from .vacore import VACore, VACoreManager

__all__ = ["HybridComputeTile", "HctBatchMvmResult", "HctMvmResult"]


class HybridComputeTile:
    """One DARTH-PUM hybrid compute tile."""

    def __init__(
        self,
        config: Optional[HctConfig] = None,
        device: Optional[DeviceParameters] = None,
        noise: Optional[NoiseConfig] = None,
        parasitics: Optional[ParasiticModel] = None,
        ledger: Optional[CostLedger] = None,
        tile_id: int = 0,
    ) -> None:
        self.config = config if config is not None else HctConfig.paper_default()
        self.ledger = ledger if ledger is not None else CostLedger()
        self.tile_id = int(tile_id)
        family = get_family(self.config.logic_family)
        self.ace = AnalogComputeElement(
            config=self.config.ace,
            device=device,
            noise=noise,
            parasitics=parasitics,
            ledger=self.ledger,
        )
        self.dce = DigitalComputeElement(
            config=self.config.dce,
            family=family,
            ledger=self.ledger,
            auto_cycles=False,
        )
        self.shift_unit = ShiftUnit(self.config.transfer_bytes_per_cycle)
        self.transpose_unit = TransposeUnit(self.config.transfer_bytes_per_cycle)
        self.arbiter = AnalogDigitalArbiter()
        self.iiu = InstructionInjectionUnit()
        self.vacores = VACoreManager()
        self.planner = Planner(self)
        self._matrix_output_pipeline: Dict[int, int] = {}
        self._clock = 0.0
        self.analog_enabled = True
        self.digital_post_processing = True

    # ------------------------------------------------------------------ #
    # Allocation                                                           #
    # ------------------------------------------------------------------ #
    def alloc_vacore(self, element_size: int, bits_per_cell: int) -> VACore:
        """Allocate a vACore and configure the shift units and IIU for it."""
        core = self.vacores.allocate(element_size, bits_per_cell)
        self.shift_unit.configure(shift_per_input_bit=1)
        plan = core.shift_add_plan()
        staging = self._staging_vrs()
        self.iiu.configure(plan, accumulator_vr=0, staging_vrs=staging)
        return core

    def set_matrix(
        self,
        matrix: np.ndarray,
        value_bits: int = 8,
        bits_per_cell: int = 1,
        representation: str = "differential",
        vacore: Optional[VACore] = None,
        output_pipeline: int = 0,
    ) -> MatrixHandle:
        """Program a matrix into the ACE and reserve its output pipelines."""
        handle = self.ace.set_matrix(
            matrix,
            value_bits=value_bits,
            bits_per_cell=bits_per_cell,
            representation=representation,
        )
        if vacore is not None:
            vacore.bind(handle)
        # Reserve one digital pipeline per column tile for the MVM outputs,
        # marking their contents dead (pipeline-reserve instruction).
        for tile in range(handle.col_tiles):
            self.dce.reserve_pipeline(output_pipeline + tile)
        self._matrix_output_pipeline[handle.handle_id] = output_pipeline
        return handle

    def release_matrix(self, handle: MatrixHandle) -> None:
        """Free a matrix's analog arrays, plans, and reserved pipelines."""
        base = self._matrix_output_pipeline.pop(handle.handle_id, 0)
        for tile in range(handle.col_tiles):
            self.dce.release_pipeline(base + tile)
        self.ace.release(handle)

    def disable_analog_mode(self, handle: MatrixHandle, target_pipeline: int = 0) -> None:
        """disableAnalogMode(): copy the matrix into digital arrays and free the ACE.

        The matrix is transposed by the transpose unit (digital pipelines
        store one matrix column per vector register) and written one VR per
        column.
        """
        matrix = self.ace.stored_matrix(handle)
        transposed = self.transpose_unit.matrix_transpose(matrix)
        pipeline = self.dce.pipeline(target_pipeline)
        cols = transposed.values.shape[0]
        if cols > pipeline.num_vrs:
            raise CapacityError(
                f"matrix with {cols} columns does not fit the {pipeline.num_vrs} "
                "vector registers of one pipeline"
            )
        for col in range(cols):
            pipeline.write_vr(col, transposed.values[col])
        self.release_matrix(handle)
        self.analog_enabled = False
        self.ace.enabled = False
        self.ledger.charge("hct.mode_switch", cycles=transposed.cycles)

    def disable_digital_mode(self) -> None:
        """disableDigitalMode(): bypass DCE post-processing for raw MVM output."""
        self.digital_post_processing = False

    def enable_digital_mode(self) -> None:
        """Re-enable DCE post-processing."""
        self.digital_post_processing = True

    # ------------------------------------------------------------------ #
    # Hybrid MVM                                                           #
    # ------------------------------------------------------------------ #
    def execute_mvm(
        self,
        handle: MatrixHandle,
        vector: np.ndarray,
        input_bits: int = 8,
        optimized: bool = True,
        compensation: Optional[ParasiticCompensation] = None,
        active_adc_bits: Optional[int] = None,
    ) -> HctMvmResult:
        """Run a full hybrid MVM: analog partial products + digital reduction."""
        if not self.analog_enabled:
            raise AllocationError("the ACE of this tile has been disabled")
        plan = self.planner.plan_for(handle, input_bits)
        start_energy = self.ledger.energy_pj
        execution = self.ace.execute_mvm(
            handle, vector, input_bits=input_bits, active_adc_bits=active_adc_bits,
            steps=plan.steps,
        )

        if not self.digital_post_processing:
            # Expert mode: hand back the raw analog reduction without the DCE.
            values = execution.reduce()
            if compensation is not None:
                values = compensation.recover(values, vector)
            cycles = execution.analog_cycles
            return HctMvmResult(
                values=values,
                optimized_cycles=cycles,
                unoptimized_cycles=cycles,
                energy_pj=self.ledger.energy_pj - start_energy,
                breakdown={"analog": cycles},
                num_partial_products=len(execution.partials),
            )

        values, reduce_costs, slots_saved = self._reduce_in_dce(
            execution, plan.output_base
        )
        if compensation is not None:
            values = compensation.recover(values, vector)

        add_costs = [c for c in reduce_costs if c.name == "add"]
        n_adds = len(add_costs)
        add_uops = add_costs[0].uops_per_bit if add_costs else 12.0
        optimized_cycles, breakdown = plan.cost.timeline(1, n_adds, add_uops, True)
        unoptimized_cycles, _ = plan.cost.timeline(1, n_adds, add_uops, False)

        charged = optimized_cycles if optimized else unoptimized_cycles
        self._commit_schedule(plan, optimized_cycles, charged, label="hct.mvm")

        return HctMvmResult(
            values=values,
            optimized_cycles=optimized_cycles,
            unoptimized_cycles=unoptimized_cycles,
            energy_pj=self.ledger.energy_pj - start_energy,
            breakdown=breakdown,
            num_partial_products=len(execution.partials),
            iiu_slots_saved=slots_saved,
        )

    def execute_mvm_batch(
        self,
        handle: MatrixHandle,
        vectors: np.ndarray,
        input_bits: int = 8,
        optimized: bool = True,
        compensation: Optional[ParasiticCompensation] = None,
        active_adc_bits: Optional[int] = None,
        backend: Union[None, str, ExecutionBackend] = None,
    ) -> HctBatchMvmResult:
        """Run a whole batch of hybrid MVMs through the tile in one pass.

        ``vectors`` has shape ``(batch, rows)``.  The tile's planner
        compiles (or fetches from its cache) the
        :class:`~repro.plan.ir.MvmPlan` for ``(handle, input_bits)`` and
        hands it to the selected execution backend:

        * ``backend="vectorized"`` (the default) contracts the plan's
          schedule into stacked tensor ops over the shard kernel cache and
          reconstructs all cost accounting analytically;
        * ``backend="reference"`` walks the plan one crossbar call per step;
        * ``backend="estimate"`` charges the full analytic cost without
          computing values (``result.estimated`` is True).

        Interpreting one shared plan makes the first two bit-identical --
        results, ledger totals, and timelines -- which
        ``tests/test_kernels.py`` pins down.  In the noise-free
        configuration the returned rows also match ``batch`` sequential
        :meth:`execute_mvm` calls bit for bit.
        """
        if not self.analog_enabled:
            raise AllocationError("the ACE of this tile has been disabled")
        executor = resolve_backend(backend)
        plan = self.planner.plan_for(handle, input_bits)
        return executor.execute_batch(
            self,
            plan,
            vectors,
            optimized=optimized,
            compensation=compensation,
            active_adc_bits=active_adc_bits,
        )

    # ------------------------------------------------------------------ #
    # Internals                                                            #
    # ------------------------------------------------------------------ #
    def _staging_vrs(self) -> List[int]:
        """Vector registers used to stage incoming partial products."""
        pipeline_cols = self.config.dce.cols
        num_vrs = pipeline_cols - 8  # ScratchColumns.COUNT
        # Keep VR 0 for the accumulator and use the next few as staging slots.
        count = max(2, min(4, num_vrs - 1))
        return list(range(1, 1 + count))

    def _commit_schedule(
        self, plan: MvmPlan, optimized_cycles: float, charged: float,
        label: str = "hct.mvm_batch",
    ) -> None:
        """Arbiter reservation + clock advance + ledger charge of one MVM.

        The arbiter locks the output pipelines for the analog domain for
        the duration of the MVM, serialising younger digital work.  Every
        execution backend commits through here so the tile-side effects of
        an MVM cannot drift between interpreters.
        """
        for tile in range(plan.handle.col_tiles):
            self.arbiter.acquire(
                f"pipeline:{plan.output_base + tile}",
                Domain.ANALOG,
                self._clock,
                optimized_cycles,
            )
        self._clock += charged
        self.ledger.charge(label, cycles=charged)

    def _reduce_in_dce(self, execution: MvmExecution, output_base: int):
        """Functionally reduce the partial-product stream in the DCE."""
        handle = execution.handle
        rows, cols = handle.shape
        staging = self._staging_vrs()
        accumulator = 0
        all_costs: List[WordOpCost] = []
        slots_saved = 0
        result = np.zeros(cols, dtype=np.int64)

        for col_tile in range(handle.col_tiles):
            pipeline_index = output_base + col_tile
            pipeline = self.dce.pipeline(pipeline_index)
            tile_partials = [p for p in execution.partials if p.col_tile == col_tile]
            if not tile_partials:
                continue
            shifted_values = []
            shifts = []
            for partial in tile_partials:
                transfer = self.shift_unit.apply(
                    np.rint(partial.values).astype(np.int64),
                    input_bit=partial.input_bit,
                    extra_shift=partial.weight_slice * handle.bits_per_cell,
                )
                self.transpose_unit.vector_to_register(transfer.values)
                shifted_values.append(transfer.values)
                shifts.append(transfer.shift)
            costs, saved = self.iiu.inject_reduction(
                pipeline, shifted_values, accumulator, staging, shifts
            )
            all_costs.extend(costs)
            slots_saved += saved
            tile_width = tile_partials[0].values.shape[0]
            col_offset = tile_partials[0].col_offset
            reduced = pipeline.read_vr(accumulator, signed=True)[:tile_width]
            result[col_offset: col_offset + tile_width] = reduced
        return result, all_costs, slots_saved

    # ------------------------------------------------------------------ #
    # Convenience passthroughs                                             #
    # ------------------------------------------------------------------ #
    def pipeline(self, index: int):
        """Access a digital pipeline of this tile's DCE."""
        return self.dce.pipeline(index)

    def expected_mvm(self, handle: MatrixHandle, vector: np.ndarray) -> np.ndarray:
        """Noise-free reference result (for verification)."""
        return self.ace.expected_mvm(handle, vector)

    @property
    def snapshot(self):
        """Snapshot of the tile's cost ledger."""
        return self.ledger.snapshot()

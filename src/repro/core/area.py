"""Area and power model for DARTH-PUM hardware (Table 3, Section 6).

The component areas and powers are taken directly from Table 3 of the paper
(all values at 15 nm).  Because Table 3 does not itemise routing, whitespace,
and redundancy overheads, the iso-area HCT counts computed from the raw
component sums would not land exactly on the paper's 1860 (SAR) / 1660
(ramp) tiles; ``effective_hct_area_um2`` therefore applies a documented
calibration factor so that an iso-area chip matches the paper's counts for a
2.57 cm^2 die (the area of the baseline Intel CPU).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .config import HctConfig

__all__ = ["Table3", "AreaModel"]


class Table3:
    """Raw Table 3 entries: per-component area (um^2) and power (mW)."""

    # --- DCE components -------------------------------------------------
    DCE_RERAM_ARRAY_UM2 = 240.0
    DCE_PIPELINE_CONTROL_UM2 = 74_000.0
    DCE_IO_CTRL_UM2 = 9_600.0
    DCE_DECODE_DRIVE_UM2 = 280.0
    DCE_PIPELINE_SELECT_UM2 = 64.0

    # --- ACE components -------------------------------------------------
    ACE_RERAM_ARRAY_UM2 = 240.0
    ACE_INPUT_BUFFERS_UM2 = 27_000.0
    ACE_ROW_PERIPHERY_UM2 = 13_000.0
    ACE_SAR_ADC_UM2 = 600.0
    ACE_RAMP_ADC_UM2 = 3_800.0
    ACE_SAMPLE_HOLD_UM2 = 62.0

    # --- HCT auxiliary components ----------------------------------------
    HCT_SHIFT_UNIT_UM2 = 946.0
    HCT_AD_ARBITER_UM2 = 0.6
    HCT_TRANSPOSE_UNIT_UM2 = 1_760.0
    HCT_INSTR_INJECTION_UM2 = 42.0

    # --- Shared front end -------------------------------------------------
    FRONT_END_UM2 = 87_000.0
    FRONT_END_POWER_MW = 63.0
    FRONT_END_SHARED_BY = 8

    # --- Power ------------------------------------------------------------
    ARRAY_BOOL_OPS_POWER_MW = 8.0
    PIPELINE_CTRL_POWER_MW = 1.6
    SAMPLE_HOLD_POWER_MW = 2.1e-5
    ROW_PERIPHERY_POWER_MW = 0.7
    SAR_ADC_POWER_MW = 1.5
    RAMP_ADC_POWER_MW = 1.2

    # --- Baseline die -----------------------------------------------------
    #: Area of the baseline Intel Core i7-13700 die used for iso-area sizing.
    BASELINE_CPU_AREA_CM2 = 2.57

    # --- Paper-reported iso-area HCT counts -------------------------------
    ISO_AREA_HCTS = {"sar": 1860, "ramp": 1660}
    ISO_AREA_CAPACITY_GB = {"sar": 4.1, "ramp": 3.7}


@dataclass
class AreaModel:
    """Computes component, HCT, and chip areas from Table 3."""

    config: HctConfig

    # ------------------------------------------------------------------ #
    # Component sums                                                      #
    # ------------------------------------------------------------------ #
    def dce_area_um2(self) -> float:
        """Area of one digital compute element."""
        arrays = self.config.dce.total_arrays * Table3.DCE_RERAM_ARRAY_UM2
        control = (
            Table3.DCE_PIPELINE_CONTROL_UM2
            + Table3.DCE_IO_CTRL_UM2
            + Table3.DCE_DECODE_DRIVE_UM2
            + Table3.DCE_PIPELINE_SELECT_UM2
        )
        return arrays + control

    def ace_area_um2(self) -> float:
        """Area of one analog compute element."""
        arrays = self.config.ace.num_arrays * Table3.ACE_RERAM_ARRAY_UM2
        adc_area = (
            Table3.ACE_SAR_ADC_UM2 if self.config.adc_kind == "sar" else Table3.ACE_RAMP_ADC_UM2
        )
        adcs = self.config.ace.adcs_per_array * adc_area
        periphery = (
            Table3.ACE_INPUT_BUFFERS_UM2
            + Table3.ACE_ROW_PERIPHERY_UM2
            + Table3.ACE_SAMPLE_HOLD_UM2 * self.config.ace.array_cols
        )
        return arrays + adcs + periphery

    def auxiliary_area_um2(self) -> float:
        """Area of the HCT-level coordination hardware."""
        return (
            Table3.HCT_SHIFT_UNIT_UM2
            + Table3.HCT_AD_ARBITER_UM2
            + Table3.HCT_TRANSPOSE_UNIT_UM2
            + Table3.HCT_INSTR_INJECTION_UM2
        )

    def raw_hct_area_um2(self) -> float:
        """Component-sum area of one HCT, excluding the shared front end."""
        return self.dce_area_um2() + self.ace_area_um2() + self.auxiliary_area_um2()

    def front_end_share_um2(self) -> float:
        """Per-HCT share of the front-end unit area."""
        return Table3.FRONT_END_UM2 / Table3.FRONT_END_SHARED_BY

    # ------------------------------------------------------------------ #
    # Calibrated iso-area sizing                                          #
    # ------------------------------------------------------------------ #
    def calibration_factor(self) -> float:
        """Ratio of effective (paper-calibrated) to component-sum HCT area.

        Absorbs routing, whitespace, redundancy, and per-bitline ramp-ADC
        comparators/counters that Table 3 does not itemise separately,
        chosen (per ADC kind) so an iso-area chip holds exactly the paper's
        1860 SAR / 1660 ramp HCTs in 2.57 cm^2.
        """
        reference = AreaModel(HctConfig.paper_default(self.config.adc_kind))
        raw = reference.raw_hct_area_um2() + reference.front_end_share_um2()
        target = (
            Table3.BASELINE_CPU_AREA_CM2 * 1e8
            / Table3.ISO_AREA_HCTS[self.config.adc_kind]
        )
        return target / raw

    def effective_hct_area_um2(self) -> float:
        """Calibrated HCT area (including the front-end share)."""
        raw = self.raw_hct_area_um2() + self.front_end_share_um2()
        return raw * self.calibration_factor()

    def iso_area_hct_count(self, die_area_cm2: float | None = None) -> int:
        """How many HCTs fit in ``die_area_cm2`` (default: the baseline CPU)."""
        die_area_cm2 = Table3.BASELINE_CPU_AREA_CM2 if die_area_cm2 is None else die_area_cm2
        die_um2 = die_area_cm2 * 1e8
        return int(round(die_um2 / self.effective_hct_area_um2()))

    # ------------------------------------------------------------------ #
    # Reporting                                                           #
    # ------------------------------------------------------------------ #
    def breakdown(self) -> Dict[str, float]:
        """Area breakdown by component group (um^2)."""
        return {
            "dce": self.dce_area_um2(),
            "ace": self.ace_area_um2(),
            "hct_auxiliary": self.auxiliary_area_um2(),
            "front_end_share": self.front_end_share_um2(),
            "raw_total": self.raw_hct_area_um2() + self.front_end_share_um2(),
            "effective_total": self.effective_hct_area_um2(),
        }

    def chip_memory_capacity_gb(self, num_hcts: int) -> float:
        """Memory capacity of a chip built from ``num_hcts`` of this HCT."""
        return num_hcts * self.config.memory_capacity_bits / 8 / 1e9

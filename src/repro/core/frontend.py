"""The shared front-end unit (Figure 8, Table 3).

One front end serves eight HCTs: it fetches hybrid-ISA instructions, decodes
them into analog or digital µop classes, and issues them to the target
HCT's queues.  Thanks to the per-HCT instruction injection units, the front
end only issues one instruction per MVM instead of the hundreds of reduction
µops, which is what lets a single front end keep eight tiles busy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..errors import IsaError
from ..isa.instructions import Instruction, InstructionClass
from ..metrics import CostLedger

__all__ = ["FrontEnd", "IssueRecord"]


@dataclass(frozen=True)
class IssueRecord:
    """One issued instruction with its decode/issue timing."""

    instruction: Instruction
    hct_index: int
    issue_cycle: float


@dataclass
class FrontEnd:
    """A fetch/decode/issue unit shared by a cluster of HCTs."""

    front_end_id: int = 0
    hcts_served: int = 8
    #: Cycles to fetch+decode+issue one instruction.
    issue_latency_cycles: float = 1.0
    #: Power of the front end while active (Table 3: 63 mW).
    power_mw: float = 63.0
    ledger: CostLedger = field(default_factory=CostLedger)
    issued: List[IssueRecord] = field(default_factory=list)
    _clock: float = 0.0
    _stalled_until: Dict[int, float] = field(default_factory=dict)

    def issue(self, instruction: Instruction, hct_index: int) -> IssueRecord:
        """Issue one instruction to an HCT it serves.

        Analog-class instructions mark the target HCT busy for their expected
        duration; issuing to a busy HCT stalls the front end (Section 4.2's
        motivation for the IIU).
        """
        if hct_index // self.hcts_served != self.front_end_id and self.hcts_served > 0:
            # Front ends only serve their own cluster; the chip routes around.
            raise IsaError(
                f"front end {self.front_end_id} does not serve HCT {hct_index}"
            )
        ready = self._stalled_until.get(hct_index, 0.0)
        start = max(self._clock, ready)
        stall = start - self._clock
        self._clock = start + self.issue_latency_cycles
        if instruction.klass is InstructionClass.ANALOG:
            self._stalled_until[hct_index] = start + max(
                instruction.expected_cycles, self.issue_latency_cycles
            )
        self.ledger.charge_power(
            "frontend.issue", cycles=self.issue_latency_cycles + stall, power_mw=self.power_mw
        )
        record = IssueRecord(instruction=instruction, hct_index=hct_index, issue_cycle=start)
        self.issued.append(record)
        return record

    def issue_program(self, instructions, hct_index: int) -> List[IssueRecord]:
        """Issue a sequence of instructions to one HCT."""
        return [self.issue(instruction, hct_index) for instruction in instructions]

    @property
    def instructions_issued(self) -> int:
        """Total instructions issued by this front end."""
        return len(self.issued)

    @property
    def clock(self) -> float:
        """Current front-end cycle."""
        return self._clock

"""The instruction injection unit (IIU, Section 4.2).

A single MVM's reduction is hundreds of µops: every partial product needs a
(pre-shifted) write followed by a pipelined ADD, and each ADD is itself tens
of Boolean primitives.  If the front end had to expand and issue all of
them, its issue/dispatch logic would stall on every MVM.  The IIU exploits
the regularity of the sequence -- the same ADD repeated with incrementing
register arguments -- and is therefore just a small table plus a counter
that injects the µop stream directly into the digital issue queues, freeing
the front end to serve other HCTs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..analog.bitslicing import ShiftAddPlan
from ..digital.microops import WordOpCost, WordOpKind
from ..digital.pipeline import BitPipeline
from ..errors import RegisterLiveError

__all__ = ["InjectionTableEntry", "InstructionInjectionUnit"]


@dataclass(frozen=True)
class InjectionTableEntry:
    """One row of the IIU table: which registers the next ADD combines."""

    step: int
    accumulator_vr: int
    operand_vr: int
    shift: int


@dataclass
class InstructionInjectionUnit:
    """Expands shift-and-add reductions without involving the front end."""

    #: The configured reduction table (one entry per partial product).
    table: List[InjectionTableEntry] = field(default_factory=list)
    #: Counter tracking how many entries have been injected so far.
    counter: int = 0
    #: µop sequences injected over the unit's lifetime (statistics).
    injections: int = 0
    #: Front-end instruction slots saved by injecting locally (statistics).
    front_end_slots_saved: int = 0

    def configure(self, plan: ShiftAddPlan, accumulator_vr: int, staging_vrs: Sequence[int]) -> None:
        """Program the table for a new vACore / MVM shape.

        ``staging_vrs`` are the registers the shift unit writes incoming
        partial products into, cycled round-robin; the accumulator collects
        the running sum.
        """
        self.table = []
        steps = plan.steps
        for index, step in enumerate(steps):
            operand = staging_vrs[index % len(staging_vrs)]
            self.table.append(
                InjectionTableEntry(
                    step=index,
                    accumulator_vr=accumulator_vr,
                    operand_vr=operand,
                    shift=step.shift,
                )
            )
        self.counter = 0

    @staticmethod
    def _require_reserved(pipeline: BitPipeline) -> None:
        """Refuse to inject into a pipeline not reserved for analog output."""
        if not pipeline.reserved:
            raise RegisterLiveError(
                "reduction injected into an unreserved pipeline: its vector "
                "registers are live digital state; reserve the pipeline "
                "(dce.reserve_pipeline, done by set_matrix) before issuing "
                "an MVM that writes into it"
            )

    def next_entry(self) -> Optional[InjectionTableEntry]:
        """The next table entry to inject, or ``None`` when the table is done."""
        if self.counter >= len(self.table):
            return None
        entry = self.table[self.counter]
        self.counter += 1
        return entry

    def reset(self) -> None:
        """Rewind the counter for the next MVM using the same table."""
        self.counter = 0

    def inject_reduction(
        self,
        pipeline: BitPipeline,
        partial_values,
        accumulator_vr: int,
        staging_vrs: Sequence[int],
        shifts: Sequence[int],
    ) -> Tuple[List[WordOpCost], int]:
        """Execute the full reduction on ``pipeline`` and return its costs.

        ``partial_values`` are the already-shifted partial-product vectors
        (the shift unit applied the shifts in flight); the IIU only has to
        issue the write + ADD stream.  Returns the word-op costs and the
        number of front-end instruction slots this injection saved.

        The target pipeline must have been reserved for analog output
        (``dce.reserve_pipeline``, done by ``set_matrix``); injecting into
        an unreserved pipeline would overwrite vector registers the digital
        substrate considers live (:class:`~repro.errors.RegisterLiveError`).
        """
        self._require_reserved(pipeline)
        costs: List[WordOpCost] = []
        pipeline.clear_vr(accumulator_vr)
        for index, values in enumerate(partial_values):
            staging = staging_vrs[index % len(staging_vrs)]
            costs.append(pipeline.write_vr(staging, values))
            costs.append(pipeline.add(accumulator_vr, accumulator_vr, staging))
        self.injections += 1
        # Without the IIU every µop of every ADD would occupy a front-end slot.
        saved = int(sum(c.total_uops for c in costs))
        self.front_end_slots_saved += saved
        return costs, saved

    @staticmethod
    def wrap_accumulator(values: np.ndarray, depth: int) -> np.ndarray:
        """Model the accumulator read-back of a ``depth``-bit pipeline.

        Gate-level adds wrap modulo ``2**depth`` and the accumulator is read
        back as a two's-complement value of ``depth`` bits.  Shared by every
        interpreter of a reduction plan (the gate-accounted batch path and
        the analytic paths of the vectorized/cost-only backends), so the
        truncation semantics cannot drift between engines.
        """
        if depth >= 64:
            return values
        mask = np.int64((1 << depth) - 1)
        sign = np.int64(1) << (depth - 1)
        return ((values & mask) ^ sign) - sign

    def account_reduction_batch(
        self,
        pipeline: BitPipeline,
        num_partials: int,
        batch: int,
        width: int,
    ) -> Tuple[List[WordOpCost], int]:
        """Analytically account one batched write+ADD reduction stream.

        The single source of truth for the cost side of a batched reduction:
        :meth:`inject_reduction_batch` (the reference interpreter) and the
        analytic reductions of the vectorized and cost-only backends
        (:mod:`repro.plan.backends`) all charge through here, so the
        engines cannot drift apart.  Charges
        the ``dce.write`` / ``dce.boolean`` energy the gate-level path would
        accumulate (every staged write touches one device per bit per
        transferred element; every ADD executes its NOR network on all rows
        of all bit arrays), extends the pipeline op log, and updates the
        IIU's injection statistics.

        Returns ``(costs, slots_saved)``.
        """
        add_uops = float(pipeline.add_uops_per_bit)
        depth, rows = pipeline.depth, pipeline.rows
        write = WordOpCost("write_vr", WordOpKind.WRITE, 1.0, depth, rows)
        add = WordOpCost("add", WordOpKind.CARRY, add_uops, depth, rows)
        num_ops = batch * num_partials
        costs: List[WordOpCost] = [write, add] * num_ops
        nor_energy = pipeline.family.primitive("NOR").energy_per_row_pj
        pipeline.ledger.charge(
            "dce.write", energy_pj=num_ops * pipeline.WRITE_ENERGY_PJ * width * depth
        )
        pipeline.ledger.charge(
            "dce.boolean", energy_pj=num_ops * add_uops * depth * nor_energy * rows
        )
        pipeline.op_log.extend(costs)

        self.injections += 1
        # Equal to ``sum(c.total_uops for c in costs)``: the per-op uop
        # counts are integral, so the product is exact.
        saved = int(num_ops * (write.total_uops + add.total_uops))
        self.front_end_slots_saved += saved
        return costs, saved

    def inject_reduction_batch(
        self,
        pipeline: BitPipeline,
        partial_values: Sequence[np.ndarray],
        accumulator_vr: int,
        staging_vrs: Sequence[int],
        shifts: Sequence[int],
    ) -> Tuple[np.ndarray, List[WordOpCost], int]:
        """Reduce a whole batch of partial-product streams in one pass.

        ``partial_values`` holds one already-shifted ``(batch, width)`` matrix
        per partial product.  Instead of executing ``batch * len(partials)``
        gate-level write+ADD sequences (the per-element path of
        :meth:`inject_reduction`), the reduction is a single NumPy sum; the
        µop stream the hardware would execute is reconstructed analytically
        (:meth:`account_reduction_batch`) so cycle, energy, and
        front-end-slot accounting match the gate path.

        Returns ``(reduced, costs, slots_saved)`` where ``reduced`` is the
        ``(batch, width)`` accumulator contents after the stream.

        Like :meth:`inject_reduction`, requires the target pipeline to be
        reserved for analog output (:class:`~repro.errors.RegisterLiveError`
        otherwise).
        """
        self._require_reserved(pipeline)
        stacked = np.stack([np.asarray(v, dtype=np.int64) for v in partial_values])
        batch, width = stacked.shape[1], stacked.shape[2]
        reduced = self.wrap_accumulator(stacked.sum(axis=0), pipeline.depth)

        costs, saved = self.account_reduction_batch(
            pipeline, len(partial_values), batch, width
        )
        # Leave the accumulator VR holding the last vector's reduction so the
        # pipeline state matches the end of the hardware stream (the bulk
        # charges above already cover this write).
        pipeline.set_vr_bits(accumulator_vr, reduced[-1])
        return reduced, costs, saved

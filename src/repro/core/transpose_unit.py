"""The HCT transposition unit (Section 4.2).

Analog and digital PUM operate on different axes: analog arrays apply inputs
row-wise (wordlines) and accumulate column-wise (bitlines), while digital
pipelines stripe each value column-wise across arrays and compute row-wise.
Data crossing the boundary therefore needs transposition:

* the row vector of partial products produced by an analog MVM must become a
  column (a vector register) in the digital pipeline, once per partial
  product; and
* matrices moved between the two domains (e.g. ``disableAnalogMode`` copying
  a matrix into digital arrays) must be transposed wholesale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TransposeUnit", "TransposeResult"]


@dataclass(frozen=True)
class TransposeResult:
    """A transposed block of data plus the cycles the unit spent on it."""

    values: np.ndarray
    cycles: float


class TransposeUnit:
    """Streams data between the analog row format and the digital column format."""

    def __init__(self, elements_per_cycle: int = 8) -> None:
        self.elements_per_cycle = max(1, int(elements_per_cycle))
        #: Number of vector transpositions performed (statistics).
        self.vector_count = 0
        #: Number of full matrix transpositions performed (statistics).
        self.matrix_count = 0

    def vector_to_register(self, row_vector: np.ndarray) -> TransposeResult:
        """Turn an analog output row vector into a digital VR column layout."""
        row_vector = np.asarray(row_vector)
        cycles = float(-(-row_vector.shape[0] // self.elements_per_cycle))
        self.vector_count += 1
        return TransposeResult(values=row_vector.reshape(-1), cycles=cycles)

    def batch_to_registers(self, matrix: np.ndarray) -> TransposeResult:
        """Turn a batch of analog output rows into VR column layouts.

        Equivalent to calling :meth:`vector_to_register` once per row of
        ``matrix`` (shape ``(batch, width)``), in a single vectorised pass.
        """
        matrix = np.asarray(matrix)
        if matrix.ndim != 2:
            raise ValueError("batch_to_registers expects a (batch, width) array")
        per_vector = float(-(-matrix.shape[1] // self.elements_per_cycle))
        self.vector_count += matrix.shape[0]
        return TransposeResult(values=matrix, cycles=matrix.shape[0] * per_vector)

    def matrix_transpose(self, matrix: np.ndarray) -> TransposeResult:
        """Transpose a matrix moving between the digital and analog domains."""
        matrix = np.asarray(matrix)
        if matrix.ndim != 2:
            raise ValueError("matrix_transpose expects a 2-D array")
        cycles = float(-(-matrix.size // self.elements_per_cycle))
        self.matrix_count += 1
        return TransposeResult(values=matrix.T.copy(), cycles=cycles)

"""Hybrid compute tile and chip configuration (Table 2, Section 6).

The defaults reproduce the paper's evaluated configuration: 64x64 ReRAM
arrays, 64 analog arrays per ACE, 64 digital pipelines of 64 arrays per DCE,
an 8-byte-per-cycle ACE-to-DCE transfer network, and either two SAR ADCs or
one ramp ADC per active analog array.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analog.ace import AceConfig
from ..digital.dce import DceConfig
from ..errors import ConfigurationError

__all__ = ["HctConfig", "ChipConfig"]


@dataclass(frozen=True)
class HctConfig:
    """Configuration of a single hybrid compute tile (Table 2)."""

    #: Digital compute element geometry.
    dce: DceConfig = field(default_factory=DceConfig)
    #: Analog compute element geometry.
    ace: AceConfig = field(default_factory=AceConfig)
    #: ADC family used by the ACE: ``"sar"`` or ``"ramp"``.
    adc_kind: str = "sar"
    #: ACE-to-DCE transfer network bandwidth in bytes per cycle (Section 4).
    transfer_bytes_per_cycle: int = 8
    #: Digital logic family name.
    logic_family: str = "oscar"

    def __post_init__(self) -> None:
        if self.adc_kind not in ("sar", "ramp"):
            raise ConfigurationError("adc_kind must be 'sar' or 'ramp'")
        if self.transfer_bytes_per_cycle < 1:
            raise ConfigurationError("transfer_bytes_per_cycle must be >= 1")
        if self.ace.adc_kind != self.adc_kind:
            # Keep the nested ACE config consistent with the tile-level choice.
            object.__setattr__(
                self, "ace", AceConfig(
                    num_arrays=self.ace.num_arrays,
                    array_rows=self.ace.array_rows,
                    array_cols=self.ace.array_cols,
                    adc_kind=self.adc_kind,
                    adcs_per_array=2 if self.adc_kind == "sar" else 1,
                    row_periphery_power_mw=self.ace.row_periphery_power_mw,
                    input_buffer_area_um2=self.ace.input_buffer_area_um2,
                )
            )

    @classmethod
    def paper_default(cls, adc_kind: str = "sar") -> "HctConfig":
        """The Table 2 configuration with the requested ADC family."""
        adcs = 2 if adc_kind == "sar" else 1
        return cls(
            dce=DceConfig(num_pipelines=64, pipeline_depth=64, rows=64, cols=64),
            ace=AceConfig(num_arrays=64, array_rows=64, array_cols=64,
                          adc_kind=adc_kind, adcs_per_array=adcs),
            adc_kind=adc_kind,
        )

    @classmethod
    def small(cls, adc_kind: str = "sar") -> "HctConfig":
        """A reduced configuration for fast functional tests and examples."""
        adcs = 2 if adc_kind == "sar" else 1
        return cls(
            dce=DceConfig(num_pipelines=8, pipeline_depth=32, rows=16, cols=24),
            ace=AceConfig(num_arrays=16, array_rows=16, array_cols=16,
                          adc_kind=adc_kind, adcs_per_array=adcs),
            adc_kind=adc_kind,
        )

    @property
    def memory_capacity_bits(self) -> int:
        """Raw single-level-cell storage capacity of one HCT in bits."""
        digital = self.dce.capacity_bits
        analog = self.ace.num_arrays * self.ace.array_rows * self.ace.array_cols
        return digital + analog


@dataclass(frozen=True)
class ChipConfig:
    """Configuration of a full DARTH-PUM chip (Section 6)."""

    hct: HctConfig = field(default_factory=HctConfig.paper_default)
    #: Number of hybrid compute tiles on the chip.
    num_hcts: int = 1860
    #: Hybrid compute tiles sharing one front-end unit.
    hcts_per_front_end: int = 8
    #: Clock frequency in Hz (the cycle/energy model assumes 1 GHz).
    clock_hz: float = 1.0e9

    def __post_init__(self) -> None:
        if self.num_hcts < 1:
            raise ConfigurationError("a chip needs at least one HCT")
        if self.hcts_per_front_end < 1:
            raise ConfigurationError("hcts_per_front_end must be >= 1")

    @classmethod
    def iso_area_default(cls, adc_kind: str = "sar") -> "ChipConfig":
        """The iso-area chip of Section 6: 1860 HCTs (SAR) or 1660 (ramp)."""
        num = 1860 if adc_kind == "sar" else 1660
        return cls(hct=HctConfig.paper_default(adc_kind), num_hcts=num)

    @property
    def num_front_ends(self) -> int:
        """Number of shared front-end units on the chip."""
        return -(-self.num_hcts // self.hcts_per_front_end)

    @property
    def memory_capacity_gb(self) -> float:
        """Total chip memory capacity in gigabytes (SLC accounting)."""
        bits = self.num_hcts * self.hct.memory_capacity_bits
        return bits / 8 / 1e9

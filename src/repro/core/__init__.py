"""DARTH-PUM core: hybrid compute tiles, chip, area/energy models."""

from .arbiter import AnalogDigitalArbiter, Domain
from .area import AreaModel, Table3
from .chip import DarthPumChip
from .config import ChipConfig, HctConfig
from .frontend import FrontEnd, IssueRecord
from .hct import HctMvmResult, HybridComputeTile
from .injection_unit import InjectionTableEntry, InstructionInjectionUnit
from .shift_unit import ShiftedTransfer, ShiftUnit
from .transpose_unit import TransposeResult, TransposeUnit
from .vacore import VACore, VACoreManager

__all__ = [
    "AnalogDigitalArbiter",
    "AreaModel",
    "ChipConfig",
    "DarthPumChip",
    "Domain",
    "FrontEnd",
    "HctConfig",
    "HctMvmResult",
    "HybridComputeTile",
    "InjectionTableEntry",
    "InstructionInjectionUnit",
    "IssueRecord",
    "ShiftUnit",
    "ShiftedTransfer",
    "Table3",
    "TransposeResult",
    "TransposeUnit",
    "VACore",
    "VACoreManager",
]

"""The DARTH-PUM chip: many hybrid compute tiles plus shared front ends.

A chip instantiates up to 1860 HCTs (SAR ADCs) or 1660 HCTs (ramp ADCs) in
the area of the baseline CPU (Section 6).  Tiles are materialised lazily so
that functional experiments touching a handful of tiles stay cheap, while
throughput modelling can still reason about the full tile count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..errors import AllocationError, CapacityError
from ..metrics import CostLedger, merge_ledgers
from ..reram import DeviceParameters, NoiseConfig, ParasiticModel
from .area import AreaModel, Table3
from .config import ChipConfig
from .frontend import FrontEnd
from .hct import HybridComputeTile

__all__ = ["DarthPumChip"]


@dataclass
class _TileSlot:
    """Book-keeping for one HCT slot on the chip."""

    tile: Optional[HybridComputeTile] = None
    allocated: bool = False
    owner: Optional[str] = None


class DarthPumChip:
    """A full DARTH-PUM chip."""

    def __init__(
        self,
        config: Optional[ChipConfig] = None,
        device: Optional[DeviceParameters] = None,
        noise: Optional[NoiseConfig] = None,
        parasitics: Optional[ParasiticModel] = None,
    ) -> None:
        self.config = config if config is not None else ChipConfig.iso_area_default()
        self.device = device
        self.noise = noise
        self.parasitics = parasitics
        self.ledger = CostLedger()
        self._slots: Dict[int, _TileSlot] = {i: _TileSlot() for i in range(self.config.num_hcts)}
        #: Materialised tiles keyed by HCT index.  The chip has ~1860 slots
        #: but functional runs touch a handful; accounting sweeps iterate
        #: this registry instead of scanning every slot (the serving
        #: scheduler reads the energy total twice per dispatched batch).
        self._materialized_tiles: Dict[int, HybridComputeTile] = {}
        self.front_ends: List[FrontEnd] = [
            FrontEnd(front_end_id=i, hcts_served=self.config.hcts_per_front_end)
            for i in range(self.config.num_front_ends)
        ]
        self.area_model = AreaModel(self.config.hct)

    # ------------------------------------------------------------------ #
    # Tile management                                                      #
    # ------------------------------------------------------------------ #
    @property
    def num_hcts(self) -> int:
        """Total HCTs on the chip."""
        return self.config.num_hcts

    def hct(self, index: int) -> HybridComputeTile:
        """Return (materialising if needed) the HCT at ``index``."""
        if not 0 <= index < self.config.num_hcts:
            raise CapacityError(f"HCT index {index} out of range [0, {self.config.num_hcts})")
        slot = self._slots[index]
        if slot.tile is None:
            slot.tile = HybridComputeTile(
                config=self.config.hct,
                device=self.device,
                noise=self.noise,
                parasitics=self.parasitics,
                tile_id=index,
            )
            self._materialized_tiles[index] = slot.tile
        return slot.tile

    def _tiles_in_index_order(self) -> List[HybridComputeTile]:
        """Materialised tiles in HCT-index order (the slot-scan order)."""
        return [
            self._materialized_tiles[index]
            for index in sorted(self._materialized_tiles)
        ]

    def front_end_for(self, hct_index: int) -> FrontEnd:
        """The front-end unit serving ``hct_index``."""
        return self.front_ends[hct_index // self.config.hcts_per_front_end]

    def allocate_hcts(self, count: int, owner: str = "anonymous") -> List[int]:
        """Reserve ``count`` free HCTs for a workload; returns their indices."""
        free = [i for i, slot in self._slots.items() if not slot.allocated]
        if len(free) < count:
            raise AllocationError(
                f"requested {count} HCTs but only {len(free)} are free on this chip"
            )
        chosen = free[:count]
        for index in chosen:
            self._slots[index].allocated = True
            self._slots[index].owner = owner
        return chosen

    def release_hcts(self, indices: Iterable[int]) -> None:
        """Return HCTs to the free pool."""
        for index in indices:
            slot = self._slots.get(index)
            if slot is not None:
                slot.allocated = False
                slot.owner = None

    @property
    def allocated_hcts(self) -> int:
        """Number of HCTs currently reserved by workloads."""
        return sum(1 for slot in self._slots.values() if slot.allocated)

    @property
    def materialized_hcts(self) -> int:
        """Number of HCTs that have actually been instantiated."""
        return len(self._materialized_tiles)

    # ------------------------------------------------------------------ #
    # Chip-level accounting                                                #
    # ------------------------------------------------------------------ #
    def total_ledger(self) -> CostLedger:
        """Merged ledger across all materialised tiles plus the chip ledger."""
        ledgers = [self.ledger]
        ledgers.extend(tile.ledger for tile in self._tiles_in_index_order())
        return merge_ledgers(ledgers)

    def total_energy_pj(self) -> float:
        """Total energy across the chip, without materialising a ledger.

        Accumulates in the exact order :meth:`total_ledger` merges (chip
        ledger first, then tiles in index order), so the float result equals
        ``total_ledger().energy_pj`` bit for bit -- but skips the slot scan
        and the breakdown dict merging, which makes it cheap enough for the
        serving scheduler's per-batch energy deltas.
        """
        total = 0.0 + self.ledger.energy_pj
        for tile in self._tiles_in_index_order():
            total += tile.ledger.energy_pj
        return total

    def planner_builds(self) -> int:
        """Execution plans compiled across all materialised tiles.

        Serving tests assert this stays flat on the request hot path: all
        planning happens at registration time.
        """
        return sum(tile.planner.builds for tile in self._materialized_tiles.values())

    def front_end_energy_pj(self, cycles: float) -> float:
        """Energy of the active front ends over ``cycles`` cycles."""
        active = max(1, self.materialized_hcts // self.config.hcts_per_front_end)
        return active * Table3.FRONT_END_POWER_MW * cycles

    def area_cm2(self) -> float:
        """Effective chip area (calibrated, Section 6 iso-area sizing)."""
        return self.config.num_hcts * self.area_model.effective_hct_area_um2() / 1e8

    def memory_capacity_gb(self) -> float:
        """Total memory capacity of the chip in GB."""
        return self.config.memory_capacity_gb

    def utilization(self) -> float:
        """Fraction of HCTs currently allocated to workloads."""
        return self.allocated_hcts / self.config.num_hcts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DarthPumChip(hcts={self.config.num_hcts}, adc={self.config.hct.adc_kind}, "
            f"capacity={self.memory_capacity_gb():.1f} GB)"
        )

"""The analog/digital arbiter (Section 4.2).

Analog instructions take hundreds of cycles (ADC and array I/O), digital
ones take tens.  Dispatching both from one instruction stream risks a
younger digital instruction interleaving with (and corrupting) the reduction
sequence of an older analog MVM.  The arbiter locks each resource -- a
digital pipeline or an analog array group -- to either analog or digital use
until explicitly released, which both prevents interference and provides the
serialisation that makes an MVM appear atomic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Tuple

from ..errors import ArbiterConflictError

__all__ = ["Domain", "AnalogDigitalArbiter"]


class Domain(Enum):
    """Which side of the tile currently owns a resource."""

    ANALOG = "analog"
    DIGITAL = "digital"


@dataclass
class AnalogDigitalArbiter:
    """Tracks per-resource ownership and completion times."""

    #: resource name -> (owning domain, busy-until cycle)
    _owners: Dict[str, Tuple[Domain, float]] = field(default_factory=dict)
    #: Number of conflicts that stalled an instruction (statistics).
    stall_events: int = 0
    #: Total cycles of stall introduced by serialisation.
    stall_cycles: float = 0.0

    def acquire(self, resource: str, domain: Domain, now: float, duration: float) -> float:
        """Request ``resource`` for ``domain`` starting at cycle ``now``.

        Returns the cycle at which the operation can actually start: if the
        resource is held by the *other* domain, the start is delayed until
        the older operation completes (younger instructions never overtake).
        Holding the resource in the *same* domain simply serialises.
        """
        start = now
        if resource in self._owners:
            owner, busy_until = self._owners[resource]
            if busy_until > now:
                start = busy_until
                self.stall_events += 1
                self.stall_cycles += busy_until - now
        self._owners[resource] = (domain, start + duration)
        return start

    def try_acquire(self, resource: str, domain: Domain, now: float, duration: float) -> float:
        """Like :meth:`acquire` but raises if the other domain holds the lock.

        Used by the functional model to detect genuine interference bugs
        (e.g. a digital op touching a pipeline that is receiving analog
        partial products without a prior ``pipeline reserve``).
        """
        if resource in self._owners:
            owner, busy_until = self._owners[resource]
            if busy_until > now and owner is not domain:
                raise ArbiterConflictError(
                    f"resource {resource!r} is busy with {owner.value} work until "
                    f"cycle {busy_until:.0f}; {domain.value} access at cycle {now:.0f} "
                    "would interleave with it"
                )
        return self.acquire(resource, domain, now, duration)

    def release(self, resource: str) -> None:
        """Explicitly release a resource (e.g. after an MVM's reduction)."""
        self._owners.pop(resource, None)

    def busy_until(self, resource: str) -> float:
        """Cycle at which ``resource`` becomes free (0 if unowned)."""
        if resource not in self._owners:
            return 0.0
        return self._owners[resource][1]

    def owner(self, resource: str) -> Domain | None:
        """Domain currently owning ``resource`` (None if unowned)."""
        if resource not in self._owners:
            return None
        return self._owners[resource][0]

"""Virtual analog cores (vACores, Section 4.2).

Analog accelerators normally hard-wire their post-processing logic to one
operand width.  DARTH-PUM instead exposes a *virtual analog core*: a logical
grouping of analog arrays inside one ACE that together hold operands of a
requested ``element_size`` at a requested ``bits_per_cell``.  Allocating a
vACore configures the shift units and the instruction injection unit with
the matching shift-and-add sequence, so changing precision never requires
redesigning post-processing hardware -- only the shift lengths and ADD
arguments change.  Firmware tracks vACores; an HCT may only hold vACores of
one bit width at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..analog.ace import MatrixHandle
from ..analog.bitslicing import ShiftAddPlan
from ..errors import AllocationError, ConfigurationError

__all__ = ["VACore", "VACoreManager"]


@dataclass
class VACore:
    """A logical analog core of a fixed element size and cell precision."""

    core_id: int
    element_size: int
    bits_per_cell: int
    #: Arrays grouped into this core (filled in when a matrix is stored).
    array_ids: Tuple[int, ...] = ()
    #: The matrix handle currently resident in this core, if any.
    handle: Optional[MatrixHandle] = None

    def __post_init__(self) -> None:
        if self.element_size < 1:
            raise ConfigurationError("element_size must be >= 1 bit")
        if self.bits_per_cell < 1:
            raise ConfigurationError("bits_per_cell must be >= 1")
        if self.bits_per_cell > self.element_size:
            raise ConfigurationError("bits_per_cell cannot exceed element_size")

    @property
    def arrays_per_value(self) -> int:
        """Analog arrays needed to hold one full-width value."""
        return -(-self.element_size // self.bits_per_cell)

    def shift_add_plan(self, input_bits: Optional[int] = None) -> ShiftAddPlan:
        """The reduction plan the IIU and shift units are configured with."""
        return ShiftAddPlan(
            input_bits=self.element_size if input_bits is None else input_bits,
            weight_slices=self.arrays_per_value,
            bits_per_cell=self.bits_per_cell,
        )

    def bind(self, handle: MatrixHandle) -> None:
        """Associate a programmed matrix with this core."""
        if handle.bits_per_cell != self.bits_per_cell:
            raise AllocationError(
                "matrix bits_per_cell does not match the vACore configuration"
            )
        self.handle = handle
        self.array_ids = handle.array_ids


@dataclass
class VACoreManager:
    """Firmware-level tracking of the vACores allocated on one HCT."""

    cores: List[VACore] = field(default_factory=list)
    _next_id: int = 0

    def allocate(self, element_size: int, bits_per_cell: int) -> VACore:
        """Allocate a new vACore; all cores on an HCT share one bit width."""
        if self.cores and self.cores[0].element_size != element_size:
            raise AllocationError(
                f"HCT already holds vACores of {self.cores[0].element_size}-bit "
                f"elements; cannot mix with {element_size}-bit elements"
            )
        core = VACore(core_id=self._next_id, element_size=element_size,
                      bits_per_cell=bits_per_cell)
        self.cores.append(core)
        self._next_id += 1
        return core

    def release(self, core: VACore) -> None:
        """Release a vACore (its arrays become free once the matrix is released)."""
        self.cores = [c for c in self.cores if c.core_id != core.core_id]

    def reconfigure(self, element_size: int, bits_per_cell: int) -> None:
        """Change the HCT-wide precision (drops all existing vACores)."""
        self.cores.clear()
        self.allocate(element_size, bits_per_cell)

    @property
    def element_size(self) -> Optional[int]:
        """The common element size of the resident vACores, if any."""
        return self.cores[0].element_size if self.cores else None

"""Exception hierarchy for the DARTH-PUM reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without catching unrelated Python errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A configuration value is invalid or inconsistent."""


class CapacityError(ReproError):
    """A resource (arrays, pipelines, registers, HCTs) has been exhausted."""


class AllocationError(CapacityError):
    """A requested allocation (vACore, matrix, pipeline) cannot be satisfied."""


class NoDevicesError(AllocationError):
    """A pool operation was attempted with zero devices configured."""


class SchedulerError(ReproError):
    """The serving scheduler was configured or driven inconsistently."""


class AdmissionError(SchedulerError):
    """A request was refused admission (queue full, unknown matrix, ...)."""


class MappingError(ReproError):
    """A workload cannot be mapped onto the requested hardware resources."""


class IsaError(ReproError):
    """An instruction is malformed or used illegally."""


class ExecutionError(ReproError):
    """Runtime failure while executing a program or kernel."""


class ArbiterConflictError(ExecutionError):
    """An analog and a digital operation attempted to use the same resource."""


class RegisterLiveError(ExecutionError):
    """An MVM attempted to overwrite a live vector register without a reserve."""


class DeviceError(ReproError):
    """A memory-device level failure (programming, stuck-at, range)."""


class QuantizationError(ReproError):
    """A value cannot be represented with the requested precision."""

"""Exception hierarchy for the DARTH-PUM reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without catching unrelated Python errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A configuration value is invalid or inconsistent."""


class CapacityError(ReproError):
    """A resource (arrays, pipelines, registers, HCTs) has been exhausted."""


class AllocationError(CapacityError):
    """A requested allocation (vACore, matrix, pipeline) cannot be satisfied."""


class NoDevicesError(AllocationError):
    """A pool operation was attempted with zero devices configured."""


class SchedulerError(ReproError):
    """The serving scheduler was configured or driven inconsistently."""


class AdmissionError(SchedulerError):
    """A request was refused admission (queue full, unknown matrix, ...)."""


class SloError(SchedulerError):
    """A service-level-objective class is unknown or inconsistently defined."""


class MappingError(ReproError):
    """A workload cannot be mapped onto the requested hardware resources."""


class IsaError(ReproError):
    """An instruction is malformed or used illegally."""


class ExecutionError(ReproError):
    """Runtime failure while executing a program or kernel."""


class ArbiterConflictError(ExecutionError):
    """An analog and a digital operation attempted to use the same resource."""


class RegisterLiveError(ExecutionError):
    """An MVM attempted to overwrite a live vector register without a reserve."""


class DeviceError(ReproError):
    """A memory-device level failure (programming, stuck-at, range)."""


class DeviceFailedError(DeviceError):
    """A whole device (chip) failed while serving a shard of work.

    Raised by the fault-injection harness (and, in a real deployment, by the
    transport layer) when a device is dead or unresponsive.  The pool's
    fan-out treats it as retryable: the failing shard re-dispatches on a
    replica instead of failing its riders.

    Attributes
    ----------
    device_index:
        Pool index of the failed device.
    kind:
        Failure kind: ``"kill"`` (dead until healed), ``"hang"``
        (unresponsive for a bounded number of calls), or ``"exhausted"``
        (every replica of a shard failed).
    """

    def __init__(self, device_index: int, kind: str = "kill",
                 message: str = "") -> None:
        self.device_index = device_index
        self.kind = kind
        detail = message or f"device {device_index} failed ({kind})"
        super().__init__(detail)


class IntegrityError(DeviceError):
    """A device result failed its ABFT checksum verification.

    Raised by the pool's integrity tier (``DevicePool(verify="full")``)
    when a shard's partial result does not match the column-sum check
    vector precomputed at registration.  Like
    :class:`DeviceFailedError`, the fan-out treats it as retryable: the
    band re-executes on a replica within the same dispatch.

    Attributes
    ----------
    device_index:
        Pool index of the device that returned the corrupted result.
    band:
        Shard position (row band) whose partial failed the check.
    kind:
        ``"corruption"`` (one copy failed its check) or ``"exhausted"``
        (every copy of the band failed verification or died).
    """

    def __init__(self, device_index: int, band: int,
                 kind: str = "corruption", message: str = "") -> None:
        self.device_index = device_index
        self.band = band
        self.kind = kind
        detail = message or (
            f"device {device_index} returned a corrupted partial for band "
            f"{band} ({kind}): row-checksum mismatch"
        )
        super().__init__(detail)


class ReplicationError(AllocationError):
    """A replication factor cannot be satisfied by the configured pool.

    Attributes
    ----------
    replication:
        The requested replication factor.
    num_devices:
        Devices available in the pool.
    """

    def __init__(self, replication: int, num_devices: int,
                 message: str = "") -> None:
        self.replication = replication
        self.num_devices = num_devices
        detail = message or (
            f"replication factor {replication} cannot be satisfied by a pool "
            f"of {num_devices} device(s); replicas of one row band must live "
            f"on distinct devices"
        )
        super().__init__(detail)


class RebuildError(AllocationError):
    """A lost row band could not be rebuilt onto the remaining devices.

    Raised by :meth:`~repro.runtime.pool.DevicePool.rebuild` when a band
    with zero healthy copies cannot be reprogrammed anywhere -- no healthy
    device has the free HCTs the band needs.

    Attributes
    ----------
    allocation_id:
        Pooled allocation whose rebuild failed.
    band:
        Shard position (row band) that could not be placed.
    """

    def __init__(self, allocation_id: int, band: int,
                 message: str = "") -> None:
        self.allocation_id = allocation_id
        self.band = band
        detail = message or (
            f"band {band} of allocation {allocation_id} has no live copy and "
            f"cannot be rebuilt: no healthy device has enough free HCTs"
        )
        super().__init__(detail)


class QuantizationError(ReproError):
    """A value cannot be represented with the requested precision."""


class ClusterError(ReproError):
    """A cluster-tier failure (gateway, worker process, or transport)."""


class TransportError(ClusterError):
    """A shared-memory transport frame is malformed or corrupted.

    Raised by the ring-buffer codec when a frame fails its CRC (a torn or
    corrupted write) or its header cannot be decoded.  The ring itself
    stays usable: the reader position advances past the bad frame, so one
    corrupted message never wedges the channel.
    """


class WorkerFailedError(ClusterError):
    """A cluster worker process died or stopped heartbeating.

    The gateway treats it like :class:`DeviceFailedError` one level up:
    work inflight to the worker is re-routed to surviving workers holding
    a replica of the matrix, and only when no replica is left do the
    affected futures resolve with ``status="failed"``.

    Attributes
    ----------
    worker_id:
        Gateway index of the failed worker.
    kind:
        ``"dead"`` (process exited), ``"stale"`` (heartbeat timed out),
        or ``"saturated"`` (used internally when every replica's inflight
        window is full).
    """

    def __init__(self, worker_id: int, kind: str = "dead",
                 message: str = "") -> None:
        self.worker_id = worker_id
        self.kind = kind
        detail = message or f"cluster worker {worker_id} failed ({kind})"
        super().__init__(detail)


class BatchTimeoutError(ClusterError):
    """A dispatched batch exceeded its per-batch execution timeout.

    Distinct from the worker-level ``liveness_timeout``: the worker may
    still be heartbeating (a *gray* failure -- slow, not dead).  The
    gateway's watchdog raises this internally to trigger hedged
    re-dispatch onto another replica; it only surfaces to callers when
    every hedge attempt is exhausted.

    Attributes
    ----------
    worker_id:
        Worker the timed-out attempt was inflight to.
    batch_id:
        Gateway batch id of the timed-out batch.
    attempts:
        Dispatch attempts consumed when the error was raised.
    """

    def __init__(self, worker_id: int, batch_id: int, attempts: int = 1,
                 message: str = "") -> None:
        self.worker_id = worker_id
        self.batch_id = batch_id
        self.attempts = attempts
        detail = message or (
            f"batch {batch_id} timed out on worker {worker_id} "
            f"(attempt {attempts})"
        )
        super().__init__(detail)


class CircuitOpenError(AdmissionError):
    """Every replica that could serve a request is circuit-broken.

    Subclasses :class:`AdmissionError` deliberately: to a submitting
    client, "all breakers open" is backpressure -- back off and retry --
    exactly like a saturated inflight window, so existing
    ``except AdmissionError`` retry loops handle it unchanged.

    Attributes
    ----------
    worker_ids:
        The breaker-open workers that were considered.
    """

    def __init__(self, worker_ids=(), message: str = "") -> None:
        self.worker_ids = tuple(worker_ids)
        detail = message or (
            f"circuit breaker open for worker(s) {list(self.worker_ids)}; "
            f"no routable replica accepts traffic right now"
        )
        super().__init__(detail)

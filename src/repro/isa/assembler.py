"""A tiny textual assembler for the hybrid ISA.

The syntax is one instruction per line: an opcode mnemonic followed by
``key=value`` operand pairs.  Comments start with ``#``; blank lines are
ignored.  Values are parsed as integers when possible, otherwise kept as
strings (which is how matrix/data tags are written).

Example::

    # reduce two vectors
    dwrite pipeline=0 vr=0 data=a
    dwrite pipeline=0 vr=1 data=b
    dadd   pipeline=0 dst=2 a=0 b=1
    dread  pipeline=0 vr=2
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import IsaError
from .instructions import Instruction, Opcode
from .program import Program

__all__ = ["assemble", "disassemble"]

_MNEMONICS: Dict[str, Opcode] = {op.value: op for op in Opcode}


def _parse_value(text: str):
    """Parse an operand value: int if possible, else bool, else string."""
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(text, 0)
    except ValueError:
        return text


def assemble(source: str, name: str = "program") -> Program:
    """Assemble textual source into a :class:`Program`."""
    program = Program(name=name)
    for line_number, raw_line in enumerate(source.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        mnemonic = parts[0].lower()
        opcode = _MNEMONICS.get(mnemonic)
        if opcode is None:
            raise IsaError(f"line {line_number}: unknown mnemonic {mnemonic!r}")
        operands: Dict[str, object] = {}
        for token in parts[1:]:
            if "=" not in token:
                raise IsaError(
                    f"line {line_number}: operand {token!r} must be key=value"
                )
            key, value = token.split("=", 1)
            operands[key] = _parse_value(value)
        try:
            program.instructions.append(Instruction(opcode=opcode, operands=operands))
        except IsaError as exc:
            raise IsaError(f"line {line_number}: {exc}") from exc
    return program


def disassemble(program: Program) -> str:
    """Render a program back to assembler text (round-trips with assemble)."""
    lines: List[str] = []
    for instruction in program:
        operands = " ".join(f"{k}={v}" for k, v in instruction.operands.items())
        lines.append(f"{instruction.opcode.value} {operands}".rstrip())
    return "\n".join(lines)

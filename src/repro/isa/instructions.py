"""The DARTH-PUM hybrid ISA (Section 4.2, 4.4).

The ISA contains three instruction classes:

* **analog** instructions drive the ACE (programming matrices, executing
  MVMs) and implicitly involve the DCE for the reduction;
* **digital** instructions operate purely on DCE vector registers
  (bitwise/arithmetic word ops, shifts, element-wise loads/stores); and
* **coordination** instructions manage the hybrid interaction (pipeline
  reserve/release, vACore allocation, mode switches, fences).

Instructions are architectural: the front end decodes them and either issues
them to the target HCT or hands the expansion to the instruction injection
unit.  The :mod:`repro.isa.assembler` provides a tiny textual syntax used by
the examples and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional, Tuple

from ..errors import IsaError

__all__ = ["InstructionClass", "Opcode", "Instruction", "OPCODE_SPECS", "OpcodeSpec"]


class InstructionClass(Enum):
    """Dispatch class of an instruction."""

    ANALOG = "analog"
    DIGITAL = "digital"
    COORDINATION = "coordination"


class Opcode(Enum):
    """All architectural opcodes of the hybrid ISA."""

    # Analog-class instructions.
    SET_MATRIX = "set_matrix"
    UPDATE_ROW = "update_row"
    UPDATE_COL = "update_col"
    MVM = "mvm"

    # Digital-class instructions (word-level; expanded to µops per HCT).
    DWRITE = "dwrite"
    DREAD = "dread"
    DCOPY = "dcopy"
    DNOT = "dnot"
    DAND = "dand"
    DOR = "dor"
    DXOR = "dxor"
    DNOR = "dnor"
    DADD = "dadd"
    DSUB = "dsub"
    DMUL = "dmul"
    DSHL = "dshl"
    DSHR = "dshr"
    DROTL = "drotl"
    DROTR = "drotr"
    DCMPLT = "dcmplt"
    DMUX = "dmux"
    DRELU = "drelu"
    ELEM_LOAD = "elem_load"
    ELEM_STORE = "elem_store"

    # Coordination-class instructions.
    PIPE_RESERVE = "pipe_reserve"
    PIPE_RELEASE = "pipe_release"
    ALLOC_VACORE = "alloc_vacore"
    DISABLE_ANALOG = "disable_analog"
    DISABLE_DIGITAL = "disable_digital"
    FENCE = "fence"
    NOP = "nop"


@dataclass(frozen=True)
class OpcodeSpec:
    """Static properties of an opcode: class, operand names, typical latency."""

    klass: InstructionClass
    operands: Tuple[str, ...]
    #: Order-of-magnitude latency used by the front end to model HCT busy
    #: time; the actual latency comes from the HCT execution itself.
    expected_cycles: float


OPCODE_SPECS: Dict[Opcode, OpcodeSpec] = {
    Opcode.SET_MATRIX: OpcodeSpec(InstructionClass.ANALOG, ("handle", "shape", "value_bits", "bits_per_cell"), 1000.0),
    Opcode.UPDATE_ROW: OpcodeSpec(InstructionClass.ANALOG, ("handle", "row"), 500.0),
    Opcode.UPDATE_COL: OpcodeSpec(InstructionClass.ANALOG, ("handle", "col"), 500.0),
    Opcode.MVM: OpcodeSpec(InstructionClass.ANALOG, ("handle", "vector_vr", "result_vr", "input_bits"), 300.0),
    Opcode.DWRITE: OpcodeSpec(InstructionClass.DIGITAL, ("pipeline", "vr"), 64.0),
    Opcode.DREAD: OpcodeSpec(InstructionClass.DIGITAL, ("pipeline", "vr"), 64.0),
    Opcode.DCOPY: OpcodeSpec(InstructionClass.DIGITAL, ("pipeline", "dst", "src"), 1.0),
    Opcode.DNOT: OpcodeSpec(InstructionClass.DIGITAL, ("pipeline", "dst", "src"), 1.0),
    Opcode.DAND: OpcodeSpec(InstructionClass.DIGITAL, ("pipeline", "dst", "a", "b"), 3.0),
    Opcode.DOR: OpcodeSpec(InstructionClass.DIGITAL, ("pipeline", "dst", "a", "b"), 2.0),
    Opcode.DXOR: OpcodeSpec(InstructionClass.DIGITAL, ("pipeline", "dst", "a", "b"), 5.0),
    Opcode.DNOR: OpcodeSpec(InstructionClass.DIGITAL, ("pipeline", "dst", "a", "b"), 1.0),
    Opcode.DADD: OpcodeSpec(InstructionClass.DIGITAL, ("pipeline", "dst", "a", "b"), 12.0),
    Opcode.DSUB: OpcodeSpec(InstructionClass.DIGITAL, ("pipeline", "dst", "a", "b"), 13.0),
    Opcode.DMUL: OpcodeSpec(InstructionClass.DIGITAL, ("pipeline", "dst", "a", "b"), 200.0),
    Opcode.DSHL: OpcodeSpec(InstructionClass.DIGITAL, ("pipeline", "dst", "src", "amount"), 8.0),
    Opcode.DSHR: OpcodeSpec(InstructionClass.DIGITAL, ("pipeline", "dst", "src", "amount"), 8.0),
    Opcode.DROTL: OpcodeSpec(InstructionClass.DIGITAL, ("pipeline", "dst", "src", "amount"), 8.0),
    Opcode.DROTR: OpcodeSpec(InstructionClass.DIGITAL, ("pipeline", "dst", "src", "amount"), 8.0),
    Opcode.DCMPLT: OpcodeSpec(InstructionClass.DIGITAL, ("pipeline", "dst", "a", "b"), 13.0),
    Opcode.DMUX: OpcodeSpec(InstructionClass.DIGITAL, ("pipeline", "dst", "select", "a", "b"), 10.0),
    Opcode.DRELU: OpcodeSpec(InstructionClass.DIGITAL, ("pipeline", "dst", "src"), 4.0),
    Opcode.ELEM_LOAD: OpcodeSpec(InstructionClass.DIGITAL, ("dst_pipeline", "dst_vr", "addr_pipeline", "addr_vr", "table_pipeline", "table_base"), 128.0),
    Opcode.ELEM_STORE: OpcodeSpec(InstructionClass.DIGITAL, ("src_pipeline", "src_vr", "addr_pipeline", "addr_vr", "table_pipeline", "table_base"), 128.0),
    Opcode.PIPE_RESERVE: OpcodeSpec(InstructionClass.COORDINATION, ("pipeline",), 1.0),
    Opcode.PIPE_RELEASE: OpcodeSpec(InstructionClass.COORDINATION, ("pipeline",), 1.0),
    Opcode.ALLOC_VACORE: OpcodeSpec(InstructionClass.COORDINATION, ("element_size", "bits_per_cell"), 1.0),
    Opcode.DISABLE_ANALOG: OpcodeSpec(InstructionClass.COORDINATION, ("handle",), 100.0),
    Opcode.DISABLE_DIGITAL: OpcodeSpec(InstructionClass.COORDINATION, (), 1.0),
    Opcode.FENCE: OpcodeSpec(InstructionClass.COORDINATION, (), 1.0),
    Opcode.NOP: OpcodeSpec(InstructionClass.COORDINATION, (), 1.0),
}


@dataclass(frozen=True)
class Instruction:
    """One hybrid-ISA instruction with named operands."""

    opcode: Opcode
    operands: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        spec = OPCODE_SPECS.get(self.opcode)
        if spec is None:
            raise IsaError(f"unknown opcode {self.opcode!r}")
        missing = [name for name in spec.operands if name not in self.operands]
        if missing:
            raise IsaError(
                f"{self.opcode.value} is missing operands: {', '.join(missing)}"
            )

    @property
    def spec(self) -> OpcodeSpec:
        """Static spec of this instruction's opcode."""
        return OPCODE_SPECS[self.opcode]

    @property
    def klass(self) -> InstructionClass:
        """Dispatch class (analog / digital / coordination)."""
        return self.spec.klass

    @property
    def expected_cycles(self) -> float:
        """Front-end estimate of the instruction's occupancy."""
        return self.spec.expected_cycles

    def operand(self, name: str, default: Optional[object] = None) -> object:
        """Fetch a named operand."""
        return self.operands.get(name, default)

    def __str__(self) -> str:
        args = ", ".join(f"{k}={v}" for k, v in self.operands.items())
        return f"{self.opcode.value} {args}"

"""Program container and a functional executor for the hybrid ISA.

A :class:`Program` is an ordered list of instructions targeting one HCT.
The :class:`ProgramExecutor` interprets digital- and coordination-class
instructions directly against a :class:`~repro.core.hct.HybridComputeTile`,
and analog-class instructions through the tile's MVM path, which makes the
ISA usable end to end (the AES example is written this way) while sharing
all functional and cost modelling with the library API.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from ..errors import ExecutionError, IsaError
from .instructions import Instruction, InstructionClass, Opcode

__all__ = ["Program", "ProgramExecutor", "ExecutionTrace"]


@dataclass
class Program:
    """An ordered sequence of hybrid-ISA instructions."""

    instructions: List[Instruction] = field(default_factory=list)
    name: str = "program"

    def append(self, opcode: Opcode, **operands) -> Instruction:
        """Append an instruction built from keyword operands."""
        instruction = Instruction(opcode=opcode, operands=operands)
        self.instructions.append(instruction)
        return instruction

    def extend(self, instructions: Sequence[Instruction]) -> None:
        """Append a sequence of already-built instructions."""
        self.instructions.extend(instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    def count_by_class(self) -> Dict[str, int]:
        """Histogram of instruction classes (useful for mix statistics)."""
        counts: Dict[str, int] = {}
        for instruction in self.instructions:
            key = instruction.klass.value
            counts[key] = counts.get(key, 0) + 1
        return counts


@dataclass
class ExecutionTrace:
    """Result of executing a program on one tile."""

    executed: int = 0
    reads: Dict[int, np.ndarray] = field(default_factory=dict)
    mvm_results: List[np.ndarray] = field(default_factory=list)


class ProgramExecutor:
    """Interprets hybrid-ISA programs against a hybrid compute tile."""

    def __init__(self, tile) -> None:
        self.tile = tile
        #: Matrix handles created by SET_MATRIX, keyed by the program's name.
        self.handles: Dict[str, object] = {}
        #: Host-visible data supplied for DWRITE instructions, keyed by tag.
        self.host_data: Dict[str, np.ndarray] = {}

    def bind_data(self, tag: str, values: np.ndarray) -> None:
        """Provide host data referenced by ``DWRITE`` instructions."""
        self.host_data[tag] = np.asarray(values)

    def bind_matrix(self, tag: str, matrix: np.ndarray, value_bits: int = 8,
                    bits_per_cell: int = 1) -> None:
        """Pre-stage a matrix for a later ``SET_MATRIX`` instruction."""
        self.host_data[tag] = np.asarray(matrix)

    def run(self, program: Program) -> ExecutionTrace:
        """Execute ``program`` in order; returns the values read back."""
        trace = ExecutionTrace()
        for instruction in program:
            self._execute(instruction, trace)
            trace.executed += 1
        return trace

    # ------------------------------------------------------------------ #
    # Dispatch                                                             #
    # ------------------------------------------------------------------ #
    def _execute(self, instruction: Instruction, trace: ExecutionTrace) -> None:
        opcode = instruction.opcode
        ops = instruction.operands
        tile = self.tile

        if opcode is Opcode.NOP or opcode is Opcode.FENCE:
            return
        if opcode is Opcode.PIPE_RESERVE:
            tile.dce.reserve_pipeline(int(ops["pipeline"]))
            return
        if opcode is Opcode.PIPE_RELEASE:
            tile.dce.release_pipeline(int(ops["pipeline"]))
            return
        if opcode is Opcode.ALLOC_VACORE:
            tile.alloc_vacore(int(ops["element_size"]), int(ops["bits_per_cell"]))
            return
        if opcode is Opcode.DISABLE_DIGITAL:
            tile.disable_digital_mode()
            return
        if opcode is Opcode.DISABLE_ANALOG:
            handle = self.handles[str(ops["handle"])]
            tile.disable_analog_mode(handle)
            return

        if opcode is Opcode.SET_MATRIX:
            tag = str(ops["handle"])
            matrix = self.host_data.get(tag)
            if matrix is None:
                raise ExecutionError(f"no matrix bound for handle tag {tag!r}")
            self.handles[tag] = tile.set_matrix(
                matrix,
                value_bits=int(ops["value_bits"]),
                bits_per_cell=int(ops["bits_per_cell"]),
            )
            return
        if opcode in (Opcode.UPDATE_ROW, Opcode.UPDATE_COL):
            tag = str(ops["handle"])
            handle = self.handles[tag]
            values = self.host_data[f"{tag}:update"]
            if opcode is Opcode.UPDATE_ROW:
                self.handles[tag] = tile.ace.update_row(handle, int(ops["row"]), values)
            else:
                self.handles[tag] = tile.ace.update_col(handle, int(ops["col"]), values)
            return
        if opcode is Opcode.MVM:
            tag = str(ops["handle"])
            handle = self.handles[tag]
            pipeline = tile.pipeline(int(ops.get("vector_pipeline", 0)))
            vector = pipeline.read_vr(int(ops["vector_vr"]))[: handle.shape[0]]
            result = tile.execute_mvm(handle, vector, input_bits=int(ops["input_bits"]))
            trace.mvm_results.append(result.values)
            result_pipeline = tile.pipeline(int(ops.get("result_pipeline", 0)))
            result_pipeline.write_vr(int(ops["result_vr"]), result.values)
            return

        if instruction.klass is InstructionClass.DIGITAL:
            self._execute_digital(instruction, trace)
            return
        raise IsaError(f"unhandled opcode {opcode}")  # pragma: no cover - defensive

    def _execute_digital(self, instruction: Instruction, trace: ExecutionTrace) -> None:
        opcode = instruction.opcode
        ops = instruction.operands
        tile = self.tile

        if opcode in (Opcode.ELEM_LOAD, Opcode.ELEM_STORE):
            method = tile.dce.element_load if opcode is Opcode.ELEM_LOAD else tile.dce.element_store
            key = "dst" if opcode is Opcode.ELEM_LOAD else "src"
            method(
                int(ops[f"{key}_pipeline"]),
                int(ops[f"{key}_vr"]),
                int(ops["addr_pipeline"]),
                int(ops["addr_vr"]),
                int(ops["table_pipeline"]),
                int(ops["table_base"]),
            )
            return

        pipeline = tile.pipeline(int(ops["pipeline"]))
        if opcode is Opcode.DWRITE:
            tag = str(ops.get("data", ops["vr"]))
            values = self.host_data.get(str(tag))
            if values is None:
                raise ExecutionError(f"no host data bound for DWRITE tag {tag!r}")
            pipeline.write_vr(int(ops["vr"]), values)
        elif opcode is Opcode.DREAD:
            trace.reads[int(ops["vr"])] = pipeline.read_vr(
                int(ops["vr"]), signed=bool(ops.get("signed", False))
            )
        elif opcode is Opcode.DCOPY:
            pipeline.copy(int(ops["dst"]), int(ops["src"]))
        elif opcode is Opcode.DNOT:
            pipeline.not_(int(ops["dst"]), int(ops["src"]))
        elif opcode is Opcode.DAND:
            pipeline.and_(int(ops["dst"]), int(ops["a"]), int(ops["b"]))
        elif opcode is Opcode.DOR:
            pipeline.or_(int(ops["dst"]), int(ops["a"]), int(ops["b"]))
        elif opcode is Opcode.DXOR:
            pipeline.xor(int(ops["dst"]), int(ops["a"]), int(ops["b"]))
        elif opcode is Opcode.DNOR:
            pipeline.nor(int(ops["dst"]), int(ops["a"]), int(ops["b"]))
        elif opcode is Opcode.DADD:
            pipeline.add(int(ops["dst"]), int(ops["a"]), int(ops["b"]))
        elif opcode is Opcode.DSUB:
            pipeline.sub(int(ops["dst"]), int(ops["a"]), int(ops["b"]))
        elif opcode is Opcode.DMUL:
            pipeline.multiply(int(ops["dst"]), int(ops["a"]), int(ops["b"]))
        elif opcode is Opcode.DSHL:
            pipeline.shift_value_left(int(ops["dst"]), int(ops["src"]), int(ops["amount"]))
        elif opcode is Opcode.DSHR:
            pipeline.shift_value_right(int(ops["dst"]), int(ops["src"]), int(ops["amount"]))
        elif opcode is Opcode.DROTL:
            pipeline.rotate_value_left(int(ops["dst"]), int(ops["src"]), int(ops["amount"]))
        elif opcode is Opcode.DROTR:
            pipeline.rotate_value_right(int(ops["dst"]), int(ops["src"]), int(ops["amount"]))
        elif opcode is Opcode.DCMPLT:
            pipeline.compare_lt(int(ops["dst"]), int(ops["a"]), int(ops["b"]))
        elif opcode is Opcode.DMUX:
            pipeline.mux(int(ops["dst"]), int(ops["select"]), int(ops["a"]), int(ops["b"]))
        elif opcode is Opcode.DRELU:
            pipeline.relu(int(ops["dst"]), int(ops["src"]))
        else:  # pragma: no cover - defensive
            raise IsaError(f"unhandled digital opcode {opcode}")

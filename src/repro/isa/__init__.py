"""Hybrid ISA: instructions, programs, executor, and assembler."""

from .assembler import assemble, disassemble
from .instructions import Instruction, InstructionClass, Opcode, OpcodeSpec, OPCODE_SPECS
from .program import ExecutionTrace, Program, ProgramExecutor

__all__ = [
    "ExecutionTrace",
    "Instruction",
    "InstructionClass",
    "OPCODE_SPECS",
    "Opcode",
    "OpcodeSpec",
    "Program",
    "ProgramExecutor",
    "assemble",
    "disassemble",
]

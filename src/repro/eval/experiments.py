"""Experiment harness: regenerates every table and figure of the evaluation.

Each ``figure*/table*`` function returns a plain dictionary with the same
rows/series the paper reports (normalised the same way), so the benchmark
harness and the examples can print paper-style tables.  ``run_all``
evaluates everything and is what ``EXPERIMENTS.md`` is generated from.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..baselines import figure7_sweep, model_for
from ..core.area import AreaModel, Table3
from ..core.config import HctConfig
from ..metrics import geometric_mean
from ..workloads.aes.profile import aes_profile
from ..workloads.cnn import ResNet20, resnet20_profile
from ..workloads.cnn.mapping import NoisyInferenceEngine
from ..workloads.cnn.dataset import SyntheticCifar10
from ..workloads.llm import encoder_profile
from ..workloads.profile import WorkloadProfile

__all__ = [
    "WORKLOADS",
    "workload_profiles",
    "figure07_naive_hybrid",
    "figure13_throughput",
    "figure14_aes_breakdown",
    "figure15_resnet_layers",
    "figure16_energy",
    "figure17_adc_comparison",
    "figure18_gpu_comparison",
    "table2_configuration",
    "table3_area_power",
    "section75_accuracy",
    "headline_results",
    "run_all",
]

#: The three evaluated workloads, in the paper's order.
WORKLOADS = ("aes128", "resnet20", "llm_encoder")

#: Display names used in the figures.
WORKLOAD_LABELS = {"aes128": "AES", "resnet20": "ResNet-20", "llm_encoder": "LLMEnc"}


def workload_profiles() -> Dict[str, WorkloadProfile]:
    """The per-item operation profiles of the three evaluated workloads."""
    return {
        "aes128": aes_profile(128),
        "resnet20": resnet20_profile(),
        "llm_encoder": encoder_profile(),
    }


def _evaluate(architecture: str, workload: str, profile: WorkloadProfile, adc: str = "sar"):
    return model_for(architecture, workload, adc_kind=adc).evaluate(profile)


# --------------------------------------------------------------------------- #
# Figure 7: naive hybrid motivation sweep                                       #
# --------------------------------------------------------------------------- #
def figure07_naive_hybrid() -> Dict[str, List]:
    """AES-128 throughput of D, H-1..H-9, A with OSCAR and ideal families."""
    return figure7_sweep(("oscar", "ideal"))


# --------------------------------------------------------------------------- #
# Figure 13: iso-area throughput vs Baseline                                    #
# --------------------------------------------------------------------------- #
def figure13_throughput(adc: str = "sar") -> Dict[str, Dict[str, float]]:
    """Throughput of DigitalPUM, DARTH-PUM, AppAccel normalised to Baseline."""
    profiles = workload_profiles()
    result: Dict[str, Dict[str, float]] = {}
    for arch in ("digital_pum", "darth_pum", "app_accel"):
        row = {}
        for workload in WORKLOADS:
            base = _evaluate("baseline", workload, profiles[workload])
            perf = _evaluate(arch, workload, profiles[workload], adc)
            row[WORKLOAD_LABELS[workload]] = perf.speedup_over(base)
        row["GeoMean"] = geometric_mean([row[WORKLOAD_LABELS[w]] for w in WORKLOADS])
        result[arch] = row
    return result


# --------------------------------------------------------------------------- #
# Figure 14: AES kernel latency breakdown                                       #
# --------------------------------------------------------------------------- #
def figure14_aes_breakdown() -> Dict[str, Dict[str, float]]:
    """Per-kernel AES latency for Baseline, DigitalPUM, DARTH-PUM.

    Values are percentages of the Baseline's total single-block latency (the
    Baseline row therefore sums to 100).
    """
    profile = aes_profile(128)
    kernels = ("DataMovement", "SubBytes", "ShiftRows", "MixColumns", "AddRoundKey")
    # Split the profile's per-kernel work: lookups are SubBytes, the MVMs are
    # MixColumns, host bytes are DataMovement, and the element-wise work is
    # split between ShiftRows and AddRoundKey in proportion to byte counts.
    rounds = 10
    shift_fraction = (12.0 * rounds) / profile.elementwise_ops
    ark_fraction = (16.0 * (rounds + 1)) / profile.elementwise_ops
    # The remainder of the element-wise work is the post-MVM parity
    # extraction, which belongs to MixColumns.
    mix_fraction = max(0.0, 1.0 - shift_fraction - ark_fraction)

    def kernel_profile(kernel: str) -> WorkloadProfile:
        return WorkloadProfile(
            name="aes128",
            item_name="block",
            mvm_ops=profile.mvm_ops if kernel == "MixColumns" else [],
            elementwise_ops=profile.elementwise_ops * (
                shift_fraction if kernel == "ShiftRows"
                else ark_fraction if kernel == "AddRoundKey"
                else mix_fraction if kernel == "MixColumns" else 0.0
            ),
            lookup_ops=profile.lookup_ops if kernel == "SubBytes" else 0.0,
            nonlinear_ops=0.0,
            host_bytes_per_item=profile.host_bytes_per_item if kernel == "DataMovement" else 0.0,
        )

    breakdown: Dict[str, Dict[str, float]] = {}
    base_total = _evaluate("baseline", "aes128", profile).latency_s
    for arch in ("baseline", "digital_pum", "darth_pum"):
        model = model_for(arch, "aes128")
        # Figure 14 plots kernel execution time; the per-item coordination
        # overhead is not attributable to a single kernel, so it is excluded
        # from the per-kernel bars.
        model.per_item_overhead_s = 0.0
        row = {
            kernel: model.evaluate(kernel_profile(kernel)).latency_s
            for kernel in kernels
        }
        breakdown[arch] = {k: 100.0 * v / base_total for k, v in row.items()}
    return breakdown


# --------------------------------------------------------------------------- #
# Figure 15: per-layer ResNet-20 speedups                                       #
# --------------------------------------------------------------------------- #
def figure15_resnet_layers(model: Optional[ResNet20] = None) -> Dict[str, Dict[str, float]]:
    """Per-layer speedup over Baseline for DigitalPUM, DARTH-PUM, AppAccel."""
    model = model if model is not None else ResNet20()
    result: Dict[str, Dict[str, float]] = {"digital_pum": {}, "darth_pum": {}, "app_accel": {}}
    layer_entries = model.named_mvm_layers()
    for label, layer, input_shape in layer_entries:
        rows, cols = layer.mvm_shape(input_shape)
        count = layer.mvm_count(input_shape)
        layer_profile = WorkloadProfile(
            name="resnet20",
            item_name=label,
            mvm_ops=[__import__("repro.workloads.profile", fromlist=["MvmOp"]).MvmOp(
                rows=rows, cols=cols, count=float(count), label=label)],
            elementwise_ops=3.0 * cols * count,
            host_bytes_per_item=2.0 * cols * count,
        )
        base = _evaluate("baseline", "resnet20", layer_profile)
        for arch in result:
            model = model_for(arch, "resnet20")
            # The per-inference coordination overhead is spread across the
            # network's layers when attributing per-layer latency.
            model.per_item_overhead_s /= len(layer_entries)
            perf = model.evaluate(layer_profile)
            result[arch][label] = base.latency_s / perf.latency_s
    for arch in result:
        result[arch]["GeoMean"] = geometric_mean(list(result[arch].values()))
    return result


# --------------------------------------------------------------------------- #
# Figure 16: energy savings                                                     #
# --------------------------------------------------------------------------- #
def figure16_energy(adc: str = "sar") -> Dict[str, Dict[str, float]]:
    """Energy savings over Baseline (log-scale figure in the paper)."""
    profiles = workload_profiles()
    result: Dict[str, Dict[str, float]] = {}
    for arch in ("digital_pum", "darth_pum", "app_accel"):
        row = {}
        for workload in WORKLOADS:
            base = _evaluate("baseline", workload, profiles[workload])
            perf = _evaluate(arch, workload, profiles[workload], adc)
            row[WORKLOAD_LABELS[workload]] = perf.energy_savings_over(base)
        row["GeoMean"] = geometric_mean([row[WORKLOAD_LABELS[w]] for w in WORKLOADS])
        result[arch] = row
    return result


# --------------------------------------------------------------------------- #
# Figure 17: SAR vs ramp ADCs                                                   #
# --------------------------------------------------------------------------- #
def figure17_adc_comparison() -> Dict[str, Dict[str, Dict[str, float]]]:
    """Throughput and energy savings of DARTH-PUM with SAR vs ramp ADCs."""
    profiles = workload_profiles()
    result: Dict[str, Dict[str, Dict[str, float]]] = {"throughput": {}, "energy": {}}
    for adc in ("sar", "ramp"):
        tp_row, en_row = {}, {}
        for workload in WORKLOADS:
            base = _evaluate("baseline", workload, profiles[workload])
            perf = _evaluate("darth_pum", workload, profiles[workload], adc)
            tp_row[WORKLOAD_LABELS[workload]] = perf.speedup_over(base)
            en_row[WORKLOAD_LABELS[workload]] = perf.energy_savings_over(base)
        tp_row["GeoMean"] = geometric_mean([tp_row[WORKLOAD_LABELS[w]] for w in WORKLOADS])
        en_row["GeoMean"] = geometric_mean([en_row[WORKLOAD_LABELS[w]] for w in WORKLOADS])
        result["throughput"][f"darth_pum_{adc}"] = tp_row
        result["energy"][f"darth_pum_{adc}"] = en_row
    return result


# --------------------------------------------------------------------------- #
# Figure 18: iso-area comparison with a GPU                                     #
# --------------------------------------------------------------------------- #
def figure18_gpu_comparison() -> Dict[str, Dict[str, float]]:
    """DARTH-PUM (and DigitalPUM) speedup and energy savings over the GPU."""
    profiles = workload_profiles()
    result: Dict[str, Dict[str, float]] = {}
    for arch in ("digital_pum", "darth_pum"):
        speed_row, energy_row = {}, {}
        for workload in WORKLOADS:
            gpu = _evaluate("gpu", workload, profiles[workload])
            perf = _evaluate(arch, workload, profiles[workload])
            speed_row[WORKLOAD_LABELS[workload]] = perf.speedup_over(gpu)
            energy_row[WORKLOAD_LABELS[workload]] = perf.energy_savings_over(gpu)
        speed_row["GeoMean"] = geometric_mean([speed_row[WORKLOAD_LABELS[w]] for w in WORKLOADS])
        energy_row["GeoMean"] = geometric_mean([energy_row[WORKLOAD_LABELS[w]] for w in WORKLOADS])
        result[f"{arch}_speedup"] = speed_row
        result[f"{arch}_energy"] = energy_row
    return result


# --------------------------------------------------------------------------- #
# Tables 2 and 3                                                                #
# --------------------------------------------------------------------------- #
def table2_configuration() -> Dict[str, object]:
    """The hybrid-compute-tile configuration (Table 2)."""
    config = HctConfig.paper_default("sar")
    return {
        "dce_num_pipelines": config.dce.num_pipelines,
        "dce_pipeline_depth": config.dce.pipeline_depth,
        "dce_array_size": (config.dce.rows, config.dce.cols),
        "ace_num_arrays": config.ace.num_arrays,
        "ace_array_size": (config.ace.array_rows, config.ace.array_cols),
        "num_adcs": {"sar": 2, "ramp": 1},
        "adc_latency_cycles": {"sar": 1, "ramp": 256},
    }


def table3_area_power() -> Dict[str, object]:
    """Area/power entries and the iso-area HCT counts (Table 3)."""
    sar = AreaModel(HctConfig.paper_default("sar"))
    ramp = AreaModel(HctConfig.paper_default("ramp"))
    return {
        "dce_area_um2": sar.dce_area_um2(),
        "ace_area_um2_sar": sar.ace_area_um2(),
        "ace_area_um2_ramp": ramp.ace_area_um2(),
        "auxiliary_area_um2": sar.auxiliary_area_um2(),
        "front_end_area_um2": Table3.FRONT_END_UM2,
        "iso_area_hcts": {
            "sar": sar.iso_area_hct_count(),
            "ramp": ramp.iso_area_hct_count(),
        },
        "chip_capacity_gb": {
            "sar": sar.chip_memory_capacity_gb(sar.iso_area_hct_count()),
            "ramp": ramp.chip_memory_capacity_gb(ramp.iso_area_hct_count()),
        },
    }


# --------------------------------------------------------------------------- #
# Section 7.5: accuracy under analog non-idealities                             #
# --------------------------------------------------------------------------- #
def section75_accuracy(samples: int = 64, noise_lsb: float = 0.5,
                       seed: int = 0) -> Dict[str, float]:
    """ResNet-20 accuracy with and without analog noise injection.

    The paper reports 75.4% CIFAR-10 accuracy with non-idealities, matching
    the Baseline.  CIFAR-10 and trained weights are unavailable offline, so
    the experiment substitutes the synthetic dataset and an untrained model:
    the quantity of interest is that noise injection does not change the
    model's predictions relative to its own noise-free quantised inference.
    """
    model = ResNet20(seed=seed)
    dataset = SyntheticCifar10(seed=seed)
    images, labels = dataset.sample(samples)
    clean = NoisyInferenceEngine(model, noise_lsb=0.0, seed=seed)
    noisy = NoisyInferenceEngine(model, noise_lsb=noise_lsb, seed=seed)
    clean_predictions = np.argmax(clean.forward(images), axis=1)
    noisy_predictions = np.argmax(noisy.forward(images), axis=1)
    return {
        "samples": float(samples),
        "noise_lsb": noise_lsb,
        "prediction_agreement": float(np.mean(clean_predictions == noisy_predictions)),
        "clean_accuracy": float(np.mean(clean_predictions == labels)),
        "noisy_accuracy": float(np.mean(noisy_predictions == labels)),
    }


# --------------------------------------------------------------------------- #
# Headline results                                                              #
# --------------------------------------------------------------------------- #
def headline_results() -> Dict[str, Dict[str, float]]:
    """The abstract's headline speedups and energy savings over Baseline."""
    profiles = workload_profiles()
    speedups, energy = {}, {}
    for workload in WORKLOADS:
        base = _evaluate("baseline", workload, profiles[workload])
        darth = _evaluate("darth_pum", workload, profiles[workload])
        speedups[WORKLOAD_LABELS[workload]] = darth.speedup_over(base)
        energy[WORKLOAD_LABELS[workload]] = darth.energy_savings_over(base)
    return {
        "speedup": speedups,
        "energy_savings": energy,
        "paper_speedup": {"AES": 59.4, "ResNet-20": 14.8, "LLMEnc": 40.8},
        "paper_energy_savings": {"AES": 39.6, "ResNet-20": 51.2, "LLMEnc": 110.7},
    }


def run_all() -> Dict[str, object]:
    """Run every experiment (used to generate EXPERIMENTS.md)."""
    return {
        "figure07": figure07_naive_hybrid(),
        "figure13": figure13_throughput(),
        "figure14": figure14_aes_breakdown(),
        "figure15": figure15_resnet_layers(),
        "figure16": figure16_energy(),
        "figure17": figure17_adc_comparison(),
        "figure18": figure18_gpu_comparison(),
        "table2": table2_configuration(),
        "table3": table3_area_power(),
        "section75": section75_accuracy(samples=16),
        "headline": headline_results(),
    }

"""Evaluation harness: regenerates the paper's figures and tables."""

from .experiments import (
    WORKLOADS,
    figure07_naive_hybrid,
    figure13_throughput,
    figure14_aes_breakdown,
    figure15_resnet_layers,
    figure16_energy,
    figure17_adc_comparison,
    figure18_gpu_comparison,
    headline_results,
    run_all,
    section75_accuracy,
    table2_configuration,
    table3_area_power,
    workload_profiles,
)
from .report import format_experiment, format_table, render_report

__all__ = [
    "WORKLOADS",
    "figure07_naive_hybrid",
    "figure13_throughput",
    "figure14_aes_breakdown",
    "figure15_resnet_layers",
    "figure16_energy",
    "figure17_adc_comparison",
    "figure18_gpu_comparison",
    "format_experiment",
    "format_table",
    "headline_results",
    "render_report",
    "run_all",
    "section75_accuracy",
    "table2_configuration",
    "table3_area_power",
    "workload_profiles",
]

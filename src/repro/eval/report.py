"""Plain-text rendering of experiment results (paper-style tables)."""

from __future__ import annotations

from typing import Dict, Mapping

__all__ = ["format_table", "format_experiment", "render_report"]


def format_table(rows: Mapping[str, Mapping[str, float]], title: str = "",
                 value_format: str = "{:8.2f}") -> str:
    """Render a nested mapping as an aligned text table.

    Outer keys become row labels; inner keys become columns.
    """
    if not rows:
        return title
    columns = list(next(iter(rows.values())).keys())
    label_width = max(len(str(label)) for label in rows) + 2
    header = " " * label_width + "".join(f"{col:>12}" for col in columns)
    lines = [title, header] if title else [header]
    for label, row in rows.items():
        cells = "".join(
            f"{value_format.format(row[col]):>12}" if isinstance(row.get(col), (int, float))
            else f"{str(row.get(col, '')):>12}"
            for col in columns
        )
        lines.append(f"{label:<{label_width}}" + cells)
    return "\n".join(lines)


def format_experiment(name: str, data: object) -> str:
    """Render one experiment's result dictionary for the report."""
    if isinstance(data, dict) and data and all(isinstance(v, dict) for v in data.values()):
        try:
            return format_table(data, title=f"== {name} ==")  # type: ignore[arg-type]
        except Exception:  # pragma: no cover - fall back to repr for odd shapes
            pass
    lines = [f"== {name} =="]
    if isinstance(data, dict):
        for key, value in data.items():
            lines.append(f"  {key}: {value}")
    else:
        lines.append(f"  {data}")
    return "\n".join(lines)


def render_report(results: Dict[str, object]) -> str:
    """Render the full experiment suite as a text report."""
    sections = [format_experiment(name, data) for name, data in results.items()]
    return "\n\n".join(sections)

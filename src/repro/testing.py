"""Deterministic seeding utilities shared by the test and benchmark suites.

All randomness in the repository's suites derives from one knob: the
``REPRO_TEST_SEED`` environment variable (default 12345).  Tests and
chaos/property harnesses obtain generators through :func:`derive_rng`,
which hands out independent, label-keyed streams of the master seed — so
every random matrix, fault schedule, and property case is reproducible
from a single number, and CI can sweep seeds by exporting the variable.

This lives in the library (rather than a ``conftest.py``) so that the
``tests/`` and ``benchmarks/`` trees — and any downstream harness — can
share one implementation without conftest module-name collisions.
"""

from __future__ import annotations

import hashlib
import os

import numpy as np

#: Master seed for every random stream in the test suite.
REPRO_TEST_SEED = int(os.environ.get("REPRO_TEST_SEED", "12345"))


def derive_rng(*labels) -> np.random.Generator:
    """An independent generator keyed by ``labels`` under the master seed.

    Same seed + same labels -> bit-identical stream, on any platform; two
    different label tuples -> statistically independent streams.  Calling
    it twice with the same labels intentionally yields identical streams
    (determinism tests rely on that).
    """
    entropy = [REPRO_TEST_SEED] + [
        int.from_bytes(hashlib.sha256(str(label).encode()).digest()[:4], "little")
        for label in labels
    ]
    return np.random.default_rng(np.random.SeedSequence(entropy))

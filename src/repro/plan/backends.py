"""Execution backends: interpreters of the :class:`~repro.plan.ir.MvmPlan`.

PR 3's engines were selected by strings threaded through every layer and
hand-synchronised by tests.  Here each engine is an
:class:`ExecutionBackend` registered in the :class:`BackendRegistry`, and
both consume the *same compiled plan object*:

* :class:`ReferenceExecutor` walks ``plan.steps`` one crossbar call at a
  time -- the hardware-faithful schedule and the ground truth.
* :class:`VectorizedExecutor` contracts the same steps as stacked tensor
  ops over ``plan.kernel`` and re-issues the reference charge stream
  analytically.  Bit-identity (results, ledger totals *and* breakdowns,
  timelines, IIU statistics) is a hard invariant pinned by
  ``tests/test_kernels.py``.
* :class:`CostModelExecutor` ("estimate") charges the full analytic cost
  of a batch -- identical ledger totals and timelines -- without computing
  any values: capacity planning at zero arithmetic cost, and proof that
  new backends drop in without touching the tile.

Backends are resolved by name (or passed as instances) anywhere a
``backend=`` knob exists; ``None`` defers to :func:`default_backend`,
which honours the ``REPRO_BACKEND`` environment variable (the CI
equivalence matrix runs the suite once per backend through it).
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..analog.ace import BatchMvmExecution, BatchPartialProduct
from ..analog.bitslicing import slice_inputs
from ..analog.kernels import (
    ace_forward_vectorized,
    analog_step_costs,
    issue_mvm_charges,
    validate_input_range,
)
from ..errors import AllocationError, ConfigurationError, ExecutionError, QuantizationError
from .ir import HctBatchMvmResult, MvmPlan

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "BackendRegistry",
    "CostModelExecutor",
    "ExecutionBackend",
    "ReferenceExecutor",
    "VectorizedExecutor",
    "default_backend",
    "resolve_backend",
]

#: Backend used when callers pass ``backend=None`` and the environment
#: does not override it.
DEFAULT_BACKEND = "vectorized"

#: Environment variable overriding the default backend (used by the CI
#: equivalence matrix to run the whole suite under each executor).
BACKEND_ENV_VAR = "REPRO_BACKEND"


class ExecutionBackend:
    """One interpreter of the :class:`~repro.plan.ir.MvmPlan` IR.

    Subclasses implement :meth:`execute_batch`; they receive the owning
    tile (for its ACE, DCE, shift/transpose units, IIU, arbiter, and
    ledger) and the compiled plan, and must honour the bit-identity
    contract: results, ledger totals and breakdowns, timelines, and IIU
    statistics all match the reference interpretation of the same plan.
    """

    #: Registry name of the backend.
    name = "base"

    def execute_batch(
        self,
        tile,
        plan: MvmPlan,
        vectors: np.ndarray,
        optimized: bool = True,
        compensation=None,
        active_adc_bits: Optional[int] = None,
    ) -> HctBatchMvmResult:
        """Execute one batched MVM described by ``plan`` on ``tile``."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


def _admit_batch(tile, plan: MvmPlan, vectors: np.ndarray) -> np.ndarray:
    """Shared entry validation of every backend (same errors, same order)."""
    if not tile.analog_enabled:
        raise AllocationError("the ACE of this tile has been disabled")
    vectors = np.atleast_2d(np.asarray(vectors, dtype=np.int64))
    if vectors.shape[0] == 0:
        raise ExecutionError("execute_mvm_batch needs at least one input vector")
    rows, _ = plan.handle.shape
    if vectors.shape[1] != rows:
        raise QuantizationError(
            f"input batch of shape {vectors.shape} does not match matrix rows ({rows})"
        )
    return vectors


class ReferenceExecutor(ExecutionBackend):
    """The loop-faithful interpreter: one crossbar call per plan step."""

    name = "reference"

    def execute_batch(
        self,
        tile,
        plan: MvmPlan,
        vectors: np.ndarray,
        optimized: bool = True,
        compensation=None,
        active_adc_bits: Optional[int] = None,
    ) -> HctBatchMvmResult:
        vectors = _admit_batch(tile, plan, vectors)
        batch = vectors.shape[0]
        start_energy = tile.ledger.energy_pj
        execution = self._analog_forward(tile, plan, vectors, active_adc_bits)

        if not tile.digital_post_processing:
            values = execution.reduce()
            if compensation is not None:
                values = compensation.recover_batch(values, vectors)
            cycles = execution.analog_cycles
            return HctBatchMvmResult(
                values=values,
                batch=batch,
                optimized_cycles=cycles,
                unoptimized_cycles=cycles,
                energy_pj=tile.ledger.energy_pj - start_energy,
                breakdown={"analog": cycles},
                num_partial_products=len(execution.partials),
            )

        values, reduce_costs, slots_saved = self._reduce_in_dce(tile, plan, execution)
        if compensation is not None:
            values = compensation.recover_batch(values, vectors)

        add_costs = [c for c in reduce_costs if c.name == "add"]
        n_adds = len(add_costs)
        add_uops = add_costs[0].uops_per_bit if add_costs else 12.0
        optimized_cycles, breakdown = plan.cost.timeline(batch, n_adds, add_uops, True)
        unoptimized_cycles, _ = plan.cost.timeline(batch, n_adds, add_uops, False)
        charged = optimized_cycles if optimized else unoptimized_cycles
        tile._commit_schedule(plan, optimized_cycles, charged)

        return HctBatchMvmResult(
            values=values,
            batch=batch,
            optimized_cycles=optimized_cycles,
            unoptimized_cycles=unoptimized_cycles,
            energy_pj=tile.ledger.energy_pj - start_energy,
            breakdown=breakdown,
            num_partial_products=len(execution.partials),
            iiu_slots_saved=slots_saved,
        )

    @staticmethod
    def _analog_forward(
        tile, plan: MvmPlan, vectors: np.ndarray, active_adc_bits: Optional[int]
    ) -> BatchMvmExecution:
        """Walk ``plan.steps`` in issue order, one crossbar call per step."""
        ace = tile.ace
        if not ace.enabled:
            raise AllocationError("the ACE of this tile has been disabled")
        bit_matrices = slice_inputs(vectors, plan.input_bits)
        execution = BatchMvmExecution(
            handle=plan.handle, batch=vectors.shape[0], plan=plan.shift_add
        )
        start = ace.ledger.snapshot()
        for step in plan.steps:
            tile_bits = bit_matrices[step.input_bit][:, step.row_start: step.row_end]
            output = ace.crossbar(step.array_id).mvm_batch(
                tile_bits, active_adc_bits=active_adc_bits
            )
            execution.partials.append(
                BatchPartialProduct(
                    values=output.values,
                    shift=step.shift,
                    input_bit=step.input_bit,
                    weight_slice=step.weight_slice,
                    row_tile=step.row_tile,
                    col_tile=step.col_tile,
                    col_offset=step.col_offset,
                )
            )
        end = ace.ledger.snapshot()
        execution.analog_cycles = end.cycles - start.cycles
        execution.analog_energy_pj = end.energy_pj - start.energy_pj
        return execution

    @staticmethod
    def _reduce_in_dce(tile, plan: MvmPlan, execution: BatchMvmExecution):
        """Gate-accounted batch reduction of the partial-product stream.

        One NumPy shift-and-add per column tile; the shift units still align
        every partial product in flight and the IIU reconstructs the
        equivalent µop stream for cost accounting
        (:meth:`~repro.core.injection_unit.InstructionInjectionUnit.inject_reduction_batch`).
        """
        handle = plan.handle
        staging = list(plan.staging_vrs)
        all_costs = []
        slots_saved = 0
        result = np.zeros((execution.batch, handle.shape[1]), dtype=np.int64)

        for red in plan.reduction:
            pipeline = tile.dce.pipeline(plan.output_base + red.col_tile)
            tile_partials = [p for p in execution.partials if p.col_tile == red.col_tile]
            if not tile_partials:
                continue
            shifted_values = []
            shifts = []
            for partial in tile_partials:
                transfer = tile.shift_unit.apply(
                    np.rint(partial.values).astype(np.int64),
                    input_bit=partial.input_bit,
                    extra_shift=partial.weight_slice * handle.bits_per_cell,
                )
                tile.transpose_unit.batch_to_registers(transfer.values)
                shifted_values.append(transfer.values)
                shifts.append(transfer.shift)
            reduced, costs, saved = tile.iiu.inject_reduction_batch(
                pipeline, shifted_values, plan.accumulator_vr, staging, shifts
            )
            all_costs.extend(costs)
            slots_saved += saved
            result[:, red.col_offset: red.col_offset + red.width] = reduced[:, : red.width]
        return result, all_costs, slots_saved


class VectorizedExecutor(ExecutionBackend):
    """The stacked-tensor interpreter: one contraction per shard."""

    name = "vectorized"

    def execute_batch(
        self,
        tile,
        plan: MvmPlan,
        vectors: np.ndarray,
        optimized: bool = True,
        compensation=None,
        active_adc_bits: Optional[int] = None,
    ) -> HctBatchMvmResult:
        vectors = _admit_batch(tile, plan, vectors)
        batch = vectors.shape[0]
        start_energy = tile.ledger.energy_pj
        forward = ace_forward_vectorized(
            tile.ace, plan, vectors, active_adc_bits=active_adc_bits
        )

        if not tile.digital_post_processing:
            values = forward.raw_reduce()
            if compensation is not None:
                values = compensation.recover_batch(values, vectors)
            cycles = forward.analog_cycles
            return HctBatchMvmResult(
                values=values,
                batch=batch,
                optimized_cycles=cycles,
                unoptimized_cycles=cycles,
                energy_pj=tile.ledger.energy_pj - start_energy,
                breakdown={"analog": cycles},
                num_partial_products=forward.num_partials,
            )

        values, (n_adds, add_uops), slots_saved = self._reduce_analytic(
            tile, plan, forward
        )
        if compensation is not None:
            values = compensation.recover_batch(values, vectors)

        optimized_cycles, breakdown = plan.cost.timeline(batch, n_adds, add_uops, True)
        unoptimized_cycles, _ = plan.cost.timeline(batch, n_adds, add_uops, False)
        charged = optimized_cycles if optimized else unoptimized_cycles
        tile._commit_schedule(plan, optimized_cycles, charged)

        return HctBatchMvmResult(
            values=values,
            batch=batch,
            optimized_cycles=optimized_cycles,
            unoptimized_cycles=unoptimized_cycles,
            energy_pj=tile.ledger.energy_pj - start_energy,
            breakdown=breakdown,
            num_partial_products=forward.num_partials,
            iiu_slots_saved=slots_saved,
        )

    @staticmethod
    def _reduce_analytic(tile, plan: MvmPlan, forward):
        """DCE reduction with analytic µop reconstruction.

        Computes the shift-and-add sum of every column tile as one integer
        tensor reduction, then re-issues the exact accounting the reference
        interpreter's ``inject_reduction_batch`` performs: the same
        ``dce.write`` / ``dce.boolean`` ledger charges, op-log entries, IIU
        statistics, and accumulator-register state.  Returns ``(values,
        (n_adds, add_uops_per_bit), slots_saved)``.
        """
        handle = plan.handle
        batch = forward.batch
        result = np.zeros((batch, handle.shape[1]), dtype=np.int64)
        slots_saved = 0
        n_adds = 0
        add_uops = 12.0

        for red in plan.reduction:
            pipeline = tile.dce.pipeline(plan.output_base + red.col_tile)
            tiles = [t for t in forward.tiles if t.kernel.col_tile == red.col_tile]
            if not tiles:
                continue
            reduced = forward.tile_totals(tiles[0]).copy()
            for shard in tiles[1:]:
                reduced += forward.tile_totals(shard)
            reduced = tile.iiu.wrap_accumulator(reduced, pipeline.depth)

            width = reduced.shape[1]
            add_uops = float(pipeline.add_uops_per_bit)
            _, saved = tile.iiu.account_reduction_batch(
                pipeline, red.partials_per_vector, batch, width
            )
            pipeline.set_vr_bits(plan.accumulator_vr, reduced[-1])
            slots_saved += saved
            tile.transpose_unit.vector_count += batch * red.partials_per_vector
            n_adds += batch * red.partials_per_vector

            result[:, red.col_offset: red.col_offset + width] = reduced[:, :width]
        return result, (n_adds, add_uops), slots_saved


class CostModelExecutor(ExecutionBackend):
    """Cost-only interpreter: real ledgers and timelines, no arithmetic.

    Re-issues the exact analytic charge stream of the real engines -- the
    per-step ``ace.mvm`` charges, the IIU's batched write+ADD accounting,
    and the ``hct.mvm_batch`` timeline charge -- so ``CostLedger`` totals,
    breakdowns, and the returned timelines are bit-identical to an actual
    execution, while ``values`` is an all-zero placeholder flagged with
    ``estimated=True``.  Useful for capacity planning and admission-control
    what-ifs where only the ledger matters.  ``compensation`` is ignored
    (there are no values to recover) and no noise RNG is consumed.
    """

    name = "estimate"

    def execute_batch(
        self,
        tile,
        plan: MvmPlan,
        vectors: np.ndarray,
        optimized: bool = True,
        compensation=None,
        active_adc_bits: Optional[int] = None,
    ) -> HctBatchMvmResult:
        vectors = _admit_batch(tile, plan, vectors)
        validate_input_range(vectors, plan.input_bits)
        batch = vectors.shape[0]
        handle = plan.handle
        start_energy = tile.ledger.energy_pj

        ace = tile.ace
        if not ace.enabled:
            raise AllocationError("the ACE of this tile has been disabled")
        start = ace.ledger.snapshot()
        step_costs = analog_step_costs(plan.kernel, batch, plan.input_bits, active_adc_bits)
        issue_mvm_charges(ace.ledger, plan.input_bits, plan.kernel.num_slices, step_costs)
        end = ace.ledger.snapshot()
        analog_cycles = end.cycles - start.cycles

        values = np.zeros((batch, handle.shape[1]), dtype=np.int64)
        if not tile.digital_post_processing:
            return HctBatchMvmResult(
                values=values,
                batch=batch,
                optimized_cycles=analog_cycles,
                unoptimized_cycles=analog_cycles,
                energy_pj=tile.ledger.energy_pj - start_energy,
                breakdown={"analog": analog_cycles},
                num_partial_products=plan.num_partial_products,
                estimated=True,
            )

        slots_saved = 0
        n_adds = 0
        add_uops = 12.0
        for red in plan.reduction:
            pipeline = tile.dce.pipeline(plan.output_base + red.col_tile)
            add_uops = float(pipeline.add_uops_per_bit)
            _, saved = tile.iiu.account_reduction_batch(
                pipeline, red.partials_per_vector, batch, red.width
            )
            slots_saved += saved
            tile.transpose_unit.vector_count += batch * red.partials_per_vector
            n_adds += batch * red.partials_per_vector

        optimized_cycles, breakdown = plan.cost.timeline(batch, n_adds, add_uops, True)
        unoptimized_cycles, _ = plan.cost.timeline(batch, n_adds, add_uops, False)
        charged = optimized_cycles if optimized else unoptimized_cycles
        tile._commit_schedule(plan, optimized_cycles, charged)

        return HctBatchMvmResult(
            values=values,
            batch=batch,
            optimized_cycles=optimized_cycles,
            unoptimized_cycles=unoptimized_cycles,
            energy_pj=tile.ledger.energy_pj - start_energy,
            breakdown=breakdown,
            num_partial_products=plan.num_partial_products,
            iiu_slots_saved=slots_saved,
            estimated=True,
        )


class BackendRegistry:
    """Name -> :class:`ExecutionBackend` registry.

    New backends register here and immediately work at every layer
    (tile, device, pool, server) -- nothing above the registry knows the
    set of engines.
    """

    def __init__(self) -> None:
        self._backends: Dict[str, ExecutionBackend] = {}

    def register(
        self, backend: ExecutionBackend, replace: bool = False
    ) -> ExecutionBackend:
        """Register ``backend`` under its ``name``; returns it for chaining."""
        name = backend.name
        if not name or name == "base":
            raise ConfigurationError(
                "execution backends must define a non-default `name`"
            )
        if name in self._backends and not replace:
            raise ConfigurationError(
                f"backend {name!r} is already registered (pass replace=True "
                "to override)"
            )
        self._backends[name] = backend
        return backend

    def get(self, name: str) -> ExecutionBackend:
        """The backend registered under ``name``."""
        backend = self._backends.get(name)
        if backend is None:
            raise ConfigurationError(
                f"unknown execution backend {name!r}; expected one of "
                f"{self.names()} or an ExecutionBackend instance"
            )
        return backend

    def names(self) -> Tuple[str, ...]:
        """Registered backend names, sorted."""
        return tuple(sorted(self._backends))

    def __contains__(self, name: str) -> bool:
        return name in self._backends


#: The process-wide registry every ``backend=`` knob resolves through.
BACKENDS = BackendRegistry()
BACKENDS.register(ReferenceExecutor())
BACKENDS.register(VectorizedExecutor())
BACKENDS.register(CostModelExecutor())


def default_backend() -> str:
    """The backend name used when callers pass ``backend=None``.

    Reads :data:`BACKEND_ENV_VAR` at call time, so one environment variable
    flips the whole stack (the CI equivalence matrix relies on this).
    """
    return os.environ.get(BACKEND_ENV_VAR, DEFAULT_BACKEND)


def resolve_backend(
    backend: Union[None, str, ExecutionBackend],
) -> ExecutionBackend:
    """Map ``None``/name/instance to an :class:`ExecutionBackend`."""
    if backend is None:
        backend = default_backend()
    if isinstance(backend, ExecutionBackend):
        return backend
    return BACKENDS.get(backend)

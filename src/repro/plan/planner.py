"""The Planner: compiles :class:`~repro.plan.ir.MvmPlan` objects, once.

One planner instance lives on every
:class:`~repro.core.hct.HybridComputeTile`.  ``plan_for`` is the only
entry point: it returns the cached plan for ``(allocation, input_bits)``
or builds it exactly once.  The cache itself is held by the tile's ACE --
next to the shard-kernel cache and invalidated by the same ``release``
path -- so ``update_row`` / ``update_col`` (which reprogram through
release + ``set_matrix``) can never serve a stale schedule.

``builds`` counts actual compilations; the serving layers aggregate it
(`DevicePool.planner_builds`, `PumServer.planner_builds`) so tests can
assert the hot path performs zero planning.
"""

from __future__ import annotations

from ..analog.bitslicing import ShiftAddPlan
from .ir import MvmPlan, PlanCostModel, ReductionStep, unroll_schedule

__all__ = ["Planner"]


class Planner:
    """Builds and caches execution plans for one hybrid compute tile."""

    def __init__(self, tile) -> None:
        self.tile = tile
        #: Plans actually compiled (cache misses) over the tile's lifetime.
        self.builds = 0
        #: Cache hits served without compiling.
        self.hits = 0

    def plan_for(self, handle, input_bits: int) -> MvmPlan:
        """The compiled plan for ``handle`` at ``input_bits`` (cached).

        The cache key is ``(handle, input_bits)``; the plan's cost model is
        closed-form in the batch size, so one plan serves every batch shape.
        """
        cache = self.tile.ace._plans
        key = (handle.handle_id, int(input_bits))
        plan = cache.get(key)
        if plan is not None:
            self.hits += 1
            return plan
        plan = self._build(handle, int(input_bits))
        cache[key] = plan
        self.builds += 1
        return plan

    # ------------------------------------------------------------------ #
    # Compilation                                                          #
    # ------------------------------------------------------------------ #
    def _build(self, handle, input_bits: int) -> MvmPlan:
        tile = self.tile
        ace = tile.ace
        rows, cols = handle.shape
        array_rows = ace.config.array_rows
        array_cols = ace.config.array_cols

        shift_add = ShiftAddPlan(
            input_bits=input_bits,
            weight_slices=handle.num_slices,
            bits_per_cell=handle.bits_per_cell,
        )
        steps = unroll_schedule(handle, input_bits, array_rows, array_cols)

        partials_per_col_tile = shift_add.num_partial_products * handle.row_tiles
        reduction = tuple(
            ReductionStep(
                col_tile=col_tile,
                col_offset=col_tile * array_cols,
                width=min(cols - col_tile * array_cols, array_cols),
                partials_per_vector=partials_per_col_tile,
            )
            for col_tile in range(handle.col_tiles)
        )

        # Analytic timeline parameters (Figure 10).  All arrays of a step
        # operate concurrently, so the sample crossbar's periphery describes
        # every step; input bits are serial, column tiles are not.
        sample = ace.crossbar(handle.array_ids[0])
        cols_per_tile = min(cols, array_cols)
        adc_latency = sample.adc.conversion_latency(cols_per_tile, sample.num_adcs, None)
        output_base = tile._matrix_output_pipeline.get(handle.handle_id, 0)
        cost = PlanCostModel(
            per_step_analog=sample.dac.drive_latency(rows) + 1.0 + adc_latency,
            transfer=tile.shift_unit.transfer_cycles(cols_per_tile),
            write=float(tile.config.dce.rows),
            depth=tile.config.dce.pipeline_depth,
            max_shift=shift_add.max_shift,
            steps_per_vector=shift_add.num_partial_products * handle.row_tiles,
            # Captured now so PlanCostModel.predict matches the add stream
            # the backends will derive when they actually reduce.
            add_uops_per_bit=float(tile.dce.pipeline(output_base).add_uops_per_bit),
        )

        return MvmPlan(
            handle=handle,
            input_bits=input_bits,
            shift_add=shift_add,
            steps=steps,
            reduction=reduction,
            ace=ace,
            cost=cost,
            output_base=output_base,
            accumulator_vr=0,
            staging_vrs=tuple(tile._staging_vrs()),
        )

"""Plan/compile/execute: the ExecutionPlan IR and its backend registry.

``repro.plan`` separates *planning* (deriving the bit-sliced MVM schedule
of an allocation: shard topology, step order, reduction layout, analytic
costs) from *execution* (interpreting that schedule).  The
:class:`Planner` compiles one cacheable :class:`MvmPlan` per
``(allocation, input_bits)``; the :class:`BackendRegistry` holds the
interpreters (:class:`ReferenceExecutor`, :class:`VectorizedExecutor`,
and the cost-only :class:`CostModelExecutor`), selected with ``backend=``
at every layer from :class:`~repro.core.hct.HybridComputeTile` up through
:class:`~repro.runtime.server.PumServer`.  :class:`ShardedPlan` extends
the compiled form across a device pool so serving does zero per-request
planning.

``python -m repro.plan`` (or ``make plan-dump``) pretty-prints a sample
plan.
"""

from .backends import (
    BACKENDS,
    DEFAULT_BACKEND,
    BackendRegistry,
    CostModelExecutor,
    ExecutionBackend,
    ReferenceExecutor,
    VectorizedExecutor,
    default_backend,
    resolve_backend,
)
from .ir import (
    HctBatchMvmResult,
    HctMvmResult,
    MvmPlan,
    PlanCostModel,
    PlanHandle,
    PlanStep,
    ReductionStep,
    ShardTask,
    ShardedPlan,
)
from .planner import Planner

__all__ = [
    "BACKENDS",
    "BackendRegistry",
    "CostModelExecutor",
    "DEFAULT_BACKEND",
    "ExecutionBackend",
    "HctBatchMvmResult",
    "HctMvmResult",
    "MvmPlan",
    "PlanCostModel",
    "PlanHandle",
    "PlanStep",
    "Planner",
    "ReductionStep",
    "ReferenceExecutor",
    "ShardTask",
    "ShardedPlan",
    "VectorizedExecutor",
    "default_backend",
    "resolve_backend",
]

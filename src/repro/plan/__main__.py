"""Pretty-print a sample execution plan (``make plan-dump``).

Builds a small multi-tile, multi-slice allocation on one HCT plus a
row-sharded pooled allocation, compiles both, and renders them with
``describe()`` -- a quick way to see what the planner actually derives
for a given geometry.
"""

from __future__ import annotations

import numpy as np

from .backends import BACKENDS, default_backend


def main() -> None:
    from ..core.config import ChipConfig, HctConfig
    from ..core.hct import HybridComputeTile
    from ..runtime.pool import DevicePool

    print("=== Tile-level MvmPlan " + "=" * 40)
    tile = HybridComputeTile(HctConfig.small())
    matrix = (np.arange(32 * 24, dtype=np.int64).reshape(32, 24) % 7) - 3
    handle = tile.set_matrix(matrix, value_bits=3, bits_per_cell=1)
    plan = tile.planner.plan_for(handle, input_bits=3)
    print(plan.describe())

    print()
    print("=== Pool-level ShardedPlan " + "=" * 36)
    pool = DevicePool(
        num_devices=3,
        config=ChipConfig(hct=HctConfig.small(), num_hcts=2),
        policy="round_robin",
    )
    big = (np.arange(96 * 16, dtype=np.int64).reshape(96, 16) % 199) - 99
    allocation = pool.set_matrix(big, element_size=8, precision=0)
    sharded = pool.compile(allocation, input_bits=8)
    print(sharded.describe())

    print()
    print(f"registered backends: {BACKENDS.names()} (default: {default_backend()!r})")


if __name__ == "__main__":
    main()

"""The ExecutionPlan IR: a compiled, cacheable bit-plane MVM schedule.

The hybrid bit-sliced MVM schedule used to be re-derived implicitly on
every call: the reference loop walked it, the vectorized engine
re-materialised it as stacked tensors, and the pool/server re-planned
sharding per request.  This module makes the schedule a first-class
artifact -- the same compile-then-execute separation profile-guided
optimisers use to make repeated executions cheap and retargetable:

* :class:`MvmPlan` is the per-allocation IR for one HCT-resident matrix:
  the shard/tile/slice topology (:class:`PlanStep`), the digital reduction
  layout (:class:`ReductionStep`), the stacked-tensor operand
  (:class:`~repro.analog.kernels.ShardKernel`), and an analytic
  :class:`PlanCostModel` for the Figure 10 timelines.
* A :class:`~repro.plan.planner.Planner` builds the plan once per
  ``(allocation, input_bits)`` and caches it next to the shard-kernel
  cache; every execution backend in
  :mod:`~repro.plan.backends` is an *interpreter* of the same plan, so
  bit-identity between engines is structural rather than hand-synchronised.
* :class:`ShardedPlan` lifts the same idea to the device pool: the
  row-band-to-device topology of a pooled allocation is compiled once at
  registration time so the per-request hot path does zero planning.

``plan.describe()`` renders the schedule for docs and debugging
(``make plan-dump`` prints a sample).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

import numpy as np

from ..analog.bitslicing import ShiftAddPlan

__all__ = [
    "HctBatchMvmResult",
    "HctMvmResult",
    "MvmPlan",
    "PlanCostModel",
    "PlanHandle",
    "PlanStep",
    "ReductionStep",
    "ShardTask",
    "ShardedPlan",
    "unroll_schedule",
]


@dataclass
class HctMvmResult:
    """The outcome of one hybrid MVM on an HCT."""

    #: The reduced output vector (signed integers).
    values: np.ndarray
    #: Wall-clock cycles with the optimised (shift-in-flight) schedule.
    optimized_cycles: float
    #: Wall-clock cycles with the naive serialised schedule (Figure 10a).
    unoptimized_cycles: float
    #: Energy consumed by this MVM (analog + digital), in pJ.
    energy_pj: float
    #: Per-phase cycle breakdown of the optimised schedule.
    breakdown: Dict[str, float] = field(default_factory=dict)
    #: Number of partial products the reduction consumed.
    num_partial_products: int = 0
    #: Front-end instruction slots saved by the IIU.
    iiu_slots_saved: int = 0

    @property
    def cycles(self) -> float:
        """Alias for the optimised wall-clock latency."""
        return self.optimized_cycles

    @property
    def speedup_from_optimization(self) -> float:
        """How much the Section 4.1 optimisations help for this MVM."""
        if self.optimized_cycles == 0:
            return 1.0
        return self.unoptimized_cycles / self.optimized_cycles


@dataclass
class HctBatchMvmResult:
    """The outcome of one batched hybrid MVM on an HCT."""

    #: The reduced output vectors, one row per input vector (signed integers).
    values: np.ndarray
    #: Number of input vectors in the batch.
    batch: int
    #: Wall-clock cycles for the whole batch, optimised schedule.
    optimized_cycles: float
    #: Wall-clock cycles for the whole batch, naive serialised schedule.
    unoptimized_cycles: float
    #: Energy consumed by the batch (analog + digital), in pJ.
    energy_pj: float
    #: Per-phase cycle breakdown of the optimised schedule.
    breakdown: Dict[str, float] = field(default_factory=dict)
    #: Partial products the reduction consumed *per vector*.
    num_partial_products: int = 0
    #: Front-end instruction slots saved by the IIU across the batch.
    iiu_slots_saved: int = 0
    #: True when a cost-only backend produced this result: the ledger
    #: charges and timelines are real, ``values`` is a placeholder.
    estimated: bool = False

    @property
    def cycles(self) -> float:
        """Alias for the optimised wall-clock latency of the batch."""
        return self.optimized_cycles

    @property
    def cycles_per_vector(self) -> float:
        """Amortised optimised latency per input vector."""
        return self.optimized_cycles / max(1, self.batch)

    @property
    def speedup_from_optimization(self) -> float:
        """How much the Section 4.1 optimisations help for this batch."""
        if self.optimized_cycles == 0:
            return 1.0
        return self.unoptimized_cycles / self.optimized_cycles


@dataclass(frozen=True)
class PlanStep:
    """One analog macro-step of the bit-sliced schedule.

    The reference backend executes exactly one crossbar call per step, in
    plan order (input bit outermost, then row tile, column tile, weight
    slice -- the hardware issue order); the vectorized backend collapses
    all steps of a shard into one broadcast matmul but produces the same
    post-ADC values.
    """

    input_bit: int
    row_tile: int
    col_tile: int
    weight_slice: int
    #: Analog array executing this step.
    array_id: int
    #: Recombination shift of the produced partial product.
    shift: int
    #: Input rows driven by this step (matrix-row coordinates).
    row_start: int
    row_end: int
    #: First output column this step's partial product lands on.
    col_offset: int


def unroll_schedule(
    handle, input_bits: int, array_rows: int, array_cols: int
) -> Tuple[PlanStep, ...]:
    """Unroll the bit-sliced schedule of ``handle`` in reference issue order.

    Input bit outermost (inputs are applied one bit per cycle), then row
    tile, column tile, weight slice; the ``(row tile, col tile, slice) ->
    array`` mapping mirrors the allocation order of ``set_matrix``.  The
    single source of the schedule derivation: the
    :class:`~repro.plan.planner.Planner` bakes the result into every
    :class:`MvmPlan`, and the single-vector
    :meth:`~repro.analog.ace.AnalogComputeElement.execute_mvm` walks it
    directly, so the two cannot drift.
    """
    rows, cols = handle.shape
    array_grid = {}
    array_index = 0
    for row_tile in range(handle.row_tiles):
        for col_tile in range(handle.col_tiles):
            for weight_slice in range(handle.num_slices):
                array_grid[(row_tile, col_tile, weight_slice)] = handle.array_ids[
                    array_index
                ]
                array_index += 1

    steps = []
    for input_bit in range(input_bits):
        for row_tile in range(handle.row_tiles):
            r0 = row_tile * array_rows
            r1 = min(rows, r0 + array_rows)
            for col_tile in range(handle.col_tiles):
                c0 = col_tile * array_cols
                for weight_slice in range(handle.num_slices):
                    steps.append(
                        PlanStep(
                            input_bit=input_bit,
                            row_tile=row_tile,
                            col_tile=col_tile,
                            weight_slice=weight_slice,
                            array_id=array_grid[(row_tile, col_tile, weight_slice)],
                            shift=input_bit + weight_slice * handle.bits_per_cell,
                            row_start=r0,
                            row_end=r1,
                            col_offset=c0,
                        )
                    )
    return tuple(steps)


@dataclass(frozen=True)
class ReductionStep:
    """The digital reduction of one column tile's partial-product stream."""

    col_tile: int
    #: First matrix column this tile's outputs occupy.
    col_offset: int
    #: Output columns produced by this tile.
    width: int
    #: Partial products per input vector this tile's pipeline consumes.
    partials_per_vector: int


@dataclass(frozen=True)
class PlanCostModel:
    """Analytic latency model of the two Figure 10 schedules.

    All parameters are fixed at plan-build time from the allocation's
    geometry and periphery; the model is *closed-form in the batch size*,
    which is what lets one plan serve every batch shape with zero
    re-planning on the serving hot path.
    """

    #: Analog production latency of one macro-step (DAC drive + crossbar
    #: cycle + ADC conversion), in cycles.
    per_step_analog: float
    #: ACE-to-DCE network transfer latency of one partial product.
    transfer: float
    #: DCE write latency of one staged partial product.
    write: float
    #: Pipeline depth of the DCE bit pipelines (accumulator word width).
    depth: int
    #: Largest recombination shift any step applies (unoptimised schedule
    #: pays it as an explicit digital shift per partial product).
    max_shift: int
    #: Analog macro-steps per input vector.
    steps_per_vector: int
    #: µops one ripple-carry ADD executes per bit position on this tile's
    #: DCE (captured at plan-build time so the model can *predict* a batch
    #: timeline without executing the reduction that normally supplies it).
    add_uops_per_bit: float = 12.0

    def predict(
        self, batch: int, partials_per_vector: int, optimized: bool = True
    ) -> Tuple[float, Dict[str, float]]:
        """Predicted timeline of a ``batch``-vector MVM, no execution needed.

        Reconstructs the pipelined ADD-stream shape the backends derive
        while reducing (``n_adds = batch * partials_per_vector`` with the
        tile's captured ``add_uops_per_bit``), so for a digital-reduction
        tile the prediction equals the ``optimized_cycles`` a real dispatch
        would report -- this is the closed-form oracle cost-aware
        scheduling queries per candidate batch size.
        """
        n_adds = batch * partials_per_vector
        return self.timeline(batch, n_adds, self.add_uops_per_bit, optimized)

    def timeline(
        self,
        batch: int,
        n_adds: int,
        add_uops_per_bit: float,
        optimized: bool,
    ) -> Tuple[float, Dict[str, float]]:
        """Wall-clock latency of an MVM batch under one Figure 10 schedule.

        ``n_adds``/``add_uops_per_bit`` describe the pipelined ADD stream
        (the backends derive them from the reduction they performed, so the
        reference and analytic accountings stay value-identical).
        """
        steps = self.steps_per_vector * batch
        breakdown: Dict[str, float] = {}
        if optimized:
            # Figure 10b: shifts happen in flight; ADC production, network
            # transfer, and DCE writes are rate-matched and overlap, so the
            # steady-state step cost is their maximum; the pipelined ADD
            # stream drains afterwards.
            step_cost = max(self.per_step_analog, self.transfer, self.write)
            analog_phase = steps * step_cost
            add_stream = (
                add_uops_per_bit * self.depth + max(0, n_adds - 1) * add_uops_per_bit
                if n_adds
                else 0.0
            )
            breakdown["analog_and_transfer"] = analog_phase
            breakdown["pipelined_adds"] = add_stream
            total = analog_phase + add_stream
        else:
            # Figure 10a: every partial product pays analog production, write,
            # an explicit digital shift, and a full (unpipelined) ADD before
            # the next one may start.
            per_partial = (
                self.per_step_analog
                + self.write
                + float(self.max_shift)
                + add_uops_per_bit * self.depth
            )
            total = steps * per_partial
            breakdown["serialized_steps"] = total
        breakdown["total"] = total
        return total, breakdown


@dataclass
class MvmPlan:
    """The compiled execution plan for one HCT-resident matrix allocation.

    Built once by the :class:`~repro.plan.planner.Planner`, cached keyed on
    ``(allocation, input_bits)``, and invalidated on release/reprogram
    alongside the shard-kernel cache.  Every backend in the
    :class:`~repro.plan.backends.BackendRegistry` executes this object --
    two interpreters of one IR -- so results, ledgers, and timelines agree
    bit for bit by construction of their shared operands.
    """

    #: The analog allocation this plan executes against.
    handle: object
    #: Input precision the schedule was compiled for.
    input_bits: int
    #: The (input bit, weight slice) recombination table (IIU contents).
    shift_add: ShiftAddPlan
    #: Fully unrolled analog schedule, reference issue order.
    steps: Tuple[PlanStep, ...]
    #: Digital reduction layout, one entry per column tile.
    reduction: Tuple[ReductionStep, ...]
    #: The ACE holding the allocation (and the shard-kernel cache).
    ace: object
    #: Analytic timeline model (Figure 10a/10b).
    cost: PlanCostModel
    #: First DCE pipeline reserved for this allocation's outputs.
    output_base: int
    #: Accumulator vector register of the reduction.
    accumulator_vr: int
    #: Staging vector registers the shift unit writes into (round-robin).
    staging_vrs: Tuple[int, ...]

    @property
    def shape(self) -> Tuple[int, int]:
        """Logical matrix shape of the planned allocation."""
        return self.handle.shape

    @property
    def kernel(self):
        """Stacked per-shard conductance tensors (vectorized operand).

        Delegates to the ACE's shard-kernel cache, so the tensors are built
        lazily on first use: interpreters that never touch them (the
        step-walking reference backend, the single-vector path) pay
        nothing, while the vectorized and cost-only backends share one
        snapshot per allocation.
        """
        return self.ace.kernel_for(self.handle)

    @property
    def num_steps(self) -> int:
        """Analog macro-steps per input vector across all shards."""
        return len(self.steps)

    @property
    def num_partial_products(self) -> int:
        """Partial products one input vector produces."""
        return len(self.steps)

    @property
    def partials_per_vector(self) -> int:
        """Partial products per input vector the digital reduction consumes."""
        return sum(red.partials_per_vector for red in self.reduction)

    def predicted_cycles(self, batch: int, optimized: bool = True) -> float:
        """Predicted wall-clock cycles of a ``batch``-vector MVM (no execution).

        Closed-form in the batch size through :meth:`PlanCostModel.predict`;
        for a tile with digital post-processing the value equals the
        ``optimized_cycles`` a real dispatch of the same batch reports, so
        cost-aware scheduling and placement can price work before running it.

        >>> import numpy as np
        >>> from repro.core.hct import HybridComputeTile
        >>> from repro.core.config import HctConfig
        >>> tile = HybridComputeTile(HctConfig.small())
        >>> handle = tile.set_matrix(np.eye(4, dtype=np.int64), value_bits=2)
        >>> plan = tile.planner.plan_for(handle, input_bits=2)
        >>> plan.predicted_cycles(8) > plan.predicted_cycles(1)
        True
        """
        total, _ = self.cost.predict(batch, self.partials_per_vector, optimized)
        return total

    def predicted_energy_pj(self, batch: int) -> float:
        """Predicted analog-phase energy of a ``batch``-vector MVM, in pJ.

        Walks the shard kernel's per-tile periphery exactly the way the
        analytic backends charge the analog phase (DAC drive, row periphery,
        sample-and-hold, ADC conversion, once per input bit and weight
        slice) -- but *without* executing or charging anything.  Digital
        reduction energy is excluded; the analog phase dominates, which is
        all a dispatch-now-vs-wait comparison needs.  First use builds the
        allocation's shard kernel lazily (shared with the vectorized
        backend's cache).
        """
        per_tile = 0.0
        for tile in self.kernel.tiles:
            sample = tile.crossbars[0]
            _, adc_energy = sample.adc.conversion_costs(
                tile.used_cols, sample.num_adcs, None
            )
            per_tile += (
                sample.dac.drive_energy_pj(tile.used_rows)
                + sample.row_periphery_power_mw * 1.0
                + tile.used_cols * sample.sample_hold_energy_pj
                + adc_energy
            )
        return self.input_bits * self.handle.num_slices * batch * per_tile

    def describe(self, max_steps: int = 12) -> str:
        """Human-readable rendering of the compiled schedule.

        >>> import numpy as np
        >>> from repro.core.hct import HybridComputeTile
        >>> from repro.core.config import HctConfig
        >>> tile = HybridComputeTile(HctConfig.small())
        >>> handle = tile.set_matrix(np.eye(4, dtype=np.int64), value_bits=2)
        >>> plan = tile.planner.plan_for(handle, input_bits=2)
        >>> print(plan.describe().splitlines()[0])
        MvmPlan: 4x4 matrix, 2-bit weights @ 1 bit/cell (2 slices), 2-bit inputs
        """
        handle = self.handle
        lines = [
            f"MvmPlan: {handle.shape[0]}x{handle.shape[1]} matrix, "
            f"{handle.value_bits}-bit weights @ {handle.bits_per_cell} bit/cell "
            f"({handle.num_slices} slices), {self.input_bits}-bit inputs",
            f"  topology : {handle.row_tiles} row tile(s) x {handle.col_tiles} "
            f"col tile(s), arrays {list(handle.array_ids)}",
            f"  schedule : {self.num_steps} analog macro-steps/vector "
            f"({self.input_bits} input bits x {handle.num_slices} slices x "
            f"{handle.row_tiles * handle.col_tiles} shards), "
            f"exact-int fast path {'ON' if getattr(self.kernel, 'exact', False) else 'off'}",
        ]
        shown = self.steps[:max_steps]
        for step in shown:
            lines.append(
                f"    [{step.input_bit}|{step.row_tile},{step.col_tile}|s{step.weight_slice}] "
                f"array {step.array_id:>3}  rows {step.row_start}:{step.row_end}  "
                f"cols @{step.col_offset}  shift {step.shift}"
            )
        if len(self.steps) > max_steps:
            lines.append(f"    ... {len(self.steps) - max_steps} more steps")
        for red in self.reduction:
            lines.append(
                f"  reduce   : col tile {red.col_tile} -> pipeline "
                f"{self.output_base + red.col_tile}, width {red.width} @ "
                f"{red.col_offset}, {red.partials_per_vector} partials/vector "
                f"-> VR {self.accumulator_vr} via VRs {list(self.staging_vrs)}"
            )
        cost = self.cost
        lines.append(
            f"  cost     : step analog {cost.per_step_analog:.2f} cyc, "
            f"transfer {cost.transfer:.2f}, write {cost.write:.0f}, "
            f"depth {cost.depth}, max shift {cost.max_shift}, "
            f"{cost.steps_per_vector} steps/vector"
        )
        return "\n".join(lines)


@dataclass(frozen=True)
class PlanHandle:
    """Process-portable cost surrogate of a compiled execution plan.

    A full :class:`MvmPlan` is deliberately *not* serializable: it holds
    live ACE/handle references, lazily built shard kernels, and cache
    identity that only means anything inside the owning process.  Sharing
    scheduling information across a process boundary (the cluster gateway
    routing work to device-worker processes) needs none of that -- only
    the closed-form cost surface.  ``PlanHandle`` captures the two samples
    that pin the (affine in batch) predicted-cycle model plus the
    predicted per-vector energy, and round-trips through ``to_bytes`` /
    ``from_bytes`` with no pickling.

    >>> handle = PlanHandle(shape=(8, 8), input_bits=4,
    ...                     base_cycles=100.0, cycles_per_vector=25.0,
    ...                     energy_per_vector_pj=3.5)
    >>> PlanHandle.from_bytes(handle.to_bytes()) == handle
    True
    >>> handle.predicted_cycles(4)
    200.0
    """

    #: Logical (rows, cols) shape of the planned matrix.
    shape: Tuple[int, int]
    #: Input precision the plan was compiled for.
    input_bits: int
    #: Fixed cost of one dispatch (cycles at batch size zero).
    base_cycles: float
    #: Marginal cycles of each additional vector in the batch.
    cycles_per_vector: float
    #: Predicted analog-phase energy per vector, in pJ.
    energy_per_vector_pj: float

    #: Struct layout of the serialized form (see ``to_bytes``).
    _STRUCT = struct.Struct("<IIIddd")

    def predicted_cycles(self, batch: int) -> float:
        """Predicted cycles of one ``batch``-vector dispatch."""
        return self.base_cycles + self.cycles_per_vector * batch

    def predicted_energy_pj(self, batch: int) -> float:
        """Predicted analog-phase energy (pJ) of one ``batch`` dispatch."""
        return self.energy_per_vector_pj * batch

    @classmethod
    def from_cost_samples(
        cls,
        shape: Tuple[int, int],
        input_bits: int,
        cycles_at_1: float,
        cycles_at_17: float,
        energy_per_vector_pj: float,
    ) -> "PlanHandle":
        """Fit the affine cycle model from two predicted-cycle samples.

        ``cycles_at_17 - cycles_at_1`` spans 16 extra vectors, so the
        slope is exact for any cost model affine in the batch size and a
        secant approximation otherwise (good enough for routing).
        """
        slope = max(0.0, (cycles_at_17 - cycles_at_1) / 16.0)
        base = max(0.0, cycles_at_1 - slope)
        return cls(
            shape=(int(shape[0]), int(shape[1])),
            input_bits=int(input_bits),
            base_cycles=base,
            cycles_per_vector=slope,
            energy_per_vector_pj=float(energy_per_vector_pj),
        )

    def to_bytes(self) -> bytes:
        """Fixed-width binary form, safe to cross a process boundary."""
        return self._STRUCT.pack(
            self.shape[0], self.shape[1], self.input_bits,
            self.base_cycles, self.cycles_per_vector,
            self.energy_per_vector_pj,
        )

    @classmethod
    def from_bytes(cls, payload: bytes) -> "PlanHandle":
        """Inverse of :meth:`to_bytes`."""
        try:
            rows, cols, input_bits, base, slope, energy = cls._STRUCT.unpack(
                payload
            )
        except struct.error as exc:
            raise ValueError(f"malformed PlanHandle payload: {exc}") from exc
        return cls(
            shape=(rows, cols), input_bits=input_bits, base_cycles=base,
            cycles_per_vector=slope, energy_per_vector_pj=energy,
        )


@dataclass(frozen=True)
class ShardTask:
    """One row band of a pooled allocation, compiled to its device."""

    #: Position in the allocation's shard order (partial-sum merge order).
    position: int
    device_index: int
    row_start: int
    row_end: int
    #: The device-level allocation holding this band.
    device_allocation: object
    #: Replica index of this copy of the band (0 = primary).
    replica: int = 0


@dataclass
class ShardedPlan:
    """The pool-level compiled plan of one pooled allocation.

    Captures the row-band-to-device topology once, so
    ``DevicePool.exec_mvm_batch`` / ``exec_requests`` fan out over a cached
    task table instead of re-deriving the grouping per request.  The
    device-level :class:`MvmPlan` caches are warmed per ``input_bits``
    through :meth:`DevicePool.compile` (``prepared_input_bits`` records
    which precisions are hot).

    Under replication every row band exists on ``replication`` distinct
    devices; ``tasks`` holds the primary (replica-0) copy of each band and
    ``replicas`` maps a band's position to *all* its copies in replica
    order, which is what the fan-out's retry path walks when a device
    fails mid-batch.
    """

    allocation_id: int
    shape: Tuple[int, int]
    #: Primary shard tasks, in shard (merge) order.
    tasks: Tuple[ShardTask, ...]
    #: Primary tasks grouped by executing device (fan-out order).
    tasks_by_device: Dict[int, Tuple[ShardTask, ...]]
    #: Every copy of every band: position -> tasks in replica order
    #: (``replicas[p][0] is tasks[p]``).  Bands with a single copy map to a
    #: one-element tuple.
    replicas: Dict[int, Tuple[ShardTask, ...]] = field(default_factory=dict)
    #: Input precisions whose tile-level plans have been precompiled.
    prepared_input_bits: Set[int] = field(default_factory=set)

    @property
    def num_shards(self) -> int:
        """Row bands the allocation is split into."""
        return len(self.tasks)

    @property
    def replication(self) -> int:
        """Copies kept of each row band (1 = unreplicated)."""
        if not self.replicas:
            return 1
        return max(len(tasks) for tasks in self.replicas.values())

    def replica_tasks(self, position: int) -> Tuple[ShardTask, ...]:
        """All copies of band ``position`` in replica order."""
        tasks = self.replicas.get(position)
        if tasks:
            return tasks
        return (self.tasks[position],)

    @property
    def all_tasks(self) -> Tuple[ShardTask, ...]:
        """Every task including replicas, band-major then replica order."""
        if not self.replicas:
            return self.tasks
        return tuple(
            task
            for position in range(self.num_shards)
            for task in self.replica_tasks(position)
        )

    def splice_band(self, position: int, tasks: Tuple[ShardTask, ...]) -> None:
        """Replace every copy of band ``position`` in place (live rebuild).

        ``tasks[0]`` becomes the new primary; the remaining entries are its
        failover replicas in replica order.  The plan object itself is kept
        alive -- the pool's rebuild path splices reprogrammed copies into
        the *cached* plan so in-flight dispatch state (``prepared_input_bits``,
        any server-side references) survives the repair.
        """
        if not 0 <= position < self.num_shards:
            raise IndexError(
                f"band {position} out of range for a {self.num_shards}-shard plan"
            )
        if not tasks:
            raise ValueError("splice_band needs at least one replacement copy")
        primaries = list(self.tasks)
        primaries[position] = tasks[0]
        self.tasks = tuple(primaries)
        if len(tasks) > 1 or self.replicas:
            self.replicas[position] = tuple(tasks)
        by_device: Dict[int, List[ShardTask]] = {}
        for task in self.tasks:
            by_device.setdefault(task.device_index, []).append(task)
        self.tasks_by_device = {
            index: tuple(group) for index, group in by_device.items()
        }

    @property
    def devices_used(self) -> List[int]:
        """Indices of the devices holding at least one primary shard."""
        return sorted(self.tasks_by_device)

    def describe(self) -> str:
        """Human-readable rendering of the sharded topology."""
        lines = [
            f"ShardedPlan: allocation {self.allocation_id}, "
            f"{self.shape[0]}x{self.shape[1]} over {self.num_shards} shard(s) "
            f"on devices {self.devices_used}"
            + (f", replication {self.replication}" if self.replication > 1 else ""),
        ]
        for task in self.tasks:
            suffix = ""
            fallbacks = [
                str(replica.device_index)
                for replica in self.replica_tasks(task.position)[1:]
            ]
            if fallbacks:
                suffix = f" (replicas on {', '.join(fallbacks)})"
            lines.append(
                f"  shard {task.position}: rows {task.row_start}:{task.row_end} "
                f"-> device {task.device_index}{suffix}"
            )
        if self.prepared_input_bits:
            lines.append(
                f"  precompiled input_bits: {sorted(self.prepared_input_bits)}"
            )
        return "\n".join(lines)

"""ReRAM device substrate shared by the analog and digital PUM models."""

from .device import ConductanceMapper, DeviceParameters
from .noise import (
    DriftModel,
    NoiseConfig,
    NoiseStack,
    ProgrammingNoiseModel,
    ReadNoiseModel,
    StuckAtFaultModel,
)
from .parasitics import ParasiticModel

__all__ = [
    "ConductanceMapper",
    "DeviceParameters",
    "DriftModel",
    "NoiseConfig",
    "NoiseStack",
    "ParasiticModel",
    "ProgrammingNoiseModel",
    "ReadNoiseModel",
    "StuckAtFaultModel",
]

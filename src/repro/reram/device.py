"""ReRAM device (cell) model.

DARTH-PUM uses ReRAM for both its analog and digital compute elements
(Section 2.2).  This module models a single device technology:

* a conductance range ``[g_min, g_max]`` (Siemens),
* a number of reliably programmable levels (``bits_per_cell``),
* programming (write--verify) behaviour, and
* the energy/latency cost of programming and reading.

The analog substrate maps multi-bit matrix values onto conductance levels;
the digital substrate uses the same devices in single-level-cell (SLC) mode
where only ``g_min`` (logic 0 / high resistance) and ``g_max`` (logic 1 /
low resistance) are used.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, QuantizationError

__all__ = ["DeviceParameters", "ConductanceMapper"]


@dataclass(frozen=True)
class DeviceParameters:
    """Electrical and cost parameters of a single ReRAM device.

    The defaults correspond to the 64x64-array ReRAM technology assumed in
    the paper's methodology (Section 6, Tables 2-3): a device that can hold
    up to ``max_bits_per_cell`` bits when programmed with a write--verify
    scheme, bounded by the precision of the programming ADC.
    """

    #: Minimum (off-state) conductance in Siemens.
    g_min: float = 1.0e-6
    #: Maximum (on-state) conductance in Siemens.
    g_max: float = 1.0e-4
    #: Maximum number of bits a device can reliably store (Section 2.2.1:
    #: effective precision of analog devices is ~6-12 bits; we use 8).
    max_bits_per_cell: int = 8
    #: Relative standard deviation of programming noise at the maximum
    #: conductance (MILO-style level-dependent noise).
    programming_noise_sigma: float = 0.01
    #: Relative standard deviation of read noise per access.
    read_noise_sigma: float = 0.002
    #: Probability that a device is stuck at g_min or g_max.
    stuck_at_probability: float = 0.0
    #: Latency of one write--verify programming pulse train, in cycles.
    program_latency_cycles: float = 100.0
    #: Energy of programming one device, in pJ.
    program_energy_pj: float = 10.0
    #: Energy of reading (sensing) one device, in pJ.
    read_energy_pj: float = 0.05

    def __post_init__(self) -> None:
        if self.g_min <= 0 or self.g_max <= 0:
            raise ConfigurationError("conductances must be positive")
        if self.g_min >= self.g_max:
            raise ConfigurationError("g_min must be smaller than g_max")
        if self.max_bits_per_cell < 1:
            raise ConfigurationError("max_bits_per_cell must be >= 1")
        if not 0.0 <= self.stuck_at_probability < 1.0:
            raise ConfigurationError("stuck_at_probability must be in [0, 1)")

    @property
    def conductance_range(self) -> float:
        """Usable conductance swing ``g_max - g_min``."""
        return self.g_max - self.g_min

    def levels(self, bits_per_cell: int) -> int:
        """Number of programmable levels for ``bits_per_cell`` bits."""
        if bits_per_cell < 1 or bits_per_cell > self.max_bits_per_cell:
            raise ConfigurationError(
                f"bits_per_cell must be in [1, {self.max_bits_per_cell}], got {bits_per_cell}"
            )
        return 2 ** bits_per_cell


class ConductanceMapper:
    """Maps digital values to device conductances and back.

    A mapper is configured for a fixed number of bits per cell.  Values in
    ``[0, 2**bits_per_cell - 1]`` are mapped linearly onto
    ``[g_min, g_max]``.  The inverse mapping quantises a (possibly noisy)
    conductance back to the nearest level, which is how the write--verify
    programming loop and the ADC read-out are modelled.
    """

    def __init__(self, params: DeviceParameters, bits_per_cell: int) -> None:
        self.params = params
        self.bits_per_cell = int(bits_per_cell)
        self.num_levels = params.levels(self.bits_per_cell)
        self._step = params.conductance_range / (self.num_levels - 1)

    def value_to_conductance(self, values: np.ndarray) -> np.ndarray:
        """Map integer level values to ideal (noise-free) conductances."""
        values = np.asarray(values)
        if np.any(values < 0) or np.any(values > self.num_levels - 1):
            raise QuantizationError(
                f"values must be in [0, {self.num_levels - 1}] for "
                f"{self.bits_per_cell} bits per cell"
            )
        return self.params.g_min + values * self._step

    def conductance_to_value(self, conductances: np.ndarray) -> np.ndarray:
        """Quantise conductances back to the nearest integer level."""
        conductances = np.asarray(conductances, dtype=float)
        levels = np.rint((conductances - self.params.g_min) / self._step)
        return np.clip(levels, 0, self.num_levels - 1).astype(np.int64)

    def lsb_conductance(self) -> float:
        """Conductance difference corresponding to one least-significant bit."""
        return self._step

"""Bitline parasitic (IR drop) model.

Section 4.3 observes that when a strictly positive matrix is stored with
differential cells, all of the current flows down the positive bitline,
producing large IR (Ohmic) drops along the wire.  The voltage seen by a
device far from the sense amplifier is therefore smaller than the applied
voltage, which attenuates its contribution to the accumulated current and
can flip the ADC output by one or more LSBs.

We model the bitline as a distributed RC ladder in the resistive limit: the
effective voltage at row ``i`` (counting from the sense amplifier) is reduced
in proportion to the total current flowing through the wire segments between
the driver and that row.  A single ``wire_resistance`` parameter (ohms per
cell pitch) controls the strength of the effect; setting it to zero recovers
the ideal crossbar.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ParasiticModel"]


@dataclass
class ParasiticModel:
    """First-order IR-drop model for crossbar bitlines.

    Parameters
    ----------
    wire_resistance_ohm:
        Resistance of one bitline segment (between two adjacent rows).
    supply_voltage:
        Nominal read voltage applied to an activated wordline.
    """

    wire_resistance_ohm: float = 1.0
    supply_voltage: float = 0.2

    def attenuation(self, conductances: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        """Per-device multiplicative attenuation factors in ``[0, 1]``.

        Parameters
        ----------
        conductances:
            ``(rows, cols)`` device conductances in Siemens.
        inputs:
            ``(rows,)`` wordline activations (0/1 or analog input levels);
            only activated rows contribute current and suffer attenuation.

        Returns
        -------
        numpy.ndarray
            ``(rows, cols)`` factors by which each device's contribution to
            the bitline current is reduced.
        """
        conductances = np.asarray(conductances, dtype=float)
        inputs = np.asarray(inputs, dtype=float).reshape(-1, 1)
        if conductances.shape[0] != inputs.shape[0]:
            raise ValueError("inputs length must match the number of rows")
        if self.wire_resistance_ohm == 0.0:
            return np.ones_like(conductances)

        # Ideal per-device currents (unit supply voltage), scaled by inputs.
        currents = conductances * inputs
        # Cumulative current that must flow through the segment below row i
        # (rows are indexed away from the sense amplifier at row 0).
        cumulative = np.cumsum(currents, axis=0)
        # Voltage lost before reaching each row: sum over the segments between
        # the sense amp and that row of (segment resistance * segment current).
        voltage_drop = self.wire_resistance_ohm * np.cumsum(cumulative, axis=0) * (
            self.supply_voltage
        )
        effective = np.clip(self.supply_voltage - voltage_drop, 0.0, self.supply_voltage)
        return effective / self.supply_voltage

    def attenuation_batch(self, conductances: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        """Per-device attenuation factors for a whole batch of input vectors.

        ``inputs`` has shape ``(batch, rows)``; the result has shape
        ``(batch, rows, cols)``.  Slice ``b`` is bit-identical to
        ``attenuation(conductances, inputs[b])`` -- the cumulative-current
        solve is element-wise per vector, so stacking the batch changes
        nothing but the loop level it runs at.
        """
        conductances = np.asarray(conductances, dtype=float)
        inputs = np.asarray(inputs, dtype=float)
        if inputs.ndim != 2:
            raise ValueError("attenuation_batch expects a (batch, rows) input matrix")
        if conductances.shape[0] != inputs.shape[1]:
            raise ValueError("inputs length must match the number of rows")
        if self.wire_resistance_ohm == 0.0:
            return np.ones((inputs.shape[0],) + conductances.shape)

        currents = conductances[None, :, :] * inputs[:, :, None]
        cumulative = np.cumsum(currents, axis=1)
        voltage_drop = self.wire_resistance_ohm * np.cumsum(cumulative, axis=1) * (
            self.supply_voltage
        )
        effective = np.clip(self.supply_voltage - voltage_drop, 0.0, self.supply_voltage)
        return effective / self.supply_voltage

    def apply(self, conductances: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        """Return effective conductances after IR drop for the given inputs."""
        return np.asarray(conductances, dtype=float) * self.attenuation(conductances, inputs)

    def apply_batch(self, conductances: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        """Effective conductances for every vector of a ``(batch, rows)`` input.

        Returns a ``(batch, rows, cols)`` tensor whose slice ``b`` is
        bit-identical to ``apply(conductances, inputs[b])``.
        """
        conductances = np.asarray(conductances, dtype=float)
        return conductances[None, :, :] * self.attenuation_batch(conductances, inputs)

    def worst_case_drop_fraction(self, conductances: np.ndarray) -> float:
        """Largest fractional attenuation when every wordline is activated.

        Used by the parasitic compensation scheme (Section 4.3) to check
        whether the residual IR drop is below one ADC LSB.
        """
        conductances = np.asarray(conductances, dtype=float)
        inputs = np.ones(conductances.shape[0])
        attenuation = self.attenuation(conductances, inputs)
        return float(1.0 - attenuation.min()) if attenuation.size else 0.0

"""Analog non-ideality models (Section 2.2.1 and Section 7.5).

The paper identifies five error sources for analog PUM: programming noise,
parasitics (IR drop; modelled in :mod:`repro.reram.parasitics`), read noise,
conductance drift, and stuck-at faults.  Each is modelled here as a small,
composable transformer over conductance matrices so the analog crossbar can
apply exactly the subset of error sources an experiment enables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from .device import DeviceParameters

__all__ = [
    "NoiseConfig",
    "ProgrammingNoiseModel",
    "ReadNoiseModel",
    "DriftModel",
    "StuckAtFaultModel",
    "NoiseStack",
]


@dataclass(frozen=True)
class NoiseConfig:
    """Which error sources are enabled, and with what strength.

    ``None`` for a sigma/rate means "use the device default"; ``0`` disables
    the corresponding error source entirely.
    """

    programming_noise: bool = True
    read_noise: bool = True
    ir_drop: bool = True
    drift: bool = False
    stuck_at_faults: bool = False
    programming_sigma: Optional[float] = None
    read_sigma: Optional[float] = None
    drift_rate: float = 0.001
    stuck_at_rate: Optional[float] = None
    seed: int = 0

    @classmethod
    def ideal(cls) -> "NoiseConfig":
        """A configuration with every error source disabled."""
        return cls(
            programming_noise=False,
            read_noise=False,
            ir_drop=False,
            drift=False,
            stuck_at_faults=False,
        )

    @classmethod
    def paper_default(cls) -> "NoiseConfig":
        """The error sources CrossSim models in detail (Section 7.5):
        programming noise and parasitics, plus read noise."""
        return cls(programming_noise=True, read_noise=True, ir_drop=True)


class ProgrammingNoiseModel:
    """Write--verify programming noise (MILO-style level dependence).

    The residual error after write--verify programming grows with the target
    conductance: devices programmed near ``g_max`` show a larger absolute
    spread than devices near ``g_min``.  We model the error as zero-mean
    Gaussian with standard deviation ``sigma * g_target`` (relative noise),
    clipped to the physical conductance range.
    """

    def __init__(self, params: DeviceParameters, sigma: Optional[float] = None) -> None:
        self.params = params
        self.sigma = params.programming_noise_sigma if sigma is None else float(sigma)

    def apply(self, conductances: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return programmed conductances with residual write error."""
        if self.sigma == 0.0:
            return np.array(conductances, dtype=float, copy=True)
        conductances = np.asarray(conductances, dtype=float)
        noise = rng.normal(0.0, self.sigma, size=conductances.shape) * conductances
        return np.clip(conductances + noise, self.params.g_min, self.params.g_max)


class ReadNoiseModel:
    """Per-access random perturbation of the sensed current.

    Read noise is re-drawn on every MVM, unlike programming noise which is
    frozen when the matrix is written.
    """

    def __init__(self, params: DeviceParameters, sigma: Optional[float] = None) -> None:
        self.params = params
        self.sigma = params.read_noise_sigma if sigma is None else float(sigma)

    def apply(self, conductances: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return effective conductances seen by a single read/MVM."""
        if self.sigma == 0.0:
            return conductances
        conductances = np.asarray(conductances, dtype=float)
        noise = rng.normal(0.0, self.sigma, size=conductances.shape) * conductances
        return np.clip(conductances + noise, 0.0, None)

    def apply_pair_bulk(
        self,
        positive: np.ndarray,
        negative: np.ndarray,
        count: int,
        rng: np.random.Generator,
    ) -> tuple:
        """``count`` successive (positive, negative) read perturbations at once.

        The vectorized execution engine consumes read noise in bulk: one
        generator draw of shape ``(count, 2) + plane_shape`` replays exactly
        the stream ``count`` alternating ``apply(positive)`` /
        ``apply(negative)`` calls would consume (NumPy generators fill
        arrays in C order), so batched and per-step execution see
        bit-identical conductances.  Keep the perturbation formula in sync
        with :meth:`apply` -- it is the same
        ``clip(g + normal * g, 0, None)`` model, drawn ``count`` planes at a
        time.  Returns ``(positive_stack, negative_stack)`` of shape
        ``(count,) + plane_shape``.
        """
        positive = np.asarray(positive, dtype=float)
        negative = np.asarray(negative, dtype=float)
        if self.sigma == 0.0:
            return (
                np.broadcast_to(positive, (count,) + positive.shape),
                np.broadcast_to(negative, (count,) + negative.shape),
            )
        draw = rng.normal(0.0, self.sigma, size=(count, 2) + positive.shape)
        positive_stack = np.clip(positive[None] + draw[:, 0] * positive[None], 0.0, None)
        negative_stack = np.clip(negative[None] + draw[:, 1] * negative[None], 0.0, None)
        return positive_stack, negative_stack


class DriftModel:
    """Conductance drift over time.

    Modelled as a multiplicative decay toward ``g_min`` with rate
    ``drift_rate`` per unit time: ``g(t) = g_min + (g - g_min) * (1 - rate)**t``.
    """

    def __init__(self, params: DeviceParameters, drift_rate: float = 0.001) -> None:
        if not 0.0 <= drift_rate < 1.0:
            raise ValueError("drift_rate must be in [0, 1)")
        self.params = params
        self.drift_rate = float(drift_rate)

    def apply(self, conductances: np.ndarray, elapsed: float) -> np.ndarray:
        """Return conductances after ``elapsed`` time units of drift."""
        if elapsed < 0:
            raise ValueError("elapsed time must be non-negative")
        conductances = np.asarray(conductances, dtype=float)
        factor = (1.0 - self.drift_rate) ** elapsed
        return self.params.g_min + (conductances - self.params.g_min) * factor


class StuckAtFaultModel:
    """Devices stuck at the high- or low-conductance extreme.

    The fault map is generated once per array (manufacturing defects) and
    then applied to every programming operation.
    """

    def __init__(self, params: DeviceParameters, rate: Optional[float] = None) -> None:
        self.params = params
        self.rate = params.stuck_at_probability if rate is None else float(rate)
        self._mask: Optional[np.ndarray] = None
        self._values: Optional[np.ndarray] = None

    def build_fault_map(self, shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
        """Generate (and remember) a fault map for an array of ``shape``."""
        mask = rng.random(shape) < self.rate
        stuck_high = rng.random(shape) < 0.5
        values = np.where(stuck_high, self.params.g_max, self.params.g_min)
        self._mask = mask
        self._values = values
        return mask

    @property
    def fault_count(self) -> int:
        """Number of stuck devices in the current fault map."""
        return 0 if self._mask is None else int(self._mask.sum())

    def apply(self, conductances: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Overwrite stuck positions with their stuck value."""
        if self.rate == 0.0:
            return conductances
        conductances = np.asarray(conductances, dtype=float)
        if self._mask is None or self._mask.shape != conductances.shape:
            self.build_fault_map(conductances.shape, rng)
        assert self._mask is not None and self._values is not None
        return np.where(self._mask, self._values, conductances)


@dataclass
class NoiseStack:
    """The full set of error sources applied by an analog array.

    ``program()`` is applied once when a matrix is written; ``read()`` is
    applied on every MVM.  IR drop is handled separately by the crossbar
    because it depends on the applied inputs, not only the stored state.
    """

    params: DeviceParameters
    config: NoiseConfig = field(default_factory=NoiseConfig)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.config.seed)
        self.programming = ProgrammingNoiseModel(self.params, self.config.programming_sigma)
        self.read_noise = ReadNoiseModel(self.params, self.config.read_sigma)
        self.drift = DriftModel(self.params, self.config.drift_rate)
        self.stuck_at = StuckAtFaultModel(self.params, self.config.stuck_at_rate)

    @property
    def rng(self) -> np.random.Generator:
        """The random generator shared by all stochastic error sources."""
        return self._rng

    def program(self, conductances: np.ndarray) -> np.ndarray:
        """Apply programming-time error sources (write noise, stuck-at)."""
        result = np.array(conductances, dtype=float, copy=True)
        if self.config.programming_noise:
            result = self.programming.apply(result, self._rng)
        if self.config.stuck_at_faults:
            result = self.stuck_at.apply(result, self._rng)
        return result

    def read(self, conductances: np.ndarray, elapsed: float = 0.0) -> np.ndarray:
        """Apply read-time error sources (read noise, drift)."""
        result = conductances
        if self.config.drift and elapsed > 0:
            result = self.drift.apply(result, elapsed)
        if self.config.read_noise:
            result = self.read_noise.apply(result, self._rng)
        return result

    @property
    def read_noise_active(self) -> bool:
        """Whether :meth:`read` draws fresh stochastic noise per access."""
        return bool(self.config.read_noise and self.read_noise.sigma != 0.0)

    def read_pair_bulk(self, positive: np.ndarray, negative: np.ndarray, count: int) -> tuple:
        """``count`` successive ``(read(positive), read(negative))`` pairs.

        Bulk-consumption equivalent of alternating :meth:`read` calls on the
        two planes of a differential pair (drift is a no-op at read time,
        exactly as in :meth:`read` with ``elapsed=0``).  When read noise is
        inactive the original planes are returned broadcast to the stacked
        shape without consuming the generator, mirroring :meth:`read`'s
        pass-through.
        """
        if not self.read_noise_active:
            positive = np.asarray(positive, dtype=float)
            negative = np.asarray(negative, dtype=float)
            return (
                np.broadcast_to(positive, (count,) + positive.shape),
                np.broadcast_to(negative, (count,) + negative.shape),
            )
        return self.read_noise.apply_pair_bulk(positive, negative, count, self._rng)

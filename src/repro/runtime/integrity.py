"""ABFT output verification and device-health scoring for the pool.

Silent data corruption is the one fault the replication tier (PR 6) cannot
see: a device that bit-flips a partial result still *returns*, so nothing
retries and the wrong answer rides all the way to the caller.  This module
closes that hole with the classic algorithm-based fault tolerance (ABFT)
trick for matrix products -- Huang & Abraham's checksum encoding:

* For each row band ``W`` of a registered matrix, precompute the column-sum
  check vector ``c = W @ 1`` once (``O(rows * cols)``, paid at
  registration).  Because ``(x @ W) @ 1 == x @ (W @ 1)``, any partial
  result ``P = x @ W`` must satisfy ``P @ 1 == x @ c`` -- a property the
  pool can test in ``O(batch * (rows + cols))``, a vanishing fraction of
  the MVM's ``O(batch * rows * cols)``.
* On the integer fast path (noise-free pools) the identity is *exact*: a
  single flipped bit always perturbs the row sum, so every corruption is
  detected.  Under analog noise presets the comparison is tolerance-banded
  against ``|x| @ |W|1`` (best-effort detection: perturbations inside the
  band are indistinguishable from noise by construction).
* :class:`DeviceHealth` turns detections and failures into a per-device
  EWMA score so a chip that keeps corrupting results is *quarantined*
  (auto ``mark_device_failed``) instead of being retried forever.

The checker is wired into :class:`~repro.runtime.pool.DevicePool` via the
``verify`` mode (``"off"`` / ``"audit"`` / ``"full"``); see that class for
the serving-path semantics.

>>> import numpy as np
>>> from repro.runtime.integrity import IntegrityChecker, band_check_vector
>>> matrix = np.arange(12, dtype=np.int64).reshape(4, 3)
>>> checker = IntegrityChecker()
>>> checker.register(0, matrix, [(0, 4)])
>>> x = np.array([[1, 0, 2, 1]], dtype=np.int64)
>>> checker.verify(0, 0, x, x @ matrix)
True
>>> corrupted = (x @ matrix) ^ 4  # one flipped bit
>>> checker.verify(0, 0, x, corrupted)
False
>>> bool(np.array_equal(band_check_vector(matrix), matrix.sum(axis=1)))
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..metrics import ema

__all__ = [
    "DEFAULT_NOISE_TOLERANCE",
    "VERIFY_MODES",
    "BandChecksum",
    "DeviceHealth",
    "IntegrityChecker",
    "band_check_vector",
]

#: Supported verification modes (see ``DevicePool(verify=...)``).
VERIFY_OFF = "off"
VERIFY_AUDIT = "audit"
VERIFY_FULL = "full"
VERIFY_MODES = (VERIFY_OFF, VERIFY_AUDIT, VERIFY_FULL)

#: Relative tolerance used under noise presets when the caller does not
#: pass an explicit one: residuals up to this fraction of ``|x| @ |W|1``
#: are attributed to analog noise rather than corruption.
DEFAULT_NOISE_TOLERANCE = 0.05


def band_check_vector(block: np.ndarray) -> np.ndarray:
    """The ABFT column-sum check vector ``W @ 1`` of one row band."""
    return np.asarray(block, dtype=np.int64).sum(axis=1)


@dataclass(frozen=True)
class BandChecksum:
    """Precomputed check vectors of one row band of one allocation."""

    row_start: int
    row_end: int
    #: ``W @ 1``: the exact-identity check vector.
    check: np.ndarray
    #: ``|W| @ 1``: scales the tolerance band under analog noise.
    abs_check: np.ndarray


@dataclass
class DeviceHealth:
    """EWMA fault score of one pool device (quarantine input).

    Every verified-clean call decays the score toward 0; every corruption
    detection or device failure pulls it toward 1 with weight ``alpha``.
    With the defaults (``alpha=0.25``, ``threshold=0.5``) three
    back-to-back bad events cross the threshold (0.25, 0.44, 0.58) while
    isolated glitches wash out -- the pool quarantines the device at the
    crossing.  ``corruptions`` / ``failures`` are lifetime counters and
    survive :meth:`reset`; the score and the quarantine flag do not.
    """

    alpha: float = 0.25
    threshold: float = 0.5
    score: float = 0.0
    corruptions: int = 0
    failures: int = 0
    quarantined: bool = False

    def record_ok(self) -> None:
        """Decay the score after one verified-clean (or uneventful) call."""
        if self.score:
            self.score = ema(self.score, 0.0, self.alpha)

    def record_corruption(self) -> bool:
        """Account one checksum detection; True when the threshold is crossed."""
        self.corruptions += 1
        return self._bump()

    def record_failure(self) -> bool:
        """Account one device failure; True when the threshold is crossed."""
        self.failures += 1
        return self._bump()

    def _bump(self) -> bool:
        self.score = ema(self.score, 1.0, self.alpha)
        return self.score >= self.threshold

    def reset(self) -> None:
        """Clear the score and the quarantine flag (``restore_device``)."""
        self.score = 0.0
        self.quarantined = False


class IntegrityChecker:
    """Registry of per-band ABFT checksums plus the verification predicate.

    One checker serves one pool: ``register`` is called at matrix
    registration with the source matrix and its band boundaries, ``verify``
    once per checked fan-out result.  ``tolerance`` overrides the relative
    tolerance band (``None`` = exact on noise-free pools,
    :data:`DEFAULT_NOISE_TOLERANCE` under noise; ``0.0`` forces exact).
    """

    def __init__(self, tolerance: Optional[float] = None,
                 noisy: bool = False) -> None:
        if tolerance is not None and tolerance < 0:
            raise ValueError("integrity tolerance must be >= 0")
        self.tolerance = tolerance
        self.noisy = bool(noisy)
        self._bands: Dict[Tuple[int, int], BandChecksum] = {}

    def register(
        self,
        allocation_id: int,
        matrix: np.ndarray,
        bands: Sequence[Tuple[int, int]],
    ) -> None:
        """Precompute check vectors for every ``(row_start, row_end)`` band."""
        matrix = np.asarray(matrix, dtype=np.int64)
        for position, (row_start, row_end) in enumerate(bands):
            block = matrix[row_start:row_end, :]
            self._bands[(allocation_id, position)] = BandChecksum(
                row_start=row_start,
                row_end=row_end,
                check=block.sum(axis=1),
                abs_check=np.abs(block).sum(axis=1),
            )

    def forget(self, allocation_id: int) -> None:
        """Drop every checksum of one allocation (on release)."""
        for key in [k for k in self._bands if k[0] == allocation_id]:
            del self._bands[key]

    def covers(self, allocation_id: int) -> bool:
        """Whether any band of ``allocation_id`` has a registered checksum."""
        return any(key[0] == allocation_id for key in self._bands)

    def _effective_tolerance(self) -> float:
        if self.tolerance is not None:
            return self.tolerance
        return DEFAULT_NOISE_TOLERANCE if self.noisy else 0.0

    def verify(
        self,
        allocation_id: int,
        position: int,
        vectors: np.ndarray,
        partial: np.ndarray,
    ) -> Optional[bool]:
        """Check one shard partial against its band checksum.

        ``vectors`` is the input slice the band consumed (``(batch, rows)``
        or a single ``(rows,)`` vector); ``partial`` the device's
        full-width contribution.  Returns ``True``/``False`` for a
        registered band, ``None`` when the band has no checksum (nothing
        to verify -- e.g. an allocation created before the checker).
        """
        band = self._bands.get((allocation_id, position))
        if band is None:
            return None
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.int64))
        partial = np.atleast_2d(np.asarray(partial, dtype=np.int64))
        expected = vectors @ band.check
        got = partial.sum(axis=1)
        tolerance = self._effective_tolerance()
        if tolerance == 0.0:
            return bool(np.array_equal(got, expected))
        # Scale the band per vector: larger inputs accumulate more analog
        # noise.  The +tolerance floor keeps all-zero vectors checkable.
        bound = tolerance * (np.abs(vectors) @ band.abs_check) + tolerance
        return bool(np.all(np.abs(got - expected) <= bound))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IntegrityChecker(bands={len(self._bands)}, "
            f"tolerance={self._effective_tolerance()})"
        )

"""Application-specific runtime calls (Table 1, Section 4.4).

These wrap the workload mappings behind the high-level calls the paper
exposes to programmers with no knowledge of the underlying hardware:

* ``AesSession``   -- ``AES_initArrays()`` / ``AES_encrypt()`` / ``AES_decrypt()``
* ``CnnSession``   -- ``CNN_setModel()`` / ``CNN_runInference()`` /
  ``CNN_changeActivation()``
* ``LlmSession``   -- ``LLM_buildEncoder()`` / ``LLM_runInference()`` /
  ``LLM_changeActivation()``

AES runs fully functionally on a hybrid compute tile (bit-exact against the
FIPS-197 reference).  The CNN and LLM sessions run inference functionally in
the numpy frameworks (optionally with analog-noise injection) while exposing
the HCT allocation the mapping implies -- the same split the paper uses,
where full-network inference is evaluated through the performance model
rather than the bit-level simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple, Union

import numpy as np

from ..core.config import HctConfig
from ..core.hct import HybridComputeTile
from ..errors import AdmissionError, MappingError, SchedulerError
from ..workloads.aes.mapping import (
    DarthPumAes,
    bits_to_columns,
    columns_to_bits,
    mixcolumns_bit_matrix,
)
from ..workloads.aes.reference import decrypt_block
from ..workloads.cnn.layers import Conv2d
from ..workloads.cnn.mapping import CnnMapping, NoisyInferenceEngine
from ..workloads.cnn.quantize import quantize
from ..workloads.cnn.resnet import ResNet20
from ..workloads.cnn.tensors import im2col
from ..workloads.llm.encoder import EncoderConfig, TransformerEncoder
from ..workloads.llm.mapping import LlmMapping
from .scheduling import SchedulingPolicy, SloClass
from .server import PumServer

__all__ = [
    "AesSession",
    "CnnSession",
    "LlmSession",
    "serve_aes_mixcolumns",
    "serve_cnn_conv",
    "serve_llm_projection",
]


@dataclass
class AesSession:
    """``AES_initArrays`` / ``AES_encrypt`` / ``AES_decrypt`` (Table 1)."""

    tile: Optional[HybridComputeTile] = None
    key: Optional[bytes] = None
    _engine: DarthPumAes = field(init=False, repr=False)

    def __post_init__(self) -> None:
        tile = self.tile if self.tile is not None else HybridComputeTile(HctConfig.small())
        self.tile = tile
        # AES_initArrays(): reserve HCT resources, pre-load the S-box, store
        # the MixColumns matrix in the analog arrays.
        self._engine = DarthPumAes(tile, list(self.key) if self.key is not None else None)

    def encrypt(self, plaintext: bytes, key: Optional[bytes] = None) -> bytes:
        """AES_encrypt(): encrypt one 16-byte block on the hybrid tile."""
        if key is not None:
            self.key = key
        if self.key is None:
            raise MappingError("AES_encrypt needs a key (pass one or set it at init)")
        return self._engine.encrypt_bytes(plaintext, self.key)

    def decrypt(self, ciphertext: bytes, key: Optional[bytes] = None) -> bytes:
        """AES_decrypt(): decrypt a block (host-side reference decryption)."""
        if key is not None:
            self.key = key
        if self.key is None:
            raise MappingError("AES_decrypt needs a key (pass one or set it at init)")
        return bytes(decrypt_block(list(ciphertext), list(self.key)))

    @property
    def kernel_cycles(self):
        """Per-kernel cycle breakdown accumulated so far (Figure 14 style)."""
        return self._engine.kernel_cycles


@dataclass
class CnnSession:
    """``CNN_setModel`` / ``CNN_runInference`` / ``CNN_changeActivation``."""

    model: Optional[ResNet20] = None
    hct_config: Optional[HctConfig] = None
    accuracy_target: int = 0
    noise_lsb: float = 0.0
    _mapping: CnnMapping = field(init=False, repr=False)
    _activation: Callable[[np.ndarray], np.ndarray] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        # CNN_setModel(): allocate and store the model layers to HCTs, one
        # layer distribution per the mapping; the accuracy target (0-2) maps
        # to bits per cell exactly like the precision scale of setMatrix().
        self.model = self.model if self.model is not None else ResNet20()
        bits_per_cell = {0: 1, 1: 4, 2: 8}[self.accuracy_target]
        self._mapping = CnnMapping(
            self.model,
            self.hct_config if self.hct_config is not None else HctConfig.paper_default(),
            bits_per_cell=bits_per_cell,
        )
        self._activation = lambda x: np.maximum(x, 0)

    @property
    def hcts_allocated(self) -> int:
        """HCTs reserved by CNN_setModel()."""
        return self._mapping.total_hcts

    @property
    def mapping(self) -> CnnMapping:
        """The per-layer placement produced by CNN_setModel()."""
        return self._mapping

    def change_activation(self, activation: Callable[[np.ndarray], np.ndarray]) -> None:
        """CNN_changeActivation(): swap the activation used between layers."""
        self._activation = activation

    def run_inference(self, images: np.ndarray) -> np.ndarray:
        """CNN_runInference(): return logits for a batch of NCHW images.

        With ``noise_lsb > 0`` every MVM goes through the analog-noise model
        (the Section 7.5 study); otherwise plain quantised inference runs.
        """
        engine = NoisyInferenceEngine(self.model, noise_lsb=self.noise_lsb)
        return engine.forward(np.asarray(images))

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Class predictions for a batch."""
        return np.argmax(self.run_inference(images), axis=1)


@dataclass
class LlmSession:
    """``LLM_buildEncoder`` / ``LLM_runInference`` / ``LLM_changeActivation``."""

    config: Optional[EncoderConfig] = None
    hct_config: Optional[HctConfig] = None
    seed: int = 0
    _encoder: TransformerEncoder = field(init=False, repr=False)
    _mapping: LlmMapping = field(init=False, repr=False)
    _integer_kernels: bool = field(default=True, init=False)

    def __post_init__(self) -> None:
        # LLM_buildEncoder(): allocate and store the encoder's static
        # matrices (projections + FFN) on HCTs.
        self.config = self.config if self.config is not None else EncoderConfig.tiny()
        self._encoder = TransformerEncoder(self.config, seed=self.seed)
        self._mapping = LlmMapping(
            self.config,
            self.hct_config if self.hct_config is not None else HctConfig.paper_default(),
        )

    @property
    def hcts_allocated(self) -> int:
        """HCTs reserved by LLM_buildEncoder()."""
        return self._mapping.total_hcts

    def change_activation(self, use_integer_kernels: bool) -> None:
        """LLM_changeActivation(): toggle the I-BERT integer kernels."""
        self._integer_kernels = bool(use_integer_kernels)

    def run_inference(self, tokens: np.ndarray) -> np.ndarray:
        """LLM_runInference(): run the encoder over a (seq, hidden) input."""
        tokens = np.asarray(tokens)
        expected = (self.config.sequence_length, self.config.hidden_size)
        if tokens.shape != expected:
            raise MappingError(f"expected input of shape {expected}, got {tokens.shape}")
        return self._encoder.forward(tokens, integer_kernels=self._integer_kernels)


# ---------------------------------------------------------------------- #
# Serving entry points: the three paper workloads through the PumServer   #
# ---------------------------------------------------------------------- #
# Every ``serve_*`` helper shares one keyword surface (defined once here,
# applied by ``_serving_context``):
#
# ``server``       -- an existing :class:`PumServer`, or ``None`` to have the
#                     helper construct one from the keywords below.
# ``slo``          -- SLO class (name or :class:`SloClass`) every submitted
#                     request carries (deadline + shed priority).
# ``scheduling``   -- scheduling policy (name or
#                     :class:`~repro.runtime.scheduling.SchedulingPolicy`)
#                     of the constructed server.
# ``backend``      -- execution backend of the constructed server.
# ``replication``  -- row-band replication factor of the constructed pool.
# ``num_devices``  -- devices in the constructed pool (default 2).
#
# The construction keywords configure the server the helper builds; passing
# any of them *alongside* an existing ``server`` is ambiguous and raises
# :class:`~repro.errors.SchedulerError` (configure the server yourself
# instead).  ``slo`` applies either way.
def _serving_context(
    server: Optional[PumServer],
    *,
    scheduling: Union[None, str, SchedulingPolicy] = None,
    backend=None,
    replication: int = 1,
    num_devices: int = 2,
) -> PumServer:
    """Resolve the shared ``serve_*`` keywords into the server to use."""
    if server is None:
        return PumServer(
            num_devices=num_devices, backend=backend,
            replication=replication, scheduling=scheduling,
        )
    if scheduling is not None or backend is not None \
            or replication != 1 or num_devices != 2:
        raise SchedulerError(
            "scheduling/backend/replication/num_devices configure the server "
            "a serve_* helper constructs; pass server=None to use them, or "
            "configure your own PumServer and pass that instead"
        )
    return server


def _serve_all(
    server: PumServer,
    name: str,
    vectors: np.ndarray,
    input_bits: int,
    slo: Union[None, str, SloClass] = None,
) -> np.ndarray:
    """Submit the vectors through the bulk-ingress path and gather results.

    Each wave is one :meth:`~repro.runtime.server.PumServer.submit_batch`
    call: the whole block is validated in a single NumPy pass, admitted as
    requests whose vectors are row views of the block, and -- because the
    scheduler dispatches them in arrival order -- assembled into zero-copy
    batch slices on the way to the pool.  Waves are no larger than the
    server's queue capacity so an arbitrarily large workload never trips
    admission control against itself; a request that still ends
    rejected/shed/failed (competing traffic, deadline pressure, a chip
    fault) raises a descriptive error instead of surfacing as ``None`` deep
    inside a stack operation.
    """
    results = []
    wave = server.batching.queue_capacity
    for start in range(0, len(vectors), wave):
        futures = server.submit_batch(
            name, vectors[start: start + wave], input_bits=input_bits, slo=slo
        )
        server.run_until_idle()
        for future in futures:
            response = future.result()
            if not response.ok:
                raise AdmissionError(
                    f"request {response.request_id} against matrix {name!r} "
                    f"ended {response.status}"
                    + (f" ({response.error})" if response.error else "")
                )
            results.append(response.result)
    return np.stack(results)


def _submit_shifted(
    server: PumServer,
    name: str,
    vectors: np.ndarray,
    column_sums: np.ndarray,
    input_bits: int,
    slo: Union[None, str, SloClass] = None,
) -> np.ndarray:
    """Push signed vectors through the server's non-negative MVM path.

    The ACE applies non-negative bit-sliced inputs, so each vector is
    shifted into the positive range before submission and the constant
    column contribution is subtracted afterwards (the standard
    ``x @ W = (x + o) @ W - o * sum(W, axis=0)`` trick the on-tile
    mappings already use).  One request per vector -- the server's
    scheduler, not the caller, decides the batches.
    """
    vectors = np.asarray(vectors, dtype=np.int64)
    offsets = np.maximum(0, -vectors.min(axis=1))
    shifted = vectors + offsets[:, None]
    raw = _serve_all(server, name, shifted, input_bits, slo=slo)
    return raw - offsets[:, None] * column_sums[None, :]


def serve_aes_mixcolumns(
    server: Optional[PumServer],
    columns: np.ndarray,
    matrix_name: str = "aes.mixcolumns",
    *,
    slo: Union[None, str, SloClass] = None,
    scheduling: Union[None, str, SchedulingPolicy] = None,
    backend=None,
    replication: int = 1,
    num_devices: int = 2,
) -> np.ndarray:
    """AES MixColumns for ``(n, 4)`` state columns through the server.

    Registers the 32x32 GF(2) MixColumns bit matrix once (transposed, as
    the runtime computes ``x @ M``), submits one 32-bit request per column,
    and extracts the output parity bits -- the same mapping
    :class:`~repro.workloads.aes.mapping.DarthPumAes` uses on a single
    tile, but scheduled across the pool by dynamic batching.  Accepts the
    shared serving keywords documented at the section header above.
    """
    server = _serving_context(
        server, scheduling=scheduling, backend=backend,
        replication=replication, num_devices=num_devices,
    )
    if matrix_name not in server.matrix_names:
        server.register_matrix(
            matrix_name, mixcolumns_bit_matrix().T.copy(), element_size=1,
            input_bits=1,
        )
    bit_vectors = columns_to_bits(columns)
    parity = _serve_all(server, matrix_name, bit_vectors, input_bits=1, slo=slo) & 1
    return bits_to_columns(parity)


def serve_cnn_conv(
    server: Optional[PumServer],
    conv: Conv2d,
    image: np.ndarray,
    positions: int = 8,
    weight_bits: int = 6,
    activation_bits: int = 6,
    matrix_name: str = "cnn.conv",
    *,
    slo: Union[None, str, SloClass] = None,
    scheduling: Union[None, str, SchedulingPolicy] = None,
    backend=None,
    replication: int = 1,
    num_devices: int = 2,
) -> Tuple[np.ndarray, np.ndarray]:
    """Serve ``positions`` output positions of a convolution.

    The quantised Toeplitz weight matrix is registered once; every im2col
    patch becomes one single-vector request.  Returns
    ``(device_result, reference_result)`` as dequantised floats, mirroring
    :func:`~repro.workloads.cnn.mapping.run_conv_on_tile`.  Accepts the
    shared serving keywords documented at the section header above.
    """
    server = _serving_context(
        server, scheduling=scheduling, backend=backend,
        replication=replication, num_devices=num_devices,
    )
    image = np.asarray(image)
    if image.ndim != 4:
        raise MappingError("serve_cnn_conv expects an NCHW image batch")
    patches, _, _ = im2col(image, conv.kernel, conv.stride, conv.padding)
    weight_matrix = conv.weight.reshape(conv.out_channels, -1).T
    q_weight = quantize(weight_matrix, bits=weight_bits)
    q_patches = quantize(patches[:positions], bits=activation_bits)
    server.register_matrix(
        matrix_name, q_weight.values, element_size=weight_bits,
        input_bits=activation_bits + 1,
    )
    corrected = _submit_shifted(
        server, matrix_name, q_patches.values,
        q_weight.values.sum(axis=0), input_bits=activation_bits + 1, slo=slo,
    )
    device = corrected.astype(float) * q_weight.scale * q_patches.scale
    count = corrected.shape[0]
    return device, patches[:count] @ weight_matrix


def serve_llm_projection(
    server: Optional[PumServer],
    weight: np.ndarray,
    activations: np.ndarray,
    weight_bits: int = 6,
    activation_bits: int = 6,
    matrix_name: str = "llm.projection",
    *,
    slo: Union[None, str, SloClass] = None,
    scheduling: Union[None, str, SchedulingPolicy] = None,
    backend=None,
    replication: int = 1,
    num_devices: int = 2,
) -> Tuple[np.ndarray, np.ndarray]:
    """Serve a ``(token, hidden)`` projection, one request per token.

    Mirrors :func:`~repro.workloads.llm.mapping.run_projection_on_tile`
    but lets the server's scheduler coalesce the token stream into batches.
    Returns ``(device_result, reference_result)`` as dequantised floats.
    Accepts the shared serving keywords documented at the section header
    above.
    """
    server = _serving_context(
        server, scheduling=scheduling, backend=backend,
        replication=replication, num_devices=num_devices,
    )
    weight = np.asarray(weight, dtype=float)
    activations = np.asarray(activations, dtype=float)
    if activations.ndim != 2 or weight.ndim != 2:
        raise MappingError("serve_llm_projection expects 2-D activations and weights")
    q_weight = quantize(weight, bits=weight_bits)
    q_activations = quantize(activations, bits=activation_bits)
    server.register_matrix(
        matrix_name, q_weight.values, element_size=weight_bits,
        input_bits=activation_bits + 1,
    )
    corrected = _submit_shifted(
        server, matrix_name, q_activations.values,
        q_weight.values.sum(axis=0), input_bits=activation_bits + 1, slo=slo,
    )
    device = corrected.astype(float) * q_weight.scale * q_activations.scale
    return device, activations @ weight

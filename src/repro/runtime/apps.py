"""Application-specific runtime calls (Table 1, Section 4.4).

These wrap the workload mappings behind the high-level calls the paper
exposes to programmers with no knowledge of the underlying hardware:

* ``AesSession``   -- ``AES_initArrays()`` / ``AES_encrypt()`` / ``AES_decrypt()``
* ``CnnSession``   -- ``CNN_setModel()`` / ``CNN_runInference()`` /
  ``CNN_changeActivation()``
* ``LlmSession``   -- ``LLM_buildEncoder()`` / ``LLM_runInference()`` /
  ``LLM_changeActivation()``

AES runs fully functionally on a hybrid compute tile (bit-exact against the
FIPS-197 reference).  The CNN and LLM sessions run inference functionally in
the numpy frameworks (optionally with analog-noise injection) while exposing
the HCT allocation the mapping implies -- the same split the paper uses,
where full-network inference is evaluated through the performance model
rather than the bit-level simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from ..core.config import HctConfig
from ..core.hct import HybridComputeTile
from ..errors import MappingError
from ..workloads.aes.mapping import DarthPumAes
from ..workloads.aes.reference import decrypt_block
from ..workloads.cnn.mapping import CnnMapping, NoisyInferenceEngine
from ..workloads.cnn.resnet import ResNet20
from ..workloads.llm.encoder import EncoderConfig, TransformerEncoder
from ..workloads.llm.mapping import LlmMapping

__all__ = ["AesSession", "CnnSession", "LlmSession"]


@dataclass
class AesSession:
    """``AES_initArrays`` / ``AES_encrypt`` / ``AES_decrypt`` (Table 1)."""

    tile: Optional[HybridComputeTile] = None
    key: Optional[bytes] = None
    _engine: DarthPumAes = field(init=False, repr=False)

    def __post_init__(self) -> None:
        tile = self.tile if self.tile is not None else HybridComputeTile(HctConfig.small())
        self.tile = tile
        # AES_initArrays(): reserve HCT resources, pre-load the S-box, store
        # the MixColumns matrix in the analog arrays.
        self._engine = DarthPumAes(tile, list(self.key) if self.key is not None else None)

    def encrypt(self, plaintext: bytes, key: Optional[bytes] = None) -> bytes:
        """AES_encrypt(): encrypt one 16-byte block on the hybrid tile."""
        if key is not None:
            self.key = key
        if self.key is None:
            raise MappingError("AES_encrypt needs a key (pass one or set it at init)")
        return self._engine.encrypt_bytes(plaintext, self.key)

    def decrypt(self, ciphertext: bytes, key: Optional[bytes] = None) -> bytes:
        """AES_decrypt(): decrypt a block (host-side reference decryption)."""
        if key is not None:
            self.key = key
        if self.key is None:
            raise MappingError("AES_decrypt needs a key (pass one or set it at init)")
        return bytes(decrypt_block(list(ciphertext), list(self.key)))

    @property
    def kernel_cycles(self):
        """Per-kernel cycle breakdown accumulated so far (Figure 14 style)."""
        return self._engine.kernel_cycles


@dataclass
class CnnSession:
    """``CNN_setModel`` / ``CNN_runInference`` / ``CNN_changeActivation``."""

    model: Optional[ResNet20] = None
    hct_config: Optional[HctConfig] = None
    accuracy_target: int = 0
    noise_lsb: float = 0.0
    _mapping: CnnMapping = field(init=False, repr=False)
    _activation: Callable[[np.ndarray], np.ndarray] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        # CNN_setModel(): allocate and store the model layers to HCTs, one
        # layer distribution per the mapping; the accuracy target (0-2) maps
        # to bits per cell exactly like the precision scale of setMatrix().
        self.model = self.model if self.model is not None else ResNet20()
        bits_per_cell = {0: 1, 1: 4, 2: 8}[self.accuracy_target]
        self._mapping = CnnMapping(
            self.model,
            self.hct_config if self.hct_config is not None else HctConfig.paper_default(),
            bits_per_cell=bits_per_cell,
        )
        self._activation = lambda x: np.maximum(x, 0)

    @property
    def hcts_allocated(self) -> int:
        """HCTs reserved by CNN_setModel()."""
        return self._mapping.total_hcts

    @property
    def mapping(self) -> CnnMapping:
        """The per-layer placement produced by CNN_setModel()."""
        return self._mapping

    def change_activation(self, activation: Callable[[np.ndarray], np.ndarray]) -> None:
        """CNN_changeActivation(): swap the activation used between layers."""
        self._activation = activation

    def run_inference(self, images: np.ndarray) -> np.ndarray:
        """CNN_runInference(): return logits for a batch of NCHW images.

        With ``noise_lsb > 0`` every MVM goes through the analog-noise model
        (the Section 7.5 study); otherwise plain quantised inference runs.
        """
        engine = NoisyInferenceEngine(self.model, noise_lsb=self.noise_lsb)
        return engine.forward(np.asarray(images))

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Class predictions for a batch."""
        return np.argmax(self.run_inference(images), axis=1)


@dataclass
class LlmSession:
    """``LLM_buildEncoder`` / ``LLM_runInference`` / ``LLM_changeActivation``."""

    config: Optional[EncoderConfig] = None
    hct_config: Optional[HctConfig] = None
    seed: int = 0
    _encoder: TransformerEncoder = field(init=False, repr=False)
    _mapping: LlmMapping = field(init=False, repr=False)
    _integer_kernels: bool = field(default=True, init=False)

    def __post_init__(self) -> None:
        # LLM_buildEncoder(): allocate and store the encoder's static
        # matrices (projections + FFN) on HCTs.
        self.config = self.config if self.config is not None else EncoderConfig.tiny()
        self._encoder = TransformerEncoder(self.config, seed=self.seed)
        self._mapping = LlmMapping(
            self.config,
            self.hct_config if self.hct_config is not None else HctConfig.paper_default(),
        )

    @property
    def hcts_allocated(self) -> int:
        """HCTs reserved by LLM_buildEncoder()."""
        return self._mapping.total_hcts

    def change_activation(self, use_integer_kernels: bool) -> None:
        """LLM_changeActivation(): toggle the I-BERT integer kernels."""
        self._integer_kernels = bool(use_integer_kernels)

    def run_inference(self, tokens: np.ndarray) -> np.ndarray:
        """LLM_runInference(): run the encoder over a (seq, hidden) input."""
        tokens = np.asarray(tokens)
        expected = (self.config.sequence_length, self.config.hidden_size)
        if tokens.shape != expected:
            raise MappingError(f"expected input of shape {expected}, got {tokens.shape}")
        return self._encoder.forward(tokens, integer_kernels=self._integer_kernels)

"""Request queue structures behind the :class:`~repro.runtime.server.PumServer`.

The scheduler's original queue was a flat list: every tick re-scanned all
queued requests to find compatible groups, re-scanned them again to find the
oldest member of each group, and removed dispatched requests one ``O(queue)``
``list.remove`` at a time.  At serving depth that makes the tick loop
``O(queue^2)`` even when no work is ready.  This module makes the queue a
pluggable strategy so the fast path and the pre-rework baseline stay
side by side:

* :class:`IndexedRequestQueue` (the default) keeps one arrival-ordered deque
  of request ids per ``(name, input_bits)`` group, a live count per group, and
  a lazy min-heap of absolute deadlines.  ``ready_groups`` touches only the
  group index (O(groups), not O(queue)), deadline shedding pops only expired
  heap entries, and ``take`` removes a batch without ever scanning requests
  that are not part of it -- the tick loop is O(ready work).
* :class:`FlatRequestQueue` reproduces the original flat-list behaviour --
  including its full-queue scans and the duplicated oldest-arrival
  computation -- and exists as the executable baseline the serving-latency
  regression gate (``benchmarks/test_serving_latency.py``) measures against.

Both implementations resolve scheduling ties through the same total orders
(batch order ``(-priority, arrival_tick, request_id)``, victim order
``(priority, arrival_tick, request_id)``), so they dispatch bit-identical
batches in bit-identical order; only the asymptotics differ.  (A
:class:`~repro.runtime.scheduling.SchedulingPolicy` may hand ``victim`` an
*explicit* order -- cost-priced shedding -- but the default stays the
shared total order above.)  The ``scans`` counter records every full-queue
pass a queue performs, which is how tests prove the indexed tick loop
stays flat in queue depth.

Cost-aware scheduling additionally needs a *group-level* deadline view:
``group_keys()`` enumerates the live groups and ``min_deadline(key)``
returns the tightest absolute deadline among a group's members.  The
indexed queue answers both without scanning requests (per-group lazy
deadline heaps, maintained alongside the global shedding heap); the flat
baseline scans, as it does for everything else.

>>> import numpy as np
>>> from repro.runtime.queueing import IndexedRequestQueue
>>> from repro.runtime.server import Request
>>> queue = IndexedRequestQueue()
>>> for i in range(3):
...     queue.push(Request(request_id=i, name="m",
...                        vector=np.zeros(2, dtype=np.int64), input_bits=2,
...                        priority=i, deadline=None, arrival_tick=0))
>>> queue.ready_groups(now=1, max_batch=2, max_wait_ticks=4)
[('m', 2)]
>>> [r.request_id for r in queue.take(("m", 2), max_batch=2)]
[2, 1]
>>> len(queue), queue.scans
(1, 0)
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple, Union

from ..errors import SchedulerError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .server import Request

__all__ = [
    "FlatRequestQueue",
    "IndexedRequestQueue",
    "RequestQueue",
    "make_request_queue",
]

#: A compatible-request group: requests against one matrix at one precision.
GroupKey = Tuple[str, int]


def batch_order(request: "Request") -> Tuple[int, int, int]:
    """Dispatch order within a group: higher priority first, then arrival."""
    return (-request.priority, request.arrival_tick, request.request_id)


def victim_order(request: "Request") -> Tuple[int, int, int]:
    """Admission-shedding order: lowest priority first, then oldest."""
    return (request.priority, request.arrival_tick, request.request_id)


class RequestQueue:
    """Strategy interface of the scheduler's pending-request store.

    All mutating calls happen under the server's lock; implementations do
    not need their own synchronisation.  ``scans`` counts every pass whose
    cost is proportional to the *whole* queue rather than to the work
    returned -- the serving-latency gate asserts it stays flat in queue
    depth for the indexed implementation.
    """

    name = "base"

    def __init__(self) -> None:
        #: Full-queue scans performed so far (O(pending) passes).
        self.scans = 0

    def __len__(self) -> int:
        """Live queued requests."""
        raise NotImplementedError

    def push(self, request: "Request") -> None:
        """Admit one request (called in arrival order, ids monotonic)."""
        raise NotImplementedError

    def push_wave(self, requests: List["Request"]) -> None:
        """Admit a homogeneous wave in one pass.

        Every request must share the same ``(name, input_bits)`` group,
        priority, and deadline (the :meth:`PumServer.submit_batch`
        contract); ids are in arrival order.  The default simply loops
        ``push``; the indexed queue batches its bookkeeping.
        """
        for request in requests:
            self.push(request)

    def discard(self, request_id: int) -> Optional["Request"]:
        """Remove one queued request by id; returns it, or None if absent."""
        raise NotImplementedError

    def pop_expired(self, now: int) -> List["Request"]:
        """Remove and return every request whose deadline passed, id order."""
        raise NotImplementedError

    def ready_groups(
        self, now: int, max_batch: int, max_wait_ticks: int
    ) -> List[GroupKey]:
        """Groups due for dispatch (full batch or aged), oldest-arrival first."""
        raise NotImplementedError

    def group_pending(self, key: GroupKey) -> int:
        """Live requests queued under ``key``."""
        raise NotImplementedError

    def oldest_wait(self, key: GroupKey, now: int) -> int:
        """Ticks the oldest live request of ``key`` has waited (-1 if empty)."""
        raise NotImplementedError

    def group_keys(self) -> List[GroupKey]:
        """Every group with at least one live request (stable order)."""
        raise NotImplementedError

    def min_deadline(self, key: GroupKey) -> Optional[int]:
        """Tightest absolute deadline among ``key``'s live requests.

        ``None`` when the group is empty or none of its members carry a
        deadline.
        """
        raise NotImplementedError

    def take(self, key: GroupKey, max_batch: int) -> List["Request"]:
        """Remove and return up to ``max_batch`` requests of ``key`` in
        dispatch order (:func:`batch_order`)."""
        raise NotImplementedError

    def victim(self, order=None) -> Optional["Request"]:
        """The queued request first in victim order (not removed).

        ``order`` defaults to the shared :func:`victim_order` total order;
        a scheduling policy may supply its own key function (cost-priced
        shedding) without the queue knowing anything about costs.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(pending={len(self)}, scans={self.scans})"


class IndexedRequestQueue(RequestQueue):
    """Per-group deques plus a deadline heap: the serving fast path.

    Requests live in ``_requests`` (id -> request); each group keeps an
    arrival-ordered deque of ids and an exact live count.  Removal from the
    middle of a group (deadline shed, admission victim) just drops the id
    from ``_requests`` -- the deque entry becomes a tombstone skipped (and
    compacted) the next time the group's front is inspected, so no operation
    ever scans requests outside the group it is working on.  The deadline
    heap is likewise lazy: entries whose request already resolved are
    discarded as they surface.
    """

    name = "indexed"

    def __init__(self) -> None:
        super().__init__()
        self._requests: Dict[int, "Request"] = {}
        self._groups: Dict[GroupKey, Deque[int]] = {}
        self._live: Dict[GroupKey, int] = {}
        #: Live-request count per distinct priority within each group.  A
        #: group whose members all share one priority (the overwhelmingly
        #: common case -- bulk ingress submits whole waves at one priority)
        #: dispatches straight off the front of its deque in O(batch);
        #: only genuinely mixed-priority groups pay a sort.
        self._priorities: Dict[GroupKey, Dict[int, int]] = {}
        self._deadlines: List[Tuple[int, int]] = []
        #: Per-group lazy min-heaps of ``(deadline, request_id)``.  Ids are
        #: never reused and deadlines never change, so dead entries can be
        #: skipped lazily exactly like the global shedding heap's.
        self._group_deadlines: Dict[GroupKey, List[Tuple[int, int]]] = {}

    def __len__(self) -> int:
        return len(self._requests)

    def push(self, request: "Request") -> None:
        key = (request.name, request.input_bits)
        self._requests[request.request_id] = request
        self._groups.setdefault(key, deque()).append(request.request_id)
        self._live[key] = self._live.get(key, 0) + 1
        counts = self._priorities.setdefault(key, {})
        counts[request.priority] = counts.get(request.priority, 0) + 1
        if request.deadline is not None:
            entry = (request.deadline, request.request_id)
            heapq.heappush(self._deadlines, entry)
            heapq.heappush(self._group_deadlines.setdefault(key, []), entry)

    def push_wave(self, requests: List["Request"]) -> None:
        if not requests:
            return
        first = requests[0]
        key = (first.name, first.input_bits)
        count = len(requests)
        self._requests.update((r.request_id, r) for r in requests)
        self._groups.setdefault(key, deque()).extend(
            r.request_id for r in requests
        )
        self._live[key] = self._live.get(key, 0) + count
        counts = self._priorities.setdefault(key, {})
        counts[first.priority] = counts.get(first.priority, 0) + count
        if first.deadline is not None:
            group_heap = self._group_deadlines.setdefault(key, [])
            for request in requests:
                entry = (request.deadline, request.request_id)
                heapq.heappush(self._deadlines, entry)
                heapq.heappush(group_heap, entry)

    def _forget(self, key: GroupKey, request: "Request") -> None:
        """Update the group counters for one removed request."""
        live = self._live.get(key, 0) - 1
        counts = self._priorities.get(key)
        if counts is not None:
            remaining = counts.get(request.priority, 0) - 1
            if remaining > 0:
                counts[request.priority] = remaining
            else:
                counts.pop(request.priority, None)
        if live > 0:
            self._live[key] = live
        else:
            # Group is all tombstones now; drop the index entries (the
            # deque may still hold dead ids, which is fine -- a future
            # push recreates the group from scratch).
            self._live.pop(key, None)
            self._groups.pop(key, None)
            self._priorities.pop(key, None)
            self._group_deadlines.pop(key, None)

    def discard(self, request_id: int) -> Optional["Request"]:
        request = self._requests.pop(request_id, None)
        if request is not None:
            self._forget((request.name, request.input_bits), request)
        return request

    def pop_expired(self, now: int) -> List["Request"]:
        expired: List["Request"] = []
        while self._deadlines and self._deadlines[0][0] < now:
            _, request_id = heapq.heappop(self._deadlines)
            request = self.discard(request_id)
            if request is not None:
                expired.append(request)
        # Submission (= id) order, matching the flat queue's shed order.
        expired.sort(key=lambda r: r.request_id)
        return expired

    def _front(self, key: GroupKey) -> Optional["Request"]:
        """Oldest live request of ``key``, compacting front tombstones."""
        ids = self._groups.get(key)
        if not ids:
            return None
        while ids:
            request = self._requests.get(ids[0])
            if request is not None:
                return request
            ids.popleft()
        return None

    def ready_groups(
        self, now: int, max_batch: int, max_wait_ticks: int
    ) -> List[GroupKey]:
        ready: List[Tuple[int, GroupKey]] = []
        for key in list(self._groups):
            pending = self._live.get(key, 0)
            front = self._front(key)
            if not pending or front is None:
                self._live.pop(key, None)
                self._groups.pop(key, None)
                self._priorities.pop(key, None)
                self._group_deadlines.pop(key, None)
                continue
            if pending >= max_batch or now - front.arrival_tick >= max_wait_ticks:
                ready.append((front.arrival_tick, key))
        ready.sort()
        return [key for _, key in ready]

    def group_pending(self, key: GroupKey) -> int:
        return self._live.get(key, 0)

    def oldest_wait(self, key: GroupKey, now: int) -> int:
        front = self._front(key)
        if front is None:
            return -1
        return now - front.arrival_tick

    def group_keys(self) -> List[GroupKey]:
        # The live-count index is maintained exactly, so this is O(groups)
        # and never increments ``scans``.
        return [key for key, live in self._live.items() if live > 0]

    def min_deadline(self, key: GroupKey) -> Optional[int]:
        heap = self._group_deadlines.get(key)
        if not heap:
            return None
        requests = self._requests
        while heap:
            deadline, request_id = heap[0]
            if request_id in requests:
                return deadline
            heapq.heappop(heap)
        self._group_deadlines.pop(key, None)
        return None

    def take(self, key: GroupKey, max_batch: int) -> List["Request"]:
        ids = self._groups.get(key)
        if not ids:
            return []
        counts = self._priorities.get(key, {})
        if len(counts) <= 1:
            # Uniform priority: dispatch order (-priority, arrival, id)
            # degenerates to arrival order, which *is* the deque order --
            # pop straight off the front, skipping tombstones.  O(batch),
            # with the group counters adjusted once for the whole batch.
            chosen: List["Request"] = []
            requests = self._requests
            while ids and len(chosen) < max_batch:
                request = requests.pop(ids.popleft(), None)
                if request is not None:
                    chosen.append(request)
            taken = len(chosen)
            if taken:
                live = self._live.get(key, 0) - taken
                if live > 0:
                    self._live[key] = live
                    priority = chosen[0].priority
                    counts[priority] = counts.get(priority, 0) - taken
                else:
                    self._live.pop(key, None)
                    self._groups.pop(key, None)
                    self._priorities.pop(key, None)
                    self._group_deadlines.pop(key, None)
            return chosen
        # Mixed priorities: fall back to the shared dispatch sort over the
        # group's live members (still touches only this group).
        arrivals = [r for r in (self._requests.get(i) for i in ids) if r is not None]
        chosen = sorted(arrivals, key=batch_order)[:max_batch]
        for request in chosen:
            del self._requests[request.request_id]
            self._forget(key, request)
        chosen_ids = {request.request_id for request in chosen}
        if self._live.get(key):
            self._groups[key] = deque(
                r.request_id for r in arrivals if r.request_id not in chosen_ids
            )
        return chosen

    def victim(self, order=None) -> Optional["Request"]:
        if not self._requests:
            return None
        # Admission control only engages when the queue is at capacity, so
        # this O(pending) pass is bounded by queue_capacity and never runs
        # in the tick loop; it is still an honest full-queue scan.
        self.scans += 1
        return min(self._requests.values(), key=order or victim_order)


class FlatRequestQueue(RequestQueue):
    """The pre-rework flat-list queue, kept as the measured baseline.

    Faithfully reproduces the original scheduler's cost profile -- every
    readiness check, deadline sweep, and dispatch re-scans the whole list,
    the oldest-arrival of a group is computed twice per readiness pass (the
    duplication the indexed queue removed), and each dispatched request pays
    an ``O(queue)`` ``list.remove``.  ``benchmarks/test_serving_latency.py``
    drives identical traffic through both implementations and gates on the
    indexed queue's speedup, with bit-identical responses as the invariant.
    """

    name = "flat"

    def __init__(self) -> None:
        super().__init__()
        self._queue: List["Request"] = []

    def __len__(self) -> int:
        return len(self._queue)

    def push(self, request: "Request") -> None:
        self._queue.append(request)

    def discard(self, request_id: int) -> Optional["Request"]:
        self.scans += 1
        for request in self._queue:
            if request.request_id == request_id:
                self._queue.remove(request)
                return request
        return None

    def pop_expired(self, now: int) -> List["Request"]:
        self.scans += 1
        expired = [
            r for r in self._queue if r.deadline is not None and r.deadline < now
        ]
        for request in expired:
            self._queue.remove(request)
        return expired

    def ready_groups(
        self, now: int, max_batch: int, max_wait_ticks: int
    ) -> List[GroupKey]:
        self.scans += 1
        groups: Dict[GroupKey, List["Request"]] = {}
        for request in self._queue:
            groups.setdefault((request.name, request.input_bits), []).append(request)
        ready: List[Tuple[int, GroupKey]] = []
        for key, members in groups.items():
            oldest_wait = now - min(r.arrival_tick for r in members)
            if len(members) >= max_batch or oldest_wait >= max_wait_ticks:
                # The duplicated min() is deliberate: it preserves the
                # original scheduler's measured cost (the indexed queue is
                # the fix).
                ready.append((min(r.arrival_tick for r in members), key))
        return [key for _, key in sorted(ready)]

    def _members(self, key: GroupKey) -> List["Request"]:
        self.scans += 1
        return [r for r in self._queue if (r.name, r.input_bits) == key]

    def group_pending(self, key: GroupKey) -> int:
        return len(self._members(key))

    def oldest_wait(self, key: GroupKey, now: int) -> int:
        members = self._members(key)
        if not members:
            return -1
        return now - min(r.arrival_tick for r in members)

    def group_keys(self) -> List[GroupKey]:
        self.scans += 1
        seen: Dict[GroupKey, None] = {}
        for request in self._queue:
            seen.setdefault((request.name, request.input_bits), None)
        return list(seen)

    def min_deadline(self, key: GroupKey) -> Optional[int]:
        deadlines = [
            r.deadline for r in self._members(key) if r.deadline is not None
        ]
        return min(deadlines) if deadlines else None

    def take(self, key: GroupKey, max_batch: int) -> List["Request"]:
        members = self._members(key)
        members.sort(key=batch_order)
        batch = members[:max_batch]
        for request in batch:
            self._queue.remove(request)
        return batch

    def victim(self, order=None) -> Optional["Request"]:
        if not self._queue:
            return None
        self.scans += 1
        return min(self._queue, key=order or victim_order)


def make_request_queue(queue: Union[str, RequestQueue]) -> RequestQueue:
    """Resolve a queue name (or pass through a queue instance)."""
    if isinstance(queue, RequestQueue):
        return queue
    factories = {
        "indexed": IndexedRequestQueue,
        "flat": FlatRequestQueue,
    }
    if queue not in factories:
        raise SchedulerError(
            f"unknown request queue {queue!r}; expected one of "
            f"{tuple(factories)} or a RequestQueue instance"
        )
    return factories[queue]()

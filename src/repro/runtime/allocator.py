"""HCT allocation for matrices (Section 4.4 runtime support).

``setMatrix()`` takes a matrix, the element size, and a bit-precision scale
and must decide -- without further programmer input -- how many hybrid
compute tiles are needed and how the matrix is tiled across them.  The
allocator implements that policy: matrices are split into HCT-sized blocks
(an HCT's ACE holds 64 analog arrays of 64x64 devices), with the number of
weight slices per value determined by the precision scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..core.config import HctConfig
from ..errors import AllocationError

__all__ = ["precision_to_bits_per_cell", "MatrixPlacement", "TilePlan", "plan_matrix"]


def precision_to_bits_per_cell(precision: int, element_size: int, max_bits_per_cell: int = 8) -> int:
    """Map the programmer-facing precision scale (0-2) to bits per cell.

    Scale 0 -> 1 bit per device (most precise analog computation),
    scale 1 -> half of the device's maximum, scale 2 -> the maximum
    (Section 4.4).  The result never exceeds the element size.
    """
    if precision not in (0, 1, 2):
        raise AllocationError("precision must be 0, 1, or 2")
    if precision == 0:
        bits = 1
    elif precision == 1:
        bits = max(1, max_bits_per_cell // 2)
    else:
        bits = max_bits_per_cell
    return min(bits, element_size)


@dataclass(frozen=True)
class TilePlan:
    """One HCT-sized block of a larger matrix."""

    hct_slot: int
    row_start: int
    row_end: int
    col_start: int
    col_end: int

    @property
    def shape(self) -> Tuple[int, int]:
        """Shape of the block."""
        return (self.row_end - self.row_start, self.col_end - self.col_start)


@dataclass(frozen=True)
class MatrixPlacement:
    """The full placement of a matrix across HCTs."""

    shape: Tuple[int, int]
    element_size: int
    bits_per_cell: int
    tiles: Tuple[TilePlan, ...]

    @property
    def hcts_needed(self) -> int:
        """Number of hybrid compute tiles the matrix occupies."""
        return len({tile.hct_slot for tile in self.tiles})

    def tiles_for_hct(self, hct_slot: int) -> List[TilePlan]:
        """Blocks placed on a given HCT slot."""
        return [tile for tile in self.tiles if tile.hct_slot == hct_slot]


def plan_matrix(
    shape: Tuple[int, int],
    element_size: int,
    precision: int,
    hct_config: HctConfig,
) -> MatrixPlacement:
    """Compute how a matrix is tiled over HCTs.

    Each HCT block is sized so that its analog arrays (rows x cols x weight
    slices) fit within one ACE; the runtime then programs one block per HCT.
    """
    rows, cols = shape
    if rows < 1 or cols < 1:
        raise AllocationError("matrix must have positive dimensions")
    ace = hct_config.ace
    bits_per_cell = precision_to_bits_per_cell(precision, element_size)
    slices = -(-element_size // bits_per_cell)
    arrays_per_block = ace.num_arrays
    # A block of (block_rows x block_cols) needs row_tiles*col_tiles*slices arrays.
    max_col_tiles = max(1, arrays_per_block // slices)
    # Search the largest (row_tiles, col_tiles) split that fits in one ACE.
    best_rows, best_cols = 1, 1
    for row_tiles in range(1, arrays_per_block + 1):
        col_tiles = arrays_per_block // (row_tiles * slices)
        if col_tiles < 1:
            break
        if row_tiles * col_tiles > best_rows * best_cols:
            best_rows, best_cols = row_tiles, col_tiles
    block_rows = best_rows * ace.array_rows
    block_cols = best_cols * ace.array_cols

    tiles: List[TilePlan] = []
    slot = 0
    for row_start in range(0, rows, block_rows):
        row_end = min(rows, row_start + block_rows)
        for col_start in range(0, cols, block_cols):
            col_end = min(cols, col_start + block_cols)
            tiles.append(
                TilePlan(
                    hct_slot=slot,
                    row_start=row_start,
                    row_end=row_end,
                    col_start=col_start,
                    col_end=col_end,
                )
            )
            slot += 1
    return MatrixPlacement(
        shape=(rows, cols),
        element_size=element_size,
        bits_per_cell=bits_per_cell,
        tiles=tuple(tiles),
    )

"""Application-agnostic runtime library (Table 1, Section 4.4).

:class:`DarthPumDevice` is the programmer-facing handle to a DARTH-PUM chip.
Its application-agnostic calls mirror Table 1:

==================  ====================================================
``alloc_vacore``     allocate a vACore based on element size and precision
``set_matrix``       allocate HCTs and store a matrix
``exec_mvm``         execute an MVM between a stored matrix and a vector
``update_row/col``   update part of a stored matrix
``disable_analog_mode`` / ``disable_digital_mode``
==================  ====================================================

The calls hide vACore handling, HCT counts, and the analog/digital split
entirely; programmers only pass matrices, vectors, an element size, and a
precision scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from ..analog.ace import MatrixHandle
from ..core.chip import DarthPumChip
from ..core.config import ChipConfig
from ..errors import QuantizationError
from ..metrics import CostLedger
from ..plan.backends import ExecutionBackend, resolve_backend
from ..plan.ir import MvmPlan, PlanHandle
from ..reram import NoiseConfig
from .allocator import MatrixPlacement, plan_matrix, precision_to_bits_per_cell

__all__ = ["MatrixAllocation", "DarthPumDevice"]


@dataclass
class MatrixAllocation:
    """A matrix stored across one or more HCTs, returned by ``set_matrix``.

    The allocation records where each HCT-sized block of the matrix lives
    (``placement``), which physical tiles hold it (``hct_indices``), and the
    per-block analog handles needed to execute MVMs against it.  Programmers
    never build one directly; they receive it from
    :meth:`DarthPumDevice.set_matrix` and pass it back to ``exec_mvm`` /
    ``exec_mvm_batch`` / ``update_row`` / ``release``.

    >>> import numpy as np
    >>> from repro import DarthPumDevice
    >>> device = DarthPumDevice()
    >>> allocation = device.set_matrix(np.eye(4, dtype=np.int64), element_size=4)
    >>> allocation.shape
    (4, 4)
    >>> allocation.hcts_used
    1
    """

    allocation_id: int
    placement: MatrixPlacement
    hct_indices: List[int]
    handles: Dict[int, MatrixHandle] = field(default_factory=dict)
    matrix: Optional[np.ndarray] = None

    @property
    def shape(self):
        """Logical matrix shape."""
        return self.placement.shape

    @property
    def hcts_used(self) -> int:
        """Number of HCTs holding pieces of this matrix."""
        return len(self.hct_indices)


class DarthPumDevice:
    """The programmer's handle to a DARTH-PUM chip.

    Wraps a :class:`~repro.core.chip.DarthPumChip` behind the Table 1
    application-agnostic calls.  A typical session stores a matrix once and
    executes many MVMs against it:

    >>> import numpy as np
    >>> from repro import DarthPumDevice
    >>> device = DarthPumDevice()
    >>> matrix = np.arange(12, dtype=np.int64).reshape(4, 3) % 5
    >>> allocation = device.set_matrix(matrix, element_size=4, precision=0)
    >>> vector = np.array([1, 2, 3, 4])
    >>> np.array_equal(device.exec_mvm(allocation, vector, input_bits=3),
    ...                vector @ matrix)
    True

    For serving-style traffic, :meth:`exec_mvm_batch` pushes a whole batch of
    vectors through the chip in one arbiter pass (see the plan/compile/execute
    split in ``docs/architecture.md``).
    """

    def __init__(
        self,
        chip: Optional[DarthPumChip] = None,
        config: Optional[ChipConfig] = None,
        noise: Optional[NoiseConfig] = None,
    ) -> None:
        if chip is not None:
            self.chip = chip
        else:
            self.chip = DarthPumChip(config if config is not None else ChipConfig.iso_area_default(),
                                     noise=noise)
        self._allocations: Dict[int, MatrixAllocation] = {}
        self._next_allocation = 0
        self.ledger = CostLedger()

    # ------------------------------------------------------------------ #
    # Application-agnostic calls (Table 1)                                 #
    # ------------------------------------------------------------------ #
    def alloc_vacore(self, element_size: int, precision: int = 0, hct_index: int = 0):
        """allocVACore(): allocate a vACore on an HCT and set up its µop table."""
        bits = precision_to_bits_per_cell(precision, element_size)
        return self.chip.hct(hct_index).alloc_vacore(element_size, bits)

    def set_matrix(
        self,
        matrix: np.ndarray,
        element_size: int = 8,
        precision: int = 0,
    ) -> MatrixAllocation:
        """setMatrix(): allocate HCTs and program ``matrix`` into them."""
        matrix = np.asarray(matrix)
        if matrix.ndim != 2:
            raise QuantizationError("set_matrix expects a 2-D matrix")
        if not np.issubdtype(matrix.dtype, np.integer):
            raise QuantizationError(
                "set_matrix expects an integer matrix; quantise floats first"
            )
        placement = plan_matrix(matrix.shape, element_size, precision, self.chip.config.hct)
        hct_indices = self.chip.allocate_hcts(placement.hcts_needed, owner="set_matrix")
        allocation = MatrixAllocation(
            allocation_id=self._next_allocation,
            placement=placement,
            hct_indices=hct_indices,
            matrix=matrix.astype(np.int64),
        )
        for tile in placement.tiles:
            hct_index = hct_indices[tile.hct_slot % len(hct_indices)]
            hct = self.chip.hct(hct_index)
            block = matrix[tile.row_start: tile.row_end, tile.col_start: tile.col_end]
            handle = hct.set_matrix(
                block.astype(np.int64),
                value_bits=element_size,
                bits_per_cell=placement.bits_per_cell,
            )
            allocation.handles[tile.hct_slot] = handle
        self._allocations[allocation.allocation_id] = allocation
        self._next_allocation += 1
        return allocation

    def exec_mvm(self, allocation: MatrixAllocation, vector: np.ndarray,
                 input_bits: int = 8) -> np.ndarray:
        """execMVM(): multiply ``vector`` by the stored matrix."""
        vector = np.asarray(vector, dtype=np.int64)
        rows, cols = allocation.shape
        if vector.shape != (rows,):
            raise QuantizationError(
                f"input vector of shape {vector.shape} does not match matrix rows ({rows})"
            )
        result = np.zeros(cols, dtype=np.int64)
        for tile in allocation.placement.tiles:
            hct_index = allocation.hct_indices[tile.hct_slot % len(allocation.hct_indices)]
            hct = self.chip.hct(hct_index)
            handle = allocation.handles[tile.hct_slot]
            sub_vector = vector[tile.row_start: tile.row_end]
            sub_result = hct.execute_mvm(handle, sub_vector, input_bits=input_bits)
            result[tile.col_start: tile.col_end] += sub_result.values
            self.ledger.charge("runtime.mvm", cycles=sub_result.optimized_cycles,
                               energy_pj=sub_result.energy_pj)
        return result

    def exec_mvm_batch(
        self,
        allocation: MatrixAllocation,
        vectors: np.ndarray,
        input_bits: int = 8,
        backend: Union[None, str, "ExecutionBackend"] = None,
    ) -> np.ndarray:
        """execMVMBatch(): multiply a batch of vectors by the stored matrix.

        ``vectors`` has shape ``(batch, rows)``; the result has shape
        ``(batch, cols)``.  The whole batch is bit-sliced together and
        scheduled through the ACE/DCE of every HCT holding a block of the
        matrix in a single arbiter pass, so front-end, injection, and
        (host-side) interpreter overheads are paid once per batch instead of
        once per vector.  ``backend`` selects the plan interpreter
        (``"vectorized"``, the default, or the step-faithful
        ``"reference"``); the two are bit-identical, including ledger
        totals.  In the noise-free configuration the rows are bit-identical
        to ``batch`` sequential :meth:`exec_mvm` calls.

        >>> import numpy as np
        >>> from repro import DarthPumDevice
        >>> device = DarthPumDevice()
        >>> matrix = np.arange(12, dtype=np.int64).reshape(4, 3) % 5
        >>> allocation = device.set_matrix(matrix, element_size=4, precision=0)
        >>> vectors = np.array([[1, 2, 3, 4], [4, 3, 2, 1], [0, 7, 0, 7]])
        >>> out = device.exec_mvm_batch(allocation, vectors, input_bits=3)
        >>> np.array_equal(out, vectors @ matrix)
        True
        """
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.int64))
        rows, cols = allocation.shape
        if vectors.shape[1] != rows:
            raise QuantizationError(
                f"input batch of shape {vectors.shape} does not match matrix rows ({rows})"
            )
        batch = vectors.shape[0]
        result = np.zeros((batch, cols), dtype=np.int64)
        if batch == 0:
            return result
        executor = resolve_backend(backend)
        for tile in allocation.placement.tiles:
            hct_index = allocation.hct_indices[tile.hct_slot % len(allocation.hct_indices)]
            hct = self.chip.hct(hct_index)
            handle = allocation.handles[tile.hct_slot]
            sub_vectors = vectors[:, tile.row_start: tile.row_end]
            sub_result = hct.execute_mvm_batch(
                handle, sub_vectors, input_bits=input_bits, backend=executor
            )
            result[:, tile.col_start: tile.col_end] += sub_result.values
            self.ledger.charge("runtime.mvm_batch", cycles=sub_result.optimized_cycles,
                               energy_pj=sub_result.energy_pj)
        return result

    def compile(self, allocation: MatrixAllocation, input_bits: int = 8) -> List[MvmPlan]:
        """Compile (and cache) the execution plans of every tile block.

        Serving layers call this at registration time so the per-request
        hot path never plans: every subsequent ``exec_mvm`` /
        ``exec_mvm_batch`` against ``allocation`` at ``input_bits`` hits the
        tile-level plan caches.  Idempotent -- recompiling is a cache hit.
        """
        plans: List[MvmPlan] = []
        for tile in allocation.placement.tiles:
            hct_index = allocation.hct_indices[tile.hct_slot % len(allocation.hct_indices)]
            hct = self.chip.hct(hct_index)
            handle = allocation.handles[tile.hct_slot]
            plans.append(hct.planner.plan_for(handle, input_bits))
        return plans

    def planner_builds(self) -> int:
        """Execution plans compiled on this device (see ``DarthPumChip``)."""
        return self.chip.planner_builds()

    def predicted_mvm_cycles(
        self, allocation: MatrixAllocation, batch: int, input_bits: int = 8
    ) -> float:
        """Predicted cycles of one ``batch`` MVM against ``allocation``.

        Closed-form from each tile block's cached
        :meth:`~repro.plan.ir.MvmPlan.predicted_cycles` -- identical to the
        optimized-timeline cycles execution will charge, without touching
        any device state (``compile`` at registration means this is pure
        cache hits).  Tile blocks execute serially on one device, so costs
        sum.
        """
        total = 0.0
        for tile in allocation.placement.tiles:
            hct_index = allocation.hct_indices[tile.hct_slot % len(allocation.hct_indices)]
            hct = self.chip.hct(hct_index)
            handle = allocation.handles[tile.hct_slot]
            total += hct.planner.plan_for(handle, input_bits).predicted_cycles(batch)
        return total

    def predicted_mvm_energy_pj(
        self, allocation: MatrixAllocation, batch: int, input_bits: int = 8
    ) -> float:
        """Predicted analog-phase energy (pJ) of one ``batch`` MVM."""
        total = 0.0
        for tile in allocation.placement.tiles:
            hct_index = allocation.hct_indices[tile.hct_slot % len(allocation.hct_indices)]
            hct = self.chip.hct(hct_index)
            handle = allocation.handles[tile.hct_slot]
            total += hct.planner.plan_for(handle, input_bits).predicted_energy_pj(batch)
        return total

    def plan_handle(
        self, allocation: MatrixAllocation, input_bits: int = 8
    ) -> PlanHandle:
        """Process-portable cost surrogate of this allocation's plans.

        Fits the affine :class:`~repro.plan.ir.PlanHandle` from two
        predicted-cycle samples of the cached tile plans (pure cache hits
        after ``compile``) -- the form a cluster worker ships to the
        gateway so cross-process routing can price work without owning
        any live plan object.
        """
        return PlanHandle.from_cost_samples(
            allocation.shape, input_bits,
            self.predicted_mvm_cycles(allocation, 1, input_bits=input_bits),
            self.predicted_mvm_cycles(allocation, 17, input_bits=input_bits),
            self.predicted_mvm_energy_pj(allocation, 1, input_bits=input_bits),
        )

    def update_row(self, allocation: MatrixAllocation, row: int, values: np.ndarray) -> None:
        """updateRow(): rewrite one matrix row across the affected HCTs."""
        self._update(allocation, row=row, values=values)

    def update_col(self, allocation: MatrixAllocation, col: int, values: np.ndarray) -> None:
        """updateCol(): rewrite one matrix column across the affected HCTs."""
        self._update(allocation, col=col, values=values)

    def _update(self, allocation: MatrixAllocation, values: np.ndarray,
                row: Optional[int] = None, col: Optional[int] = None) -> None:
        values = np.asarray(values, dtype=np.int64)
        assert allocation.matrix is not None
        if row is not None:
            allocation.matrix[row, :] = values
        if col is not None:
            allocation.matrix[:, col] = values
        for tile in allocation.placement.tiles:
            affected = (
                (row is not None and tile.row_start <= row < tile.row_end)
                or (col is not None and tile.col_start <= col < tile.col_end)
            )
            if not affected:
                continue
            hct_index = allocation.hct_indices[tile.hct_slot % len(allocation.hct_indices)]
            hct = self.chip.hct(hct_index)
            handle = allocation.handles[tile.hct_slot]
            if row is not None:
                new_handle = hct.ace.update_row(
                    handle, row - tile.row_start, values[tile.col_start: tile.col_end]
                )
            else:
                new_handle = hct.ace.update_col(
                    handle, col - tile.col_start, values[tile.row_start: tile.row_end]
                )
            allocation.handles[tile.hct_slot] = new_handle

    def release(self, allocation: MatrixAllocation) -> None:
        """Free the HCTs and analog arrays used by an allocation."""
        for tile in allocation.placement.tiles:
            hct_index = allocation.hct_indices[tile.hct_slot % len(allocation.hct_indices)]
            handle = allocation.handles.get(tile.hct_slot)
            if handle is not None:
                self.chip.hct(hct_index).release_matrix(handle)
        self.chip.release_hcts(allocation.hct_indices)
        self._allocations.pop(allocation.allocation_id, None)

    def disable_analog_mode(self, allocation: MatrixAllocation) -> None:
        """disableAnalogMode(): move the matrix into digital arrays."""
        for tile in allocation.placement.tiles:
            hct_index = allocation.hct_indices[tile.hct_slot % len(allocation.hct_indices)]
            handle = allocation.handles.get(tile.hct_slot)
            if handle is not None:
                self.chip.hct(hct_index).disable_analog_mode(handle)

    def disable_digital_mode(self, hct_index: int = 0) -> None:
        """disableDigitalMode(): bypass DCE post-processing on one HCT."""
        self.chip.hct(hct_index).disable_digital_mode()

    # ------------------------------------------------------------------ #
    # Introspection                                                        #
    # ------------------------------------------------------------------ #
    @property
    def allocations(self) -> List[MatrixAllocation]:
        """All live matrix allocations."""
        return list(self._allocations.values())

    def expected_mvm(self, allocation: MatrixAllocation, vector: np.ndarray) -> np.ndarray:
        """Reference result computed from the stored matrix (verification)."""
        assert allocation.matrix is not None
        return np.asarray(vector, dtype=np.int64) @ allocation.matrix

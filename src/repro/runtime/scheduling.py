"""Cost-model-driven scheduling policies for the :class:`PumServer`.

The scheduler's dispatch decision used to be a hard-wired knob pair: a
group dispatched when it held ``max_batch`` requests or its oldest member
had waited ``max_wait_ticks``.  This module makes that decision a pluggable
strategy -- the same pattern the pool uses for placement
(:class:`~repro.runtime.pool.PlacementPolicy`) and the server for its queue
(:class:`~repro.runtime.queueing.RequestQueue`):

* :class:`StaticBatchingPolicy` reproduces the knob-pair behaviour
  bit-identically (same readiness checks, same dispatch order, same
  ledgers) -- it is what legacy ``max_batch=`` / ``max_wait_ticks=``
  constructor arguments build.
* :class:`CostAwarePolicy` uses each group's cached
  :class:`~repro.plan.ir.PlanCostModel` as an online oracle: it predicts
  the batch's latency (and optionally energy) *before dispatching anything*
  and weighs the prediction against the group's tightest deadline slack,
  so a group dispatches the moment waiting longer would start shedding its
  riders -- instead of blindly aging out.  Urgent groups dispatch first.
* :class:`SloClass` names a latency target + shed priority pair so callers
  submit with ``slo="interactive"`` instead of computing absolute deadline
  ticks by hand; the cost-aware admission pricer uses predicted per-request
  cost so a cheap tight-deadline request is never shed behind an expensive
  loose one.
* :class:`Autotuner` keeps the static policy's mental model but nudges its
  knobs from live :class:`~repro.runtime.server.ServingStats` windows
  (sheds -> dispatch sooner; saturated fill -> bigger batches; sparse fill
  -> batch harder).

Every decision is a pure function of the queue state, the tick counter,
and closed-form plan costs -- replaying one tick trace twice produces
identical dispatch batches, responses, and shed sets.

>>> from repro.runtime.scheduling import make_scheduling_policy
>>> make_scheduling_policy("static", max_batch=8, max_wait_ticks=2)
StaticBatchingPolicy(max_batch=8, max_wait_ticks=2)
>>> make_scheduling_policy("cost_aware").name
'cost_aware'
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple, Union

from ..errors import SchedulerError, SloError
from ..metrics import ema
from .queueing import GroupKey, RequestQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .server import PumServer, Request

__all__ = [
    "Autotuner",
    "CostAwarePolicy",
    "SLO_CLASSES",
    "SchedulingPolicy",
    "SloClass",
    "StaticBatchingPolicy",
    "make_scheduling_policy",
    "resolve_slo",
]


# ---------------------------------------------------------------------- #
# SLO classes                                                             #
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class SloClass:
    """A named service-level objective: latency target plus shed priority.

    ``latency_target_ticks`` is relative -- ``submit(slo=...)`` turns it
    into an absolute deadline at admission time (``None`` means no
    deadline).  ``shed_priority`` is the priority the request assumes when
    the caller does not pass one explicitly: admission shedding and
    in-batch ordering both honour it, so tight classes outrank loose ones
    under pressure.
    """

    name: str
    latency_target_ticks: Optional[int] = None
    shed_priority: int = 0

    def __post_init__(self) -> None:
        if self.latency_target_ticks is not None and self.latency_target_ticks < 1:
            raise SloError(
                f"SLO class {self.name!r}: latency_target_ticks must be >= 1 "
                f"or None (got {self.latency_target_ticks})"
            )

    def deadline_for(self, now: int) -> Optional[int]:
        """Absolute deadline tick of a request admitted at ``now``."""
        if self.latency_target_ticks is None:
            return None
        return now + self.latency_target_ticks


#: The built-in SLO classes (callers may also pass their own instances).
SLO_CLASSES: Dict[str, SloClass] = {
    "interactive": SloClass("interactive", latency_target_ticks=4, shed_priority=20),
    "standard": SloClass("standard", latency_target_ticks=16, shed_priority=10),
    "batch": SloClass("batch", latency_target_ticks=None, shed_priority=0),
}


def resolve_slo(slo: Union[None, str, SloClass]) -> Optional[SloClass]:
    """Resolve an SLO name (or pass through an instance / ``None``)."""
    if slo is None or isinstance(slo, SloClass):
        return slo
    resolved = SLO_CLASSES.get(slo)
    if resolved is None:
        raise SloError(
            f"unknown SLO class {slo!r}; expected one of {tuple(SLO_CLASSES)} "
            f"or an SloClass instance"
        )
    return resolved


# ---------------------------------------------------------------------- #
# The scheduling strategy surface                                         #
# ---------------------------------------------------------------------- #
class SchedulingPolicy:
    """Strategy object deciding *when* each request group dispatches.

    The server calls, under its lock, in tick order: :meth:`on_tick` once
    at the start of every tick (autotuning hook), :meth:`ready_groups` to
    enumerate the groups worth visiting, and :meth:`dispatch_now` once per
    candidate batch inside the dispatch loop (the batch dispatches only
    when it returns True, sized by :attr:`max_batch`).
    :meth:`victim_order` lets a policy reprice admission shedding; ``None``
    keeps the queue's default (priority, arrival, id) order.

    Policies with mutable state (:class:`Autotuner`) belong to one server;
    stateless policies may be shared.
    """

    name = "base"

    #: Largest coalesced batch handed to ``exec_mvm_batch``.
    max_batch: int = 16

    def on_tick(self, server: "PumServer") -> None:
        """Observe the start of one scheduler tick (no-op by default)."""

    def ready_groups(
        self, server: "PumServer", queue: RequestQueue, now: int
    ) -> List[GroupKey]:
        """The groups to visit this tick, in dispatch-priority order."""
        raise NotImplementedError

    def dispatch_now(
        self, server: "PumServer", queue: RequestQueue, key: GroupKey, now: int
    ) -> bool:
        """Whether ``key`` should dispatch a batch now rather than wait."""
        raise NotImplementedError

    def victim_order(
        self, server: "PumServer"
    ) -> Optional[Callable[["Request"], tuple]]:
        """Admission-shedding order override (``None`` = queue default)."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class StaticBatchingPolicy(SchedulingPolicy):
    """The classic knob pair, bit-identical to the pre-policy scheduler.

    A group dispatches when it holds ``max_batch`` requests or its oldest
    member has waited ``max_wait_ticks`` -- evaluated through the queue's
    own ``ready_groups`` exactly as the hard-wired loop did, so responses,
    ledgers, and even the queue's ``scans`` counter are unchanged.
    """

    name = "static"

    def __init__(self, max_batch: int = 16, max_wait_ticks: int = 4) -> None:
        if max_batch < 1:
            raise SchedulerError("max_batch must be >= 1")
        if max_wait_ticks < 0:
            raise SchedulerError("max_wait_ticks must be >= 0")
        self.max_batch = int(max_batch)
        self.max_wait_ticks = int(max_wait_ticks)

    def ready_groups(
        self, server: "PumServer", queue: RequestQueue, now: int
    ) -> List[GroupKey]:
        return queue.ready_groups(now, self.max_batch, self.max_wait_ticks)

    def dispatch_now(
        self, server: "PumServer", queue: RequestQueue, key: GroupKey, now: int
    ) -> bool:
        # Same short-circuit shape as the pre-policy loop: the oldest
        # member's wait is only read when the batch is not already full.
        if queue.group_pending(key) >= self.max_batch:
            return True
        return queue.oldest_wait(key, now) >= self.max_wait_ticks

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StaticBatchingPolicy(max_batch={self.max_batch}, "
            f"max_wait_ticks={self.max_wait_ticks})"
        )


class CostAwarePolicy(SchedulingPolicy):
    """Profile-guided dispatch: the plan cost model as an online oracle.

    For every group the policy reads the tightest deadline among its
    members and asks the group's cached :class:`~repro.plan.ir.PlanCostModel`
    (through :meth:`PumServer.predicted_batch_cycles`, closed-form, cached,
    zero execution) what the pending batch would cost.  The decision flow
    per group:

    1. full batch (``pending >= max_batch``) -> dispatch;
    2. deadline pressure: ``slack <= predicted_batch_ticks + margin_ticks``
       -> dispatch *now*, before waiting longer sheds the tight riders the
       static policy would age past their deadline;
    3. amortisation converged: the predicted per-request cost at the
       current fill is within ``amortization_tolerance`` of its value at a
       full batch (waiting longer buys nothing the cost model can see) and
       the group has waited at least one tick -> dispatch;
    4. otherwise wait, bounded by ``max_wait_ticks`` exactly like the
       static policy.

    Ready groups are visited tightest-slack first (ties: oldest arrival),
    so urgent work never queues behind loose work.  ``tick_cycles`` maps
    modelled chip cycles onto scheduler ticks; ``energy_weight`` (pJ -> the
    same unit as cycles) folds predicted analog energy into the amortised
    cost and the admission price.  Admission shedding is *priced*: among
    equal-priority victims the most expensive, loosest-deadline request is
    shed first (see :meth:`victim_order`).
    """

    name = "cost_aware"

    def __init__(
        self,
        max_batch: int = 16,
        max_wait_ticks: int = 4,
        tick_cycles: float = 10_000.0,
        margin_ticks: int = 1,
        amortization_tolerance: float = 0.05,
        energy_weight: float = 0.0,
    ) -> None:
        if max_batch < 1:
            raise SchedulerError("max_batch must be >= 1")
        if max_wait_ticks < 0:
            raise SchedulerError("max_wait_ticks must be >= 0")
        if tick_cycles <= 0:
            raise SchedulerError("tick_cycles must be > 0")
        if margin_ticks < 0:
            raise SchedulerError("margin_ticks must be >= 0")
        if amortization_tolerance < 0:
            raise SchedulerError("amortization_tolerance must be >= 0")
        if energy_weight < 0:
            raise SchedulerError("energy_weight must be >= 0")
        self.max_batch = int(max_batch)
        self.max_wait_ticks = int(max_wait_ticks)
        self.tick_cycles = float(tick_cycles)
        self.margin_ticks = int(margin_ticks)
        self.amortization_tolerance = float(amortization_tolerance)
        self.energy_weight = float(energy_weight)

    # -------------------------------------------------------------- #
    # Cost oracle plumbing                                             #
    # -------------------------------------------------------------- #
    def _predicted_cost(self, server: "PumServer", key: GroupKey, batch: int) -> float:
        """Predicted cost of dispatching ``batch`` of ``key`` (cycles + energy)."""
        name, input_bits = key
        cost = server.predicted_batch_cycles(name, input_bits, batch)
        if self.energy_weight:
            cost += self.energy_weight * server.predicted_batch_energy_pj(
                name, input_bits, batch
            )
        return cost

    def predicted_batch_ticks(
        self, server: "PumServer", key: GroupKey, batch: int
    ) -> float:
        """Predicted batch latency in scheduler ticks (cycles / tick_cycles)."""
        name, input_bits = key
        return server.predicted_batch_cycles(name, input_bits, batch) / self.tick_cycles

    # -------------------------------------------------------------- #
    # The dispatch decision                                            #
    # -------------------------------------------------------------- #
    def ready_groups(
        self, server: "PumServer", queue: RequestQueue, now: int
    ) -> List[GroupKey]:
        ready: List[Tuple[float, int, GroupKey]] = []
        for key in queue.group_keys():
            if not queue.group_pending(key):
                continue
            if self.dispatch_now(server, queue, key, now):
                deadline = queue.min_deadline(key)
                slack = float(deadline - now) if deadline is not None else float("inf")
                arrival = now - queue.oldest_wait(key, now)
                ready.append((slack, arrival, key))
        ready.sort()
        return [key for _, _, key in ready]

    def dispatch_now(
        self, server: "PumServer", queue: RequestQueue, key: GroupKey, now: int
    ) -> bool:
        pending = queue.group_pending(key)
        if pending >= self.max_batch:
            return True
        deadline = queue.min_deadline(key)
        if deadline is not None:
            predicted = self.predicted_batch_ticks(server, key, pending)
            if (deadline - now) <= predicted + self.margin_ticks:
                return True
        wait = queue.oldest_wait(key, now)
        if wait >= self.max_wait_ticks:
            return True
        if wait >= 1 and pending:
            # Deadline-free pressure valve: when the cost model says the
            # per-request cost has already converged to its full-batch
            # amortised value, waiting longer only adds latency.
            per_now = self._predicted_cost(server, key, pending) / pending
            per_full = self._predicted_cost(server, key, self.max_batch) / self.max_batch
            if per_now <= per_full * (1.0 + self.amortization_tolerance):
                return True
        return False

    def victim_order(
        self, server: "PumServer"
    ) -> Callable[["Request"], tuple]:
        """Priced shedding: lowest priority, then most expensive, loosest first."""
        now = server.now
        weight = self.energy_weight

        def priced(request: "Request") -> tuple:
            cost = server.predicted_batch_cycles(
                request.name, request.input_bits, 1
            )
            if weight:
                cost += weight * server.predicted_batch_energy_pj(
                    request.name, request.input_bits, 1
                )
            slack = (
                float(request.deadline - now)
                if request.deadline is not None
                else float("inf")
            )
            return (request.priority, -cost, -slack,
                    request.arrival_tick, request.request_id)

        return priced

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CostAwarePolicy(max_batch={self.max_batch}, "
            f"max_wait_ticks={self.max_wait_ticks}, "
            f"tick_cycles={self.tick_cycles}, margin_ticks={self.margin_ticks})"
        )


class Autotuner(SchedulingPolicy):
    """A static policy whose knobs are nudged from live serving telemetry.

    Dispatch decisions delegate to an inner :class:`StaticBatchingPolicy`,
    so users keep the exact static semantics between adjustments.  Every
    ``interval_ticks`` ticks the tuner reads the window deltas of
    :class:`~repro.runtime.server.ServingStats` and applies one nudge:

    * sheds in the window (or p99 above ``target_p99_ticks``) -> lower
      ``max_wait_ticks`` by one (dispatch sooner, trade fill for latency);
    * smoothed batch fill >= 90% of ``max_batch`` -> raise ``max_batch``
      (the pipeline is saturated; bigger batches amortise better);
    * smoothed batch fill <= 50% with zero sheds -> raise
      ``max_wait_ticks`` by one (coalesce harder, trade latency for
      energy/fill).

    Fill is smoothed with :func:`repro.metrics.ema` so one quiet window
    does not whipsaw the knobs; every adjustment is appended to
    :attr:`history` as ``(tick, knob, old, new)``.  Deterministic: the
    telemetry it reads is itself a pure function of the tick trace.
    """

    name = "autotuned"

    def __init__(
        self,
        max_batch: int = 16,
        max_wait_ticks: int = 4,
        interval_ticks: int = 32,
        target_p99_ticks: Optional[float] = None,
        fill_smoothing: float = 0.5,
        min_wait_ticks: int = 0,
        max_wait_ticks_limit: Optional[int] = None,
        max_batch_limit: Optional[int] = None,
    ) -> None:
        self.static = StaticBatchingPolicy(max_batch, max_wait_ticks)
        if interval_ticks < 1:
            raise SchedulerError("interval_ticks must be >= 1")
        if not 0.0 < fill_smoothing <= 1.0:
            raise SchedulerError("fill_smoothing must be in (0, 1]")
        if min_wait_ticks < 0:
            raise SchedulerError("min_wait_ticks must be >= 0")
        self.interval_ticks = int(interval_ticks)
        self.target_p99_ticks = target_p99_ticks
        self.fill_smoothing = float(fill_smoothing)
        self.min_wait_ticks = int(min_wait_ticks)
        self.max_wait_ticks_limit = (
            int(max_wait_ticks_limit)
            if max_wait_ticks_limit is not None
            else max(1, max_wait_ticks) * 4
        )
        self.max_batch_limit = (
            int(max_batch_limit) if max_batch_limit is not None else max_batch * 4
        )
        #: Knob adjustments applied so far: ``(tick, knob, old, new)``.
        self.history: List[Tuple[int, str, int, int]] = []
        self._ticks = 0
        self._last_shed = 0
        self._last_completed = 0
        self._last_batches = 0
        self._smoothed_fill: Optional[float] = None

    @property
    def max_batch(self) -> int:  # type: ignore[override]
        return self.static.max_batch

    @property
    def max_wait_ticks(self) -> int:
        return self.static.max_wait_ticks

    def on_tick(self, server: "PumServer") -> None:
        self._ticks += 1
        if self._ticks % self.interval_ticks:
            return
        stats = server.stats
        shed_delta = stats.shed - self._last_shed
        completed_delta = stats.completed - self._last_completed
        batches_delta = stats.batches - self._last_batches
        self._last_shed = stats.shed
        self._last_completed = stats.completed
        self._last_batches = stats.batches
        if batches_delta:
            self._smoothed_fill = ema(
                self._smoothed_fill,
                completed_delta / batches_delta,
                self.fill_smoothing,
            )
        static = self.static
        latency_pressure = shed_delta > 0 or (
            self.target_p99_ticks is not None
            and stats.latency_percentile(99) > self.target_p99_ticks
        )
        if latency_pressure:
            self._set_wait(server, static.max_wait_ticks - 1)
        elif (
            batches_delta
            and self._smoothed_fill is not None
            and self._smoothed_fill >= 0.9 * static.max_batch
        ):
            self._set_batch(server, static.max_batch * 2)
        elif (
            batches_delta
            and self._smoothed_fill is not None
            and self._smoothed_fill <= 0.5 * static.max_batch
        ):
            self._set_wait(server, static.max_wait_ticks + 1)

    def _set_wait(self, server: "PumServer", value: int) -> None:
        value = max(self.min_wait_ticks, min(self.max_wait_ticks_limit, value))
        if value != self.static.max_wait_ticks:
            self.history.append(
                (server.now, "max_wait_ticks", self.static.max_wait_ticks, value)
            )
            self.static.max_wait_ticks = value

    def _set_batch(self, server: "PumServer", value: int) -> None:
        value = max(1, min(self.max_batch_limit, value))
        if value != self.static.max_batch:
            self.history.append(
                (server.now, "max_batch", self.static.max_batch, value)
            )
            self.static.max_batch = value

    def ready_groups(
        self, server: "PumServer", queue: RequestQueue, now: int
    ) -> List[GroupKey]:
        return self.static.ready_groups(server, queue, now)

    def dispatch_now(
        self, server: "PumServer", queue: RequestQueue, key: GroupKey, now: int
    ) -> bool:
        return self.static.dispatch_now(server, queue, key, now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Autotuner(max_batch={self.max_batch}, "
            f"max_wait_ticks={self.max_wait_ticks}, "
            f"interval_ticks={self.interval_ticks}, "
            f"adjustments={len(self.history)})"
        )


def make_scheduling_policy(
    scheduling: Union[None, str, SchedulingPolicy],
    max_batch: Optional[int] = None,
    max_wait_ticks: Optional[int] = None,
) -> SchedulingPolicy:
    """Resolve a policy name (or pass through an instance).

    ``max_batch`` / ``max_wait_ticks`` are the legacy knob pair: with
    ``scheduling=None`` (or a policy *name*) they parameterise the
    constructed policy, preserving the original ``PumServer(max_batch=...,
    max_wait_ticks=...)`` surface; combining them with an already-built
    policy instance is ambiguous and raises.
    """
    if isinstance(scheduling, SchedulingPolicy):
        if max_batch is not None or max_wait_ticks is not None:
            raise SchedulerError(
                "pass max_batch/max_wait_ticks either to the policy or to the "
                "server, not both: the scheduling policy instance already "
                "carries its knobs"
            )
        return scheduling
    knobs = {}
    if max_batch is not None:
        knobs["max_batch"] = max_batch
    if max_wait_ticks is not None:
        knobs["max_wait_ticks"] = max_wait_ticks
    if scheduling is None:
        return StaticBatchingPolicy(**knobs)
    factories = {
        "static": StaticBatchingPolicy,
        "cost_aware": CostAwarePolicy,
        "autotuned": Autotuner,
    }
    if scheduling not in factories:
        raise SchedulerError(
            f"unknown scheduling policy {scheduling!r}; expected one of "
            f"{tuple(factories)} or a SchedulingPolicy instance"
        )
    return factories[scheduling](**knobs)

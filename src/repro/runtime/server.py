"""Dynamic-batching request scheduler and serving front-end (PumServer).

The batched engine (PR 1) made one *caller-assembled* batch cheap; serving
heavy traffic requires the opposite direction: millions of independent
single-vector requests arriving one by one must be *coalesced* into batches
before they reach the chips.  :class:`PumServer` is that layer:

* callers register named matrices (placed on a :class:`~repro.runtime.pool.DevicePool`
  by its pluggable placement policy) and ``submit()`` single-vector MVM
  requests that return :class:`ServerFuture` handles; bulk producers use
  ``submit_batch()``, which validates a whole ``(n, rows)`` array in one
  NumPy pass and admits every row as a request whose vector is a *view* of
  the caller's array;
* an indexed queue (:mod:`~repro.runtime.queueing`) feeds a deterministic
  simulated-clock scheduler loop: every :meth:`PumServer.tick` coalesces
  compatible requests (same matrix, same input precision) into
  ``exec_mvm_batch`` calls.  *When* a group dispatches is decided by a
  pluggable :class:`~repro.runtime.scheduling.SchedulingPolicy` -- the
  default :class:`~repro.runtime.scheduling.StaticBatchingPolicy`
  reproduces the classic knob pair (dispatch once a batch fills
  (``max_batch``) or the oldest request has waited ``max_wait_ticks``)
  bit-identically, while
  :class:`~repro.runtime.scheduling.CostAwarePolicy` consults the cached
  plan cost models (:meth:`PumServer.predicted_batch_cycles`) and each
  group's tightest deadline slack.  Requests may carry an SLO class
  (``submit(slo="interactive")``) instead of hand-computed deadlines.
  The tick loop is O(ready work): readiness, deadline shedding, and
  dispatch never scan requests outside the group being dispatched
  (``queue_scans()`` proves it stays flat);
* dispatched batches are assembled without copying the big tensors:
  contiguous runs admitted by ``submit_batch`` are sliced straight out of
  the caller's array, and everything else is gathered into a reusable
  per-``(allocation, input_bits)`` batch arena instead of ``np.stack``;
* admission control rejects -- or sheds lower-priority queued work for --
  new requests when the queue is full, and requests whose deadline passed
  are shed instead of executed;
* per-request and aggregate telemetry (queue depth, batch-fill histogram,
  latency percentiles in ticks, energy per request from the pool's
  :class:`~repro.metrics.CostLedger`) accumulates in :class:`ServingStats`.

The scheduler clock is a plain integer tick counter advanced only by
``tick()`` -- tests and benchmarks are exactly reproducible.  For wall-clock
deployments :class:`ThreadedServerDriver` pumps the same ``tick()`` from a
background thread; correctness never depends on real time.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple, Union

import numpy as np

from ..errors import (
    AdmissionError,
    DeviceFailedError,
    IntegrityError,
    QuantizationError,
    ReproError,
    SchedulerError,
)
from ..metrics import percentile_sorted
from ..plan.backends import ExecutionBackend
from ..plan.ir import PlanHandle
from .pool import DevicePool, PooledAllocation, RebuildReport
from .queueing import GroupKey, RequestQueue, make_request_queue
from .scheduling import SchedulingPolicy, SloClass, make_scheduling_policy, resolve_slo

__all__ = [
    "BatchingConfig",
    "PumServer",
    "Request",
    "Response",
    "ServerFuture",
    "ServingStats",
    "ThreadedServerDriver",
]

#: Response status values.
STATUS_COMPLETED = "completed"
STATUS_REJECTED = "rejected"
STATUS_SHED = "shed"
STATUS_FAILED = "failed"

#: Entries retained by each sliding telemetry window (see ServingStats).
TELEMETRY_WINDOW = 4096


@dataclass(eq=False, slots=True)
class Request:
    """One single-vector MVM request as admitted to the queue.

    Requests admitted through :meth:`PumServer.submit_batch` additionally
    remember the shared batch array their vector is a row view of
    (``source`` / ``source_row``), which is what lets batch assembly slice
    the dispatched block out of the caller's array without copying.
    Requests are identity objects (``eq=False``, slotted): the scheduler
    creates one per admitted vector, so construction cost is ingress cost.
    """

    request_id: int
    name: str
    vector: np.ndarray
    input_bits: int
    priority: int
    deadline: Optional[int]
    arrival_tick: int
    #: Bulk-admission source array this request's vector is a row of.
    source: Optional[np.ndarray] = None
    #: Row index of ``vector`` within ``source`` (-1 for single submits).
    source_row: int = -1


@dataclass(eq=False, slots=True)
class Response:
    """Terminal outcome of a request (completed, rejected, or shed)."""

    request_id: int
    name: str
    status: str
    result: Optional[np.ndarray]
    arrival_tick: int
    completion_tick: int
    batch_size: int = 0
    energy_pj: float = 0.0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether the request produced a result."""
        return self.status == STATUS_COMPLETED

    @property
    def latency_ticks(self) -> int:
        """Scheduler ticks between admission and resolution."""
        return self.completion_tick - self.arrival_tick


class ServerFuture:
    """Handle returned by :meth:`PumServer.submit`, resolved by the scheduler.

    The blocking machinery is lazy: a :class:`threading.Event` is only
    materialised when a caller actually has to *wait* for the response.
    Bulk ingress creates one future per admitted vector, and in the common
    deterministic pattern (submit a wave, ``run_until_idle()``, then read
    results) every future is already resolved by the time ``result()`` is
    called -- so the hot path never pays for an event allocation or a
    wakeup.  Threaded deployments still block correctly: the waiter
    re-checks the response after publishing its event, and the resolver
    stores the response before reading the event slot, so no interleaving
    can strand a waiter.
    """

    __slots__ = ("request_id", "_event", "_response")

    #: Guards lazy event creation when several threads wait on one future.
    _event_init_lock = threading.Lock()

    def __init__(self, request_id: int) -> None:
        self.request_id = request_id
        self._event: Optional[threading.Event] = None
        self._response: Optional[Response] = None

    def done(self) -> bool:
        """Whether the request has reached a terminal state."""
        return self._response is not None

    def result(self, timeout: Optional[float] = None) -> Response:
        """Block until resolved and return the :class:`Response`."""
        response = self._response
        if response is not None:
            return response
        if self._event is None:
            with ServerFuture._event_init_lock:
                if self._event is None:
                    self._event = threading.Event()
            # The resolver may have published the response before it could
            # observe the event we just created.
            if self._response is not None:
                return self._response
        if not self._event.wait(timeout):
            raise SchedulerError(
                f"request {self.request_id} not resolved within {timeout}s"
            )
        assert self._response is not None
        return self._response

    def _resolve(self, response: Response) -> None:
        self._response = response
        event = self._event
        if event is not None:
            event.set()


@dataclass(frozen=True)
class BatchingConfig:
    """Dynamic-batching and admission-control knobs.

    ``max_batch``: largest coalesced batch handed to ``exec_mvm_batch``.
    ``max_wait_ticks``: a non-full batch dispatches once its oldest request
    has waited this many ticks (bounds tail latency under light load).
    ``queue_capacity``: bound on queued requests; admission control engages
    beyond it.  ``admission``: ``"reject"`` turns the newcomer away;
    ``"shed_lowest"`` evicts the lowest-priority queued request instead when
    the newcomer outranks it.

    Since scheduling became a pluggable policy the *live* batching knobs
    are ``server.scheduling.max_batch`` / ``.max_wait_ticks`` (an
    :class:`~repro.runtime.scheduling.Autotuner` nudges them at runtime);
    this frozen config records the values the server was constructed with,
    plus the admission knobs the server itself still owns.
    """

    max_batch: int = 16
    max_wait_ticks: int = 4
    queue_capacity: int = 64
    admission: str = "reject"

    ADMISSION_MODES = ("reject", "shed_lowest")

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise SchedulerError("max_batch must be >= 1")
        if self.max_wait_ticks < 0:
            raise SchedulerError("max_wait_ticks must be >= 0")
        if self.queue_capacity < 1:
            raise SchedulerError("queue_capacity must be >= 1")
        if self.admission not in self.ADMISSION_MODES:
            raise SchedulerError(
                f"unknown admission mode {self.admission!r}; "
                f"expected one of {self.ADMISSION_MODES}"
            )


@dataclass
class ServingStats:
    """Aggregate serving telemetry (all times in scheduler ticks).

    The counters and the batch-fill histogram are exact over the server's
    lifetime; the queue-depth, latency, and energy series are bounded
    sliding windows of the most recent :data:`TELEMETRY_WINDOW` entries so
    a long-running deployment cannot grow memory without bound (the
    percentiles are therefore over recent traffic).
    """

    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    shed: int = 0
    failed: int = 0
    batches: int = 0
    #: Batches whose input block was sliced straight out of a bulk-admission
    #: source array (no copy at all).
    zero_copy_batches: int = 0
    #: Batches gathered row-by-row into the reusable batch arena.
    gathered_batches: int = 0
    #: Degraded-mode telemetry (replication / fault handling, see
    #: :class:`~repro.runtime.pool.DevicePool`): shard executions served by
    #: a non-primary replica, shard executions re-dispatched after an
    #: in-call device failure, devices newly marked failed, and batches
    #: during which any of those happened.
    replica_hits: int = 0
    replica_retries: int = 0
    device_failures: int = 0
    degraded_batches: int = 0
    #: Integrity-tier telemetry (ABFT verification, see
    #: :mod:`~repro.runtime.integrity`): checksum checks run, checks that
    #: caught a corrupted partial, bands re-executed on a replica after a
    #: detection, and allocations rebuilt onto healthy devices.
    integrity_checks: int = 0
    corruptions_detected: int = 0
    reexecutions: int = 0
    rebuilds: int = 0
    peak_queue_depth: int = 0
    queue_depth_samples: Deque[int] = field(
        default_factory=lambda: deque(maxlen=TELEMETRY_WINDOW)
    )
    batch_fill: Dict[int, int] = field(default_factory=dict)
    latencies: Deque[int] = field(
        default_factory=lambda: deque(maxlen=TELEMETRY_WINDOW)
    )
    energy_per_request_pj: Deque[float] = field(
        default_factory=lambda: deque(maxlen=TELEMETRY_WINDOW)
    )
    #: Cached ascending copy of ``latencies`` (see ``latency_percentile``).
    _sorted_latencies: List[float] = field(
        default_factory=list, init=False, repr=False
    )
    #: Value of ``completed`` when the cache was last rebuilt (-1 = never).
    _sorted_revision: int = field(default=-1, init=False, repr=False)
    #: Guards the sliding windows against a reader racing the tick loop
    #: (see :meth:`snapshot`).  Re-entrant so ``snapshot`` can call the
    #: locked ``latency_percentile`` while holding it.
    _stats_lock: threading.RLock = field(
        default_factory=threading.RLock, init=False, repr=False, compare=False
    )

    def observe_queue_depth(self, depth: int) -> None:
        """Sample the queue depth at a tick boundary."""
        with self._stats_lock:
            self.queue_depth_samples.append(depth)
            self.peak_queue_depth = max(self.peak_queue_depth, depth)

    def record_batch(self, size: int, latencies: List[int], energy_pj: float) -> None:
        """Account one dispatched batch."""
        with self._stats_lock:
            self.batches += 1
            self.completed += size
            self.batch_fill[size] = self.batch_fill.get(size, 0) + 1
            self.latencies.extend(latencies)
            per_request = energy_pj / size if size else 0.0
            self.energy_per_request_pj.extend([per_request] * size)

    def latency_percentile(self, q: float) -> float:
        """Latency percentile in ticks (0.0 when nothing completed yet).

        The sliding window is only re-sorted when a batch has completed
        since the last call (``completed`` is the cache revision), so the
        p50/p95/p99 triple a dashboard reads every tick costs one sort per
        dispatch rather than one sort per query.
        """
        with self._stats_lock:
            if not self.latencies:
                return 0.0
            if self._sorted_revision != self.completed:
                self._sorted_latencies = sorted(self.latencies)
                self._sorted_revision = self.completed
            return percentile_sorted(self._sorted_latencies, q)

    def snapshot(self) -> Dict[str, float]:
        """Consistent point-in-time :meth:`summary` (thread-safe).

        A dashboard (or the cluster gateway's health loop) reading stats
        while a :class:`ThreadedServerDriver` is mid-tick must not observe
        a half-updated window -- e.g. ``completed`` already bumped but the
        batch's latencies not yet appended, which skews the percentile
        against the counter it is paired with.  ``snapshot`` takes the
        stats lock, so it always sees whole batches; the mutators
        (``record_batch`` / ``observe_queue_depth``) take the same lock.
        """
        with self._stats_lock:
            return self.summary()

    @property
    def mean_batch_fill(self) -> float:
        """Average requests per dispatched batch."""
        if not self.batches:
            return 0.0
        return self.completed / self.batches

    @property
    def mean_energy_per_request_pj(self) -> float:
        """Average chip energy charged per completed request."""
        if not self.energy_per_request_pj:
            return 0.0
        return sum(self.energy_per_request_pj) / len(self.energy_per_request_pj)

    def summary(self) -> Dict[str, float]:
        """One flat dict for dashboards / benchmark artifacts."""
        return {
            "submitted": float(self.submitted),
            "completed": float(self.completed),
            "rejected": float(self.rejected),
            "shed": float(self.shed),
            "failed": float(self.failed),
            "batches": float(self.batches),
            "zero_copy_batches": float(self.zero_copy_batches),
            "gathered_batches": float(self.gathered_batches),
            "replica_hits": float(self.replica_hits),
            "replica_retries": float(self.replica_retries),
            "device_failures": float(self.device_failures),
            "degraded_batches": float(self.degraded_batches),
            "integrity_checks": float(self.integrity_checks),
            "corruptions_detected": float(self.corruptions_detected),
            "reexecutions": float(self.reexecutions),
            "rebuilds": float(self.rebuilds),
            "mean_batch_fill": self.mean_batch_fill,
            "max_queue_depth": float(self.peak_queue_depth),
            "p50_latency_ticks": self.latency_percentile(50),
            "p95_latency_ticks": self.latency_percentile(95),
            "p99_latency_ticks": self.latency_percentile(99),
            "mean_energy_per_request_pj": self.mean_energy_per_request_pj,
        }


class PumServer:
    """Serving front-end: single-vector requests in, coalesced batches out.

    >>> import numpy as np
    >>> from repro.runtime.server import PumServer
    >>> server = PumServer(num_devices=2, max_batch=4, max_wait_ticks=2)
    >>> _ = server.register_matrix("proj", np.eye(8, dtype=np.int64))
    >>> futures = [server.submit("proj", np.full(8, i, dtype=np.int64),
    ...                          input_bits=3) for i in range(4)]
    >>> responses = server.run_until_idle()
    >>> sorted(r.request_id for r in responses)
    [0, 1, 2, 3]
    >>> futures[2].result().result
    array([2, 2, 2, 2, 2, 2, 2, 2])
    >>> server.stats.batch_fill
    {4: 1}
    """

    #: Factory for response futures (a hot-path hook: one is created per
    #: admitted request; the serving-latency baseline swaps in the
    #: pre-rework eager-event future).
    future_factory = ServerFuture

    def __init__(
        self,
        pool: Optional[DevicePool] = None,
        num_devices: int = 2,
        policy: str = "cache_affinity",
        max_batch: Optional[int] = None,
        max_wait_ticks: Optional[int] = None,
        queue_capacity: int = 64,
        admission: str = "reject",
        backend: Union[None, str, ExecutionBackend] = None,
        queue: Union[str, RequestQueue] = "indexed",
        replication: int = 1,
        scheduling: Union[None, str, SchedulingPolicy] = None,
        verify: Optional[str] = None,
        verify_tolerance: Optional[float] = None,
        auto_rebuild: bool = False,
    ) -> None:
        self.pool = pool if pool is not None else DevicePool(
            num_devices=num_devices, policy=policy, backend=backend,
            replication=replication,
            verify=verify if verify is not None else "off",
            verify_tolerance=verify_tolerance,
        )
        if pool is not None and verify is not None:
            # An explicit server-level verify mode wins over the pool's.
            self.pool.verify = verify
            if verify_tolerance is not None:
                self.pool.integrity.tolerance = verify_tolerance
        #: When True, a batch that exhausts every replica of a band
        #: triggers :meth:`DevicePool.rebuild` on the affected allocation
        #: and retries once before failing its riders.
        self.auto_rebuild = bool(auto_rebuild)
        #: Execution backend for batches dispatched by this server; ``None``
        #: defers to the pool's default.  Kept server-side so two servers
        #: sharing one pool can run different backends without mutating the
        #: shared pool.
        self.backend = backend
        #: When each group dispatches: a pluggable
        #: :class:`~repro.runtime.scheduling.SchedulingPolicy`.  The legacy
        #: ``max_batch=`` / ``max_wait_ticks=`` kwargs construct the
        #: bit-identical :class:`StaticBatchingPolicy` when no policy (or a
        #: policy *name*) is given.
        self.scheduling = make_scheduling_policy(
            scheduling, max_batch=max_batch, max_wait_ticks=max_wait_ticks
        )
        self.batching = BatchingConfig(
            max_batch=self.scheduling.max_batch,
            max_wait_ticks=getattr(self.scheduling, "max_wait_ticks", 4),
            queue_capacity=queue_capacity,
            admission=admission,
        )
        #: Pending-request store (``"indexed"`` is the O(ready work) fast
        #: path; ``"flat"`` is the pre-rework baseline kept for the
        #: serving-latency regression gate).
        self.request_queue = make_request_queue(queue)
        self.now = 0
        self.stats = ServingStats()
        #: Re-registrations skipped because the matrix was byte-identical.
        self.registration_reuses = 0
        self._lock = threading.RLock()
        self._futures: Dict[int, ServerFuture] = {}
        self._matrices: Dict[str, PooledAllocation] = {}
        self._fingerprints: Dict[str, Tuple[str, Tuple[int, ...], int, int]] = {}
        #: Reusable batch-assembly buffers, keyed (allocation_id, input_bits).
        self._arenas: Dict[Tuple[int, int], np.ndarray] = {}
        #: Predicted batch cost memos, keyed (allocation_id, input_bits,
        #: batch); invalidated with the arenas when a matrix is replaced.
        self._cost_cache: Dict[Tuple[int, int, int], float] = {}
        self._energy_cache: Dict[Tuple[int, int, int], float] = {}
        self._next_request = 0

    # ------------------------------------------------------------------ #
    # Matrix registry                                                      #
    # ------------------------------------------------------------------ #
    @staticmethod
    def _fingerprint(
        matrix: np.ndarray, element_size: int, precision: int
    ) -> Tuple[str, Tuple[int, ...], int, int]:
        """Content fingerprint deciding whether a re-registration is a no-op."""
        canonical = np.ascontiguousarray(np.asarray(matrix).astype(np.int64))
        digest = hashlib.sha256(canonical.tobytes()).hexdigest()
        return (digest, canonical.shape, element_size, precision)

    def register_matrix(
        self,
        name: str,
        matrix: np.ndarray,
        element_size: int = 8,
        precision: int = 0,
        input_bits: int = 8,
    ) -> PooledAllocation:
        """Place ``matrix`` on the pool under ``name`` (replacing any old one).

        Programming multi-bit analog devices is slow and energetic, so a
        re-registration whose matrix bytes and quantisation config match the
        live allocation is a no-op: the existing shards -- and with them the
        devices' shard kernel and plan caches -- are reused untouched
        (``registration_reuses`` counts these).  Otherwise re-registration
        passes the previous shards' devices as the affinity hint, so the
        cache-affinity policy keeps updated matrices on chips whose ReRAM
        arrays already hold the stale version.

        Registration is also when *all* planning happens: the pool compiles
        the sharded execution plan (and the tile-level plans at
        ``input_bits``, the precision requests against this matrix are
        expected to use) ahead of time, so the request hot path hits only
        caches -- ``planner_builds()`` stays flat while serving.
        """
        with self._lock:
            fingerprint = self._fingerprint(matrix, element_size, precision)
            previous = self._matrices.get(name)
            if previous is not None and self._fingerprints.get(name) == fingerprint:
                self.registration_reuses += 1
                self.pool.compile(previous, input_bits=input_bits)
                return previous
            affinity: Tuple[int, ...] = ()
            if previous is not None:
                self._matrices.pop(name)
                affinity = tuple(previous.devices_used)
                self.pool.release(previous)
                for key in [k for k in self._arenas
                            if k[0] == previous.allocation_id]:
                    del self._arenas[key]
                for cache in (self._cost_cache, self._energy_cache):
                    for key in [k for k in cache
                                if k[0] == previous.allocation_id]:
                        del cache[key]
            allocation = self.pool.set_matrix(
                matrix, element_size=element_size, precision=precision,
                affinity=affinity,
            )
            self.pool.compile(allocation, input_bits=input_bits)
            self._matrices[name] = allocation
            self._fingerprints[name] = fingerprint
            return allocation

    def planner_builds(self) -> int:
        """Execution plans compiled across the pool (registration-time only)."""
        return self.pool.planner_builds()

    def queue_scans(self) -> int:
        """Full-queue scans the scheduler has performed.

        With the indexed queue this stays flat (zero on the tick loop) no
        matter how deep the queue gets -- the serving-latency gate asserts
        it; the flat baseline grows with every readiness check.
        """
        return self.request_queue.scans

    @property
    def matrix_names(self) -> Tuple[str, ...]:
        """Names of the matrices currently registered."""
        with self._lock:
            return tuple(self._matrices)

    def allocation_for(self, name: str) -> PooledAllocation:
        """The live pooled allocation registered under ``name``."""
        with self._lock:
            if name not in self._matrices:
                raise AdmissionError(f"no matrix registered under {name!r}")
            return self._matrices[name]

    # ------------------------------------------------------------------ #
    # Predicted-cost oracle                                                #
    # ------------------------------------------------------------------ #
    def predicted_batch_cycles(
        self, name: str, input_bits: int, batch: int
    ) -> float:
        """Predicted cycles of dispatching ``batch`` requests of ``name``.

        Closed-form evaluation of the cached plan cost models
        (:meth:`~repro.plan.ir.MvmPlan.predicted_cycles`) -- no execution,
        no planning (registration compiled the plans), and each
        ``(matrix, input_bits, batch)`` triple is memoised so the
        scheduling hot path costs one dict probe.
        """
        allocation = self.allocation_for(name)
        key = (allocation.allocation_id, int(input_bits), int(batch))
        cached = self._cost_cache.get(key)
        if cached is None:
            cached = self.pool.predicted_batch_cycles(
                allocation, batch, input_bits=input_bits
            )
            self._cost_cache[key] = cached
        return cached

    def predicted_batch_energy_pj(
        self, name: str, input_bits: int, batch: int
    ) -> float:
        """Predicted analog-phase energy (pJ) of one ``batch`` dispatch."""
        allocation = self.allocation_for(name)
        key = (allocation.allocation_id, int(input_bits), int(batch))
        cached = self._energy_cache.get(key)
        if cached is None:
            cached = self.pool.predicted_batch_energy_pj(
                allocation, batch, input_bits=input_bits
            )
            self._energy_cache[key] = cached
        return cached

    def plan_handle(self, name: str, input_bits: int = 8) -> PlanHandle:
        """Process-portable cost surrogate of the matrix under ``name``.

        Evaluates the pool's cached cost models into a
        :class:`~repro.plan.ir.PlanHandle` -- what a cluster worker ships
        back to the gateway at registration so cross-process routing can
        price dispatches without serializing live plans.
        """
        return self.pool.plan_handle(self.allocation_for(name), input_bits)

    # ------------------------------------------------------------------ #
    # Admission                                                            #
    # ------------------------------------------------------------------ #
    def _apply_slo(
        self,
        slo: Union[None, str, SloClass],
        priority: int,
        deadline: Optional[int],
    ) -> Tuple[int, Optional[int]]:
        """Resolve an SLO class into the (priority, deadline) pair to admit.

        Explicit arguments win: an SLO only fills in a deadline the caller
        did not pass and a priority the caller left at the default 0.
        """
        resolved = resolve_slo(slo)
        if resolved is None:
            return priority, deadline
        if deadline is None:
            deadline = resolved.deadline_for(self.now)
        if priority == 0:
            priority = resolved.shed_priority
        return priority, deadline

    def submit(
        self,
        name: str,
        vector: np.ndarray,
        input_bits: int = 8,
        priority: int = 0,
        deadline: Optional[int] = None,
        slo: Union[None, str, SloClass] = None,
    ) -> ServerFuture:
        """Admit one single-vector MVM request and return its future.

        ``priority`` orders requests within a batch window (higher first);
        ``deadline`` is an absolute tick after which the request is shed
        rather than executed.  ``slo`` names a service-level class
        (``"interactive"`` / ``"standard"`` / ``"batch"``, or any
        :class:`~repro.runtime.scheduling.SloClass`) that fills in the
        deadline and priority the caller did not pass explicitly.  When the
        queue is at capacity the admission mode decides between rejecting
        the newcomer and shedding the lowest-priority queued request.
        """
        with self._lock:
            priority, deadline = self._apply_slo(slo, priority, deadline)
            allocation = self.allocation_for(name)
            vector = np.asarray(vector, dtype=np.int64)
            rows, _ = allocation.shape
            if vector.shape != (rows,):
                raise QuantizationError(
                    f"request vector of shape {vector.shape} does not match "
                    f"matrix {name!r} rows ({rows})"
                )
            # Reject values the bit-slicer cannot represent *now*, so a bad
            # vector fails its caller synchronously instead of poisoning the
            # batch it would later ride in.
            if vector.size and (vector.min() < 0 or vector.max() >= 1 << input_bits):
                raise QuantizationError(
                    f"request vector values must be in [0, 2**{input_bits}) "
                    f"(got range [{vector.min()}, {vector.max()}])"
                )
            request = Request(
                request_id=self._next_request,
                name=name,
                vector=vector,
                input_bits=input_bits,
                priority=priority,
                deadline=deadline,
                arrival_tick=self.now,
            )
            self._next_request += 1
            self.stats.submitted += 1
            return self._admit(request)

    def submit_batch(
        self,
        name: str,
        vectors: np.ndarray,
        input_bits: int = 8,
        priority: int = 0,
        deadline: Optional[int] = None,
        slo: Union[None, str, SloClass] = None,
    ) -> List[ServerFuture]:
        """Admit a whole ``(n, rows)`` array of single-vector requests at once.

        The bulk-ingress fast path: one shape/dtype/range validation pass
        over the entire array (instead of one per vector), request ids and
        futures allocated in bulk, and every admitted request's vector kept
        as a *view* of the (single, contiguous) copy of the caller's array
        -- which is what lets the dispatcher later slice whole batches out
        of it without copying.  Admission control is applied per request in
        row order, exactly as ``n`` individual ``submit()`` calls would:
        rows that cannot be admitted resolve their futures as rejected (or
        shed a lower-priority victim) while the rest of the batch proceeds.
        Returns one future per row, in row order.

        An empty batch returns ``[]``; an array containing any value outside
        ``[0, 2**input_bits)`` is rejected as a whole with
        :class:`~repro.errors.QuantizationError` before any request is
        created, mirroring the synchronous validation of ``submit()``.

        >>> import numpy as np
        >>> from repro.runtime.server import PumServer
        >>> server = PumServer(num_devices=1, max_batch=4, max_wait_ticks=2)
        >>> _ = server.register_matrix("proj", np.eye(4, dtype=np.int64))
        >>> rows = np.arange(8, dtype=np.int64).reshape(4, 2).repeat(2, axis=1) % 4
        >>> futures = server.submit_batch("proj", rows, input_bits=2)
        >>> _ = server.run_until_idle()
        >>> np.array_equal(np.stack([f.result().result for f in futures]), rows)
        True
        """
        with self._lock:
            priority, deadline = self._apply_slo(slo, priority, deadline)
            allocation = self.allocation_for(name)
            rows, _ = allocation.shape
            source = np.asarray(vectors)
            if source.ndim != 2 or source.shape[1] != rows:
                raise QuantizationError(
                    f"submit_batch expects an (n, {rows}) array for matrix "
                    f"{name!r} (got shape {source.shape})"
                )
            if source.shape[0] == 0:
                return []
            # One contiguous int64 copy at most; if the caller already hands
            # int64 C-contiguous data this is the caller's own array and the
            # admitted vectors alias its rows directly.
            source = np.ascontiguousarray(source, dtype=np.int64)
            lo, hi = int(source.min()), int(source.max())
            if lo < 0 or hi >= 1 << input_bits:
                raise QuantizationError(
                    f"request vector values must be in [0, 2**{input_bits}) "
                    f"(got range [{lo}, {hi}])"
                )
            base_id = self._next_request
            count = source.shape[0]
            self._next_request += count
            self.stats.submitted += count
            arrival = self.now
            requests = [
                Request(
                    request_id=base_id + row,
                    name=name,
                    vector=source[row],
                    input_bits=input_bits,
                    priority=priority,
                    deadline=deadline,
                    arrival_tick=arrival,
                    source=source,
                    source_row=row,
                )
                for row in range(count)
            ]
            if len(self.request_queue) + count <= self.batching.queue_capacity:
                # The whole wave fits: skip the per-request admission checks
                # and let the queue ingest it in one bookkeeping pass.
                factory = self.future_factory
                futures = [factory(request.request_id) for request in requests]
                self.request_queue.push_wave(requests)
                self._futures.update(
                    (request.request_id, future)
                    for request, future in zip(requests, futures)
                )
                return futures
            return [self._admit(request) for request in requests]

    def _admit(self, request: Request) -> ServerFuture:
        """Queue ``request`` (applying admission control) and return its future."""
        future = self.future_factory(request.request_id)
        if len(self.request_queue) >= self.batching.queue_capacity:
            victim = self._admission_victim(request)
            if victim is None:
                self.stats.rejected += 1
                future._resolve(self._terminal(request, STATUS_REJECTED))
                return future
            self.request_queue.discard(victim.request_id)
            self.stats.shed += 1
            self._futures.pop(victim.request_id)._resolve(
                self._terminal(victim, STATUS_SHED)
            )
        self.request_queue.push(request)
        self._futures[request.request_id] = future
        return future

    def _admission_victim(self, newcomer: Request) -> Optional[Request]:
        """The queued request to shed for ``newcomer``, or None to reject it."""
        if self.batching.admission != "shed_lowest":
            return None
        victim = self.request_queue.victim(self.scheduling.victim_order(self))
        if victim is not None and victim.priority < newcomer.priority:
            return victim
        return None

    def _terminal(self, request: Request, status: str) -> Response:
        return Response(
            request_id=request.request_id,
            name=request.name,
            status=status,
            result=None,
            arrival_tick=request.arrival_tick,
            completion_tick=self.now,
        )

    # ------------------------------------------------------------------ #
    # Scheduler loop                                                       #
    # ------------------------------------------------------------------ #
    @property
    def pending(self) -> int:
        """Requests currently queued."""
        with self._lock:
            return len(self.request_queue)

    def tick(self) -> List[Response]:
        """Advance the simulated clock one tick and dispatch what is due.

        Returns the responses resolved during this tick (completed batches
        plus deadline sheds), in dispatch order.
        """
        with self._lock:
            self.now += 1
            self.scheduling.on_tick(self)
            self.stats.observe_queue_depth(len(self.request_queue))
            resolved = self._shed_expired()
            for key in self.scheduling.ready_groups(
                self, self.request_queue, self.now
            ):
                resolved.extend(self._dispatch_group(key))
            return resolved

    def run_until_idle(self, max_ticks: int = 100_000) -> List[Response]:
        """Tick until the queue drains; returns every response resolved."""
        responses: List[Response] = []
        for _ in range(max_ticks):
            if not self.pending:
                return responses
            responses.extend(self.tick())
        if self.pending:
            raise SchedulerError(
                f"queue failed to drain within {max_ticks} ticks "
                f"({self.pending} requests pending)"
            )
        return responses

    def _shed_expired(self) -> List[Response]:
        """Shed queued requests whose absolute deadline has passed."""
        responses = []
        for request in self.request_queue.pop_expired(self.now):
            self.stats.shed += 1
            response = self._terminal(request, STATUS_SHED)
            self._futures.pop(request.request_id)._resolve(response)
            responses.append(response)
        return responses

    def _dispatch_group(self, key: GroupKey) -> List[Response]:
        """Drain one compatible group into >= 1 ``exec_mvm_batch`` calls."""
        name, input_bits = key
        responses: List[Response] = []
        scheduling = self.scheduling
        while True:
            if not self.request_queue.group_pending(key):
                return responses
            # One policy decision per candidate batch (for the static
            # policy this is the exact pre-policy readiness check, with
            # the oldest member's wait read once per pass).
            if not scheduling.dispatch_now(self, self.request_queue, key, self.now):
                return responses
            batch = self.request_queue.take(key, scheduling.max_batch)
            responses.extend(self._execute_batch(name, input_bits, batch))

    def _assemble_batch(
        self,
        allocation: PooledAllocation,
        input_bits: int,
        batch: List[Request],
    ) -> np.ndarray:
        """The ``(len(batch), rows)`` input block of one dispatch, copy-free.

        When every member is a consecutive row of one bulk-admission source
        array (the steady state of ``submit_batch`` traffic: same priority,
        arrival order), the block is a direct slice of that array -- zero
        copies, zero allocations.  Otherwise rows are gathered into a
        reusable per-``(allocation, input_bits)`` arena, so mixed traffic
        costs row copies but still no per-batch allocation of the block.
        """
        # O(1) zero-copy detection: the batch is in arrival (= id) order and
        # bulk-admission id blocks never interleave, so if the first and
        # last members share one source array and their row span equals the
        # batch length, every member in between is necessarily the same
        # wave's consecutive rows (rows ascend strictly within a wave; any
        # shed request would shrink the count below the span).
        first = batch[0]
        last = batch[-1]
        source = first.source
        if (
            source is not None
            and last.source is source
            and last.source_row - first.source_row == len(batch) - 1
        ):
            self.stats.zero_copy_batches += 1
            return source[first.source_row: last.source_row + 1]
        key = (allocation.allocation_id, input_bits)
        max_batch = self.scheduling.max_batch
        arena = self._arenas.get(key)
        if arena is None or arena.shape[0] < max_batch:
            arena = np.empty(
                (max_batch, allocation.shape[0]), dtype=np.int64
            )
            self._arenas[key] = arena
        for row, request in enumerate(batch):
            arena[row] = request.vector
        self.stats.gathered_batches += 1
        return arena[: len(batch)]

    def _energy_total(self) -> float:
        """Pool energy reading bracketing every dispatch (hot-path hook).

        Reads the breakdown-free :meth:`DevicePool.total_energy_pj` (equal
        bit for bit to ``total_ledger().energy_pj``); the serving-latency
        baseline overrides this with the pre-rework full ledger merge.
        """
        return self.pool.total_energy_pj()

    def _note_degraded(self, before: Tuple[int, ...]) -> None:
        """Fold the pool's resilience counter deltas into the serving stats.

        ``before`` is the :meth:`DevicePool.resilience_snapshot` taken when
        the dispatch started.  Bracketing per dispatch (like the energy
        reading) keeps the stats correct even when several servers share
        one pool: each server only accounts the degradation its own batches
        experienced.  Plain integrity checks do not flag a batch degraded
        -- only failover events and detections do, so a fault-free
        ``verify="full"`` run keeps ``degraded_batches == 0``.
        """
        hits, retries, failures, checks, corruptions, reexecutions = (
            now - prior
            for now, prior in zip(self.pool.resilience_snapshot(), before)
        )
        self.stats.integrity_checks += checks
        if hits or retries or failures or corruptions or reexecutions:
            self.stats.replica_hits += hits
            self.stats.replica_retries += retries
            self.stats.device_failures += failures
            self.stats.corruptions_detected += corruptions
            self.stats.reexecutions += reexecutions
            self.stats.degraded_batches += 1

    def device_health(self, detail: bool = False) -> List:
        """Per-device health of the underlying pool.

        ``detail=False``: one bool per device (True = dispatchable).
        ``detail=True``: one dict per device with the integrity tier's
        EWMA score, lifetime corruption/failure counts, and quarantine
        flag (see :meth:`DevicePool.device_health`).
        """
        return self.pool.device_health(detail=detail)

    def rebuild(self, name: str) -> RebuildReport:
        """Rebuild the allocation registered under ``name`` (see pool docs).

        Reprograms row-band copies lost to failed devices onto healthy
        ones and invalidates the predicted-cost memos the placement change
        stales.  Returns the pool's :class:`~repro.runtime.pool.RebuildReport`.
        """
        with self._lock:
            allocation = self.allocation_for(name)
            report = self.pool.rebuild(allocation)
            if report.changed:
                self.stats.rebuilds += 1
                self._invalidate_cost_caches(allocation)
            return report

    def _invalidate_cost_caches(self, allocation: PooledAllocation) -> None:
        """Drop predicted-cost memos of ``allocation`` (placement changed)."""
        for cache in (self._cost_cache, self._energy_cache):
            for key in [k for k in cache if k[0] == allocation.allocation_id]:
                del cache[key]

    @staticmethod
    def _band_exhausted(exc: ReproError) -> bool:
        """Whether ``exc`` means a band ran out of replicas (rebuildable)."""
        return (
            isinstance(exc, (DeviceFailedError, IntegrityError))
            and getattr(exc, "kind", None) == "exhausted"
        )

    def _execute_batch(
        self, name: str, input_bits: int, batch: List[Request]
    ) -> List[Response]:
        allocation = self._matrices[name]
        vectors = self._assemble_batch(allocation, input_bits, batch)
        energy_before = self._energy_total()
        before = self.pool.resilience_snapshot()
        try:
            results = self.pool.exec_mvm_batch(
                allocation, vectors, input_bits=input_bits, backend=self.backend
            )
        except ReproError as exc:
            results = None
            if self.auto_rebuild and self._band_exhausted(exc):
                results = self._rebuild_and_retry(
                    allocation, vectors, input_bits
                )
            if results is None:
                # A failing batch must never wedge the scheduler: resolve
                # every rider as failed and keep the loop (and any driver
                # thread) alive.
                self._note_degraded(before)
                return self._fail_batch(batch, exc)
        self._note_degraded(before)
        energy_pj = self._energy_total() - energy_before
        per_request = energy_pj / len(batch)

        responses = []
        latencies = []
        for row, request in enumerate(batch):
            response = Response(
                request_id=request.request_id,
                name=name,
                status=STATUS_COMPLETED,
                result=results[row],
                arrival_tick=request.arrival_tick,
                completion_tick=self.now,
                batch_size=len(batch),
                energy_pj=per_request,
            )
            latencies.append(response.latency_ticks)
            self._futures.pop(request.request_id)._resolve(response)
            responses.append(response)
        self.stats.record_batch(len(batch), latencies, energy_pj)
        return responses

    def _rebuild_and_retry(
        self,
        allocation: PooledAllocation,
        vectors: np.ndarray,
        input_bits: int,
    ) -> Optional[np.ndarray]:
        """Auto-rebuild path: repair the allocation and retry the batch once.

        Returns the retried batch's results, or ``None`` when the rebuild
        found nowhere to place a lost band (or the retry failed again) --
        the caller then fails the batch with the *original* error.
        """
        try:
            report = self.pool.rebuild(allocation)
        except ReproError:
            return None
        if not report.changed:
            return None
        self.stats.rebuilds += 1
        self._invalidate_cost_caches(allocation)
        try:
            return self.pool.exec_mvm_batch(
                allocation, vectors, input_bits=input_bits, backend=self.backend
            )
        except ReproError:
            return None

    def _fail_batch(self, batch: List[Request], exc: ReproError) -> List[Response]:
        responses = []
        for request in batch:
            self.stats.failed += 1
            response = Response(
                request_id=request.request_id,
                name=request.name,
                status=STATUS_FAILED,
                result=None,
                arrival_tick=request.arrival_tick,
                completion_tick=self.now,
                batch_size=len(batch),
                error=f"{type(exc).__name__}: {exc}",
            )
            self._futures.pop(request.request_id)._resolve(response)
            responses.append(response)
        return responses

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PumServer(matrices={len(self._matrices)}, pending={self.pending}, "
            f"tick={self.now}, pool={self.pool!r})"
        )


class ThreadedServerDriver:
    """Pump :meth:`PumServer.tick` from a daemon thread (wall-clock serving).

    The simulated tick stays the unit of scheduling time; the driver merely
    maps it onto real time at ``tick_interval`` seconds per tick, so a
    threaded deployment exhibits the same batching behaviour the
    deterministic tests pin down.  Use as a context manager::

        with ThreadedServerDriver(server, tick_interval=1e-4):
            future = server.submit("proj", vector)
            response = future.result(timeout=1.0)
    """

    def __init__(self, server: PumServer, tick_interval: float = 1e-4) -> None:
        if tick_interval < 0:
            raise SchedulerError("tick_interval must be >= 0")
        self.server = server
        self.tick_interval = tick_interval
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "ThreadedServerDriver":
        """Start the tick loop (idempotent)."""
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name="pum-server-driver")
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the tick loop and join the thread."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None

    def _loop(self) -> None:
        while not self._stop.is_set():
            self.server.tick()
            if self.tick_interval:
                time.sleep(self.tick_interval)

    def __enter__(self) -> "ThreadedServerDriver":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

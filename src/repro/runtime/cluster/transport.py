"""Shared-memory zero-copy transport for the cluster tier.

The cluster runs device workers as separate OS processes; what crosses
the process boundary on the hot path is request vectors going out and
result matrices coming back.  Pickling ndarrays would copy every payload
twice (serialize + deserialize) and burn the GIL the scale-out exists to
escape, so the transport maps payloads onto
:class:`multiprocessing.shared_memory.SharedMemory` instead, extending
the PR 5 row-view/arena discipline across processes:

* the producer writes an ndarray's bytes *once* straight into the ring
  (``ShmRing.push`` accepts any sequence of buffers and copies each
  directly into the mapped region -- no intermediate concatenation);
* the consumer reads frames as :class:`memoryview` windows into the same
  mapping (``peek``), decodes ndarrays as ``np.frombuffer`` *views* of
  shared memory, and only advances the ring (``advance``) when it is
  done with them.  The one unavoidable copy is wherever the consumer
  must retain data past the frame's lifetime (e.g. the worker's bulk
  admission copy, which ``submit_batch`` performs anyway).

``ShmRing`` is a single-producer/single-consumer byte ring: the gateway
produces into each worker's request ring and consumes that worker's
response ring, so every ring has exactly one writer and one reader and
needs no cross-process lock.  The producer publishes a frame by writing
its payload and header first and bumping the ``head`` counter *last*;
the consumer only ever reads below ``head`` and only the consumer moves
``tail`` -- the classic SPSC protocol.  Each frame additionally carries
a CRC32 and a sequence number, so a torn or corrupted write (a worker
dying mid-``push``, a stray writer) is *detected* at read time
(:class:`~repro.errors.TransportError`) instead of silently decoding
garbage; the reader steps past the bad frame, so one corrupted message
never wedges the channel.

Frames never wrap: a frame that does not fit contiguously before the end
of the ring is preceded by a wrap marker and written at offset zero,
which is what lets ``peek`` hand out one contiguous view per frame.
"""

from __future__ import annotations

import struct
import time
import zlib
from multiprocessing import shared_memory
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ...errors import TransportError

__all__ = [
    "HeartbeatBoard",
    "ShmRing",
    "decode_array",
    "encode_array",
]

#: Control-region layout (one cache line): head, tail, frames-pushed
#: sequence, and the data capacity recorded at creation time (the kernel
#: may round the segment itself up to a page multiple).
_CTRL = struct.Struct("<QQQQ")
_CTRL_SIZE = 64

#: Per-frame header: payload length, sequence number, CRC32(payload).
_FRAME = struct.Struct("<III")

#: ``length`` sentinel marking "frame starts at offset 0" (wrap marker).
_WRAP = 0xFFFFFFFF

#: Array codec prefix: dtype-string length, ndim.
_ARRAY = struct.Struct("<BB")
_DIM = struct.Struct("<Q")


# --------------------------------------------------------------------- #
# ndarray codec                                                           #
# --------------------------------------------------------------------- #
def encode_array(array: np.ndarray) -> List[bytes]:
    """Encode ``array`` as raw buffers ready for :meth:`ShmRing.push`.

    The returned list is ``[header, data]``: a compact dtype/shape header
    followed by the array's own C-contiguous bytes (a memoryview of the
    caller's buffer when it is already contiguous -- pushing writes it
    straight into shared memory with no intermediate copy).  Every
    fixed-width dtype NumPy can describe round-trips (the planner emits
    ``int64`` on the serving path, but the suite pins the full set);
    object dtypes cannot cross a process boundary and are rejected.

    >>> import numpy as np
    >>> parts = encode_array(np.arange(6, dtype=np.int16).reshape(2, 3))
    >>> array, offset = decode_array(memoryview(b"".join(parts)), 0)
    >>> array
    array([[0, 1, 2],
           [3, 4, 5]], dtype=int16)
    """
    array = np.asarray(array)
    if array.dtype.hasobject:
        raise TransportError(
            f"cannot transport object-dtype array ({array.dtype})"
        )
    array = np.ascontiguousarray(array)
    dtype_str = array.dtype.str.encode("ascii")
    if len(dtype_str) > 255 or array.ndim > 255:
        raise TransportError(
            f"array header out of range (dtype {array.dtype}, "
            f"ndim {array.ndim})"
        )
    header = _ARRAY.pack(len(dtype_str), array.ndim) + dtype_str + b"".join(
        _DIM.pack(dim) for dim in array.shape
    )
    return [header, memoryview(array).cast("B")]


def decode_array(payload: memoryview, offset: int) -> Tuple[np.ndarray, int]:
    """Decode one array from ``payload`` at ``offset``.

    Returns ``(array, next_offset)``.  The array is a *view* of
    ``payload`` (zero-copy): callers that hold it past the frame's
    lifetime -- e.g. past :meth:`ShmRing.advance` -- must copy it first.
    """
    try:
        dtype_len, ndim = _ARRAY.unpack_from(payload, offset)
        offset += _ARRAY.size
        dtype = np.dtype(bytes(payload[offset: offset + dtype_len]).decode("ascii"))
        offset += dtype_len
        shape = []
        for _ in range(ndim):
            shape.append(_DIM.unpack_from(payload, offset)[0])
            offset += _DIM.size
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        nbytes = count * dtype.itemsize
        array = np.frombuffer(
            payload[offset: offset + nbytes], dtype=dtype
        ).reshape(shape)
    except (struct.error, TypeError, ValueError) as exc:
        raise TransportError(f"malformed array frame: {exc}") from exc
    return array, offset + nbytes


# --------------------------------------------------------------------- #
# SPSC shared-memory ring                                                 #
# --------------------------------------------------------------------- #
class ShmRing:
    """Single-producer/single-consumer byte ring over shared memory.

    One side constructs with ``create=True`` (owning the segment); the
    other attaches by name with ``create=False``.  ``push`` applies
    backpressure by returning ``False`` when the frame does not fit --
    nothing blocks inside the transport, so the caller decides whether to
    spin, shed, or route elsewhere.
    """

    def __init__(
        self,
        capacity: int = 1 << 22,
        name: Optional[str] = None,
        create: bool = True,
    ) -> None:
        if create:
            if capacity < 4 * _FRAME.size:
                raise TransportError(
                    f"ring capacity {capacity} is too small to hold a frame"
                )
            self.shm = shared_memory.SharedMemory(
                create=True, size=_CTRL_SIZE + capacity, name=name
            )
            self.capacity = capacity
            _CTRL.pack_into(self.shm.buf, 0, 0, 0, 0, capacity)
        else:
            if name is None:
                raise TransportError("attaching to a ring requires its name")
            self.shm = shared_memory.SharedMemory(name=name)
            self.capacity = _CTRL.unpack_from(self.shm.buf, 0)[3]
        self._owner = create
        self._data = self.shm.buf[_CTRL_SIZE: _CTRL_SIZE + self.capacity]
        #: Producer-seam hook: when set, :meth:`push` routes every frame
        #: through ``fault_injector.on_push`` instead of writing directly
        #: (see :mod:`repro.runtime.cluster.faults`).  ``None`` -- the
        #: default -- keeps the hot path a single attribute check.
        self.fault_injector = None
        #: ``(position, payload_length)`` of the last frame written by
        #: :meth:`push_frame`; lets an attached injector corrupt the
        #: committed bytes in place, after the CRC was computed.
        self._last_frame: Optional[Tuple[int, int]] = None
        #: Sequence number of the frame returned by the last successful
        #: :meth:`peek`; a consumer that sees it jump by more than one has
        #: observed a skipped (torn/corrupted) frame.
        self.last_seq: Optional[int] = None

    # -- control counters ------------------------------------------------
    @property
    def name(self) -> str:
        """Segment name; the attach key for the other process."""
        return self.shm.name

    def _read_ctrl(self) -> Tuple[int, int, int]:
        head, tail, seq, _ = _CTRL.unpack_from(self.shm.buf, 0)
        return head, tail, seq

    def _write_head(self, head: int, seq: int) -> None:
        # Publish order matters: payload and header are already in place,
        # so making head visible is the commit point of the frame.
        struct.pack_into("<Q", self.shm.buf, 16, seq)
        struct.pack_into("<Q", self.shm.buf, 0, head)

    def _write_tail(self, tail: int) -> None:
        struct.pack_into("<Q", self.shm.buf, 8, tail)

    def __len__(self) -> int:
        """Bytes currently enqueued (header overhead included)."""
        head, tail, _ = self._read_ctrl()
        return head - tail

    @property
    def frames_pushed(self) -> int:
        """Lifetime frames committed by the producer."""
        return self._read_ctrl()[2]

    # -- producer side ---------------------------------------------------
    def push(self, parts: Sequence) -> bool:
        """Append one frame made of ``parts`` (buffers); False when full.

        This is the fault-injection seam: with a ``fault_injector``
        attached the frame is routed through the injector's fault model
        (which may drop, duplicate, delay, or corrupt it); without one it
        goes straight to :meth:`push_frame`.  Either way ``False`` means
        real backpressure and ``True`` means "the send was accepted" --
        which, like any lossy link, is not a delivery guarantee once an
        injector is in play.
        """
        injector = self.fault_injector
        if injector is not None:
            return injector.on_push(self, parts)
        return self.push_frame(parts)

    def push_frame(self, parts: Sequence) -> bool:
        """The raw frame write behind :meth:`push` (no fault model).

        The frame is written contiguously: when it does not fit between
        the write position and the end of the ring, a wrap marker is laid
        down and the frame starts over at offset zero.  Returning
        ``False`` (not blocking, not raising) is the backpressure signal
        -- the sender's inflight window, not the transport, decides what
        saturation means.
        """
        views = [memoryview(part).cast("B") for part in parts]
        length = sum(len(view) for view in views)
        if _FRAME.size + length > self.capacity:
            raise TransportError(
                f"frame of {length} bytes cannot fit a ring of capacity "
                f"{self.capacity}"
            )
        head, tail, seq = self._read_ctrl()
        free = self.capacity - (head - tail)
        position = head % self.capacity
        contiguous = self.capacity - position
        needed = _FRAME.size + length
        if needed > contiguous:
            # Frame will not fit before the end: burn the remainder with a
            # wrap marker and start at offset zero.
            needed = contiguous + _FRAME.size + length
            if needed > free:
                return False
            if contiguous >= 4:
                struct.pack_into("<I", self._data, position, _WRAP)
            head += contiguous
            position = 0
        elif needed > free:
            return False

        crc = 0
        offset = position + _FRAME.size
        for view in views:
            self._data[offset: offset + len(view)] = view
            crc = zlib.crc32(view, crc)
            offset += len(view)
        _FRAME.pack_into(
            self._data, position, length, (seq + 1) & 0xFFFFFFFF, crc
        )
        self._write_head(head + _FRAME.size + length, seq + 1)
        self._last_frame = (position, length)
        return True

    # -- consumer side ---------------------------------------------------
    def peek(self) -> Optional[memoryview]:
        """The payload of the oldest unread frame, or ``None`` when empty.

        The returned memoryview is a zero-copy window into shared memory,
        valid until :meth:`advance` releases the frame.  A frame whose
        CRC does not match its payload -- a torn write from a producer
        that died mid-``push``, or outright corruption -- raises
        :class:`~repro.errors.TransportError` *after* stepping past the
        frame, so the channel recovers by dropping exactly the bad
        message.
        """
        while True:
            head, tail, _ = self._read_ctrl()
            if head == tail:
                return None
            position = tail % self.capacity
            contiguous = self.capacity - position
            if contiguous < 4:
                self._write_tail(tail + contiguous)
                continue
            length = struct.unpack_from("<I", self._data, position)[0]
            if length == _WRAP:
                self._write_tail(tail + contiguous)
                continue
            if _FRAME.size + length > head - tail:
                # Header bytes ahead of the committed head: the producer
                # died mid-write and the commit never happened.
                raise TransportError(
                    f"truncated frame at ring offset {position} "
                    f"(length {length}, committed bytes {head - tail})"
                )
            length, seq, crc = _FRAME.unpack_from(self._data, position)
            payload = self._data[
                position + _FRAME.size: position + _FRAME.size + length
            ]
            if zlib.crc32(payload, 0) != crc:
                self._write_tail(tail + _FRAME.size + length)
                raise TransportError(
                    f"torn or corrupted frame (seq {seq}) at ring offset "
                    f"{position}: CRC mismatch"
                )
            self._pending = _FRAME.size + length
            self.last_seq = seq
            return payload

    def advance(self) -> None:
        """Release the frame returned by the last :meth:`peek`."""
        pending = getattr(self, "_pending", 0)
        if pending:
            _, tail, _ = self._read_ctrl()
            self._write_tail(tail + pending)
            self._pending = 0

    def pop(self) -> Optional[bytes]:
        """Copying convenience: ``peek`` + ``advance`` returning bytes."""
        payload = self.peek()
        if payload is None:
            return None
        data = bytes(payload)
        self.advance()
        return data

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Detach from the segment (unlinks it too when this side owns it)."""
        data, self._data = self._data, None
        if data is not None:
            data.release()
        try:
            self.shm.close()
        except BufferError:  # pragma: no cover - exported views still alive
            pass
        if self._owner:
            try:
                self.shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
            self._owner = False

    def __enter__(self) -> "ShmRing":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShmRing(name={self.name!r}, capacity={self.capacity}, "
            f"queued={len(self)}B)"
        )


class HeartbeatBoard:
    """Shared liveness board: one beat slot per worker process.

    Each worker bumps its slot's beat counter (and stamps
    ``time.monotonic()``, which is system-wide on Linux) every command
    loop iteration; the gateway's health task reads the slots and treats
    a counter that stops advancing past the liveness timeout as a dead
    worker.  Writes are 16-byte single-slot stores by the one owning
    worker, so the board needs no lock either.
    """

    _SLOT = struct.Struct("<Qd")

    def __init__(
        self,
        num_slots: int = 1,
        name: Optional[str] = None,
        create: bool = True,
    ) -> None:
        size = max(1, num_slots) * self._SLOT.size
        if create:
            self.shm = shared_memory.SharedMemory(create=True, size=size, name=name)
            self.num_slots = num_slots
            for slot in range(num_slots):
                self._SLOT.pack_into(self.shm.buf, slot * self._SLOT.size, 0, 0.0)
        else:
            if name is None:
                raise TransportError("attaching to a board requires its name")
            self.shm = shared_memory.SharedMemory(name=name)
            self.num_slots = self.shm.size // self._SLOT.size
        self._owner = create

    @property
    def name(self) -> str:
        """Segment name; the attach key for worker processes."""
        return self.shm.name

    def beat(self, slot: int) -> None:
        """Record one liveness beat for ``slot``."""
        beats, _ = self._SLOT.unpack_from(self.shm.buf, slot * self._SLOT.size)
        self._SLOT.pack_into(
            self.shm.buf, slot * self._SLOT.size, beats + 1, time.monotonic()
        )

    def read(self, slot: int) -> Tuple[int, float]:
        """``(beats, last_beat_monotonic)`` of one slot."""
        return self._SLOT.unpack_from(self.shm.buf, slot * self._SLOT.size)

    def close(self) -> None:
        """Detach (and unlink when owning)."""
        try:
            self.shm.close()
        except BufferError:  # pragma: no cover - exported views still alive
            pass
        if self._owner:
            try:
                self.shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
            self._owner = False

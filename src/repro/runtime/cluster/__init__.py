"""Scale-out cluster tier: multi-process workers behind an asyncio gateway.

The single-server stack (:class:`~repro.runtime.server.PumServer` over a
:class:`~repro.runtime.pool.DevicePool`) parallelizes device execution
with threads, which leaves every Python slice of the pipeline --
planning glue, noise modelling, batch assembly -- serialized on one GIL.
This package scales past that by running each server shard in its own
OS process:

* :mod:`transport <repro.runtime.cluster.transport>` -- shared-memory
  SPSC ring buffers with CRC-protected frames (zero-copy payloads, torn
  -write detection) plus the heartbeat board;
* :mod:`messages <repro.runtime.cluster.messages>` -- the framed wire
  protocol (tiny JSON headers, raw ndarray payloads, never pickle);
* :mod:`worker <repro.runtime.cluster.worker>` -- the per-process
  command loop owning chips and a ``PumServer`` shard;
* :mod:`gateway <repro.runtime.cluster.gateway>` -- the asyncio front
  door: rendezvous placement, cost-aware replica routing, bounded
  inflight windows, heartbeat health checks, retry-on-replica failover,
  graceful drain/restart, per-batch timeouts with hedged re-dispatch,
  per-worker circuit breakers, and supervised auto-restart;
* :mod:`faults <repro.runtime.cluster.faults>` -- the chaos layer:
  deterministic transport fault injection (drop/dup/delay/corrupt on the
  ring's producer seam) and the :class:`CircuitBreaker` state machine.

Import this package explicitly (``from repro.runtime.cluster import
ClusterGateway``); ``repro.runtime`` does not re-export it, so the
single-process stack never pays the multiprocessing import.
"""

from .faults import (
    TRANSPORT_FAULT_MODES,
    CircuitBreaker,
    TransportFaultEvent,
    TransportFaultInjector,
    TransportFaultSchedule,
    TransportFaultSpec,
)
from .gateway import ClusterGateway, ClusterResponse, GatewayStats
from .messages import STATUS_CODES, STATUS_NAMES, decode_message, encode_message
from .transport import HeartbeatBoard, ShmRing, decode_array, encode_array
from .worker import build_worker_server, worker_main

__all__ = [
    "CircuitBreaker",
    "ClusterGateway",
    "ClusterResponse",
    "GatewayStats",
    "HeartbeatBoard",
    "STATUS_CODES",
    "STATUS_NAMES",
    "ShmRing",
    "TRANSPORT_FAULT_MODES",
    "TransportFaultEvent",
    "TransportFaultInjector",
    "TransportFaultSchedule",
    "TransportFaultSpec",
    "build_worker_server",
    "decode_array",
    "decode_message",
    "encode_array",
    "encode_message",
    "worker_main",
]

"""Scale-out cluster tier: multi-process workers behind an asyncio gateway.

The single-server stack (:class:`~repro.runtime.server.PumServer` over a
:class:`~repro.runtime.pool.DevicePool`) parallelizes device execution
with threads, which leaves every Python slice of the pipeline --
planning glue, noise modelling, batch assembly -- serialized on one GIL.
This package scales past that by running each server shard in its own
OS process:

* :mod:`transport <repro.runtime.cluster.transport>` -- shared-memory
  SPSC ring buffers with CRC-protected frames (zero-copy payloads, torn
  -write detection) plus the heartbeat board;
* :mod:`messages <repro.runtime.cluster.messages>` -- the framed wire
  protocol (tiny JSON headers, raw ndarray payloads, never pickle);
* :mod:`worker <repro.runtime.cluster.worker>` -- the per-process
  command loop owning chips and a ``PumServer`` shard;
* :mod:`gateway <repro.runtime.cluster.gateway>` -- the asyncio front
  door: rendezvous placement, cost-aware replica routing, bounded
  inflight windows, heartbeat health checks, retry-on-replica failover,
  and graceful drain/restart.

Import this package explicitly (``from repro.runtime.cluster import
ClusterGateway``); ``repro.runtime`` does not re-export it, so the
single-process stack never pays the multiprocessing import.
"""

from .gateway import ClusterGateway, ClusterResponse, GatewayStats
from .messages import STATUS_CODES, STATUS_NAMES, decode_message, encode_message
from .transport import HeartbeatBoard, ShmRing, decode_array, encode_array
from .worker import build_worker_server, worker_main

__all__ = [
    "ClusterGateway",
    "ClusterResponse",
    "GatewayStats",
    "HeartbeatBoard",
    "STATUS_CODES",
    "STATUS_NAMES",
    "ShmRing",
    "build_worker_server",
    "decode_array",
    "decode_message",
    "encode_array",
    "encode_message",
    "worker_main",
]

"""Asyncio cluster gateway: placement, routing, health, and backpressure.

The gateway is the single front door of a scale-out serving cluster.  It
owns the worker processes (each a :mod:`worker
<repro.runtime.cluster.worker>` running its own
:class:`~repro.runtime.server.PumServer` shard), the shared-memory rings
connecting them, and the client-facing ``submit`` / ``submit_batch``
API, which hands back :class:`asyncio.Future` objects resolved by a
background *response pump* as RESULTS frames arrive.

Design points, mirroring the single-server stack one tier up:

* **Consistent placement.**  A matrix is placed at registration time by
  rendezvous (highest-random-weight) hashing of its content digest --
  the same sha256 fingerprint the server's registration memo uses -- so
  placement is deterministic, re-registration of identical bytes is a
  no-op, and adding workers moves the minimum number of matrices.  With
  ``replication=R`` the top-R workers each hold a full copy.
* **Cost-aware routing.**  Each worker's REGISTERED reply carries a
  serialized :class:`~repro.plan.ir.PlanHandle`; the gateway scores
  replicas by predicted outstanding cycles (the cluster analogue of the
  pool's predicted-finish-time policy) and routes each batch to the
  cheapest live replica.
* **Backpressure.**  Every worker has a bounded inflight window
  (vectors in flight, not bytes); a batch that fits no live replica's
  window -- or no ring -- is shed *to the caller* as
  :class:`~repro.errors.AdmissionError` rather than queued without
  bound, exactly like the server's ``admission="reject"`` mode.
* **Health.**  Workers beat a shared heartbeat board; a health task
  feeds missed beats and dead processes into the same
  :class:`~repro.runtime.integrity.DeviceHealth` EWMA/quarantine
  machinery the pool uses per chip.  A failed worker's inflight batches
  are retried on surviving replicas when placement allows, and resolved
  ``status="failed"`` (never lost) when it does not.
* **Drain/restart.**  ``drain_worker`` fences routing and waits for the
  window to empty; ``restart_worker`` respawns the process on fresh
  rings and replays matrix registrations, so rolling restarts lose no
  futures.
* **Gray failures.**  With ``batch_timeout`` set, a watchdog expires
  batches whose worker is alive-but-slow and hedges them onto another
  replica (exponential backoff, deterministic jitter); per-worker
  circuit breakers (closed -> open -> half-open) fence repeat offenders
  before the EWMA quarantine trips; duplicate SUBMITs are suppressed
  worker-side and late/duplicate RESULTS are ignored gateway-side, so
  nothing ever resolves twice.  With ``auto_restart=True`` a supervisor
  task respawns dead workers inside a bounded restart budget.
"""

from __future__ import annotations

import asyncio
import hashlib
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...errors import (
    AdmissionError,
    BatchTimeoutError,
    CircuitOpenError,
    ClusterError,
    TransportError,
    WorkerFailedError,
)
from ...plan.ir import PlanHandle
from ..integrity import DeviceHealth
from .faults import CircuitBreaker, TransportFaultSpec
from .messages import (
    K_ACK,
    K_DRAIN,
    K_ERROR,
    K_READY,
    K_REGISTER,
    K_REGISTERED,
    K_RESULTS,
    K_STOP,
    K_STRAGGLE,
    K_SUBMIT,
    STATUS_NAMES,
    decode_message,
    encode_message,
)
from .transport import HeartbeatBoard, ShmRing
from .worker import worker_main

__all__ = ["ClusterGateway", "ClusterResponse", "GatewayStats"]


@dataclass(frozen=True)
class ClusterResponse:
    """Terminal state of one gateway request (the cluster's Response)."""

    request_id: int
    name: str
    status: str
    result: Optional[np.ndarray]
    latency_ticks: int = 0
    energy_pj: float = 0.0
    worker_id: int = -1
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether the request completed successfully."""
        return self.status == "completed"


@dataclass
class GatewayStats:
    """Aggregate gateway telemetry (all counters lifetime)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    shed: int = 0
    batches: int = 0
    retried_batches: int = 0
    worker_failures: int = 0
    restarts: int = 0
    registration_reuses: int = 0
    transport_errors: int = 0
    batch_timeouts: int = 0
    hedged_batches: int = 0
    duplicate_replies: int = 0
    circuit_opens: int = 0
    supervised_restarts: int = 0

    def snapshot(self) -> Dict[str, int]:
        """Point-in-time copy as a plain dict."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "shed": self.shed,
            "batches": self.batches,
            "retried_batches": self.retried_batches,
            "worker_failures": self.worker_failures,
            "restarts": self.restarts,
            "registration_reuses": self.registration_reuses,
            "transport_errors": self.transport_errors,
            "batch_timeouts": self.batch_timeouts,
            "hedged_batches": self.hedged_batches,
            "duplicate_replies": self.duplicate_replies,
            "circuit_opens": self.circuit_opens,
            "supervised_restarts": self.supervised_restarts,
        }


@dataclass
class _PendingBatch:
    """One batch in flight to a worker (kept until its RESULTS arrive)."""

    batch_id: int
    name: str
    input_bits: int
    vectors: np.ndarray
    futures: List[asyncio.Future]
    request_ids: List[int]
    worker_id: int
    cost: float
    attempted: set = field(default_factory=set)
    #: Dispatch attempts consumed (original send counts as the first).
    attempts: int = 0
    #: Monotonic deadline of the current attempt; None without a
    #: per-batch timeout configured.
    deadline: Optional[float] = None
    #: Monotonic give-up point while parked with no routable target.
    park_deadline: Optional[float] = None


@dataclass
class _MatrixRecord:
    """Everything needed to route for -- and re-register -- one matrix."""

    fingerprint: Tuple
    matrix: np.ndarray
    element_size: int
    precision: int
    input_bits: int
    placement: List[int]


class _Worker:
    """Gateway-side handle of one worker process and its transport."""

    def __init__(self, worker_id: int,
                 breaker: Optional[CircuitBreaker] = None) -> None:
        self.worker_id = worker_id
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.requests: Optional[ShmRing] = None
        self.replies: Optional[ShmRing] = None
        self.health = DeviceHealth()
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.alive = False
        self.draining = False
        self.restarting = False
        self.inflight = 0
        self.outstanding_cycles = 0.0
        self.pending: Dict[int, _PendingBatch] = {}
        self.plan_handles: Dict[str, PlanHandle] = {}
        self.last_beats = 0
        self.last_progress = 0.0
        #: Monotonic timestamps of supervised restarts (budget window).
        self.restart_times: List[float] = []

    @property
    def routable(self) -> bool:
        """Whether new traffic may be placed on this worker."""
        return self.alive and not self.draining and not self.health.quarantined


class ClusterGateway:
    """Front door of a multi-process serving cluster.

    Async context manager::

        async with ClusterGateway(num_workers=4) as gateway:
            await gateway.register_matrix("w", matrix)
            futures = await gateway.submit_batch("w", vectors)
            responses = await asyncio.gather(*futures)

    Construction only records configuration; :meth:`start` (or entering
    the context) creates the shared-memory transport, spawns the worker
    processes, and launches the response-pump and health-monitor tasks.
    """

    def __init__(
        self,
        num_workers: int = 2,
        devices_per_worker: int = 1,
        replication: int = 1,
        chip: Optional[str] = "small",
        num_hcts: int = 3,
        noise: Optional[str] = None,
        backend: Optional[str] = None,
        policy: str = "cache_affinity",
        max_batch: Optional[int] = None,
        max_wait_ticks: Optional[int] = None,
        queue_capacity: int = 4096,
        verify: str = "off",
        inflight_window: int = 1024,
        ring_capacity: int = 1 << 22,
        poll_interval: float = 5e-4,
        heartbeat_interval: float = 0.05,
        liveness_timeout: float = 5.0,
        control_timeout: float = 60.0,
        stop_timeout: float = 5.0,
        batch_timeout: Optional[float] = None,
        hedge_backoff: float = 2.0,
        hedge_jitter: float = 0.1,
        max_attempts: int = 4,
        breaker_threshold: int = 2,
        breaker_cooldown: float = 0.5,
        breaker_max_cooldown: float = 30.0,
        auto_restart: bool = False,
        restart_budget: int = 3,
        restart_window: float = 30.0,
        transport_faults: Optional[TransportFaultSpec] = None,
        start_method: Optional[str] = None,
    ) -> None:
        if num_workers < 1:
            raise ClusterError(
                f"a cluster needs at least one worker (got {num_workers})"
            )
        if not 1 <= replication <= num_workers:
            raise ClusterError(
                f"replication {replication} must be within [1, num_workers="
                f"{num_workers}]"
            )
        if inflight_window < 1:
            raise ClusterError("inflight_window must be >= 1")
        if batch_timeout is not None and batch_timeout <= 0:
            raise ClusterError("batch_timeout must be positive (or None)")
        if max_attempts < 1:
            raise ClusterError("max_attempts must be >= 1")
        if hedge_backoff < 1.0:
            raise ClusterError("hedge_backoff must be >= 1.0")
        if stop_timeout <= 0:
            raise ClusterError("stop_timeout must be positive")
        if restart_budget < 1 or restart_window <= 0:
            raise ClusterError(
                "supervision needs restart_budget >= 1 and restart_window > 0"
            )
        self.num_workers = num_workers
        self.replication = replication
        self.inflight_window = inflight_window
        self.ring_capacity = ring_capacity
        self.poll_interval = poll_interval
        self.heartbeat_interval = heartbeat_interval
        self.liveness_timeout = liveness_timeout
        self.control_timeout = control_timeout
        self.stop_timeout = stop_timeout
        self.batch_timeout = batch_timeout
        self.hedge_backoff = hedge_backoff
        self.hedge_jitter = hedge_jitter
        self.max_attempts = max_attempts
        self._breaker_args = dict(
            threshold=breaker_threshold,
            cooldown=breaker_cooldown,
            max_cooldown=breaker_max_cooldown,
        )
        self.auto_restart = auto_restart
        self.restart_budget = restart_budget
        self.restart_window = restart_window
        self.transport_faults = transport_faults
        self._spec_base = {
            "num_devices": devices_per_worker,
            "chip": chip,
            "num_hcts": num_hcts,
            "noise": noise,
            "backend": backend,
            "policy": policy,
            "max_batch": max_batch,
            "max_wait_ticks": max_wait_ticks,
            "queue_capacity": queue_capacity,
            "verify": verify,
        }
        if start_method is None:
            start_method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        self._ctx = multiprocessing.get_context(start_method)
        self.stats = GatewayStats()
        self._workers = [
            _Worker(index, CircuitBreaker(**self._breaker_args))
            for index in range(num_workers)
        ]
        self._matrices: Dict[str, _MatrixRecord] = {}
        self._control: Dict[Tuple, asyncio.Future] = {}
        self._board: Optional[HeartbeatBoard] = None
        self._pump_task: Optional[asyncio.Task] = None
        self._health_task: Optional[asyncio.Task] = None
        self._watchdog_task: Optional[asyncio.Task] = None
        self._supervisor_task: Optional[asyncio.Task] = None
        #: Admitted batches with no routable target right now; the
        #: watchdog re-tries them until a replica heals or they expire.
        self._parked: List[_PendingBatch] = []
        self._next_request = 0
        self._next_batch = 0
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------ #
    # Lifecycle                                                            #
    # ------------------------------------------------------------------ #
    async def start(self) -> "ClusterGateway":
        """Create the transport, spawn every worker, and await readiness."""
        if self._started:
            return self
        self._started = True
        self._board = HeartbeatBoard(num_slots=self.num_workers, create=True)
        ready = [self._expect(("ready", worker.worker_id))
                 for worker in self._workers]
        for worker in self._workers:
            self._spawn(worker)
        self._pump_task = asyncio.create_task(self._pump())
        self._health_task = asyncio.create_task(self._health())
        if self.batch_timeout is not None:
            self._watchdog_task = asyncio.create_task(self._watchdog())
        if self.auto_restart:
            self._supervisor_task = asyncio.create_task(self._supervise())
        try:
            await asyncio.wait_for(
                asyncio.gather(*ready), timeout=self.control_timeout
            )
        except asyncio.TimeoutError:
            await self.close()
            raise ClusterError(
                f"cluster workers failed to come up within "
                f"{self.control_timeout}s"
            ) from None
        now = time.monotonic()
        for worker in self._workers:
            worker.alive = True
            worker.last_progress = now
        return self

    def _spawn(self, worker: _Worker) -> None:
        """Create fresh rings for ``worker`` and launch its process."""
        worker.requests = ShmRing(capacity=self.ring_capacity, create=True)
        worker.replies = ShmRing(capacity=self.ring_capacity, create=True)
        spec = dict(self._spec_base)
        spec.update(
            worker_id=worker.worker_id,
            request_ring=worker.requests.name,
            response_ring=worker.replies.name,
            board=self._board.name,
        )
        if self.transport_faults is not None:
            # Request-direction faults are injected here (this process is
            # the request ring's producer); the spec rides along so the
            # worker arms the reply direction on its side of the channel.
            if "request" in self.transport_faults.directions:
                self.transport_faults.injector_for(
                    worker.worker_id, "request"
                ).attach(worker.requests)
            spec["transport_faults"] = self.transport_faults.to_spec()
        worker.process = self._ctx.Process(
            target=worker_main, args=(spec,), daemon=True,
            name=f"pum-worker-{worker.worker_id}",
        )
        worker.process.start()

    async def close(self) -> None:
        """Stop every worker and release the shared-memory transport."""
        if self._closed:
            return
        self._closed = True
        if self._health_task is not None:
            self._health_task.cancel()
        if self._watchdog_task is not None:
            self._watchdog_task.cancel()
        if self._supervisor_task is not None:
            self._supervisor_task.cancel()
        for worker in self._workers:
            if worker.alive and worker.requests is not None:
                worker.requests.push(encode_message(K_STOP, {}))
        deadline = time.monotonic() + self.stop_timeout
        for worker in self._workers:
            process = worker.process
            if process is None:
                continue
            while process.is_alive() and time.monotonic() < deadline:
                await asyncio.sleep(0.01)
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        # Await the cancelled tasks so their frames (and any ring views
        # held in locals) are torn down before the segments close.
        if self._pump_task is not None:
            self._pump_task.cancel()
            try:
                await self._pump_task
            except asyncio.CancelledError:
                pass
        for task in (self._health_task, self._watchdog_task,
                     self._supervisor_task):
            if task is not None:
                try:
                    await task
                except asyncio.CancelledError:
                    pass
        for batch in self._parked:
            self._resolve_batch_failed(
                batch, "gateway closed with requests parked"
            )
        self._parked.clear()
        for worker in self._workers:
            for batch in worker.pending.values():
                self._resolve_batch_failed(
                    batch, "gateway closed with requests in flight"
                )
            worker.pending.clear()
            if worker.requests is not None:
                worker.requests.close()
            if worker.replies is not None:
                worker.replies.close()
            worker.alive = False
        if self._board is not None:
            self._board.close()
        for future in self._control.values():
            if not future.done():
                future.cancel()
        self._control.clear()

    async def __aenter__(self) -> "ClusterGateway":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------ #
    # Placement and registration                                           #
    # ------------------------------------------------------------------ #
    @staticmethod
    def _fingerprint(matrix: np.ndarray, element_size: int,
                     precision: int) -> Tuple[str, Tuple[int, ...], int, int]:
        """Content fingerprint; identical to the server's registration memo."""
        canonical = np.ascontiguousarray(np.asarray(matrix).astype(np.int64))
        digest = hashlib.sha256(canonical.tobytes()).hexdigest()
        return (digest, canonical.shape, element_size, precision)

    def _rendezvous(self, digest: str) -> List[int]:
        """Highest-random-weight placement of a digest over all workers."""
        scored = sorted(
            range(self.num_workers),
            key=lambda worker_id: hashlib.sha256(
                f"{digest}:{worker_id}".encode()
            ).hexdigest(),
            reverse=True,
        )
        return scored[: self.replication]

    async def register_matrix(
        self,
        name: str,
        matrix: np.ndarray,
        element_size: int = 8,
        precision: int = 0,
        input_bits: int = 8,
    ) -> List[int]:
        """Place ``matrix`` under ``name``; returns the holding worker ids.

        Re-registering byte-identical content under the same name is a
        no-op (``registration_reuses``), mirroring the server-level memo:
        the workers' programmed shards and plan caches stay untouched.
        """
        self._require_running()
        fingerprint = self._fingerprint(matrix, element_size, precision)
        record = self._matrices.get(name)
        if record is not None and record.fingerprint == fingerprint \
                and record.input_bits == input_bits:
            self.stats.registration_reuses += 1
            return list(record.placement)
        canonical = np.ascontiguousarray(np.asarray(matrix).astype(np.int64))
        placement = self._rendezvous(fingerprint[0])
        record = _MatrixRecord(
            fingerprint=fingerprint, matrix=canonical,
            element_size=element_size, precision=precision,
            input_bits=input_bits, placement=placement,
        )
        await asyncio.gather(*[
            self._register_on(self._workers[worker_id], record, name)
            for worker_id in placement
        ])
        self._matrices[name] = record
        return list(placement)

    async def _register_on(self, worker: _Worker, record: _MatrixRecord,
                           name: str) -> None:
        """Push one REGISTER and await the worker's REGISTERED reply."""
        pending = self._expect(("registered", worker.worker_id, name))
        frame = encode_message(K_REGISTER, {
            "name": name,
            "element_size": record.element_size,
            "precision": record.precision,
            "input_bits": record.input_bits,
        }, [record.matrix])
        if worker.requests is None or not worker.requests.push(frame):
            pending.cancel()
            raise ClusterError(
                f"worker {worker.worker_id} request ring is full during "
                f"registration of {name!r}"
            )
        try:
            handle = await asyncio.wait_for(
                pending, timeout=self.control_timeout
            )
        except asyncio.TimeoutError:
            raise ClusterError(
                f"worker {worker.worker_id} did not acknowledge registration "
                f"of {name!r} within {self.control_timeout}s"
            ) from None
        worker.plan_handles[name] = handle

    def plan_handle(self, name: str) -> PlanHandle:
        """The serialized-across-the-wire cost handle of ``name``."""
        record = self._record(name)
        for worker_id in record.placement:
            handle = self._workers[worker_id].plan_handles.get(name)
            if handle is not None:
                return handle
        raise ClusterError(f"no plan handle recorded for {name!r}")

    def placement_of(self, name: str) -> List[int]:
        """Worker ids holding ``name`` (rendezvous order)."""
        return list(self._record(name).placement)

    def _record(self, name: str) -> _MatrixRecord:
        record = self._matrices.get(name)
        if record is None:
            raise AdmissionError(f"no matrix registered under {name!r}")
        return record

    # ------------------------------------------------------------------ #
    # Submission                                                           #
    # ------------------------------------------------------------------ #
    async def submit(self, name: str, vector: np.ndarray,
                     input_bits: int = 8) -> asyncio.Future:
        """Admit one vector; returns the future of its ClusterResponse."""
        futures = await self.submit_batch(
            name, np.asarray(vector).reshape(1, -1), input_bits=input_bits
        )
        return futures[0]

    async def submit_batch(self, name: str, vectors: np.ndarray,
                           input_bits: int = 8) -> List[asyncio.Future]:
        """Admit ``(n, rows)`` vectors; returns one future per row.

        The batch is routed whole to the cheapest live replica of
        ``name`` (by predicted outstanding cycles) whose inflight window
        has room; when every replica is saturated -- window full or ring
        full -- the batch is shed to the caller as
        :class:`AdmissionError`, never queued without bound.
        """
        self._require_running()
        record = self._record(name)
        vectors = np.ascontiguousarray(np.asarray(vectors, dtype=np.int64))
        if vectors.ndim != 2:
            raise AdmissionError(
                f"submit_batch expects a 2-D (n, rows) array, got shape "
                f"{vectors.shape}"
            )
        n = vectors.shape[0]
        if n == 0:
            return []
        if n > self.inflight_window:
            self.stats.shed += n
            raise AdmissionError(
                f"batch of {n} exceeds the per-worker inflight window "
                f"({self.inflight_window})"
            )
        candidates = [
            self._workers[worker_id]
            for worker_id in record.placement
            if self._workers[worker_id].routable
        ]
        if not candidates:
            self.stats.shed += n
            raise AdmissionError(
                f"no live replica of {name!r} "
                f"(placement {record.placement})"
            )
        admitted = [worker for worker in candidates if worker.breaker.allows()]
        if not admitted:
            # Replicas are alive but circuit-broken: backpressure, not
            # death -- a distinct signal so callers can tell "back off"
            # from "gone", while `except AdmissionError` still catches it.
            self.stats.shed += n
            raise CircuitOpenError(
                worker_ids=[worker.worker_id for worker in candidates]
            )
        candidates = admitted
        candidates.sort(key=lambda worker: worker.outstanding_cycles)
        batch = self._make_batch(record, name, vectors, input_bits)
        for worker in candidates:
            if worker.inflight + n > self.inflight_window:
                continue
            if self._dispatch(worker, batch):
                return batch.futures
        # Saturated everywhere: shed to the caller.
        for future in batch.futures:
            future.cancel()
        self.stats.shed += n
        raise AdmissionError(
            f"every replica of {name!r} is saturated "
            f"(inflight window {self.inflight_window})"
        )

    def _make_batch(self, record: _MatrixRecord, name: str,
                    vectors: np.ndarray, input_bits: int) -> _PendingBatch:
        loop = asyncio.get_running_loop()
        n = vectors.shape[0]
        request_ids = list(range(self._next_request, self._next_request + n))
        self._next_request += n
        batch_id = self._next_batch
        self._next_batch += 1
        handle = None
        for worker_id in record.placement:
            handle = self._workers[worker_id].plan_handles.get(name)
            if handle is not None:
                break
        cost = handle.predicted_cycles(n) if handle is not None else float(n)
        return _PendingBatch(
            batch_id=batch_id, name=name, input_bits=input_bits,
            vectors=vectors, futures=[loop.create_future() for _ in range(n)],
            request_ids=request_ids, worker_id=-1, cost=cost,
        )

    def _dispatch(self, worker: _Worker, batch: _PendingBatch) -> bool:
        """Push ``batch`` onto ``worker``'s request ring; False when full."""
        frame = encode_message(K_SUBMIT, {
            "batch": batch.batch_id,
            "name": batch.name,
            "input_bits": batch.input_bits,
        }, [batch.vectors])
        if worker.requests is None or not worker.requests.push(frame):
            return False
        n = batch.vectors.shape[0]
        batch.worker_id = worker.worker_id
        batch.attempted.add(worker.worker_id)
        batch.attempts += 1
        batch.deadline = self._attempt_deadline(batch)
        worker.pending[batch.batch_id] = batch
        worker.breaker.record_dispatch()
        worker.inflight += n
        worker.outstanding_cycles += batch.cost
        self.stats.submitted += n
        self.stats.batches += 1
        return True

    def _attempt_deadline(self, batch: _PendingBatch) -> Optional[float]:
        """Deadline of the batch's current attempt, or None when untimed.

        Each attempt gets exponentially more headroom (``hedge_backoff``)
        so a hedge storm cannot outrun a merely-busy cluster, plus a
        deterministic jitter derived from ``(batch_id, attempt)`` that
        de-synchronizes expiries without sacrificing reproducibility.
        """
        if self.batch_timeout is None:
            return None
        timeout = self.batch_timeout * self.hedge_backoff ** (batch.attempts - 1)
        spread = float(np.random.default_rng(np.random.SeedSequence(
            [batch.batch_id, batch.attempts]
        )).random())
        return time.monotonic() + timeout * (1.0 + self.hedge_jitter * spread)

    # ------------------------------------------------------------------ #
    # Response pump                                                        #
    # ------------------------------------------------------------------ #
    async def _pump(self) -> None:
        """Drain every worker's reply ring, resolving futures."""
        while True:
            progressed = False
            for worker in self._workers:
                if worker.replies is None:
                    continue
                try:
                    payload = worker.replies.peek()
                except TransportError:
                    self.stats.transport_errors += 1
                    continue
                if payload is None:
                    continue
                progressed = True
                try:
                    kind, header, arrays = decode_message(payload)
                    self._on_reply(worker, kind, header, arrays)
                except TransportError:
                    self.stats.transport_errors += 1
                finally:
                    worker.replies.advance()
                    # Drop the frame views so a ring closed later (e.g. by
                    # restart_worker) has no exported pointers left.
                    payload = arrays = None
            if progressed:
                await asyncio.sleep(0)
            else:
                await asyncio.sleep(self.poll_interval)

    def _on_reply(self, worker: _Worker, kind: int, header: Dict[str, Any],
                  arrays: Sequence[np.ndarray]) -> None:
        if kind == K_RESULTS:
            self._on_results(worker, header, arrays)
        elif kind == K_REGISTERED:
            handle = PlanHandle.from_bytes(bytes.fromhex(header["handle"]))
            self._resolve(
                ("registered", worker.worker_id, header["name"]), handle
            )
        elif kind == K_READY:
            self._resolve(("ready", worker.worker_id), header)
        elif kind == K_ACK:
            if header.get("drain"):
                stats = dict(header.get("stats", {}))
                stats["duplicates_suppressed"] = header.get(
                    "duplicates_suppressed", 0
                )
                self._resolve(("drain", worker.worker_id), stats)
            elif header.get("straggle"):
                self._resolve(("straggle", worker.worker_id), header)
            elif "stopped" in header:
                self._resolve(("stop", worker.worker_id), True)
            else:
                self._resolve(
                    ("ping", worker.worker_id, header.get("nonce")), True
                )
        elif kind == K_ERROR:
            batch_id = header.get("batch")
            batch = worker.pending.pop(batch_id, None) \
                if batch_id is not None else None
            if batch is not None:
                self._release_window(worker, batch)
                self._resolve_batch_failed(
                    batch, header.get("error", "worker error")
                )
                return
            # A failed registration must fail its awaiter, not time out.
            name = header.get("name")
            pending = self._control.pop(
                ("registered", worker.worker_id, name), None
            ) if name else None
            if pending is not None and not pending.done():
                pending.set_exception(ClusterError(
                    header.get("error", f"registration of {name!r} failed")
                ))
            else:
                self.stats.transport_errors += 1

    def _on_results(self, worker: _Worker, header: Dict[str, Any],
                    arrays: Sequence[np.ndarray]) -> None:
        batch = worker.pending.pop(header.get("batch"), None)
        if batch is None:
            # Reply idempotency: a duplicated frame, or a late reply of a
            # batch already hedged/retried elsewhere.  The first reply to
            # land resolved the futures; this one is counted and ignored,
            # so nothing ever resolves twice.
            self.stats.duplicate_replies += 1
            return
        statuses, results, latency, energy = arrays
        # The views die with the frame; one copy of the result matrix
        # outlives it and every row below is a view of that copy.
        results = np.array(results)
        errors = header.get("errors", {})
        self._release_window(worker, batch)
        for index, future in enumerate(batch.futures):
            status = STATUS_NAMES.get(int(statuses[index]), "failed")
            response = ClusterResponse(
                request_id=batch.request_ids[index],
                name=batch.name,
                status=status,
                result=results[index] if status == "completed" else None,
                latency_ticks=int(latency[index]),
                energy_pj=float(energy[index]),
                worker_id=worker.worker_id,
                error=errors.get(str(index)),
            )
            if not future.done():
                future.set_result(response)
            if status == "completed":
                self.stats.completed += 1
            elif status == "shed":
                self.stats.shed += 1
            else:
                self.stats.failed += 1
        worker.health.record_ok()
        worker.breaker.record_success()

    def _release_window(self, worker: _Worker, batch: _PendingBatch) -> None:
        worker.inflight = max(0, worker.inflight - batch.vectors.shape[0])
        worker.outstanding_cycles = max(
            0.0, worker.outstanding_cycles - batch.cost
        )

    def _resolve_batch_failed(self, batch: _PendingBatch,
                              error: str) -> None:
        for index, future in enumerate(batch.futures):
            if future.done():
                continue
            future.set_result(ClusterResponse(
                request_id=batch.request_ids[index], name=batch.name,
                status="failed", result=None,
                worker_id=batch.worker_id, error=error,
            ))
            self.stats.failed += 1

    # ------------------------------------------------------------------ #
    # Health monitoring and failover                                       #
    # ------------------------------------------------------------------ #
    async def _health(self) -> None:
        """Watch heartbeats; fail workers that die or stop beating."""
        while True:
            await asyncio.sleep(self.heartbeat_interval)
            now = time.monotonic()
            for worker in self._workers:
                if not worker.alive or self._board is None:
                    continue
                beats, _ = self._board.read(worker.worker_id)
                if beats != worker.last_beats:
                    worker.last_beats = beats
                    worker.last_progress = now
                    continue
                if worker.process is not None and not worker.process.is_alive():
                    self._fail_worker(worker, "dead")
                elif now - worker.last_progress > self.liveness_timeout:
                    self._fail_worker(worker, "stale")

    async def _supervise(self) -> None:
        """Auto-restart dead workers within a bounded budget per window.

        The budget (``restart_budget`` restarts per ``restart_window``
        seconds, per worker) is what separates supervision from a
        crash loop: a worker that dies faster than it heals stays down
        until its window rolls over, and routing treats it like any
        other dead replica meanwhile.
        """
        while True:
            await asyncio.sleep(self.heartbeat_interval)
            for worker in self._workers:
                if worker.alive or worker.restarting or self._closed:
                    continue
                if worker.process is None:
                    continue
                now = time.monotonic()
                worker.restart_times = [
                    stamp for stamp in worker.restart_times
                    if now - stamp < self.restart_window
                ]
                if len(worker.restart_times) >= self.restart_budget:
                    continue
                worker.restart_times.append(now)
                try:
                    await self.restart_worker(worker.worker_id,
                                              graceful=False)
                    self.stats.supervised_restarts += 1
                except ClusterError:
                    # The respawn itself failed; the budget entry stands,
                    # so a worker whose environment is broken cannot spin.
                    continue

    def _fail_worker(self, worker: _Worker, kind: str) -> None:
        """Quarantine ``worker`` and re-home or fail its inflight batches."""
        if not worker.alive:
            return
        worker.alive = False
        self.stats.worker_failures += 1
        if worker.health.record_failure():
            worker.health.quarantined = True
        if worker.breaker.record_failure():
            self.stats.circuit_opens += 1
        if worker.process is not None and worker.process.is_alive():
            worker.process.terminate()
        reason = WorkerFailedError(worker.worker_id, kind)
        stranded = list(worker.pending.values())
        worker.pending.clear()
        worker.inflight = 0
        worker.outstanding_cycles = 0.0
        for batch in stranded:
            batch.attempted.add(worker.worker_id)
            if not self._retry(batch):
                self._resolve_batch_failed(batch, str(reason))

    def _retry(self, batch: _PendingBatch) -> bool:
        """Re-dispatch a stranded batch on a surviving replica.

        Retries deliberately bypass the inflight window -- shedding an
        *already admitted* request would lose its future; the window
        throttles new admissions only.
        """
        record = self._matrices.get(batch.name)
        if record is None:
            return False
        survivors = [
            self._workers[worker_id]
            for worker_id in record.placement
            if worker_id not in batch.attempted
            and self._workers[worker_id].routable
        ]
        # Retries bypass the breaker too (an admitted future must not be
        # lost to backpressure), but prefer replicas whose breaker is
        # closed over ones under suspicion.
        survivors.sort(key=lambda worker: (
            not worker.breaker.allows(), worker.outstanding_cycles
        ))
        for worker in survivors:
            if self._dispatch(worker, batch):
                self.stats.retried_batches += 1
                return True
        return False

    # ------------------------------------------------------------------ #
    # Straggler mitigation: per-batch timeouts and hedged re-dispatch      #
    # ------------------------------------------------------------------ #
    async def _watchdog(self) -> None:
        """Expire overdue batches and hedge them onto another replica.

        This is the *gray*-failure detector, complementary to
        :meth:`_health`: the health task catches workers that die or stop
        beating, the watchdog catches workers that keep beating but stop
        finishing -- a straggler looks perfectly alive to liveness.
        """
        interval = max(self.batch_timeout / 4, 0.005)
        while True:
            await asyncio.sleep(interval)
            now = time.monotonic()
            for worker in self._workers:
                overdue = [
                    batch for batch in worker.pending.values()
                    if batch.deadline is not None and now > batch.deadline
                ]
                for batch in overdue:
                    worker.pending.pop(batch.batch_id, None)
                    self._release_window(worker, batch)
                    self.stats.batch_timeouts += 1
                    if worker.breaker.record_failure():
                        self.stats.circuit_opens += 1
                    # Feed the EWMA score but never quarantine from here:
                    # quarantine has no recovery path short of a restart,
                    # which is the right response to a dead worker (the
                    # _health task's call) but not to a slow one -- the
                    # breaker fences stragglers *with* a half-open way
                    # back in once they catch up.
                    worker.health.record_failure()
                    self._hedge(batch)
            self._retry_parked(now)

    def _hedge(self, batch: _PendingBatch) -> None:
        """Re-dispatch a timed-out batch; park it when nowhere is routable.

        Preference order: an unattempted routable replica with a closed
        breaker, then any routable replica -- including the one that just
        timed out (at R=1 that is the only copy; the worker's duplicate
        suppression replays the original reply if the first attempt did
        finish meanwhile, so re-sending is always safe).
        """
        if batch.attempts >= self.max_attempts:
            self._resolve_batch_failed(batch, str(BatchTimeoutError(
                batch.worker_id, batch.batch_id, attempts=batch.attempts,
            )))
            return
        record = self._matrices.get(batch.name)
        replicas = [self._workers[worker_id] for worker_id in
                    (record.placement if record is not None else [])]
        fresh = [worker for worker in replicas
                 if worker.routable and worker.breaker.allows()
                 and worker.worker_id not in batch.attempted]
        fallback = [worker for worker in replicas if worker.routable]
        fresh.sort(key=lambda worker: worker.outstanding_cycles)
        fallback.sort(key=lambda worker: (
            not worker.breaker.allows(), worker.outstanding_cycles
        ))
        for worker in fresh + fallback:
            if self._dispatch(worker, batch):
                self.stats.hedged_batches += 1
                self.stats.retried_batches += 1
                return
        if batch.park_deadline is None:
            batch.park_deadline = time.monotonic() + \
                self.batch_timeout * self.max_attempts
        self._parked.append(batch)

    def _retry_parked(self, now: float) -> None:
        """Give parked batches another routing attempt (or expire them)."""
        if not self._parked:
            return
        parked, self._parked = self._parked, []
        for batch in parked:
            if batch.park_deadline is not None and now > batch.park_deadline:
                self._resolve_batch_failed(batch, str(BatchTimeoutError(
                    batch.worker_id, batch.batch_id, attempts=batch.attempts,
                    message=(
                        f"batch {batch.batch_id} expired after "
                        f"{batch.attempts} attempt(s) with no routable "
                        f"replica of {batch.name!r}"
                    ),
                )))
                continue
            self._hedge(batch)

    # ------------------------------------------------------------------ #
    # Drain and restart                                                    #
    # ------------------------------------------------------------------ #
    async def drain_worker(self, worker_id: int) -> Dict[str, float]:
        """Fence ``worker_id`` from new traffic and flush it.

        Returns the worker server's own :meth:`ServingStats.snapshot`
        once every inflight request has resolved -- nothing is dropped.
        """
        self._require_running()
        worker = self._workers[worker_id]
        worker.draining = True
        deadline = time.monotonic() + self.control_timeout
        while worker.inflight and worker.alive:
            if time.monotonic() > deadline:
                raise ClusterError(
                    f"worker {worker_id} failed to drain within "
                    f"{self.control_timeout}s ({worker.inflight} inflight)"
                )
            await asyncio.sleep(self.poll_interval)
        if not worker.alive:
            return {}
        pending = self._expect(("drain", worker_id))
        if worker.requests is None or \
                not worker.requests.push(encode_message(K_DRAIN, {})):
            pending.cancel()
            raise ClusterError(f"worker {worker_id} request ring is full")
        return await asyncio.wait_for(pending, timeout=self.control_timeout)

    async def induce_straggler(self, worker_id: int, batches: int = 1,
                               seconds: float = 0.5) -> Dict[str, Any]:
        """Chaos control: make ``worker_id`` sleep before its next batches.

        The worker keeps heartbeating through the sleep, so liveness
        stays green and only the per-batch ``batch_timeout`` (and the
        hedging behind it) can route around the slowness -- an on-demand
        gray failure for tests and chaos drills.  Returns the worker's
        acknowledgement header.
        """
        self._require_running()
        worker = self._workers[worker_id]
        pending = self._expect(("straggle", worker_id))
        frame = encode_message(K_STRAGGLE, {
            "batches": int(batches), "seconds": float(seconds),
        })
        if worker.requests is None or not worker.requests.push(frame):
            pending.cancel()
            raise ClusterError(f"worker {worker_id} request ring is full")
        return await asyncio.wait_for(pending, timeout=self.control_timeout)

    async def restart_worker(self, worker_id: int,
                             graceful: bool = True) -> None:
        """Replace ``worker_id``'s process (drain first when graceful).

        The replacement comes up on fresh rings (a crashed worker may
        have left torn frames behind), has every matrix placed on it
        re-registered, and rejoins routing with reset health -- the
        cluster analogue of :meth:`DevicePool.restore_device`.
        """
        self._require_running()
        worker = self._workers[worker_id]
        worker.restarting = True
        try:
            if graceful and worker.alive:
                await self.drain_worker(worker_id)
                stop = self._expect(("stop", worker_id))
                if worker.requests is not None and \
                        worker.requests.push(encode_message(K_STOP, {})):
                    try:
                        await asyncio.wait_for(
                            stop, timeout=self.control_timeout
                        )
                    except asyncio.TimeoutError:
                        pass
                else:
                    stop.cancel()
                worker.alive = False
            if worker.process is not None and worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=self.stop_timeout)
            for batch in list(worker.pending.values()):
                batch.attempted.add(worker_id)
                if not self._retry(batch):
                    self._resolve_batch_failed(
                        batch, f"worker {worker_id} restarted"
                    )
            worker.pending.clear()
            worker.inflight = 0
            worker.outstanding_cycles = 0.0
            if worker.requests is not None:
                worker.requests.close()
            if worker.replies is not None:
                worker.replies.close()
            ready = self._expect(("ready", worker_id))
            self._spawn(worker)
            try:
                await asyncio.wait_for(ready, timeout=self.control_timeout)
            except asyncio.TimeoutError:
                raise ClusterError(
                    f"restarted worker {worker_id} failed to come up within "
                    f"{self.control_timeout}s"
                ) from None
            worker.health.reset()
            worker.health.quarantined = False
            worker.breaker = CircuitBreaker(**self._breaker_args)
            worker.alive = True
            worker.draining = False
            worker.last_beats = 0
            worker.last_progress = time.monotonic()
            self.stats.restarts += 1
            for name, record in self._matrices.items():
                if worker_id in record.placement:
                    await self._register_on(worker, record, name)
        finally:
            worker.restarting = False

    # ------------------------------------------------------------------ #
    # Introspection                                                        #
    # ------------------------------------------------------------------ #
    def worker_status(self) -> List[Dict[str, Any]]:
        """Per-worker liveness/health/load summary."""
        return [
            {
                "worker": worker.worker_id,
                "alive": worker.alive,
                "draining": worker.draining,
                "quarantined": worker.health.quarantined,
                "health_score": worker.health.score,
                "breaker": worker.breaker.state,
                "breaker_failures": worker.breaker.consecutive_failures,
                "inflight": worker.inflight,
                "outstanding_cycles": worker.outstanding_cycles,
                "matrices": sorted(worker.plan_handles),
            }
            for worker in self._workers
        ]

    # ------------------------------------------------------------------ #
    # Internals                                                            #
    # ------------------------------------------------------------------ #
    def _require_running(self) -> None:
        if not self._started or self._closed:
            raise ClusterError(
                "gateway is not running (use 'async with ClusterGateway(...)'"
                " or call start() first)"
            )

    def _expect(self, key: Tuple) -> asyncio.Future:
        future = asyncio.get_running_loop().create_future()
        self._control[key] = future
        return future

    def _resolve(self, key: Tuple, value: Any) -> None:
        future = self._control.pop(key, None)
        if future is not None and not future.done():
            future.set_result(value)

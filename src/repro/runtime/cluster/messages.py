"""Cluster wire protocol: framed messages over :class:`ShmRing`.

One ring frame carries exactly one message.  A message is a one-byte
kind, a small JSON header (scalars and strings only -- request ids,
matrix names, error text), and zero or more ndarrays appended with the
:mod:`transport <repro.runtime.cluster.transport>` array codec.  The
JSON header is deliberately tiny (tens of bytes); *all* bulk data --
request vectors, matrices being registered, result matrices -- travels
as raw array bytes, never through the JSON layer and never through
pickle.  Decoding returns ndarray *views* of the ring frame, so the
consumer reads payloads straight out of shared memory.

Request kinds (gateway -> worker)::

    REGISTER  header {name, element_size, precision, input_bits}
              arrays [matrix]
    SUBMIT    header {batch, name, input_bits}
              arrays [vectors (n, rows)]
    DRAIN     header {}          -- flush, reply ACK with a stats snapshot
    STOP      header {}          -- exit the command loop (ACK, then exit)
    PING      header {nonce}     -- liveness probe, reply ACK {nonce}
    STRAGGLE  header {batches, seconds}  -- chaos: sleep before the next
              N SUBMITs while still heartbeating (gray failure on demand)

Reply kinds (worker -> gateway)::

    READY       header {worker}                     -- sent once at boot
    REGISTERED  header {name, shape, handle}        -- handle = PlanHandle hex
    RESULTS     header {batch, statuses}
                arrays [results (n, cols), latency (n,), energy (n,)]
    ACK         header {echo of the request's header, plus extras}
    ERROR       header {error, batch?}              -- whole-message failure
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from ...errors import TransportError
from .transport import decode_array, encode_array

__all__ = [
    "K_ACK",
    "K_DRAIN",
    "K_ERROR",
    "K_PING",
    "K_READY",
    "K_REGISTER",
    "K_REGISTERED",
    "K_RESULTS",
    "K_STOP",
    "K_STRAGGLE",
    "K_SUBMIT",
    "STATUS_CODES",
    "STATUS_NAMES",
    "decode_message",
    "encode_message",
]

# Requests (gateway -> worker).
K_REGISTER = 1
K_SUBMIT = 2
K_DRAIN = 3
K_STOP = 4
K_PING = 5
K_STRAGGLE = 6

# Replies (worker -> gateway).
K_READY = 64
K_REGISTERED = 65
K_RESULTS = 66
K_ACK = 67
K_ERROR = 68

#: Per-row terminal states of a RESULTS frame, packed as a u8 array so a
#: thousand-row batch does not drag a thousand strings through JSON.
STATUS_CODES = {"completed": 0, "failed": 1, "shed": 2, "rejected": 3}
STATUS_NAMES = {code: name for name, code in STATUS_CODES.items()}

_PREFIX = struct.Struct("<BBI")  # kind, array count, header length


def encode_message(
    kind: int,
    header: Dict[str, Any],
    arrays: Sequence[np.ndarray] = (),
) -> List[bytes]:
    """Encode one message as a buffer list for :meth:`ShmRing.push`.

    The buffers are handed to the ring verbatim, so array data is copied
    exactly once -- from the caller's ndarray into shared memory.
    """
    if len(arrays) > 255:
        raise TransportError(f"too many arrays in one message ({len(arrays)})")
    blob = json.dumps(header, separators=(",", ":")).encode("utf-8")
    parts: List[bytes] = [_PREFIX.pack(kind, len(arrays), len(blob)), blob]
    for array in arrays:
        parts.extend(encode_array(array))
    return parts


def decode_message(
    payload: memoryview,
) -> Tuple[int, Dict[str, Any], List[np.ndarray]]:
    """Decode one frame payload into ``(kind, header, arrays)``.

    The arrays are zero-copy views of ``payload`` (i.e. of the shared
    memory ring) and are only valid until the frame is released with
    :meth:`ShmRing.advance`; copy anything that must outlive it.
    """
    try:
        kind, narrays, header_len = _PREFIX.unpack_from(payload, 0)
        offset = _PREFIX.size
        header = json.loads(bytes(payload[offset: offset + header_len]))
        offset += header_len
    except (struct.error, UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TransportError(f"malformed message frame: {exc}") from exc
    arrays: List[np.ndarray] = []
    for _ in range(narrays):
        array, offset = decode_array(payload, offset)
        arrays.append(array)
    return kind, header, arrays

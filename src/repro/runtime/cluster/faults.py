"""Cluster chaos layer: transport fault injection and circuit breaking.

PR 6's :class:`~repro.runtime.faults.FaultInjector` made *device* failure
a first-class, deterministic, testable event.  This module extends the
same philosophy one tier up, to the faults that a multi-process cluster
adds on top of chip failure:

``drop``
    A pushed frame silently never arrives.  Models a lossy link or a
    receiver that died holding the frame.
``dup``
    A pushed frame is delivered twice.  Models retransmission by a
    transport that lost the ack, not the payload -- the reason the
    worker suppresses duplicate batches and the gateway ignores replies
    for batches it no longer tracks.
``delay``
    A pushed frame is held back and delivered after frames pushed later,
    i.e. out of order and late.  Models a congested or rerouted link;
    this is what makes "a late reply after the gateway already hedged"
    a reachable state instead of a theoretical one.
``corrupt``
    One bit of the written frame payload is flipped *after* its CRC was
    computed, so the consumer's CRC check fails and the frame is skipped
    (:class:`~repro.errors.TransportError`).  Models a torn write or bus
    corruption; exercises the ring's skip-past recovery end to end.

All modes are deterministic: triggers count *faultable frames pushed*
(never wall clock), and the corrupted bit position derives from
``(seed, frame_index)``, mirroring the device-level injector.  A seeded
campaign uses :meth:`TransportFaultSchedule.from_seed`, the transport
analogue of :meth:`~repro.runtime.faults.FaultSchedule.from_seed`.

The injector hooks the **producer** seam of :class:`ShmRing`
(``ring.fault_injector``, consulted by ``push``).  Every ring is
single-producer/single-consumer and every direction of the cluster
transport has its producer in exactly one process -- the gateway pushes
request rings, each worker pushes its reply ring -- so producer-side
injection covers both directions of the channel without a consumer-side
hook: :class:`~repro.runtime.cluster.gateway.ClusterGateway` attaches
injectors to the request rings it owns, and ships a serialized
:class:`TransportFaultSpec` in each worker's spawn spec so the worker
attaches the reply-side injector itself.

Faults apply only to *data* frames (``SUBMIT`` requests, ``RESULTS``
replies, selected by the ``kinds`` filter); control traffic --
registration, readiness, drain, stop -- is never faulted, so a chaos
campaign degrades service, not cluster bring-up.

The module also houses :class:`CircuitBreaker`, the gray-failure
counterpart of :class:`~repro.runtime.integrity.DeviceHealth`: where the
EWMA score quarantines a device that keeps *corrupting*, the breaker
fences a worker that keeps *timing out* -- closed until consecutive
failures cross a threshold, open (no traffic) for a cooldown, then
half-open admitting one probe batch that either closes it again or
re-opens it with a doubled cooldown.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ...errors import ClusterError
from .messages import K_RESULTS, K_SUBMIT
from .transport import _FRAME

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .transport import ShmRing

__all__ = [
    "TRANSPORT_FAULT_MODES",
    "CircuitBreaker",
    "TransportFaultEvent",
    "TransportFaultInjector",
    "TransportFaultSchedule",
    "TransportFaultSpec",
]

#: Supported transport fault modes.
FAULT_DROP = "drop"
FAULT_DUP = "dup"
FAULT_DELAY = "delay"
FAULT_CORRUPT = "corrupt"
TRANSPORT_FAULT_MODES = (FAULT_DROP, FAULT_DUP, FAULT_DELAY, FAULT_CORRUPT)


@dataclass(frozen=True)
class TransportFaultEvent:
    """One scheduled transport fault on one ring.

    ``after_frame`` is the faultable-frame index (0-based, counting only
    frames the injector's ``kinds`` filter admits) at which the fault
    arms; it then affects the next ``duration_frames`` faultable frames.
    ``delay_frames`` applies to ``delay`` events: the held frame is
    re-delivered after that many further faultable frames have been
    pushed (frames pushed in between arrive first -- the reorder).
    """

    after_frame: int
    mode: str
    duration_frames: int = 1
    delay_frames: int = 2

    def __post_init__(self) -> None:
        if self.mode not in TRANSPORT_FAULT_MODES:
            raise ClusterError(
                f"unknown transport fault mode {self.mode!r}; expected one "
                f"of {TRANSPORT_FAULT_MODES}"
            )
        if self.after_frame < 0:
            raise ClusterError("after_frame must be >= 0")
        if self.duration_frames < 1:
            raise ClusterError("duration_frames must be >= 1")
        if self.delay_frames < 1:
            raise ClusterError("delay_frames must be >= 1")


@dataclass(frozen=True)
class TransportFaultSchedule:
    """A reproducible list of :class:`TransportFaultEvent`, seed-derived."""

    events: Tuple[TransportFaultEvent, ...] = ()
    seed: int = 0

    @classmethod
    def from_seed(
        cls,
        seed: int,
        num_events: int = 4,
        horizon_frames: int = 32,
        modes: Tuple[str, ...] = TRANSPORT_FAULT_MODES,
    ) -> "TransportFaultSchedule":
        """Derive a deterministic random schedule from ``seed``.

        Mirrors :meth:`repro.runtime.faults.FaultSchedule.from_seed`:
        events spread uniformly over ``[0, horizon_frames)`` faultable
        frames, with bounded durations so a campaign always lets traffic
        through eventually.
        """
        if num_events < 0:
            raise ClusterError("num_events must be >= 0")
        if horizon_frames < 1:
            raise ClusterError("horizon_frames must be >= 1")
        for mode in modes:
            if mode not in TRANSPORT_FAULT_MODES:
                raise ClusterError(
                    f"unknown transport fault mode {mode!r}; expected one "
                    f"of {TRANSPORT_FAULT_MODES}"
                )
        rng = np.random.default_rng(
            np.random.SeedSequence([int(seed), 0xC1A05])
        )
        events = tuple(
            TransportFaultEvent(
                after_frame=int(rng.integers(0, horizon_frames)),
                mode=modes[int(rng.integers(0, len(modes)))],
                duration_frames=int(rng.integers(1, 3)),
                delay_frames=int(rng.integers(1, 4)),
            )
            for _ in range(num_events)
        )
        return cls(events=events, seed=int(seed))


@dataclass(frozen=True)
class TransportFaultSpec:
    """Serializable description of a whole-cluster transport-fault campaign.

    The spec is plain scalars/tuples so it crosses the process boundary
    inside a worker spawn spec.  Each (worker, direction) pair gets its
    own :class:`TransportFaultInjector` with an independent schedule
    derived from ``(seed, worker_id, direction)`` -- deterministic for a
    given topology, distinct per ring.
    """

    seed: int
    num_events: int = 4
    horizon_frames: int = 32
    modes: Tuple[str, ...] = TRANSPORT_FAULT_MODES
    directions: Tuple[str, ...] = ("request", "reply")

    def __post_init__(self) -> None:
        for direction in self.directions:
            if direction not in ("request", "reply"):
                raise ClusterError(
                    f"unknown transport direction {direction!r}; expected "
                    f"'request' or 'reply'"
                )

    def injector_for(self, worker_id: int,
                     direction: str) -> "TransportFaultInjector":
        """Build the injector of one ring (``direction`` of ``worker_id``)."""
        derived = int(
            np.random.default_rng(np.random.SeedSequence([
                int(self.seed), int(worker_id),
                0 if direction == "request" else 1,
            ])).integers(0, 2**31)
        )
        schedule = TransportFaultSchedule.from_seed(
            derived,
            num_events=self.num_events,
            horizon_frames=self.horizon_frames,
            modes=tuple(self.modes),
        )
        kinds = (K_SUBMIT,) if direction == "request" else (K_RESULTS,)
        return TransportFaultInjector(schedule, kinds=kinds)

    def to_spec(self) -> Dict[str, Any]:
        """Plain-dict form for a worker spawn spec."""
        return {
            "seed": self.seed,
            "num_events": self.num_events,
            "horizon_frames": self.horizon_frames,
            "modes": list(self.modes),
            "directions": list(self.directions),
        }

    @classmethod
    def from_spec(cls, spec: Dict[str, Any]) -> "TransportFaultSpec":
        """Rebuild from :meth:`to_spec` output (worker-process side)."""
        return cls(
            seed=int(spec["seed"]),
            num_events=int(spec.get("num_events", 4)),
            horizon_frames=int(spec.get("horizon_frames", 32)),
            modes=tuple(spec.get("modes", TRANSPORT_FAULT_MODES)),
            directions=tuple(spec.get("directions", ("request", "reply"))),
        )


class _ActiveTransportFault:
    """Mutable state of the currently armed fault on one ring."""

    __slots__ = ("mode", "remaining", "delay_frames")

    def __init__(self, mode: str, remaining: int, delay_frames: int) -> None:
        self.mode = mode
        self.remaining = remaining
        self.delay_frames = delay_frames


class TransportFaultInjector:
    """Drop, duplicate, delay, or bit-corrupt :class:`ShmRing` frames.

    Attach with :meth:`attach` (sets ``ring.fault_injector``); the ring's
    ``push`` then routes every frame through :meth:`on_push`.  Faults can
    be armed from a seeded schedule or imperatively (:meth:`drop` /
    :meth:`duplicate` / :meth:`delay_next` / :meth:`corrupt`), which is
    what targeted chaos tests do.

    Only message kinds in ``kinds`` are ever faulted (``None`` faults
    everything); other frames -- and every frame while no fault is
    active -- take the untouched :meth:`ShmRing.push_frame` path.
    """

    def __init__(
        self,
        schedule: Optional[TransportFaultSchedule] = None,
        seed: Optional[int] = None,
        kinds: Optional[Tuple[int, ...]] = (K_SUBMIT, K_RESULTS),
    ) -> None:
        self.schedule = schedule if schedule is not None \
            else TransportFaultSchedule()
        self.seed = seed if seed is not None else self.schedule.seed
        self.kinds = frozenset(kinds) if kinds is not None else None
        self._pending: List[TransportFaultEvent] = sorted(
            self.schedule.events, key=lambda e: (e.after_frame, e.mode)
        )
        self._active: Optional[_ActiveTransportFault] = None
        #: Held ``delay`` frames: (deliver-at faultable-frame index, blob).
        self._stash: List[Tuple[int, bytes]] = []
        #: Lifetime counters, exact (the chaos suite asserts against them).
        self.frames_seen = 0
        self.frames_dropped = 0
        self.frames_duplicated = 0
        self.frames_delayed = 0
        self.frames_corrupted = 0

    # ------------------------------------------------------------------ #
    # Wiring                                                               #
    # ------------------------------------------------------------------ #
    def attach(self, ring: "ShmRing") -> "TransportFaultInjector":
        """Install this injector on ``ring`` (returns self for chaining)."""
        ring.fault_injector = self
        return self

    # ------------------------------------------------------------------ #
    # Imperative fault control                                             #
    # ------------------------------------------------------------------ #
    def _arm(self, mode: str, frames: int, delay_frames: int = 2) -> None:
        if frames < 1:
            raise ClusterError("a transport fault needs frames >= 1")
        self._active = _ActiveTransportFault(mode, frames, delay_frames)

    def drop(self, frames: int = 1) -> None:
        """Silently drop the next ``frames`` faultable frames."""
        self._arm(FAULT_DROP, frames)

    def duplicate(self, frames: int = 1) -> None:
        """Deliver each of the next ``frames`` faultable frames twice."""
        self._arm(FAULT_DUP, frames)

    def delay_next(self, frames: int = 1, by: int = 2) -> None:
        """Hold the next ``frames`` frames back by ``by`` later frames."""
        if by < 1:
            raise ClusterError("delay needs by >= 1")
        self._arm(FAULT_DELAY, frames, by)

    def corrupt(self, frames: int = 1) -> None:
        """Flip one bit in each of the next ``frames`` written frames."""
        self._arm(FAULT_CORRUPT, frames)

    @property
    def faults_injected(self) -> int:
        """Total frames affected by any mode (the campaign's footprint)."""
        return (self.frames_dropped + self.frames_duplicated
                + self.frames_delayed + self.frames_corrupted)

    # ------------------------------------------------------------------ #
    # Producer-seam hook                                                    #
    # ------------------------------------------------------------------ #
    def on_push(self, ring: "ShmRing", parts) -> bool:
        """Route one ``push`` through the fault model; the ring's seam.

        Returns what the caller's ``push`` would have: ``True`` when the
        frame was accepted *from the producer's point of view* -- a
        dropped or delayed frame still reports success, exactly like a
        lossy link that accepted the send.  ``False`` propagates real
        backpressure only.
        """
        kind = parts[0][0] if parts and len(parts[0]) else None
        if self.kinds is not None and kind not in self.kinds:
            return ring.push_frame(parts)
        index = self.frames_seen
        self.frames_seen += 1
        self._flush_due(ring, index)
        fault = self._consume_mode(index)
        if fault is None:
            return ring.push_frame(parts)
        mode, delay = fault
        if mode == FAULT_DROP:
            self.frames_dropped += 1
            return True
        if mode == FAULT_DELAY:
            blob = b"".join(
                bytes(memoryview(part).cast("B")) for part in parts
            )
            self._stash.append((index + delay, blob))
            self.frames_delayed += 1
            return True
        if not ring.push_frame(parts):
            return False
        if mode == FAULT_DUP:
            # Best effort: a full ring simply loses the duplicate.
            ring.push_frame(parts)
            self.frames_duplicated += 1
        elif mode == FAULT_CORRUPT:
            self._flip_bit(ring, index)
            self.frames_corrupted += 1
        return True

    def flush(self, ring: "ShmRing") -> int:
        """Force-deliver every held ``delay`` frame; returns how many."""
        delivered = 0
        for _, blob in self._stash:
            if ring.push_frame([blob]):
                delivered += 1
        self._stash.clear()
        return delivered

    # ------------------------------------------------------------------ #
    # Internals                                                             #
    # ------------------------------------------------------------------ #
    def _consume_mode(self, index: int) -> Optional[Tuple[str, int]]:
        """Arm due scheduled events, then burn one frame of the active fault.

        Returns ``(mode, delay_frames)`` for the frame at ``index``, or
        ``None`` when no fault is active.
        """
        due = [e for e in self._pending if e.after_frame <= index]
        for event in due:
            self._pending.remove(event)
            self._arm(event.mode, event.duration_frames, event.delay_frames)
        fault = self._active
        if fault is None:
            return None
        mode, delay = fault.mode, fault.delay_frames
        fault.remaining -= 1
        if fault.remaining <= 0:
            self._active = None
        return mode, delay

    def _flush_due(self, ring: "ShmRing", index: int) -> None:
        """Deliver held frames whose delay has elapsed (ring-full ones wait)."""
        still_held = []
        for deliver_at, blob in self._stash:
            if deliver_at <= index and ring.push_frame([blob]):
                continue
            still_held.append((deliver_at, blob))
        self._stash = still_held

    def _flip_bit(self, ring: "ShmRing", index: int) -> None:
        """Flip one deterministic payload bit of the just-written frame.

        The CRC in the frame header was computed before the flip, so the
        consumer's ``peek`` fails the check, raises ``TransportError``,
        and skips past -- the corruption is always *detected*, modelling
        a torn write rather than silent wrong data (the device tier's
        ``corrupt`` mode covers the silent case; the wire has a CRC).
        """
        frame = ring._last_frame
        if frame is None:
            return
        position, length = frame
        if length == 0:
            return
        rng = np.random.default_rng(
            np.random.SeedSequence([int(self.seed), int(index)])
        )
        offset = position + _FRAME.size + int(rng.integers(0, length))
        ring._data[offset] ^= 1 << int(rng.integers(0, 8))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TransportFaultInjector(seen={self.frames_seen}, "
            f"dropped={self.frames_dropped}, dup={self.frames_duplicated}, "
            f"delayed={self.frames_delayed}, corrupt={self.frames_corrupted})"
        )


class CircuitBreaker:
    """Per-worker circuit breaker: closed -> open -> half-open -> closed.

    The gateway records one event per batch outcome: ``record_failure``
    for an execution timeout or a worker failure, ``record_success`` for
    a clean RESULTS frame.  ``threshold`` *consecutive* failures trip the
    breaker open; while open, :meth:`allows` is ``False`` and the router
    steers traffic to other replicas.  After ``cooldown`` seconds the
    breaker half-opens and admits exactly one probe batch
    (:meth:`record_dispatch` consumes the slot): a success closes the
    breaker and resets the cooldown, a failure re-opens it with the
    cooldown doubled (capped at ``max_cooldown``) -- a sick worker is
    probed at an exponentially decaying rate instead of hammered.

    ``clock`` is injectable for deterministic unit tests.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        threshold: int = 2,
        cooldown: float = 0.5,
        max_cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ClusterError("breaker threshold must be >= 1")
        if cooldown <= 0 or max_cooldown < cooldown:
            raise ClusterError(
                "breaker needs 0 < cooldown <= max_cooldown"
            )
        self.threshold = threshold
        self.base_cooldown = cooldown
        self.max_cooldown = max_cooldown
        self._clock = clock
        self.state = self.CLOSED
        self.consecutive_failures = 0
        #: Lifetime trips to open (telemetry).
        self.opens = 0
        self.cooldown = cooldown
        self._opened_at = 0.0
        self._probe_inflight = False

    def allows(self) -> bool:
        """Whether a new batch may be routed through this breaker now."""
        if self.state == self.OPEN:
            if self._clock() - self._opened_at < self.cooldown:
                return False
            self.state = self.HALF_OPEN
            self._probe_inflight = False
        if self.state == self.HALF_OPEN:
            return not self._probe_inflight
        return True

    def record_dispatch(self) -> None:
        """Note a dispatch; in half-open this consumes the probe slot."""
        if self.state == self.HALF_OPEN:
            self._probe_inflight = True

    def record_success(self) -> None:
        """A batch completed cleanly: close and reset the cooldown."""
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.cooldown = self.base_cooldown
        self._probe_inflight = False

    def record_failure(self) -> bool:
        """Account one timeout/failure; True when this event tripped open."""
        self.consecutive_failures += 1
        if self.state == self.HALF_OPEN:
            self.cooldown = min(self.cooldown * 2, self.max_cooldown)
            self._trip()
            return True
        if self.state == self.CLOSED \
                and self.consecutive_failures >= self.threshold:
            self._trip()
            return True
        return False

    def _trip(self) -> None:
        self.state = self.OPEN
        self.opens += 1
        self._opened_at = self._clock()
        self._probe_inflight = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CircuitBreaker(state={self.state}, "
            f"failures={self.consecutive_failures}, opens={self.opens})"
        )
